//! Microsecond-scale session store that rides through a memory-node crash —
//! the availability story of §7.7: no downtime, no reconfiguration, just
//! quorums that widen past the dead node.
//!
//! ```sh
//! cargo run -p swarm-examples --example failover_session_store --release
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use swarm_fabric::NodeId;
use swarm_kv::{KvStore, Protocol, StoreBuilder};
use swarm_sim::{Sim, NANOS_PER_MICRO, NANOS_PER_MILLI};

const SESSIONS: u64 = 512;

fn main() {
    let sim = Sim::new(99);
    let cluster = StoreBuilder::new(Protocol::SafeGuess)
        .value_size(64)
        .build_cluster(&sim);
    cluster.load_keys(SESSIONS, |k| session_record(k, 0));
    cluster
        .membership()
        .expect("SWARM-KV has a membership service")
        .watch_until(40 * NANOS_PER_MILLI);

    // Crash one of the 4 memory nodes 5 ms in.
    let c2 = cluster.clone();
    sim.schedule_at(5 * NANOS_PER_MILLI, move |_| {
        println!("[t={:>6.2} ms] memory node 2 CRASHES", 5.0);
        c2.crash_node(NodeId(2));
    });

    let failures = Rc::new(RefCell::new(0u64));
    let slow_ops = Rc::new(RefCell::new(Vec::new()));
    for cid in 0..4usize {
        let client = cluster.client(cid);
        let sim2 = sim.clone();
        let failures = Rc::clone(&failures);
        let slow = Rc::clone(&slow_ops);
        sim.spawn(async move {
            let mut version = 0u64;
            while sim2.now() < 30 * NANOS_PER_MILLI {
                let key = sim2.rand_range(0, SESSIONS);
                version += 1;
                let t0 = sim2.now();
                let ok = if sim2.rand_range(0, 100) < 70 {
                    matches!(client.get(key).await, Ok(Some(_)))
                } else {
                    client
                        .update(key, session_record(key, version))
                        .await
                        .is_ok()
                };
                let lat = sim2.now() - t0;
                if !ok {
                    *failures.borrow_mut() += 1;
                }
                if lat > 5 * NANOS_PER_MICRO {
                    slow.borrow_mut().push((sim2.now(), lat));
                }
                sim2.sleep_ns(1_000).await;
            }
        });
    }
    sim.run();

    println!(
        "30 ms of traffic across the crash: {} failed operations (expected 0)",
        failures.borrow()
    );
    let slow = slow_ops.borrow();
    println!("operations slower than 5 us: {}", slow.len());
    for (at, lat) in slow.iter().take(8) {
        println!(
            "  t={:>6.2} ms  latency {:>6.2} us  (quorum widened past the dead node)",
            *at as f64 / 1e6,
            *lat as f64 / 1e3
        );
    }
    assert_eq!(*failures.borrow(), 0, "SWARM-KV must stay available");
    let after_grace = slow
        .iter()
        .filter(|(at, _)| *at > 8 * NANOS_PER_MILLI)
        .count();
    println!(
        "slow ops after the 3 ms post-crash grace period: {after_grace} \
         (suspicion converges; steady state restored)"
    );
}

fn session_record(key: u64, version: u64) -> Vec<u8> {
    let mut v = vec![0u8; 64];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8..16].copy_from_slice(&version.to_le_bytes());
    v[16..24].copy_from_slice(&0xC0FFEEu64.to_le_bytes());
    v
}
