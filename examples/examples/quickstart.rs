//! Quickstart: stand up a simulated disaggregated-memory cluster through
//! `StoreBuilder`, run SWARM-KV operations against it, and print what they
//! cost.
//!
//! ```sh
//! cargo run -p swarm-examples --example quickstart
//! ```

use swarm_kv::{KvError, KvStore, KvStoreExt, Protocol, StoreBuilder};
use swarm_sim::Sim;

fn main() {
    // A deterministic simulation: 4 memory nodes, 3 replicas per key.
    let sim = Sim::new(2024);
    let cluster = StoreBuilder::new(Protocol::SafeGuess)
        .value_size(64)
        .max_clients(2)
        .build_cluster(&sim);

    // Pre-load a few keys (the YCSB load phase).
    cluster.load_keys(16, |k| {
        let mut v = format!("value-{k:03}").into_bytes();
        v.resize(64, b'.');
        v
    });

    // Two independent client threads.
    let alice = cluster.client(0);
    let bob = cluster.client(1);

    let sim2 = sim.clone();
    sim.block_on(async move {
        let timed = |label: &str, t0, t1| {
            println!("{label:<28} {:>7.2} us", (t1 - t0) as f64 / 1e3);
        };

        // A get: one roundtrip to a majority of the replicas.
        let t0 = sim2.now();
        let v = alice.get(3).await.unwrap().expect("key 3 was loaded");
        timed("alice.get(3)", t0, sim2.now());
        println!("  -> {:?}...", std::str::from_utf8(&v[..12]).unwrap());

        // An update: Safe-Guess guesses a timestamp and writes in one
        // roundtrip; the parallel read confirms the guess was fresh.
        let t0 = sim2.now();
        alice.update(3, vec![b'A'; 64]).await.unwrap();
        timed("alice.update(3)", t0, sim2.now());

        // Bob reads Alice's write — strong consistency, no coordination.
        let t0 = sim2.now();
        let v = bob.get(3).await.unwrap().unwrap();
        timed("bob.get(3)", t0, sim2.now());
        assert_eq!(*v, vec![b'A'; 64]);

        // A pipelined batch: all four quorum reads overlap, so the batch
        // costs about one roundtrip of latency — not four.
        let t0 = sim2.now();
        let quotes = alice.multi_get(&[4, 5, 6, 7]).await;
        timed("alice.multi_get([4,5,6,7])", t0, sim2.now());
        assert!(quotes.iter().all(|r| matches!(r, Ok(Some(_)))));

        // Insert a brand-new key: replica allocation + index insertion run
        // in parallel with the replicated write (one roundtrip).
        let t0 = sim2.now();
        bob.insert(100, vec![b'N'; 64]).await.unwrap();
        timed("bob.insert(100)", t0, sim2.now());

        // Delete: a write of the maximum timestamp that nothing can
        // overwrite until the key is re-inserted. The typed API says *why*
        // a later write is refused.
        alice.delete(3).await.unwrap();
        assert_eq!(bob.get(3).await.unwrap(), None, "deleted key must be gone");
        let refused = bob.update(3, vec![0; 64]).await.unwrap_err();
        assert!(matches!(refused, KvError::Deleted | KvError::NotIndexed));
        println!("delete(3): subsequent get -> None, update refused: {refused}");

        // Roundtrip accounting.
        println!(
            "alice performed {} foreground roundtrips in total",
            alice.rounds()
        );
    });
    println!("virtual time elapsed: {:.1} us", sim.now() as f64 / 1e3);
}
