//! Quickstart: stand up a simulated disaggregated-memory cluster, run
//! SWARM-KV operations against it, and print what they cost.
//!
//! ```sh
//! cargo run -p swarm-examples --example quickstart
//! ```

use std::rc::Rc;

use swarm_kv::{Cluster, ClusterConfig, KvClient, KvClientConfig, KvStore, Proto};
use swarm_sim::Sim;

fn main() {
    // A deterministic simulation: 4 memory nodes, 3 replicas per key.
    let sim = Sim::new(2024);
    let cluster = Cluster::new(&sim, ClusterConfig::default());

    // Pre-load a few keys (the YCSB load phase).
    cluster.load_keys(16, |k| {
        let mut v = format!("value-{k:03}").into_bytes();
        v.resize(64, b'.');
        v
    });

    // Two independent client threads.
    let alice = KvClient::new(&cluster, Proto::SafeGuess, 0, KvClientConfig::default());
    let bob = KvClient::new(&cluster, Proto::SafeGuess, 1, KvClientConfig::default());

    let sim2 = sim.clone();
    sim.block_on(async move {
        let timed = |label: &str, t0, t1| {
            println!("{label:<28} {:>7.2} us", (t1 - t0) as f64 / 1e3);
        };

        // A get: one roundtrip to a majority of the replicas.
        let t0 = sim2.now();
        let v = alice.get(3).await.expect("key 3 was loaded");
        timed("alice.get(3)", t0, sim2.now());
        println!("  -> {:?}...", std::str::from_utf8(&v[..12]).unwrap());

        // An update: Safe-Guess guesses a timestamp and writes in one
        // roundtrip; the parallel read confirms the guess was fresh.
        let t0 = sim2.now();
        assert!(alice.update(3, vec![b'A'; 64]).await);
        timed("alice.update(3)", t0, sim2.now());

        // Bob reads Alice's write — strong consistency, no coordination.
        let t0 = sim2.now();
        let v = bob.get(3).await.unwrap();
        timed("bob.get(3)", t0, sim2.now());
        assert_eq!(*v, vec![b'A'; 64]);

        // Insert a brand-new key: replica allocation + index insertion run
        // in parallel with the replicated write (one roundtrip).
        let t0 = sim2.now();
        assert!(bob.insert(100, vec![b'N'; 64]).await);
        timed("bob.insert(100)", t0, sim2.now());

        // Delete: a write of the maximum timestamp that nothing can
        // overwrite until the key is re-inserted.
        assert!(alice.delete(3).await);
        assert!(bob.get(3).await.is_none(), "deleted key must be gone");
        assert!(!bob.update(3, vec![0; 64]).await);
        println!("delete(3): subsequent get -> None, update -> rejected");

        // Roundtrip accounting.
        println!(
            "alice performed {} foreground roundtrips in total",
            Rc::clone(&alice).rounds()
        );
    });
    println!("virtual time elapsed: {:.1} us", sim.now() as f64 / 1e3);
}
