//! Trading-style workload: a small set of hot ticker symbols updated by a
//! market-data feed while trading engines read them at microsecond scale —
//! the "data stores in trading systems" use case the paper's introduction
//! motivates. Compares SWARM-KV against DM-ABD under the same feed; the
//! engines snapshot their watchlists with pipelined `multi_get` batches.
//!
//! ```sh
//! cargo run -p swarm-examples --example trading_tickers --release
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use swarm_kv::{KvStore, KvStoreExt, Protocol, StoreBuilder};
use swarm_sim::{Histogram, Sim, NANOS_PER_MICRO};

const TICKERS: u64 = 32;
const FEED_UPDATES: usize = 2_000;
const SNAPSHOTS_PER_ENGINE: usize = 500;
const WATCHLIST: usize = 8;

fn quote(seq: u64) -> Vec<u8> {
    // [price | size | seq | padding] — a fixed 64 B quote record.
    let mut v = vec![0u8; 64];
    v[..8].copy_from_slice(&(10_000 + seq % 100).to_le_bytes());
    v[8..16].copy_from_slice(&(100 + seq % 7).to_le_bytes());
    v[16..24].copy_from_slice(&seq.to_le_bytes());
    v
}

fn run(proto: Protocol, label: &str) {
    let sim = Sim::new(7);
    let cluster = StoreBuilder::new(proto)
        .value_size(64)
        .max_clients(4)
        .meta_bufs(4)
        .build_cluster(&sim);
    cluster.load_keys(TICKERS, quote);

    // One feed writer, three trading engines.
    let feed = cluster.client(0);
    let engines: Vec<_> = (1..4).map(|i| cluster.client(i)).collect();

    let snap_lat = Rc::new(RefCell::new(Histogram::new()));
    let write_lat = Rc::new(RefCell::new(Histogram::new()));
    let stale_reads = Rc::new(RefCell::new(0u64));

    {
        let sim2 = sim.clone();
        let write_lat = Rc::clone(&write_lat);
        sim.spawn(async move {
            for seq in 0..FEED_UPDATES as u64 {
                let t = sim2.now();
                feed.update(seq % TICKERS, quote(seq)).await.unwrap();
                write_lat.borrow_mut().record(sim2.now() - t);
                sim2.sleep_ns(2 * NANOS_PER_MICRO).await; // ~500k quotes/s
            }
        });
    }
    for engine in engines {
        let sim2 = sim.clone();
        let snap_lat = Rc::clone(&snap_lat);
        let stale = Rc::clone(&stale_reads);
        sim.spawn(async move {
            let mut last_seen = vec![0u64; TICKERS as usize];
            for i in 0..SNAPSHOTS_PER_ENGINE {
                // An 8-ticker watchlist snapshot in one pipelined batch:
                // ~1 quorum roundtrip for all 8 keys.
                let keys: Vec<u64> = (0..WATCHLIST as u64)
                    .map(|j| (i as u64 * 7 + j * 3) % TICKERS)
                    .collect();
                let t = sim2.now();
                let quotes = engine.multi_get(&keys).await;
                snap_lat.borrow_mut().record(sim2.now() - t);
                for (j, q) in quotes.into_iter().enumerate() {
                    let q = q.unwrap().expect("tickers never deleted");
                    let seq = u64::from_le_bytes(q[16..24].try_into().unwrap());
                    let key = keys[j] as usize;
                    // Linearizability: sequence numbers never go backwards.
                    if seq < last_seen[key] {
                        *stale.borrow_mut() += 1;
                    }
                    last_seen[key] = seq.max(last_seen[key]);
                }
                sim2.sleep_ns(500).await;
            }
        });
    }
    sim.run();

    let mut r = snap_lat.borrow_mut();
    let mut w = write_lat.borrow_mut();
    println!(
        "{label:<10} {WATCHLIST}-key snapshots: median {:>5.2} us  p99 {:>5.2} us   quotes: median {:>5.2} us  p99 {:>5.2} us   stale reads: {}",
        r.median() as f64 / 1e3,
        r.percentile(99.0) as f64 / 1e3,
        w.median() as f64 / 1e3,
        w.percentile(99.0) as f64 / 1e3,
        stale_reads.borrow(),
    );
    assert_eq!(*stale_reads.borrow(), 0, "monotonic reads violated");
}

fn main() {
    println!(
        "hot-ticker store: 1 feed writer at ~500k quotes/s, 3 engines snapshotting watchlists"
    );
    run(Protocol::SafeGuess, "SWARM-KV");
    run(Protocol::Abd, "DM-ABD");
    println!("SWARM-KV sustains the same consistency at roughly half the snapshot latency.");
}
