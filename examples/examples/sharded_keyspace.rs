//! Sharded keyspace: partition a store over four independent replica
//! groups and drive it through cross-shard routers.
//!
//! Each shard is a complete cluster — its own fabric, index, membership,
//! replica groups — and a `ShardRouter` is one application thread that
//! routes every operation to the shard owning its key (a stateless hash,
//! `ShardSpec::shard_of`). Shards fail independently: crashing a node in
//! one shard leaves the other shards' executions untouched.
//!
//! ```sh
//! cargo run -p swarm-examples --example sharded_keyspace
//! ```

use swarm_kv::{KvStore, Protocol, StoreBuilder};
use swarm_sim::Sim;

fn main() {
    let sim = Sim::new(77);
    let cluster = StoreBuilder::new(Protocol::SafeGuess)
        .value_size(64)
        .max_clients(3)
        .shards(4)
        .build_sharded(&sim);

    // Bulk loading routes each key to its owning shard.
    cluster.load_keys(1024, |k| {
        let mut v = format!("tenant-{k:04}").into_bytes();
        v.resize(64, b'.');
        v
    });
    let spec = cluster.spec();
    println!("4 shards; key 7 lives on shard {}", spec.shard_of(7));

    // Two router threads, each with a client on every shard.
    let alice = cluster.router(0);
    let bob = cluster.router(1);

    let s = sim.clone();
    sim.block_on(async move {
        // Single-key ops route transparently.
        let v = alice.get(7).await.unwrap().unwrap();
        println!("get(7) -> {:?}", String::from_utf8_lossy(&v[..11]));
        bob.update(7, {
            let mut v = b"updated-007".to_vec();
            v.resize(64, b'.');
            v
        })
        .await
        .unwrap();
        let v = alice.get(7).await.unwrap().unwrap();
        println!(
            "after bob's update -> {:?}",
            String::from_utf8_lossy(&v[..11])
        );

        // A cross-shard batch: keys group per shard, one pipelined
        // multi-op per shard flies concurrently, results return in input
        // order.
        let keys: Vec<u64> = (0..16).collect();
        let t0 = s.now();
        let got = alice.multi_get(&keys).await;
        println!(
            "multi_get of {} keys across 4 shards: {} found, {} ns",
            keys.len(),
            got.iter().filter(|r| matches!(r, Ok(Some(_)))).count(),
            s.now() - t0,
        );
    });

    // Shards fail independently: kill a node in key 7's shard.
    let owner = spec.shard_of(7);
    cluster
        .shard(owner)
        .fabric()
        .crash_node(swarm_fabric::NodeId(0));
    println!("crashed node 0 of shard {owner}; other shards' fabrics untouched");
    for (i, st) in cluster.per_shard_stats().iter().enumerate() {
        println!("  shard {i}: {} messages, {} bytes", st.messages, st.bytes);
    }
}
