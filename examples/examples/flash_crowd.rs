//! Flash crowd: a time-phased scenario whose Zipfian hot set rotates
//! mid-run, driven through the scenario engine against a sharded
//! SWARM-KV cluster.
//!
//! `ScenarioSpec::flash_crowd` schedules three phases over one keyspace:
//! a calm third (theta 0.9), a crowd third at maximum skew with the hot
//! set rotated halfway across the keyspace, then a calm third again. The
//! op stream is pure in `(seed, spec)`, so the run below is
//! bit-reproducible. Running each phase as its own one-phase spec (the
//! replay trick from `TESTING.md` — rotation is absolute, not
//! cumulative) shows the crowd moving load between shards: watch the
//! per-shard routed-op imbalance jump in phase 2 and relax again in
//! phase 3. The full sweep with JSON/HTML reports is `bench_scenarios`;
//! every knob is documented in `docs/SCENARIOS.md`.
//!
//! ```sh
//! cargo run --release -p swarm-examples --example flash_crowd
//! ```

use swarm_kv::{run_scenario, Protocol, ScenarioRunConfig, StoreBuilder};
use swarm_sim::Sim;
use swarm_workload::{scenario_value, ScenarioMix, ScenarioOpClass, ScenarioSpec};

const KEYS: u64 = 4096;
const OPS: usize = 6000;
const VALUE: usize = 64;
const ROUTERS: usize = 4;

fn main() {
    let sim = Sim::new(0xF1A5);
    let cluster = StoreBuilder::new(Protocol::SafeGuess)
        .value_size(VALUE)
        .max_clients(ROUTERS)
        .shards(4)
        .build_sharded(&sim);
    cluster.load_keys(KEYS, |k| scenario_value(k, 0, VALUE));
    let routers = cluster.routers(ROUTERS);

    // The canonical three-phase schedule, split into one spec per phase so
    // each phase's stats print separately. `spec.phases` holds the exact
    // (ops, mix, theta, rotation) tuples the whole-run spec would execute.
    let whole = ScenarioSpec::flash_crowd("flash_crowd", ScenarioMix::B, KEYS, OPS);
    println!(
        "flash crowd: {} ops over {} keys, YCSB B, {} phases\n",
        whole.total_ops(),
        whole.n_keys,
        whole.phases.len()
    );

    let mut routed_before = vec![0u64; cluster.num_shards()];
    for (i, phase) in whole.phases.iter().enumerate() {
        let spec = ScenarioSpec::new(format!("phase{i}"), KEYS).phase(*phase);
        let cfg = ScenarioRunConfig {
            // Distinct stream seed per phase, like slicing the whole run.
            seed: 42 + i as u64,
            value_cap: VALUE,
            ..ScenarioRunConfig::default()
        };
        let stats = run_scenario(&sim, &routers, &spec, &cfg);

        // Router counters are cumulative; the per-phase load is the delta.
        let routed_now: Vec<u64> =
            routers
                .iter()
                .fold(vec![0u64; cluster.num_shards()], |mut acc, r| {
                    for (s, n) in r.routed_per_shard().iter().enumerate() {
                        acc[s] += n;
                    }
                    acc
                });
        let phase_load: Vec<u64> = routed_now
            .iter()
            .zip(&routed_before)
            .map(|(now, before)| now - before)
            .collect();
        routed_before = routed_now;
        let max = *phase_load.iter().max().unwrap() as f64;
        let mean = phase_load.iter().sum::<u64>() as f64 / phase_load.len() as f64;

        println!(
            "phase {i}: theta {:.2}, rotation {:>5}  ->  {:>6.0} ops/s, \
             get p50 {:>5} ns, p99 {:>5} ns",
            phase.theta,
            phase.rotation,
            stats.throughput_ops(),
            stats.lat(ScenarioOpClass::Get).percentile(50.0),
            stats.lat(ScenarioOpClass::Get).percentile(99.0),
        );
        println!(
            "         per-shard ops {:?}, imbalance {:.2}x\n",
            phase_load,
            max / mean
        );
    }
}
