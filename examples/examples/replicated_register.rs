//! Using SWARM's core building blocks directly — without the key-value
//! store: a single Safe-Guess register over In-n-Out replicas, showing the
//! fast/slow write paths and the timestamp lock in action.
//!
//! ```sh
//! cargo run -p swarm-examples --example replicated_register
//! ```

use std::rc::Rc;

use swarm_core::{
    InnOutLayout, InnOutReplica, NodeHealth, QuorumConfig, ReliableMaxReg, Rounds, SafeGuess,
    TsGuesser, TsLock, TsLockSet, WritePath,
};
use swarm_fabric::{Fabric, FabricConfig, NodeId};
use swarm_sim::{GuessClock, Sim};

const WRITERS: usize = 2;
const VALUE: usize = 32;

fn make_register(
    sim: &Sim,
    fabric: &Fabric,
    layouts: &[InnOutLayout],
    lock_words: &[(NodeId, u64)],
    tid: usize,
    skew_ns: i64,
) -> SafeGuess<ReliableMaxReg<InnOutReplica>> {
    let ep = Rc::new(fabric.endpoint());
    let health = NodeHealth::new(fabric.num_nodes());
    let rounds = Rounds::new();
    let replicas: Vec<_> = layouts
        .iter()
        .enumerate()
        .map(|(i, l)| InnOutReplica::new(Rc::clone(&ep), l.clone(), tid, i == 0, rounds.clone()))
        .collect();
    let node_of = layouts.iter().map(|l| l.node.0).collect();
    let m = ReliableMaxReg::new(
        sim,
        replicas,
        node_of,
        0,
        Rc::clone(&health),
        QuorumConfig::default(),
        rounds.clone(),
    );
    let tsl: Vec<TsLock> = (0..WRITERS)
        .map(|w| {
            let words = lock_words
                .iter()
                .map(|&(n, base)| (n, base + 8 * w as u64))
                .collect();
            TsLock::new(
                sim,
                Rc::clone(&ep),
                words,
                Rc::clone(&health),
                QuorumConfig::default(),
                rounds.clone(),
            )
        })
        .collect();
    let clock = Rc::new(GuessClock::new(sim, skew_ns, 10.0, skew_ns / 2 + 1));
    SafeGuess::new(
        m,
        Rc::new(TsLockSet::eager(tsl)),
        Rc::new(TsGuesser::new(clock, tid as u8)),
        rounds,
    )
}

fn main() {
    let sim = Sim::new(5);
    let fabric = Fabric::new(&sim, FabricConfig::default(), 3);

    // One In-n-Out register replica per node + per-writer lock words.
    let layouts: Vec<_> = fabric
        .node_ids()
        .into_iter()
        .map(|n| InnOutLayout::allocate(&fabric, n, WRITERS, VALUE, 2 * WRITERS, WRITERS))
        .collect();
    let lock_words: Vec<_> = fabric
        .node_ids()
        .into_iter()
        .map(|n| (n, fabric.node(n).alloc(8 * WRITERS as u64, 8)))
        .collect();

    // Writer 0 has a good clock; writer 1's clock lags by ~50 µs, so its
    // guessed timestamps are often stale.
    let w0 = make_register(&sim, &fabric, &layouts, &lock_words, 0, 100);
    let w1 = make_register(&sim, &fabric, &layouts, &lock_words, 1, 50_000);

    let sim2 = sim.clone();
    sim.block_on(async move {
        // Uncontended, well-synchronized: the fast path, one roundtrip.
        let path = w0.write(vec![1u8; VALUE]).await;
        println!("writer 0 (good clock):  {path:?}");
        assert_eq!(path, WritePath::Fast);

        sim2.sleep_ns(2_000).await;

        // Interleave the two writers. Writer 1's skewed clock makes some of
        // its guesses stale: those writes take the slow path, lock readers
        // out via the timestamp lock, and re-execute with a provably fresh
        // timestamp. No value is lost and no read can oscillate.
        let mut slow = 0;
        let mut last = 0u8;
        for i in 0..12u8 {
            let p0 = w0.write(vec![2 * i; VALUE]).await;
            let p1 = w1.write(vec![100 + i; VALUE]).await;
            last = 100 + i;
            for (w, p) in [(0, p0), (1, p1)] {
                if p != WritePath::Fast {
                    slow += 1;
                    println!("  writer {w} write #{i}: {p:?} (stale guess resolved safely)");
                }
            }
            sim2.sleep_ns(1_000).await;
        }
        println!("slow path taken {slow} time(s) out of 24 writes");

        let out = w0.read().await;
        println!(
            "final read: value[0]={} stamp={} via {:?} in {} iteration(s)",
            out.value.value[0], out.value.stamp, out.path, out.iterations
        );
        let _ = last;
        println!(
            "whichever writer's stamp is higher wins; the register is linearizable either way"
        );
    });
}
