//! Examples live under `examples/examples/`.
