#!/usr/bin/env sh
# CI gate: formatting, lints (warnings are errors), then the tier-1 verify.
set -eu

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets (deny warnings)"
cargo clippy --all-targets -- -D warnings

echo "== cargo doc --no-deps (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

# The chaos suite already ran once above with the pinned quick set; this
# release-mode pass widens the sweep. SWARM_CHAOS_SEEDS controls seeds per
# (protocol, fault-plan) cell — export a bigger N for deeper local hunts
# (see TESTING.md).
echo "== chaos suite (release, SWARM_CHAOS_SEEDS=${SWARM_CHAOS_SEEDS:-8})"
SWARM_CHAOS_SEEDS="${SWARM_CHAOS_SEEDS:-8}" \
    cargo test --release -q -p swarm-tests --test chaos

# Perf smoke: quick fig5 single-threaded and a 2-thread fig8 sweep, volume-
# scaled, under generous wall-time budgets. Guards the event loop (fig5 runs
# full quick volume, ~4 s at the PR-4 baseline) and the threaded sweep
# driver from silent regressions; budgets are ~10x the expected times so
# only order-of-magnitude regressions (or hangs) trip them.
echo "== perf smoke (fig5 quick <60s; fig8 sweep, 2 threads, scaled, <120s)"
BIN_DIR="${CARGO_TARGET_DIR:-target}/release"
SWARM_BENCH_THREADS=1 timeout 60 "$BIN_DIR/fig5" > /dev/null
SWARM_BENCH_OPS_SCALE=0.05 SWARM_BENCH_THREADS=2 timeout 120 \
    "$BIN_DIR/fig8" > /dev/null

echo "CI OK"
