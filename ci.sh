#!/usr/bin/env sh
# CI gate: formatting, lints (warnings are errors), then the tier-1 verify.
set -eu

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets (deny warnings)"
cargo clippy --all-targets -- -D warnings

echo "== cargo doc --no-deps (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

# The chaos suite already ran once above with the pinned quick set; this
# release-mode pass widens the sweep. SWARM_CHAOS_SEEDS controls seeds per
# (protocol, fault-plan) cell — export a bigger N for deeper local hunts
# (see TESTING.md).
echo "== chaos suite (release, SWARM_CHAOS_SEEDS=${SWARM_CHAOS_SEEDS:-8})"
SWARM_CHAOS_SEEDS="${SWARM_CHAOS_SEEDS:-8}" \
    cargo test --release -q -p swarm-tests --test chaos

echo "CI OK"
