#!/usr/bin/env sh
# Staged CI gate.
#
#   ./ci.sh           full gate: fmt, clippy, debug tests, rustdoc lints,
#                     release build, release chaos sweep, perf smoke
#   ./ci.sh --quick   quick gate: fmt + clippy + debug tests only — no
#                     release binaries are built (runs on every push; the
#                     full gate runs as CI's second job, see
#                     .github/workflows/ci.yml)
#
# Every stage reports its wall time; a summary table prints at the end.
# Perf-smoke stages carry a wall-time budget (~10x the expected time, so
# only order-of-magnitude regressions or hangs trip them) and print
# measured vs. budget either way.
set -eu

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "usage: ci.sh [--quick]" >&2; exit 2 ;;
    esac
done

REPORT=""
record() { # record <name> <seconds>
    REPORT="${REPORT}$(printf '  %-18s %5ss' "$1" "$2")
"
}

stage() { # stage <name> <cmd...>
    _name=$1; shift
    echo "== $_name"
    _start=$(date +%s)
    "$@"
    _took=$(( $(date +%s) - _start ))
    echo "-- $_name: ${_took}s"
    record "$_name" "$_took"
}

perf_stage() { # perf_stage <name> <budget_seconds> <cmd...>
    _name=$1; _budget=$2; shift 2
    echo "== perf: $_name (budget ${_budget}s)"
    _start=$(date +%s)
    _rc=0
    timeout "$_budget" "$@" > /dev/null || _rc=$?
    _took=$(( $(date +%s) - _start ))
    if [ "$_rc" -eq 0 ]; then
        echo "-- perf $_name: measured ${_took}s of ${_budget}s budget"
        record "perf:$_name" "$_took"
    elif [ "$_rc" -eq 124 ]; then
        echo "FAIL perf $_name: measured >= ${_took}s (killed at budget); budget ${_budget}s" >&2
        exit 1
    else
        echo "FAIL perf $_name: exit code $_rc after ${_took}s (budget ${_budget}s)" >&2
        exit 1
    fi
}

stage fmt    cargo fmt --check
stage clippy cargo clippy --all-targets -- -D warnings
stage test   cargo test -q

if [ "$QUICK" -eq 1 ]; then
    echo
    echo "CI QUICK OK"
    printf '%s' "$REPORT"
    exit 0
fi

stage doc env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
stage build-release cargo build --release

# The chaos suite already ran once above with the pinned quick set; this
# release-mode pass widens the sweep. SWARM_CHAOS_SEEDS controls seeds per
# (protocol, fault-plan) cell — export a bigger N for deeper local hunts
# (see TESTING.md).
stage chaos-release env SWARM_CHAOS_SEEDS="${SWARM_CHAOS_SEEDS:-8}" \
    cargo test --release -q -p swarm-tests --test chaos

# Mid-migration chaos: online splits with source crashes, destination
# crashes (abort path), and membership-driven rebuilds, each replayed
# bit-identically across all three ShardModes. The same SWARM_CHAOS_SEEDS
# knob widens the per-scenario seed sweep (default 8 here vs the suite's
# debug-mode floor of 4).
stage reshard-chaos env SWARM_CHAOS_SEEDS="${SWARM_CHAOS_SEEDS:-8}" \
    cargo test --release -q -p swarm-tests --test reshard_chaos

# Anti-entropy chaos: repair armed under drop windows, every digest
# strategy, repair composed with an online split — bit-identical across
# all three ShardModes, plus the divergence-persists-without /
# heals-with ground truth. Same SWARM_CHAOS_SEEDS knob.
stage repair-chaos env SWARM_CHAOS_SEEDS="${SWARM_CHAOS_SEEDS:-8}" \
    cargo test --release -q -p swarm-tests --test repair_chaos

# Perf smoke: quick fig5 single-threaded, a 2-thread fig8 sweep, and the
# sharded scale bench, all volume-scaled, under generous budgets. Guards
# the event loop (fig5 runs full quick volume), the threaded sweep driver,
# and the one-Sim-per-shard driver from silent regressions. bench_shards
# runs twice — single shard thread, then SWARM_SHARD_THREADS=2 — so the
# threaded path (scoped threads, work stealing, shard-order merge) gets a
# perf-budgeted exercise; its stdout is bit-identical either way.
BIN_DIR="${CARGO_TARGET_DIR:-target}/release"
perf_stage fig5 60 env SWARM_BENCH_THREADS=1 "$BIN_DIR/fig5"
perf_stage fig8 120 env SWARM_BENCH_OPS_SCALE=0.05 SWARM_BENCH_THREADS=2 "$BIN_DIR/fig8"
perf_stage bench_shards 120 env SWARM_BENCH_OPS_SCALE=0.05 SWARM_BENCH_THREADS=2 \
    SWARM_SHARD_THREADS=1 "$BIN_DIR/bench_shards"
perf_stage bench_shards-mt 120 env SWARM_BENCH_OPS_SCALE=0.05 SWARM_BENCH_THREADS=1 \
    SWARM_SHARD_THREADS=2 "$BIN_DIR/bench_shards"
# The elastic-split timeline: wall time is dominated by the fixed 140 ms
# simulated horizon (two cells), so the volume knob mainly shrinks the
# preloaded keyspace; the split still has to seal or the bench fails.
perf_stage bench_reshard 60 env SWARM_BENCH_OPS_SCALE=0.05 SWARM_BENCH_THREADS=2 \
    "$BIN_DIR/bench_reshard"
# Anti-entropy convergence: three digest-strategy cells over the quick
# 2^14 keyspace (unscaled — the bloom-vs-full byte assertion needs a
# keyspace big enough for digests to pay off). Asserts every cell
# converges to zero residual divergence and BloomBuckets moves fewer
# bytes than the full exchange.
perf_stage bench_repair 60 env SWARM_BENCH_THREADS=3 "$BIN_DIR/bench_repair"
# Tail smoke: the quick {no-hedge, hedge} x {static, adaptive} x
# {calm, spike} sweep. The binary asserts in-process that hedged p99 is
# >= 2x below unhedged under the canonical delay-spike plan with <= 5%
# median regression, and that the hedge budget balances — so this stage
# failing means the tail optimization regressed, not just a slow host.
perf_stage tail-smoke 120 env SWARM_BENCH_THREADS=2 "$BIN_DIR/bench_tail"
# Scenario smoke: the YCSB A-F x {static, flash-crowd} x 2-protocol (+ TTL
# churn + bimodal values) scenario sweep at smoke volume, run twice with
# different thread knobs. The binary validates every report's JSON before
# it touches disk (swarm_bench::validate_json); this stage additionally
# asserts the report files exist, are non-empty, and are byte-identical
# across the two runs — the determinism contract of docs/SCENARIOS.md.
perf_stage scenario-smoke 120 sh -c '
    set -eu
    rm -rf target/reports target/reports.first
    SWARM_BENCH_OPS_SCALE=0.05 SWARM_BENCH_THREADS=2 "$0/bench_scenarios" \
        > target/scenario_smoke_a.out
    mv target/reports target/reports.first
    SWARM_BENCH_OPS_SCALE=0.05 SWARM_BENCH_THREADS=1 SWARM_SHARD_THREADS=2 \
        "$0/bench_scenarios" > target/scenario_smoke_b.out
    diff target/scenario_smoke_a.out target/scenario_smoke_b.out
    diff -r target/reports.first target/reports
    [ "$(ls target/reports/*.json | wc -l)" -ge 14 ]
    for f in target/reports/ycsb_a_static target/reports/ycsb_e_flash \
             target/reports/ttl_churn target/reports/bigval; do
        [ -s "$f.json" ] && [ -s "$f.html" ]
    done
    rm -rf target/reports.first
' "$BIN_DIR"

echo
echo "CI OK"
printf '%s' "$REPORT"
