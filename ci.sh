#!/usr/bin/env sh
# CI gate: formatting, lints (warnings are errors), then the tier-1 verify.
set -eu

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets (deny warnings)"
cargo clippy --all-targets -- -D warnings

echo "== cargo doc --no-deps (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "CI OK"
