//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the API surface `benches/micro.rs` uses — `criterion_group!`,
//! `criterion_main!`, `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{throughput, bench_function, finish}`, and
//! `Bencher::{iter, iter_batched}` — with a plain adaptive wall-clock timing
//! loop instead of criterion's statistical machinery. Each benchmark warms
//! up briefly, then runs until ~100 ms of measured time has accumulated and
//! reports mean ns/iter (plus MiB/s when a byte throughput is set).
//!
//! Pass `--quick` (or set `CRITERION_QUICK=1`) to run each benchmark for
//! only a handful of iterations — enough for smoke tests.

use std::time::{Duration, Instant};

/// How per-iteration setup cost relates to the routine (ignored; kept for
/// API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units for reporting throughput alongside time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0")
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    fn new() -> Self {
        let budget = if quick_mode() {
            Duration::from_millis(2)
        } else {
            Duration::from_millis(100)
        };
        Bencher {
            total: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Times `routine` in batches until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut batch = 1u64;
        while self.total < self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.total += start.elapsed();
            self.iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        while self.total < self.budget {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{id:<40} (no iterations)");
            return;
        }
        let ns = self.total.as_nanos() as f64 / self.iters as f64;
        let mut line = format!("{id:<40} {ns:>14.1} ns/iter");
        if let Some(Throughput::Bytes(b)) = throughput {
            let mib_s = b as f64 / (ns / 1e9) / (1024.0 * 1024.0);
            line.push_str(&format!("  {mib_s:>10.1} MiB/s"));
        }
        if let Some(Throughput::Elements(e)) = throughput {
            let elem_s = e as f64 / (ns / 1e9);
            line.push_str(&format!("  {elem_s:>10.0} elem/s"));
        }
        println!("{line}");
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(id, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _c: self,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("  {}", id.into()), self.throughput);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(64));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
