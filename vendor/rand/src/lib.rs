//! Minimal offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly what the workspace consumes: [`rngs::SmallRng`] seeded
//! via [`SeedableRng::seed_from_u64`], and [`Rng::random`] /
//! [`Rng::random_range`] for `u64`, `usize`, `f64`, and `bool`.
//!
//! `SmallRng` is xoshiro256++ (the same algorithm the real `rand` uses for
//! `SmallRng` on 64-bit targets), seeded through SplitMix64 exactly as
//! `rand_core` does, so statistical quality matches the real crate. Streams
//! are *not* guaranteed to be bit-identical to upstream `rand`; the
//! simulator only requires self-consistent determinism per seed.

use std::ops::Range;

/// Core trait: a source of `u64` randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the subset of the
/// real crate's `StandardUniform` distribution that the workspace uses).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sampling from `[0, n)` via Lemire's widening-multiply method.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n || lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + bounded_u64(rng, self.end - self.start)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + bounded_u64(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<u32> for Range<u32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + bounded_u64(rng, (self.end - self.start) as u64) as u32
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// rand 0.8 spelling, kept so older call sites keep compiling.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirrors `rand::SeedableRng`, restricted to `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real `SmallRng` on 64-bit.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
        }
        // A width-1 range must always return its only member.
        assert_eq!(r.random_range(5u64..6), 5);
    }

    #[test]
    fn bounded_sampling_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.random_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {c}");
        }
    }
}
