//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro over functions whose arguments are drawn from
//! strategies (`x in 0u64..100`), [`any`] for primitive types and
//! [`prop::sample::Index`], tuple strategies, [`collection::vec`],
//! [`Strategy::prop_map`], [`prop_oneof!`], [`option::of`], and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate: cases are generated from a fixed seed
//! (deterministic across runs), failing cases are **not shrunk**, and the
//! failing inputs are reported via the panic message of the underlying
//! `assert!`. The number of cases per property is 64, overridable with the
//! `PROPTEST_CASES` environment variable.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`, `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of values of one type.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (`proptest`'s `prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// A uniform choice between boxed strategies of one value type — what
/// [`prop_oneof!`] builds. (The real crate supports weighted arms; the
/// tests here only use uniform ones.)
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Boxes a strategy for use in a [`Union`] (the `prop_oneof!` expansion).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// `proptest::prop_oneof!`: picks one of the arm strategies uniformly per
/// generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($s)),+])
    };
}

pub mod option {
    //! `proptest::option`: strategies for `Option<T>`.
    use super::{Strategy, TestRng};

    /// The result of [`of`].
    pub struct OptionStrategy<S>(S);

    /// Generates `Some(inner)` half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Values with a canonical "any value of the type" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy producing any value of `T` — the result of [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32((rng.below(0x7F - 0x20) + 0x20) as u32).unwrap()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = self.end as u64 - self.start as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as u64 - *self.start() as u64) + 1;
                self.start() + rng.below(width) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prop {
    pub mod sample {
        use crate::{Arbitrary, TestRng};

        /// An index into a collection of not-yet-known size.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Maps this raw sample onto `0..len`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

/// Number of cases to run per property.
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::cases();
            // Per-test base seed: stable across runs, distinct across tests.
            let __base = {
                let name = stringify!($name);
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in name.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                h
            };
            for __case in 0..__cases {
                let mut __rng =
                    $crate::TestRng::new(__base.wrapping_add(__case.wrapping_mul(0x9E37_79B9)));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

/// Like `assert!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Like `assert_ne!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0u8..=255, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            let _ = y; // all u8 values legal
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }

        #[test]
        fn tuples_and_index(pair in (any::<bool>(), 1u64..4), idx in any::<prop::sample::Index>()) {
            let (_, n) = pair;
            prop_assert!(idx.index(n as usize) < n as usize);
        }

        #[test]
        fn map_oneof_and_option(
            v in prop_oneof![(0u64..4).prop_map(|x| x * 10), 100u64..104],
            o in crate::option::of(5u8..7),
        ) {
            prop_assert!(matches!(v, 0 | 10 | 20 | 30 | 100..=103));
            if let Some(x) = o {
                prop_assert!((5..7).contains(&x));
            }
        }
    }
}
