//! Work-stealing sweep driver for independent simulation cells.
//!
//! Every long experiment is a sweep over independent `(seed, config)` cells:
//! each cell builds its own single-threaded, seeded [`swarm_sim::Sim`] and is
//! bit-for-bit deterministic in isolation. That makes the sweep embarrassingly
//! parallel: cells run on OS threads, each worker stealing the next
//! not-yet-started cell from a shared counter, and results are merged in
//! *cell order* — so the output of a parallel sweep is byte-identical to the
//! sequential one, whatever the thread count or scheduling.
//!
//! Thread count comes from `SWARM_BENCH_THREADS` (default: all cores). The
//! cell closure must return only `Send` data (row strings, summary numbers);
//! the `Sim` and everything built on it stay confined to the worker thread.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The sweep thread count: `SWARM_BENCH_THREADS` if set (a positive
/// integer), otherwise the number of available cores. An unparsable value
/// is ignored with a one-time warning (the shared `swarm_kv::env_knob`
/// convention, same as `SWARM_BENCH_OPS_SCALE` and `SWARM_CHAOS_SEEDS`).
pub fn sweep_threads() -> usize {
    swarm_kv::env_knob("SWARM_BENCH_THREADS", "a positive integer like 8", |n| {
        *n >= 1
    })
    .unwrap_or_else(default_threads)
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Whether the oversubscription warning already fired (once per process,
/// like the env-knob warnings).
static OVERSUBSCRIBE_WARNED: AtomicBool = AtomicBool::new(false);

/// Caps a two-level `(cell_threads, shard_threads)` request so the product
/// never oversubscribes `cores`. Shard threads win (they parallelize
/// *inside* a cell, so they help even when a sweep has few cells); cell
/// threads then take whatever cores remain. Both results stay >= 1.
pub fn cap_thread_product(cell: usize, shard: usize, cores: usize) -> (usize, usize) {
    let cores = cores.max(1);
    let shard_c = shard.clamp(1, cores);
    let cell_c = cell.clamp(1, (cores / shard_c).max(1));
    (cell_c, shard_c)
}

/// The two-level parallelism of a sharded sweep: `SWARM_BENCH_THREADS`
/// sweep cells × `SWARM_SHARD_THREADS` shard threads per cell, capped so
/// the product does not exceed the available cores (a 16-cell × 16-shard
/// request on an 8-core host would otherwise run 256 OS threads and lose
/// to scheduling thrash). Warns once when the cap bites.
pub fn composed_threads() -> (usize, usize) {
    let cell = sweep_threads();
    let shard = swarm_kv::shard_threads();
    let cores = default_threads();
    let (cell_c, shard_c) = cap_thread_product(cell, shard, cores);
    if (cell_c, shard_c) != (cell, shard) && !OVERSUBSCRIBE_WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "warn: capping sweep x shard threads {cell}x{shard} to {cell_c}x{shard_c} \
             ({cores} cores available)"
        );
    }
    (cell_c, shard_c)
}

/// Runs `run` over every cell on up to [`sweep_threads`] worker threads and
/// returns the results in cell order.
pub fn sweep<T, R, F>(cells: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    sweep_on(sweep_threads(), cells, run)
}

/// [`sweep`] with an explicit thread count (testable without the
/// environment). `threads <= 1` runs strictly sequentially on the calling
/// thread; either way results come back in cell order.
pub fn sweep_on<T, R, F>(threads: usize, cells: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.min(cells.len());
    if threads <= 1 {
        return cells.iter().map(run).collect();
    }
    // Work stealing via a shared claim counter: finished workers pull the
    // next unstarted cell, so long and short cells balance automatically.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let out = run(cell);
                *slots[i].lock().expect("sweep slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("sweep slot poisoned")
                .expect("every claimed cell stores a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_cell_order() {
        let cells: Vec<u64> = (0..37).collect();
        let out = sweep_on(4, &cells, |&c| c * 10);
        assert_eq!(out, cells.iter().map(|c| c * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential_for_simulation_cells() {
        // Each cell runs its own seeded Sim; the parallel sweep must produce
        // exactly the sequential outputs, cell for cell.
        let cells: Vec<u64> = (0..12).collect();
        let run = |&seed: &u64| {
            let sim = swarm_sim::Sim::new(seed);
            let s = sim.clone();
            let end = sim.block_on(async move {
                for _ in 0..50 {
                    let d = s.rand_range(1, 1_000);
                    s.sleep_ns(d).await;
                }
                s.now()
            });
            (seed, end, sim.counters().events_scheduled)
        };
        let sequential = sweep_on(1, &cells, run);
        let parallel = sweep_on(4, &cells, run);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn zero_and_one_thread_degenerate_to_sequential() {
        let cells = vec![1u32, 2, 3];
        assert_eq!(sweep_on(0, &cells, |&c| c), vec![1, 2, 3]);
        assert_eq!(sweep_on(1, &cells, |&c| c), vec![1, 2, 3]);
    }

    #[test]
    fn thread_product_cap_prefers_shard_threads() {
        // Within budget: untouched.
        assert_eq!(cap_thread_product(2, 4, 8), (2, 4));
        assert_eq!(cap_thread_product(1, 1, 1), (1, 1));
        // Over budget: shard threads keep up to all cores, cells get the
        // integer remainder of the budget.
        assert_eq!(cap_thread_product(16, 16, 8), (1, 8));
        assert_eq!(cap_thread_product(8, 3, 8), (2, 3));
        assert_eq!(cap_thread_product(4, 2, 4), (2, 2));
        // Degenerate inputs never produce a zero thread count.
        assert_eq!(cap_thread_product(0, 0, 8), (1, 1));
        assert_eq!(cap_thread_product(5, 9, 0), (1, 1));
        // The capped product never exceeds the core budget.
        for cell in 1..=20 {
            for shard in 1..=20 {
                for cores in 1..=12 {
                    let (c, s) = cap_thread_product(cell, shard, cores);
                    assert!(c >= 1 && s >= 1);
                    assert!(c * s <= cores, "{cell}x{shard}@{cores} -> {c}x{s}");
                }
            }
        }
    }

    #[test]
    fn composed_threads_is_within_budget() {
        // Whatever the environment says, the composition must come back
        // usable: both levels >= 1 and the product within the core budget
        // (unless a single level already uses every core).
        let (cell, shard) = composed_threads();
        let cores = default_threads();
        assert!(cell >= 1 && shard >= 1);
        assert!(cell * shard <= cores);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let cells: Vec<u8> = Vec::new();
        let out: Vec<u8> = sweep_on(8, &cells, |&c| c);
        assert!(out.is_empty());
    }
}
