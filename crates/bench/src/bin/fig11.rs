//! Figure 11: latency and throughput of a SWARM-KV client around the crash
//! of a memory node (at t = 0 in the plot; mid-run here). Availability is
//! uninterrupted: operations merely widen their quorums to additional
//! replicas; latency rises briefly (timeouts + lost in-place data +
//! lost unanimity) and recovers as subsequent writes rebuild state (§7.7).

use swarm_bench::{build, run_workload, write_csv, ExpParams, Protocol};
use swarm_fabric::NodeId;
use swarm_sim::{Sim, NANOS_PER_MILLI};
use swarm_workload::WorkloadSpec;

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    let p = ExpParams {
        n_keys: if quick { 10_000 } else { 100_000 },
        warmup_ops: 0,
        measure_ops: u64::MAX / 2,
        concurrency: 2,
        ..Default::default()
    };
    let crash_at = 100 * NANOS_PER_MILLI;
    let end_at = 400 * NANOS_PER_MILLI;

    let sim = Sim::new(p.seed);
    let bed = build(&sim, Protocol::SafeGuess, &p);
    bed.cluster
        .membership()
        .expect("SWARM-KV has a membership service")
        .watch_until(end_at);
    let c2 = bed.cluster.clone();
    sim.schedule_at(crash_at, move |_| {
        c2.crash_node(NodeId(0));
        eprintln!("[sim] crashed memory node 0");
    });

    let mut rc = p.run_config();
    rc.deadline_ns = Some(end_at);
    rc.bucket_ns = Some(2 * NANOS_PER_MILLI);
    let wl = p.workload(WorkloadSpec::A);
    let stats = run_workload(&sim, &bed.clients, &wl, &rc);

    println!("Figure 11: SWARM-KV around a memory-node crash (t=0 at the crash)");
    println!("{:>10} {:>12} {:>12}", "t_ms", "kops", "avg_lat_us");
    let series = stats.series.expect("time series enabled");
    let mut rows = Vec::new();
    let mut min_tput = f64::MAX;
    let mut before = 0.0;
    let mut after_spike = 0.0_f64;
    for (start, count, mean_lat) in series.buckets() {
        let t_ms = (start as f64 - crash_at as f64) / 1e6;
        let kops = count as f64 / (series.bucket_ns() as f64 / 1e9) / 1e3;
        if count > 0 && start > 10 * NANOS_PER_MILLI && start < end_at - 4 * NANOS_PER_MILLI {
            if start < crash_at {
                before = kops;
            } else {
                min_tput = min_tput.min(kops);
                after_spike = after_spike.max(mean_lat / 1e3);
            }
        }
        if (-40.0..=240.0).contains(&t_ms) {
            println!("{:>10.1} {:>12.1} {:>12.2}", t_ms, kops, mean_lat / 1e3);
        }
        rows.push(format!("{t_ms:.2},{kops:.2},{:.3}", mean_lat / 1e3));
    }
    write_csv("fig11", "timeline", "t_ms,kops,avg_latency_us", &rows);
    println!(
        "\nthroughput before crash {:.0} kops, minimum after {:.0} kops, peak avg latency {:.1} us",
        before, min_tput, after_spike
    );
    println!("paper: no downtime; latency spikes briefly, recovers within seconds;");
    println!("       synchronous systems (FUSEE) take tens of ms of unavailability instead");
}
