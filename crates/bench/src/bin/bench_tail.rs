//! Tail-latency bench (beyond the paper): p99/p999 under delay spikes,
//! with and without hedged quorum requests and adaptive protocol routing.
//!
//! Eight cells — {calm, spike} × {unhedged, hedged} × {static, adaptive} —
//! run the identical YCSB B phase on their own seeded `Sim`s. The spike
//! plan injects rotating one-node delay bursts (+15 µs one-way, 120 µs
//! long, every 400 µs, node `i % 4`): an op whose optimistic quorum
//! includes the spiked node stalls until the widen deadline fires, so the
//! unhedged tail sits at the widen floor while the median stays healthy.
//! Hedged cells instead send one extra copy to a spare quorum member after
//! the per-destination p99-tracked delay (`RttTracker`) and complete as
//! soon as either copy answers, pulling the tail back near the healthy
//! p99. Adaptive cells additionally arm the per-key contention router
//! (`AdaptiveConfig`); YCSB B is contention-light, so they double as the
//! "routing costs nothing when keys are cold" control.
//!
//! The widen floor is raised to 20 µs in *all* cells so the hedged-vs-
//! unhedged gap is attributable to hedging alone, not to a config skew.
//!
//! **stdout is the deterministic report** (simulated metrics only — table,
//! per-cell JSON lines, CSVs; byte-identical across reruns and
//! `SWARM_BENCH_THREADS`/`SWARM_SHARD_THREADS`). Wall-clock seconds go to
//! **stderr** and `*_wall.csv`. Default is a quick 40 K-op run per cell;
//! `--full` measures 400 K ops per cell (pinned in `BENCH_pr9.json`).

use std::time::Instant;

use swarm_bench::{
    composed_threads, env_scaled_keys, run_workload, sweep_on, write_csv, ExpParams, Protocol,
};
use swarm_fabric::{FaultPlan, NodeId, TrafficStats};
use swarm_kv::{
    hedge_config, AdaptiveConfig, CacheCapacity, ClusterConfig, RunStats, StoreBuilder,
};
use swarm_sim::{Nanos, Sim, NANOS_PER_MILLI};
use swarm_workload::{OpType, WorkloadSpec};

/// Minimum wait before a stalled quorum widens, all cells (see module doc).
const WIDEN_FLOOR_NS: Nanos = 20_000;
/// One-way extra latency on the spiked node. Must exceed the widen floor
/// roundtrip so a spiked replica never answers before the widen path does.
const SPIKE_EXTRA_NS: Nanos = 15_000;
/// Length of each delay burst.
const SPIKE_LEN_NS: Nanos = 120_000;
/// Start-to-start spacing of consecutive bursts (rotating over the nodes).
const SPIKE_EVERY_NS: Nanos = 400_000;
/// First burst: past bulk load, inside the prewarm/warm-up phase.
const SPIKE_FROM_NS: Nanos = 2 * NANOS_PER_MILLI;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Plan {
    Calm,
    Spike,
}

#[derive(Clone, Copy)]
struct Cell {
    plan: Plan,
    hedged: bool,
    adaptive: bool,
}

impl Cell {
    fn name(&self) -> String {
        format!(
            "{}/{}/{}",
            match self.plan {
                Plan::Calm => "calm",
                Plan::Spike => "spike",
            },
            if self.hedged { "hedged" } else { "unhedged" },
            if self.adaptive { "adaptive" } else { "static" },
        )
    }
}

struct CellResult {
    cell: Cell,
    stats: RunStats,
    traffic: TrafficStats,
    wall_secs: f64,
}

/// `count` rotating one-node delay bursts starting at [`SPIKE_FROM_NS`].
fn spike_plan(nodes: usize, count: u64) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for i in 0..count {
        plan = plan.delay_spike(
            SPIKE_FROM_NS + i * SPIKE_EVERY_NS,
            NodeId(i as usize % nodes),
            SPIKE_EXTRA_NS,
            SPIKE_LEN_NS,
        );
    }
    plan
}

fn run_cell(p: &ExpParams, cell: Cell, spike_count: u64) -> CellResult {
    let wall = Instant::now();
    let sim = Sim::new(p.seed);
    // The widen floor is set through the full cluster config *before* the
    // fluent knobs (which write into it), so every `ExpParams` field still
    // applies on top.
    let mut cc = ClusterConfig::default();
    cc.quorum.widen_timeout_ns = WIDEN_FLOOR_NS;
    let mut builder = StoreBuilder::new(Protocol::SafeGuess)
        .cluster_config(cc)
        .value_size(p.value_size)
        .replicas(p.replicas)
        .max_clients(p.clients)
        .meta_bufs(p.meta_bufs.unwrap_or(p.clients))
        .inplace(p.inplace)
        .cache(CacheCapacity::Unbounded);
    if cell.hedged {
        builder = builder.hedge(hedge_config());
    }
    if cell.adaptive {
        builder = builder.adaptive(AdaptiveConfig::on());
    }
    let cluster = builder.build_cluster(&sim);
    let wl = p.workload(WorkloadSpec::B);
    cluster.load_keys(env_scaled_keys(p.n_keys), |k| wl.value_for(k, 0));
    if cell.plan == Plan::Spike {
        cluster
            .fabric()
            .apply_fault_plan(&spike_plan(4, spike_count));
    }
    let clients: Vec<_> = (0..p.clients).map(|i| cluster.client(i)).collect();
    let mut rc = p.run_config();
    rc.prewarm_keys = Some(p.n_keys);
    let stats = run_workload(&sim, &clients, &wl, &rc);
    CellResult {
        cell,
        stats,
        traffic: cluster.fabric().stats(),
        wall_secs: wall.elapsed().as_secs_f64(),
    }
}

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    let p = ExpParams {
        n_keys: 1 << 14,
        warmup_ops: if quick { 10_000 } else { 50_000 },
        measure_ops: if quick { 40_000 } else { 400_000 },
        concurrency: 1,
        ..Default::default()
    };
    // Bursts must outlast the run (a tail that goes calm near the end would
    // dilute the unhedged p99): ~1.2 ops/µs aggregate puts the quick run
    // near 45 ms; schedule generously past both modes' horizons.
    let spike_count: u64 = if quick { 500 } else { 3_000 };
    let (cell_threads, _) = composed_threads();

    let cells: Vec<Cell> = [Plan::Calm, Plan::Spike]
        .iter()
        .flat_map(|&plan| {
            [(false, false), (true, false), (false, true), (true, true)]
                .iter()
                .map(move |&(hedged, adaptive)| Cell {
                    plan,
                    hedged,
                    adaptive,
                })
        })
        .collect();
    eprintln!(
        "bench_tail: {cell_threads} sweep thread(s), {} cells",
        cells.len()
    );
    let mut results = sweep_on(cell_threads, &cells, |&cell| {
        run_cell(&p, cell, spike_count)
    });

    println!(
        "bench_tail: SWARM-KV tail latency, YCSB B over {} keys, {} clients, widen floor {} us",
        env_scaled_keys(p.n_keys),
        p.clients,
        WIDEN_FLOOR_NS / 1_000
    );
    println!(
        "spike plan: +{} us one-way on node i%4, {} us bursts every {} us",
        SPIKE_EXTRA_NS / 1_000,
        SPIKE_LEN_NS / 1_000,
        SPIKE_EVERY_NS / 1_000
    );
    println!(
        "{:>22} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7}",
        "cell", "get_p50", "get_p99", "get_p999", "upd_p99", "fired", "won", "dup"
    );
    let mut rows = Vec::new();
    for r in &mut results {
        let (mut get, mut upd) = (r.stats.lat(OpType::Get), r.stats.lat(OpType::Update));
        let t = &r.traffic;
        println!(
            "{:>22} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>7} {:>7} {:>7}",
            r.cell.name(),
            get.median() as f64 / 1e3,
            get.percentile(99.0) as f64 / 1e3,
            get.p999() as f64 / 1e3,
            upd.percentile(99.0) as f64 / 1e3,
            t.hedges_fired,
            t.hedges_won,
            t.duplicates_discarded
        );
        rows.push(format!(
            "{},{},{},{},{},{},{},{}",
            r.cell.name(),
            get.median(),
            get.percentile(99.0),
            get.p999(),
            upd.percentile(99.0),
            t.hedges_fired,
            t.hedges_won,
            t.duplicates_discarded
        ));
    }
    write_csv(
        "bench_tail",
        "cells",
        "cell,get_p50_ns,get_p99_ns,get_p999_ns,update_p99_ns,hedges_fired,hedges_won,duplicates_discarded",
        &rows,
    );

    // Machine-readable per-cell summaries (ROADMAP item 3's report harness
    // convention): simulated metrics only, so they diff clean like the table.
    for r in &mut results {
        let (mut get, mut upd) = (r.stats.lat(OpType::Get), r.stats.lat(OpType::Update));
        println!(
            r#"{{"bench":"bench_tail","cell":"{}","plan":"{}","hedge":{},"adaptive":{},"get":{},"update":{},"hedges_fired":{},"hedges_won":{},"duplicates_discarded":{}}}"#,
            r.cell.name(),
            if r.cell.plan == Plan::Spike {
                "spike"
            } else {
                "calm"
            },
            r.cell.hedged,
            r.cell.adaptive,
            get.summary_json(),
            upd.summary_json(),
            r.traffic.hedges_fired,
            r.traffic.hedges_won,
            r.traffic.duplicates_discarded
        );
    }

    // The headline claims, asserted on every run (quick and full).
    let summaries: Vec<(Cell, Nanos, Nanos)> = results
        .iter_mut()
        .map(|r| {
            let mut get = r.stats.lat(OpType::Get);
            (r.cell, get.median(), get.percentile(99.0))
        })
        .collect();
    let find = |plan: Plan, hedged: bool, adaptive: bool| {
        summaries
            .iter()
            .find(|(c, _, _)| c.plan == plan && c.hedged == hedged && c.adaptive == adaptive)
            .expect("all eight cells ran")
    };
    for &adaptive in &[false, true] {
        let (_, _, un99) = find(Plan::Spike, false, adaptive);
        let (_, _, he99) = find(Plan::Spike, true, adaptive);
        assert!(
            2 * he99 <= *un99,
            "hedging must at least halve the spiked get p99 (adaptive={adaptive}: {he99} vs {un99} ns)"
        );
        for &plan in &[Plan::Calm, Plan::Spike] {
            let (_, un50, _) = find(plan, false, adaptive);
            let (_, he50, _) = find(plan, true, adaptive);
            assert!(
                *he50 as f64 <= *un50 as f64 * 1.05,
                "hedging must not regress the median by more than 5% ({he50} vs {un50} ns)"
            );
        }
    }
    for r in &results {
        let t = &r.traffic;
        if r.cell.hedged {
            assert_eq!(
                t.hedges_won + t.duplicates_discarded,
                t.hedges_fired,
                "{}: every fired hedge settles exactly once",
                r.cell.name()
            );
        } else {
            assert_eq!(
                (t.hedges_fired, t.hedges_won, t.duplicates_discarded),
                (0, 0, 0),
                "{}: disabled hedging must leave the counters untouched",
                r.cell.name()
            );
        }
    }
    let spiked_hedged = results
        .iter()
        .find(|r| r.cell.plan == Plan::Spike && r.cell.hedged && !r.cell.adaptive)
        .expect("all eight cells ran");
    assert!(
        spiked_hedged.traffic.hedges_fired > 0,
        "the spiked hedged cell must actually hedge"
    );

    println!("\nexpectation: the spike parks unhedged stragglers at the widen floor, so the");
    println!(
        "unhedged spiked p99 sits near {} us while the median stays healthy; hedged",
        WIDEN_FLOOR_NS / 1_000
    );
    println!("cells re-issue to a spare replica after the tracked per-node p99 and pull the");
    println!("tail back near the calm p99 at the cost of a small duplicate-message budget.");
    println!("adaptive routing stays quiet on this contention-light mix (same numbers), ");
    println!("demonstrating it costs nothing on cold keys.");

    for r in &results {
        eprintln!("  wall {}: {:.3}s", r.cell.name(), r.wall_secs);
    }
    write_csv(
        "bench_tail",
        "wall",
        "cell,wall_secs",
        &results
            .iter()
            .map(|r| format!("{},{:.4}", r.cell.name(), r.wall_secs))
            .collect::<Vec<_>>(),
    );
}
