//! Table 3: resource consumption — per-client CPU utilization, cache size,
//! IO bandwidth, and disaggregated-memory footprint — for 1 M keys, 1 KiB
//! values, YCSB B, 4 clients at 200 kops each.
//!
//! Memory is the modeled live footprint (rings are recycled storage, as the
//! paper's GC would reclaim them); CPU follows the polling-client model:
//! a client core is busy for the whole operation (issue + poll) plus
//! per-op application work.

use swarm_bench::{run_system, write_csv, ExpParams, Protocol};
use swarm_sim::NANOS_PER_SEC;
use swarm_workload::WorkloadSpec;

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    let n_keys_model = 1_000_000u64; // Table 3's accounting keyspace
    let p0 = ExpParams {
        n_keys: if quick { 50_000 } else { 1_000_000 },
        value_size: 1024,
        warmup_ops: if quick { 20_000 } else { 200_000 },
        measure_ops: if quick { 80_000 } else { 800_000 },
        ..Default::default()
    };
    let pace_ns = 5_000; // 200 kops per client
    println!("Table 3: resource consumption (1 KiB values, 4 clients x 200 kops, YCSB B)");
    println!(
        "{:<10} {:>7} {:>11} {:>10} {:>12}",
        "system", "CPU%", "cache_MiB", "IO_Gbps", "mem_GiB"
    );
    let mut rows = Vec::new();
    for sys in Protocol::all() {
        let p = p0.clone();
        let (stats, _, bed) = run_system(p.seed, sys, &p, WorkloadSpec::B, |rc| {
            rc.pace_ns = Some(pace_ns);
        });
        let dur_ns = (stats.end_ns - stats.start_ns).max(1);

        // CPU%: polling clients are busy for issue + poll + app work.
        let mut lat_sum = 0.0;
        let mut lat_n = 0u64;
        for h in stats.latency.values() {
            lat_sum += h.mean() * h.len() as f64;
            lat_n += h.len() as u64;
        }
        let avg_lat = lat_sum / lat_n.max(1) as f64;
        let rate_per_client = NANOS_PER_SEC as f64 / pace_ns as f64;
        let cpu_pct =
            (rate_per_client * (avg_lat + 1_000.0) / NANOS_PER_SEC as f64 * 100.0).min(100.0);

        // Cache: entries * modeled entry bytes, for the 1M-key keyspace.
        let entry_bytes = if sys == Protocol::SafeGuess { 32 } else { 24 };
        let cache_mib = n_keys_model as f64 * entry_bytes as f64 / (1 << 20) as f64;

        // IO: fabric bytes + index bytes over the measured window, scaled to
        // the full 800 kops rate. (FUSEE's model folds index cost into its
        // own roundtrips, so its index_bytes is 0.)
        let fabric_bytes = bed.cluster.fabric().stats().bytes;
        let io_gbps = (fabric_bytes + bed.cluster.index_bytes()) as f64 * 8.0 / dur_ns as f64;

        // Disaggregated memory: modeled per-key footprint x 1M keys.
        let per_key = bed.cluster.modeled_bytes_per_key();
        let mem_gib = per_key as f64 * n_keys_model as f64 / (1u64 << 30) as f64;

        println!(
            "{:<10} {:>7.1} {:>11.1} {:>10.2} {:>12.2}",
            sys.name(),
            cpu_pct,
            cache_mib,
            io_gbps,
            mem_gib
        );
        rows.push(format!(
            "{},{cpu_pct:.1},{cache_mib:.1},{io_gbps:.2},{mem_gib:.2}",
            sys.name()
        ));
    }
    write_csv(
        "table3",
        "resources",
        "system,cpu_pct,cache_mib,io_gbps,mem_gib",
        &rows,
    );
    println!("\npaper: RAW 46.6%/22.9/6.55/0.95, DM-ABD 99.0%/22.9/6.99/3.00,");
    println!("       SWARM-KV 61.3%/30.5/7.41/4.06, FUSEE 74.2%/22.9/8.15/2.04");
}
