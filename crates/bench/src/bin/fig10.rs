//! Figure 10: impact of the replication factor (3, 5, 7 replicas per key)
//! on median latency (whiskers P1/P99) and per-client throughput, SWARM-KV
//! vs DM-ABD, YCSB B. With only 4 memory nodes, 5 and 7 replicas co-locate
//! some replicas (§7.5).

use swarm_bench::{run_system, write_csv, ExpParams, Protocol};
use swarm_workload::{OpType, WorkloadSpec};

fn main() {
    let p0 = ExpParams {
        n_keys: 20_000,
        warmup_ops: 20_000,
        measure_ops: 60_000,
        ..Default::default()
    }
    .apply_cli();
    println!("Figure 10: replication factor sweep, YCSB B");
    println!(
        "{:<10} {:>9} {:>18} {:>20} {:>12}",
        "system", "replicas", "get med(p1/p99)us", "update med(p1/p99)us", "kops/client"
    );
    for sys in [Protocol::SafeGuess, Protocol::Abd] {
        let mut rows = Vec::new();
        for replicas in [3usize, 5, 7] {
            let p = ExpParams {
                replicas,
                ..p0.clone()
            };
            let (stats, _, _) = run_system(p.seed, sys, &p, WorkloadSpec::B, |_| {});
            let mut g = stats.lat(OpType::Get);
            let mut u = stats.lat(OpType::Update);
            let t = stats.throughput_ops() / 1e3 / p.clients as f64;
            println!(
                "{:<10} {:>9} {:>7.2} ({:.2}/{:.2}) {:>9.2} ({:.2}/{:.2}) {:>12.0}",
                sys.name(),
                replicas,
                g.median() as f64 / 1e3,
                g.percentile(1.0) as f64 / 1e3,
                g.percentile(99.0) as f64 / 1e3,
                u.median() as f64 / 1e3,
                u.percentile(1.0) as f64 / 1e3,
                u.percentile(99.0) as f64 / 1e3,
                t,
            );
            rows.push(format!(
                "{replicas},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{t:.1}",
                g.median() as f64 / 1e3,
                g.percentile(1.0) as f64 / 1e3,
                g.percentile(99.0) as f64 / 1e3,
                u.median() as f64 / 1e3,
                u.percentile(1.0) as f64 / 1e3,
                u.percentile(99.0) as f64 / 1e3,
            ));
        }
        write_csv(
            "fig10",
            sys.name(),
            "replicas,get_med,get_p1,get_p99,upd_med,upd_p1,upd_p99,kops_per_client",
            &rows,
        );
    }
    println!("\npaper: SWARM-KV 2.3us gets / 3.0us updates @3 replicas; +0.2us gets and");
    println!("       +0.5us updates per 2 extra replicas; tput -9% (3->5), -7% (5->7)");
}
