//! Figure 13 / §7.9: scalability of the CAS-emulated max register — vary
//! the number of In-n-Out 8 B metadata buffers per key (1, 4, 16, 64) with
//! 64 clients, YCSB B. More buffers make 1-roundtrip updates common (each
//! writer CASes its own word) at the price of slightly larger reads.
//!
//! Cells run threaded through the sweep driver (`SWARM_BENCH_THREADS`) and
//! merge in deterministic cell order.

use swarm_bench::{report_cdf, run_system, sweep, write_csv, ExpParams, Protocol};
use swarm_workload::{OpType, WorkloadSpec};

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    println!("Figure 13: metadata buffers per key, 64 clients, YCSB B");
    let cells = [1usize, 4, 16, 64];
    let results = sweep(&cells, |&bufs| {
        let p = ExpParams {
            clients: 64,
            meta_bufs: Some(bufs),
            n_keys: if quick { 5_000 } else { 100_000 },
            warmup_ops: if quick { 30_000 } else { 500_000 },
            measure_ops: if quick { 60_000 } else { 1_000_000 },
            ..Default::default()
        };
        let (stats, _, _) = run_system(p.seed, Protocol::SafeGuess, &p, WorkloadSpec::B, |rc| {
            rc.record_rtts = true;
            rc.prewarm_keys = Some(p.n_keys); // steady-state caches
        });
        let one_rtt = stats.rtt_fraction(OpType::Update, 1) * 100.0;
        (stats.lat(OpType::Get), stats.lat(OpType::Update), one_rtt)
    });

    let mut rows = Vec::new();
    for (&bufs, (mut get, mut upd, one_rtt)) in cells.iter().zip(results) {
        println!("{bufs} buffer(s):");
        report_cdf("fig13", &format!("{bufs}bufs_get"), &mut get, 200);
        report_cdf("fig13", &format!("{bufs}bufs_update"), &mut upd, 200);
        println!("    updates completing in 1 rtt: {one_rtt:.0}%");
        rows.push(format!("{bufs},{one_rtt:.1}"));
    }
    write_csv(
        "fig13",
        "one_rtt_updates",
        "meta_bufs,percent_updates_1rtt",
        &rows,
    );
    println!("\npaper: 1-rtt updates 23% (1 buf) / 57% (4) / 86% (16) / 99% (64);");
    println!("       gets median grows 3.1 -> 3.6 us from 1 to 64 buffers");
}
