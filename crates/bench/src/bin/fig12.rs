//! Figure 12: extreme contention — 16 clients hammering a single key with
//! YCSB A. SWARM-KV gets stay live but their tail degrades (iterating and
//! helping the max register); updates stay within a few roundtrips thanks
//! to the per-writer metadata buffers. DM-ABD degrades much more (§7.8).

use swarm_bench::{report_cdf, run_system, write_csv, ExpParams, Protocol};
use swarm_workload::{OpType, WorkloadSpec};

fn main() {
    let p = ExpParams {
        n_keys: 1,
        clients: 16,
        warmup_ops: 4_000,
        measure_ops: 40_000,
        ..Default::default()
    }
    .apply_cli();
    println!("Figure 12: single key, 16 clients, YCSB A");
    for sys in [Protocol::SafeGuess, Protocol::Abd] {
        let (stats, _, _) = run_system(p.seed, sys, &p, WorkloadSpec::A, |rc| {
            rc.record_rtts = true;
        });
        println!("{}:", sys.name());
        report_cdf(
            "fig12",
            &format!("{}_get", sys.name()),
            &mut stats.lat(OpType::Get),
            200,
        );
        report_cdf(
            "fig12",
            &format!("{}_update", sys.name()),
            &mut stats.lat(OpType::Update),
            200,
        );
        // §7.8's roundtrip breakdown.
        let mut rows = Vec::new();
        for op in [OpType::Get, OpType::Update] {
            for r in 1..=6u64 {
                let f = stats.rtt_fraction(op, r);
                if f > 0.001 {
                    println!("    {op:?} in {r} rtt(s): {:.1}%", f * 100.0);
                    rows.push(format!("{op:?},{r},{:.3}", f * 100.0));
                }
            }
        }
        write_csv(
            "fig12",
            &format!("{}_rtts", sys.name()),
            "op,rtts,percent",
            &rows,
        );
    }
    println!("\npaper (SWARM-KV): gets p99 ~30us (14% 1-rtt, 8% 2-rtt, 78% more);");
    println!("       updates <=4 rtts, p99 ~10us (73% 1-rtt); DM-ABD far worse");
}
