//! Online-resharding bench (beyond the paper): the throughput/latency
//! timeline of a SWARM-KV replica group before, during, and after an
//! elastic split migrates half its keyspace to a freshly built group —
//! under the YCSB A mix (50/50 read/update, Zipfian .99 hot keys).
//!
//! Two cells run on their own seeded `Sim`s: a *static* control (the same
//! elastic family, no migration) and the *split* cell, whose migration
//! driver copies the upper half-range key by key behind a double-write
//! window, then seals ownership with an epoch bump. The interesting
//! numbers are the throughput dip while the copier contends for per-key
//! locks and the clean recovery once the seal lands — availability is
//! never interrupted, exactly like the paper's memory-node-crash timeline
//! (Figure 11), but for a *planned* reconfiguration.
//!
//! **stdout is the deterministic report** (simulated metrics only; safe
//! to diff across thread counts and hosts). Wall-clock seconds per cell
//! go to **stderr** and `*_wall.csv`. Default is a quick 2^13-key run;
//! `--full` loads 2^16 keys and stretches the timeline.

use std::time::Instant;

use swarm_bench::{composed_threads, env_scaled_keys, sweep_on, write_csv, ExpParams, Protocol};
use swarm_kv::{run_workload, ElasticShard, ReshardEvent};
use swarm_sim::{Nanos, Sim, NANOS_PER_MILLI};
use swarm_workload::WorkloadSpec;

/// Base RNG label of the elastic family (group g derives its own stream
/// from this, so the whole bench is a pure function of the seed).
const BASE_LABEL: u64 = 0xE1A5_BEA4_0001;

/// Keys moved per pace tick: the migration copies one key per
/// `PACE_NS`, slow enough to stretch the window across many buckets.
const PACE_NS: Nanos = 1_000;

struct Cell {
    split: bool,
}

struct CellResult {
    buckets: Vec<(Nanos, u64, f64)>,
    bucket_ns: Nanos,
    tput_kops: f64,
    measured_ops: u64,
    stats: swarm_kv::ReshardStats,
    /// Pre-rendered latency summaries (deterministic, for the stderr JSON).
    get_json: String,
    update_json: String,
    wall_secs: f64,
}

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    let n_keys: u64 = if quick { 1 << 13 } else { 1 << 16 };
    let split_at = if quick { 40 } else { 100 } * NANOS_PER_MILLI;
    let end_at = if quick { 140 } else { 400 } * NANOS_PER_MILLI;
    let (cell_threads, _) = composed_threads();
    eprintln!("bench_reshard: {cell_threads} sweep thread(s), 2 cells");

    let p = ExpParams {
        n_keys,
        warmup_ops: 0,
        measure_ops: u64::MAX / 2,
        concurrency: 2,
        meta_bufs: Some(4),
        ..Default::default()
    };

    let cells = [Cell { split: false }, Cell { split: true }];
    let results = sweep_on(cell_threads, &cells, |cell| {
        let wall = Instant::now();
        let sim = Sim::new(p.seed);
        // One extra client id: the family reserves the top one for its
        // migration driver.
        let builder = p.builder(Protocol::SafeGuess).max_clients(p.clients + 1);
        let family = ElasticShard::build(&sim, &builder, BASE_LABEL);
        let wl = p.workload(WorkloadSpec::A);
        for k in 0..env_scaled_keys(p.n_keys) {
            family.load_key(k, &wl.value_for(k, 0));
        }
        let clients: Vec<_> = (0..p.clients).map(|i| family.client(i)).collect();
        if cell.split {
            family.run_event(&ReshardEvent::split(0, split_at, 500).pace_ns(PACE_NS));
        }
        let mut rc = p.run_config();
        rc.deadline_ns = Some(end_at);
        rc.bucket_ns = Some(2 * NANOS_PER_MILLI);
        let stats = run_workload(&sim, &clients, &wl, &rc);
        let series = stats.series.as_ref().expect("time series enabled");
        CellResult {
            buckets: series.buckets().collect(),
            bucket_ns: series.bucket_ns(),
            tput_kops: stats.throughput_ops() / 1e3,
            measured_ops: stats.measured_ops,
            stats: family.stats(),
            get_json: stats.lat(swarm_workload::OpType::Get).summary_json(),
            update_json: stats.lat(swarm_workload::OpType::Update).summary_json(),
            wall_secs: wall.elapsed().as_secs_f64(),
        }
    });
    let [base, split] = <[CellResult; 2]>::try_from(results)
        .unwrap_or_else(|_| unreachable!("two cells, two results"));

    println!(
        "bench_reshard: SWARM-KV elastic split, YCSB A (Zipfian .99), {} keys, \
         {} clients (t=0 at the split)",
        n_keys, p.clients
    );
    let seal_at = split
        .stats
        .last_seal_ns
        .expect("the split must seal before the deadline");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "t_ms", "base_kops", "split_kops", "lat_us"
    );
    let to_kops = |count: u64, bucket_ns: Nanos| count as f64 / (bucket_ns as f64 / 1e9) / 1e3;
    let mut rows = Vec::new();
    let mut phase = [(0.0, 0u64); 3]; // (kops sum, buckets) before / during / after
    for (&(start, bc, _), &(_, sc, lat)) in base.buckets.iter().zip(&split.buckets) {
        let t_ms = (start as f64 - split_at as f64) / 1e6;
        let (bk, sk) = (to_kops(bc, base.bucket_ns), to_kops(sc, split.bucket_ns));
        // Skip the partial first/last buckets when averaging phases.
        if sc > 0 && start > 4 * NANOS_PER_MILLI && start < end_at - 4 * NANOS_PER_MILLI {
            let i = if start + split.bucket_ns <= split_at {
                0
            } else if start < seal_at {
                1
            } else {
                2
            };
            phase[i].0 += sk;
            phase[i].1 += 1;
        }
        if (-20.0..=80.0).contains(&t_ms) {
            println!(
                "{:>10.1} {:>12.1} {:>12.1} {:>12.2}",
                t_ms,
                bk,
                sk,
                lat / 1e3
            );
        }
        rows.push(format!("{t_ms:.2},{bk:.2},{sk:.2},{:.3}", lat / 1e3));
    }
    write_csv(
        "bench_reshard",
        "timeline",
        "t_ms,base_kops,split_kops,split_avg_latency_us",
        &rows,
    );

    let avg = |(sum, n): (f64, u64)| sum / (n.max(1) as f64);
    let s = &split.stats;
    println!(
        "\nsplit: sealed {} (epoch {}, {} groups) after {:.1} ms; \
         {} keys copied, {} writes mirrored, {} stale-epoch bounces",
        s.sealed,
        s.epoch,
        s.groups,
        (seal_at - split_at) as f64 / 1e6,
        s.keys_copied,
        s.mirrored,
        s.bounces
    );
    println!(
        "throughput kops: control {:.1} overall; split {:.1} before / {:.1} during / {:.1} after",
        base.tput_kops,
        avg(phase[0]),
        avg(phase[1]),
        avg(phase[2])
    );
    println!(
        "measured ops: control {}, split {}",
        base.measured_ops, split.measured_ops
    );
    println!("expectation: throughput dips while the copier holds per-key locks and");
    println!("every moved-range write double-writes; it recovers to the baseline as");
    println!("soon as the seal bumps the epoch. No downtime, no failed ops: stale");
    println!("routers bounce once, refresh their map, and retry within the op.");

    for (name, r) in [("control", &base), ("split", &split)] {
        eprintln!("  wall {name}: {:.3}s", r.wall_secs);
        // Machine-readable per-cell summary (ROADMAP item 3's report
        // harness convention). stderr only: stdout must stay bit-identical
        // to the pre-JSON report.
        eprintln!(
            r#"{{"bench":"bench_reshard","cell":"{name}","tput_kops":{:.4},"measured_ops":{},"keys_copied":{},"mirrored":{},"bounces":{},"get":{},"update":{},"wall_secs":{:.4}}}"#,
            r.tput_kops,
            r.measured_ops,
            r.stats.keys_copied,
            r.stats.mirrored,
            r.stats.bounces,
            r.get_json,
            r.update_json,
            r.wall_secs
        );
    }
    write_csv(
        "bench_reshard",
        "wall",
        "cell,wall_secs",
        &[
            format!("control,{:.4}", base.wall_secs),
            format!("split,{:.4}", split.wall_secs),
        ],
    );
}
