//! Figure 5: latency CDFs of RAW, SWARM-KV, DM-ABD and FUSEE with YCSB
//! workload B, Zipfian keys, 4 clients, 100 K keys, 64 B values.

use swarm_bench::{report_cdf, run_system, ExpParams, Protocol};
use swarm_workload::{OpType, WorkloadSpec};

fn main() {
    let p = ExpParams::default().apply_cli();
    println!(
        "Figure 5: latency CDFs, YCSB B, {} keys, {} clients",
        p.n_keys, p.clients
    );
    for sys in Protocol::all() {
        let (stats, _, _) = run_system(p.seed, sys, &p, WorkloadSpec::B, |_| {});
        println!("{}:", sys.name());
        report_cdf(
            "fig5",
            &format!("{}_get", sys.name()),
            &mut stats.lat(OpType::Get),
            200,
        );
        report_cdf(
            "fig5",
            &format!("{}_update", sys.name()),
            &mut stats.lat(OpType::Update),
            200,
        );
    }
    println!("\npaper medians (us): gets RAW 1.9 / SWARM 2.4 / FUSEE 2.9 / DM-ABD 4.3");
    println!("                    updates RAW 1.6 / SWARM 3.1 / DM-ABD 4.9 / FUSEE 8.5");
}
