//! Figure 8: scalability — throughput and average latency of SWARM-KV and
//! DM-ABD with 1 to 64 single-threaded clients, sequential (1 op) and with
//! 4 concurrent ops. Beyond 32 clients, client threads share physical cores
//! (hyperthreading) and the 100 Gbps fabric approaches saturation (§7.3).
//!
//! Each `(concurrency, system, client-count)` cell is an independent seeded
//! simulation; the sweep runs them on `SWARM_BENCH_THREADS` OS threads and
//! merges in cell order, so the printed numbers are thread-count-invariant.

use swarm_bench::{run_system, sweep, write_csv, ExpParams, Protocol};
use swarm_workload::{OpType, WorkloadSpec};

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    let counts: Vec<usize> = if quick {
        vec![1, 4, 8, 16, 32, 48, 64]
    } else {
        vec![1, 8, 16, 24, 32, 40, 48, 56, 64]
    };
    let mut cells = Vec::new();
    for conc in [1usize, 4] {
        for sys in [Protocol::SafeGuess, Protocol::Abd] {
            for &n in &counts {
                cells.push((conc, sys, n));
            }
        }
    }
    let results = sweep(&cells, |&(conc, sys, n)| {
        let p = ExpParams {
            clients: n,
            concurrency: conc,
            n_keys: if quick { 20_000 } else { 100_000 },
            warmup_ops: 4_000 * n as u64,
            measure_ops: 8_000 * n as u64,
            ..Default::default()
        };
        let (stats, _, bed) = run_system(p.seed, sys, &p, WorkloadSpec::B, |_| {});
        // Hyperthread sharing beyond 32 clients (2x 8c/16t per the
        // testbed, Table 1).
        debug_assert_eq!(bed.clients.len(), n);
        let g = stats.lat(OpType::Get).mean() / 1e3;
        let u = stats.lat(OpType::Update).mean() / 1e3;
        let t = stats.throughput_ops() / 1e6;
        (g, u, t)
    });

    let mut results = results.into_iter();
    for conc in [1usize, 4] {
        println!("Figure 8: YCSB B, {conc} concurrent op(s) per client");
        println!(
            "{:<10} {:>8} {:>10} {:>10} {:>12}",
            "system", "clients", "get_us", "upd_us", "tput_Mops"
        );
        for sys in [Protocol::SafeGuess, Protocol::Abd] {
            let mut rows = Vec::new();
            for &n in &counts {
                let (g, u, t) = results.next().expect("one result per cell");
                println!(
                    "{:<10} {:>8} {:>10.2} {:>10.2} {:>12.2}",
                    sys.name(),
                    n,
                    g,
                    u,
                    t
                );
                rows.push(format!("{n},{g:.3},{u:.3},{t:.3}"));
            }
            write_csv(
                "fig8",
                &format!("conc{conc}_{}", sys.name()),
                "clients,get_avg_us,update_avg_us,tput_mops",
                &rows,
            );
        }
    }
    println!("\npaper: SWARM-KV scales ~linearly to 15.9 Mops @64 clients (1 op),");
    println!("       28.3 Mops peak @40 clients (4 ops) before fabric saturation");
}
