//! Batch-size vs latency for the pipelined `KvStoreExt` multi-ops: a
//! `multi_get` of N independent cached keys overlaps all N quorum reads, so
//! the batch costs about one roundtrip of latency — not N — until
//! work-request submission saturates the client CPU (§7.2's wall).
//!
//! Prints, per system and batch size, the median latency of the whole batch
//! and the per-element amortized latency, against a sequential-get baseline.
//! A second section drives the runner's batched workload mode end to end
//! (`RunConfig::batch`) and reports throughput scaling.

use std::rc::Rc;

use swarm_bench::{build, env_scaled_keys, run_workload, write_csv, ExpParams, Protocol};
use swarm_kv::{KvStore, KvStoreExt};
use swarm_sim::Sim;
use swarm_workload::WorkloadSpec;

const BATCHES: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    let p = ExpParams {
        n_keys: 4_096,
        warmup_ops: 0,
        measure_ops: 0,
        ..Default::default()
    };
    let trials: usize = {
        let base = if quick { 400 } else { 4_000 };
        match swarm_kv::ops_scale() {
            Some(scale) => ((base as f64 * scale) as usize).max(20),
            None => base,
        }
    };

    println!("multi_get batch-size sweep: {trials} trials per point, cached keys");
    println!(
        "{:<10} {:>6} {:>14} {:>14} {:>12}",
        "system", "batch", "batch_med_us", "per_key_us", "vs_seq"
    );
    for sys in [Protocol::SafeGuess, Protocol::Abd, Protocol::Fusee] {
        let sim = Sim::new(p.seed);
        let bed = build(&sim, sys, &p);
        let client = Rc::clone(&bed.clients[0]);
        let n_keys = env_scaled_keys(p.n_keys);
        let s = sim.clone();
        let mut rows = Vec::new();
        let sys_name = sys.name();
        sim.block_on(async move {
            // Warm every location into the client cache.
            for k in 0..n_keys {
                let _ = client.get(k).await;
            }
            // Sequential baseline: median single-get latency.
            let mut seq = Vec::with_capacity(trials);
            for t in 0..trials as u64 {
                let t0 = s.now();
                client.get(t % n_keys).await.unwrap();
                seq.push(s.now() - t0);
            }
            seq.sort_unstable();
            let seq_med = seq[seq.len() / 2];

            for batch in BATCHES {
                let mut lats = Vec::with_capacity(trials);
                let mut next = 0u64;
                for _ in 0..trials {
                    // Distinct, rotating keys: independent quorum reads.
                    let keys: Vec<u64> = (0..batch as u64)
                        .map(|i| (next + i * 37) % n_keys)
                        .collect();
                    next = (next + 1) % n_keys;
                    let t0 = s.now();
                    let got = client.multi_get(&keys).await;
                    lats.push(s.now() - t0);
                    assert!(got.iter().all(|r| matches!(r, Ok(Some(_)))));
                }
                lats.sort_unstable();
                let med = lats[lats.len() / 2];
                let per_key = med as f64 / batch as f64;
                let vs_seq = seq_med as f64 / per_key;
                println!(
                    "{:<10} {:>6} {:>14.2} {:>14.2} {:>11.1}x",
                    sys_name,
                    batch,
                    med as f64 / 1e3,
                    per_key / 1e3,
                    vs_seq,
                );
                rows.push(format!(
                    "{batch},{:.3},{:.3},{:.2}",
                    med as f64 / 1e3,
                    per_key / 1e3,
                    vs_seq
                ));
            }
            write_csv(
                "bench_multiget",
                sys_name,
                "batch,batch_median_us,per_key_us,speedup_vs_sequential",
                &rows,
            );
        });
    }

    // The runner's batched workload mode (RunConfig::batch) end to end.
    println!("\nbatched runner mode: YCSB B, 4 clients, throughput vs batch size");
    println!("{:<10} {:>6} {:>12}", "system", "batch", "kops");
    let p = ExpParams {
        n_keys: 20_000,
        warmup_ops: if quick { 4_000 } else { 50_000 },
        measure_ops: if quick { 20_000 } else { 200_000 },
        ..Default::default()
    };
    let mut rows = Vec::new();
    for batch in [1usize, 4, 8] {
        let sim = Sim::new(p.seed);
        let bed = build(&sim, Protocol::SafeGuess, &p);
        let mut rc = p.run_config();
        rc.batch = batch;
        let wl = p.workload(WorkloadSpec::B);
        let stats = run_workload(&sim, &bed.clients, &wl, &rc);
        let kops = stats.throughput_ops() / 1e3;
        println!("{:<10} {:>6} {:>12.0}", "SWARM-KV", batch, kops);
        rows.push(format!("{batch},{kops:.1}"));
    }
    write_csv("bench_multiget", "runner_batched", "batch,kops", &rows);
    println!("\nexpectation: per-key amortized latency falls toward the submission");
    println!("cost as the batch grows; throughput rises until the client CPU wall");
}
