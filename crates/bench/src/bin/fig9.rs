//! Figure 9: impact of value size (16 B – 8 KiB) on SWARM-KV latency and
//! throughput, for YCSB A and B, compared against a SWARM-KV variant
//! without in-place updates ("Out-P.").
//!
//! Cells run threaded through the sweep driver (`SWARM_BENCH_THREADS`) and
//! merge in deterministic cell order.

use swarm_bench::{run_system, sweep, write_csv, ExpParams, Protocol};
use swarm_workload::{OpType, WorkloadSpec};

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    let sizes = [16usize, 64, 256, 1024, 4096, 8192];
    let mut cells = Vec::new();
    for (wl_name, spec) in [("A", WorkloadSpec::A), ("B", WorkloadSpec::B)] {
        for inplace in [true, false] {
            for &vs in &sizes {
                cells.push((wl_name, spec, inplace, vs));
            }
        }
    }
    let results = sweep(&cells, |&(_, spec, inplace, vs)| {
        let p = ExpParams {
            value_size: vs,
            inplace,
            n_keys: if quick { 20_000 } else { 100_000 },
            warmup_ops: if quick { 20_000 } else { 100_000 },
            measure_ops: if quick { 40_000 } else { 400_000 },
            concurrency: 4,
            ..Default::default()
        };
        let (stats, _, _) = run_system(p.seed, Protocol::SafeGuess, &p, spec, |_| {});
        let g = stats.lat(OpType::Get).mean() / 1e3;
        let u = stats.lat(OpType::Update).mean() / 1e3;
        let t = stats.throughput_ops() / 1e6;
        (g, u, t)
    });

    let mut results = results.into_iter();
    for (wl_name, _) in [("A", WorkloadSpec::A), ("B", WorkloadSpec::B)] {
        println!("Figure 9: YCSB {wl_name}, value-size sweep");
        println!(
            "{:<10} {:>8} {:>10} {:>10} {:>12}",
            "variant", "size", "get_us", "upd_us", "tput_Mops"
        );
        for inplace in [true, false] {
            let name = if inplace { "In-n-Out" } else { "Out-P." };
            let mut rows = Vec::new();
            for &vs in &sizes {
                let (g, u, t) = results.next().expect("one result per cell");
                println!("{:<10} {:>8} {:>10.2} {:>10.2} {:>12.3}", name, vs, g, u, t);
                rows.push(format!("{vs},{g:.3},{u:.3},{t:.3}"));
            }
            write_csv(
                "fig9",
                &format!("ycsb{wl_name}_{name}"),
                "value_bytes,get_avg_us,update_avg_us,tput_mops",
                &rows,
            );
        }
    }
    println!("\npaper: latency grows linearly with value size; 8 KiB still single-digit us;");
    println!("       gets with in-place data are ~33% faster at 8 KiB; updates equal;");
    println!("       In-n-Out gives higher total throughput (+50% at 8 KiB, YCSB B)");
}
