//! Figure 6: the Figure 5 experiment with 1 M keys and 5 MiB per-client
//! location caches (approximated LFU), excluding RAW. Cache entries are
//! 24 B for DM-ABD/FUSEE but 32 B for SWARM-KV (they also carry In-n-Out's
//! metadata word), so SWARM-KV caches ~25% fewer keys (§7.1).

use swarm_bench::{report_cdf, run_system, ExpParams, Protocol};
use swarm_workload::{OpType, WorkloadSpec};

const CACHE_BYTES: usize = 5 * 1024 * 1024;

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    let base = ExpParams {
        n_keys: if quick { 200_000 } else { 1_000_000 },
        warmup_ops: if quick { 400_000 } else { 8_000_000 },
        measure_ops: if quick { 200_000 } else { 1_000_000 },
        ..Default::default()
    };
    println!(
        "Figure 6: latency CDFs with {} keys and 5 MiB caches (quick={quick})",
        base.n_keys
    );
    for sys in [Protocol::SafeGuess, Protocol::Abd, Protocol::Fusee] {
        let entry_bytes = if sys == Protocol::SafeGuess { 32 } else { 24 };
        let entries = CACHE_BYTES / entry_bytes;
        // Scale the cache with the keyspace in quick mode so the miss rate
        // matches the paper's 1M-key configuration.
        let entries = if quick { entries / 5 } else { entries };
        let p = ExpParams {
            cache_entries: Some(entries),
            ..base.clone()
        };
        let (stats, _, bed) = run_system(p.seed, sys, &p, WorkloadSpec::B, |_| {});
        let coverage = entries as f64 / p.n_keys as f64 * 100.0;
        let (h, m): (u64, u64) = bed
            .clients
            .iter()
            .map(|c| c.cache_stats())
            .fold((0, 0), |(a, b), (h, m)| (a + h, b + m));
        let miss = m as f64 / (h + m).max(1) as f64 * 100.0;
        println!(
            "{} (cache {} entries = {:.1}% of keys, miss rate {:.1}%):",
            sys.name(),
            entries,
            coverage,
            miss
        );
        report_cdf(
            "fig6",
            &format!("{}_get", sys.name()),
            &mut stats.lat(OpType::Get),
            200,
        );
        report_cdf(
            "fig6",
            &format!("{}_update", sys.name()),
            &mut stats.lat(OpType::Update),
            200,
        );
    }
    println!("\npaper: bimodal CDFs; DM-ABD/FUSEE miss 42.5%, SWARM-KV 45.6%;");
    println!("       SWARM-KV average latency remains best for both op types");
}
