//! Anti-entropy repair bench (beyond the paper): convergence time and
//! bytes moved per digest strategy after a fault window leaves replicas
//! silently divergent.
//!
//! Three cells — one per [`RepairStrategy`] — run the *identical*
//! foreground phase on their own seeded `Sim`s: load the keyspace, then
//! hammer it with YCSB A while one replica node drops 30% of its messages.
//! Writes that reach a quorum but miss the lossy replica leave stale
//! In-n-Out max registers behind, and nothing in the foreground protocol
//! ever heals a key that is not written again. When the window closes the
//! divergence count is bit-identical across cells (same seed, repair not
//! yet running); each cell then drives its repair agent to convergence and
//! reports rounds, round trips, deltas, and bytes.
//!
//! The interesting comparison is bytes: `full` hauls every stamp every
//! round, `buckets` pays digests and hauls only mismatched buckets, and
//! `bloom-buckets` pays a bloom pre-pass plus a verification digest pass —
//! the same exactness, fewer bytes as the keyspace grows.
//!
//! **stdout is the deterministic report** (simulated metrics only; safe to
//! diff across hosts and thread counts). Wall-clock seconds per cell go to
//! **stderr** and `*_wall.csv`. Default is a quick 2^14-key run; `--full`
//! loads the acceptance-scale 2^20 keys.

use std::time::Instant;

use swarm_bench::{composed_threads, env_scaled_keys, sweep_on, write_csv, ExpParams, Protocol};
use swarm_fabric::{FaultPlan, NodeId};
use swarm_kv::{divergent_stamp_pairs, run_workload, RepairConfig, RepairStats, RepairStrategy};
use swarm_sim::{Nanos, Sim, NANOS_PER_MILLI};
use swarm_workload::WorkloadSpec;

/// Message-drop probability of the lossy replica node during the window.
const DROP_PERMILLE: u16 = 300;

struct CellResult {
    strategy: RepairStrategy,
    divergent_before: u64,
    divergent_after: u64,
    rounds: u32,
    converged: bool,
    converge_ms: f64,
    stats: RepairStats,
    wall_secs: f64,
}

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    let n_keys: u64 = if quick { 1 << 14 } else { 1 << 20 };
    let drop_from: Nanos = NANOS_PER_MILLI;
    let drop_until: Nanos = if quick { 21 } else { 41 } * NANOS_PER_MILLI;
    let (cell_threads, _) = composed_threads();
    eprintln!("bench_repair: {cell_threads} sweep thread(s), 3 cells");

    let p = ExpParams {
        n_keys,
        warmup_ops: 0,
        measure_ops: u64::MAX / 2,
        concurrency: 2,
        meta_bufs: Some(4),
        ..Default::default()
    };

    let cells = RepairStrategy::all();
    let results = sweep_on(cell_threads, &cells, |&strategy| {
        let wall = Instant::now();
        let sim = Sim::new(p.seed);
        // A generous round deadline: at acceptance scale one round may
        // apply thousands of deltas, and an abandoned round only re-scans.
        let cfg = RepairConfig {
            round_deadline_ns: 50 * NANOS_PER_MILLI,
            ..RepairConfig::with_strategy(strategy)
        };
        let builder = p
            .builder(Protocol::SafeGuess)
            .op_deadline_ns(2 * NANOS_PER_MILLI)
            .repair(cfg);
        let cluster = builder.build_cluster(&sim);
        let wl = p.workload(WorkloadSpec::A);
        cluster.load_keys(env_scaled_keys(p.n_keys), |k| wl.value_for(k, 0));
        cluster
            .fabric()
            .apply_fault_plan(&FaultPlan::new().drop_window(
                drop_from,
                NodeId(0),
                DROP_PERMILLE,
                drop_until - drop_from,
            ));
        let clients: Vec<_> = (0..p.clients).map(|i| cluster.client(i)).collect();
        let mut rc = p.run_config();
        rc.deadline_ns = Some(drop_until);
        run_workload(&sim, &clients, &wl, &rc);

        let c = cluster
            .swarm()
            .expect("SWARM-KV runs on the Cluster substrate")
            .clone();
        let divergent_before = divergent_stamp_pairs(&c);
        let agent = cluster.repair().expect("repair configured").clone();
        let t0 = sim.now();
        let a2 = agent.clone();
        let (rounds, converged) = sim.block_on(async move { a2.converge().await });
        CellResult {
            strategy,
            divergent_before,
            divergent_after: divergent_stamp_pairs(&c),
            rounds,
            converged,
            converge_ms: (sim.now() - t0) as f64 / 1e6,
            stats: agent.stats(),
            wall_secs: wall.elapsed().as_secs_f64(),
        }
    });

    let loaded = env_scaled_keys(p.n_keys);
    println!(
        "bench_repair: SWARM-KV anti-entropy, YCSB A over {} keys, {} clients, \
         {DROP_PERMILLE}-permille drop window of {} ms on one replica node",
        loaded,
        p.clients,
        (drop_until - drop_from) / NANOS_PER_MILLI
    );
    let divergent = results[0].divergent_before;
    for r in &results {
        assert_eq!(
            r.divergent_before,
            divergent,
            "{}: the foreground phase must be bit-identical across cells",
            r.strategy.name()
        );
    }
    println!("divergent (key, replica) pairs after the window: {divergent}");
    println!(
        "{:>14} {:>7} {:>10} {:>8} {:>12} {:>12} {:>14} {:>10}",
        "strategy", "rounds", "conv_ms", "deltas", "round_trips", "false_pos", "bytes", "residual"
    );
    let mut rows = Vec::new();
    for r in &results {
        assert!(
            r.converged && r.divergent_after == 0,
            "{}: every replica pair must converge within the round budget \
             ({} residual after {} rounds)",
            r.strategy.name(),
            r.divergent_after,
            r.rounds
        );
        println!(
            "{:>14} {:>7} {:>10.2} {:>8} {:>12} {:>12} {:>14} {:>10}",
            r.strategy.name(),
            r.rounds,
            r.converge_ms,
            r.stats.deltas_applied,
            r.stats.round_trips,
            r.stats.false_matches,
            r.stats.bytes_exchanged,
            r.divergent_after
        );
        rows.push(format!(
            "{},{},{},{:.3},{},{},{},{},{}",
            r.strategy.name(),
            r.divergent_before,
            r.rounds,
            r.converge_ms,
            r.stats.deltas_applied,
            r.stats.round_trips,
            r.stats.false_matches,
            r.stats.bytes_exchanged,
            r.divergent_after
        ));
    }
    write_csv(
        "bench_repair",
        "strategies",
        "strategy,divergent_before,rounds,converge_ms,deltas,round_trips,false_matches,bytes,residual",
        &rows,
    );

    let full_bytes = results[0].stats.bytes_exchanged;
    let pct = |b: u64| 100.0 * b as f64 / full_bytes as f64;
    println!(
        "\nbytes vs full: buckets {:.1}%, bloom-buckets {:.1}%",
        pct(results[1].stats.bytes_exchanged),
        pct(results[2].stats.bytes_exchanged)
    );
    assert!(
        results[2].stats.bytes_exchanged < full_bytes,
        "bloom-buckets must move measurably fewer bytes than the full exchange \
         ({} vs {full_bytes})",
        results[2].stats.bytes_exchanged
    );
    println!("expectation: all three strategies repair the same deltas and end at zero");
    println!("residual divergence; full pays stamp bytes linear in the keyspace every");
    println!("round, while the digest strategies pay per-bucket summaries plus only the");
    println!("mismatched buckets — the gap widens with the keyspace (try --full).");

    for r in &results {
        eprintln!("  wall {}: {:.3}s", r.strategy.name(), r.wall_secs);
    }
    write_csv(
        "bench_repair",
        "wall",
        "strategy,wall_secs",
        &results
            .iter()
            .map(|r| format!("{},{:.4}", r.strategy.name(), r.wall_secs))
            .collect::<Vec<_>>(),
    );
}
