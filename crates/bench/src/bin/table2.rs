//! Table 2: number of roundtrips for gets and updates — common case and
//! 99th percentile — under YCSB B (§7.1's standard workload).

use swarm_bench::{run_system, write_csv, ExpParams, Protocol};
use swarm_workload::{OpType, WorkloadSpec};

fn main() {
    let p = ExpParams {
        n_keys: 10_000,
        warmup_ops: 60_000, // covers the key space so locations are cached
        measure_ops: 60_000,
        ..Default::default()
    }
    .apply_cli();

    println!("Table 2: roundtrips for gets and updates (common / P99)");
    println!(
        "{:<10} {:>12} {:>14} {:>9} {:>11}",
        "system", "get common", "update common", "get p99", "update p99"
    );
    let mut rows = Vec::new();
    for sys in Protocol::all() {
        let (stats, _, _) = run_system(p.seed, sys, &p, WorkloadSpec::B, |rc| {
            rc.record_rtts = true;
            // Table 2 reports the steady state: all locations cached.
            rc.prewarm_keys = Some(p.n_keys);
        });
        let common = |op| {
            // The most frequent roundtrip count.
            let m = stats.rtts.get(&op).cloned().unwrap_or_default();
            m.into_iter()
                .max_by_key(|&(_, c)| c)
                .map(|(r, _)| r)
                .unwrap_or(0)
        };
        let (gc, uc) = (common(OpType::Get), common(OpType::Update));
        let gp = stats.rtt_percentile(OpType::Get, 99.0);
        let up = stats.rtt_percentile(OpType::Update, 99.0);
        println!(
            "{:<10} {:>12} {:>14} {:>9} {:>11}",
            sys.name(),
            gc,
            uc,
            gp,
            up
        );
        rows.push(format!("{},{gc},{uc},{gp},{up}", sys.name()));
    }
    write_csv(
        "table2",
        "roundtrips",
        "system,get_common,update_common,get_p99,update_p99",
        &rows,
    );
    println!("\npaper: RAW 1/1/1/1, SWARM-KV 1/1/1/1, DM-ABD 2/2/2/2, FUSEE 1-2/4/2/5");
}
