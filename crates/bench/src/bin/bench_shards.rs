//! Sharded-keyspace scale bench (beyond the paper): aggregate throughput
//! and per-shard load imbalance as the keyspace partitions over 1→16
//! shards, under a uniform workload and the YCSB Zipfian (.99) hot-key mix.
//!
//! The sweep is *weak scaling* — client threads grow with the shard count
//! (a fixed count per shard) because that is exactly what sharding buys: a
//! single replica group saturates its switch fabric near the paper's
//! Figure 8 peak, while S shards offer S independent fabrics. Each cell
//! reports aggregate throughput, per-thread throughput, scaling efficiency
//! versus the 1-shard cell, and the per-shard routed-op imbalance
//! (max/mean; 1.00 = perfectly balanced). Under Zipfian .99 the hottest
//! key alone draws ~8% of all traffic, so whichever shard owns it becomes
//! the hot shard — visible directly in the imbalance column.
//!
//! Default is a quick mode over a 2^17-key space; `--full` loads the
//! million-key space (memory scales with clients × keys — the 16-shard
//! full cell wants tens of GB, so prefer `SWARM_BENCH_THREADS=1` there).
//! Every `(shards, distribution)` cell is an independent seeded
//! simulation; the sweep runs them on `SWARM_BENCH_THREADS` OS threads and
//! merges in cell order, so all numbers are bit-identical at any thread
//! count.

use swarm_bench::{build_sharded, run_workload, sweep, write_csv, ExpParams, Protocol};
use swarm_workload::{WorkloadSpec, Zipfian};

/// Client threads (routers) per shard: enough that a single group runs
/// close to its fabric's saturation knee, so added shards buy throughput.
const CLIENTS_PER_SHARD: usize = 6;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dist {
    Uniform,
    Zipfian99,
}

impl Dist {
    fn name(self) -> &'static str {
        match self {
            Dist::Uniform => "uniform",
            Dist::Zipfian99 => "zipf.99",
        }
    }
}

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    let n_keys: u64 = if quick { 1 << 17 } else { 1 << 20 };
    let shard_counts: [usize; 5] = [1, 2, 4, 8, 16];

    let mut cells = Vec::new();
    for dist in [Dist::Uniform, Dist::Zipfian99] {
        for &shards in &shard_counts {
            cells.push((dist, shards));
        }
    }

    let results = sweep(&cells, |&(dist, shards)| {
        let clients = CLIENTS_PER_SHARD * shards;
        let p = ExpParams {
            n_keys,
            clients,
            shards,
            // One metadata buffer per client would dominate the per-key
            // footprint at 96 clients; pin the paper's 4-client default.
            meta_bufs: Some(4),
            warmup_ops: 500 * clients as u64,
            measure_ops: 1_500 * clients as u64,
            ..Default::default()
        };
        let sim = swarm_sim::Sim::new(p.seed);
        let bed = build_sharded(&sim, Protocol::SafeGuess, &p);
        let mut workload = p.workload(WorkloadSpec::B);
        if dist == Dist::Uniform {
            workload.keys = Zipfian::uniform(workload.keys.n());
        }
        let stats = run_workload(&sim, &bed.routers, &workload, &p.run_config());

        // Per-shard routed-op counts, summed over routers.
        let mut routed = vec![0u64; shards];
        for r in &bed.routers {
            for (s, n) in r.routed_per_shard().into_iter().enumerate() {
                routed[s] += n;
            }
        }
        let max_over_mean = |counts: &[u64]| {
            let mean = counts.iter().sum::<u64>() as f64 / counts.len().max(1) as f64;
            counts.iter().copied().max().unwrap_or(0) as f64 / mean.max(1.0)
        };
        let imbalance = max_over_mean(&routed);
        // The fabric-level view of the same skew: message counts include
        // retries and replica fan-out, so a hot shard's extra quorum
        // traffic shows up here even when op routing alone would hide it.
        let per_shard_msgs: Vec<u64> = bed
            .cluster
            .per_shard_stats()
            .iter()
            .map(|s| s.messages)
            .collect();
        let msg_imbalance = max_over_mean(&per_shard_msgs);
        (
            stats.throughput_ops() / 1e6,
            stats.measured_ops,
            imbalance,
            msg_imbalance,
        )
    });

    let mut results = results.into_iter();
    for dist in [Dist::Uniform, Dist::Zipfian99] {
        println!(
            "bench_shards: SWARM-KV, YCSB B mix, {} distribution, {} keys, \
             {CLIENTS_PER_SHARD} clients/shard",
            dist.name(),
            n_keys
        );
        println!(
            "{:>7} {:>8} {:>11} {:>13} {:>9} {:>11} {:>11}",
            "shards", "clients", "tput_Mops", "per_client_k", "scale_eff", "op_imbal", "msg_imbal"
        );
        let mut rows = Vec::new();
        let mut base_per_client = 0.0;
        for &shards in &shard_counts {
            let (tput, measured, imbalance, msg_imbalance) =
                results.next().expect("one result per cell");
            let clients = CLIENTS_PER_SHARD * shards;
            let per_client = tput * 1e3 / clients as f64;
            if shards == 1 {
                base_per_client = per_client;
            }
            // Weak-scaling efficiency: per-client throughput retained
            // relative to the 1-shard cell.
            let eff = per_client / base_per_client;
            println!(
                "{:>7} {:>8} {:>11.2} {:>13.1} {:>9.2} {:>10.2}x {:>10.2}x",
                shards, clients, tput, per_client, eff, imbalance, msg_imbalance
            );
            rows.push(format!(
                "{shards},{clients},{tput:.4},{per_client:.2},{eff:.3},{imbalance:.3},\
                 {msg_imbalance:.3},{measured}"
            ));
        }
        write_csv(
            "bench_shards",
            dist.name(),
            "shards,clients,tput_mops,per_client_kops,scale_eff,op_imbalance,msg_imbalance,measured_ops",
            &rows,
        );
        println!();
    }
    println!("expectation: uniform throughput grows ~linearly with shards (weak");
    println!("scaling past one fabric's saturation); Zipfian .99 concentrates ~8%");
    println!("of ops on the hot key's shard, so imbalance rises well above 1.0x");
    println!("and hot-shard queuing taxes the aggregate.");
}
