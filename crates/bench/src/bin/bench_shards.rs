//! Sharded-keyspace scale bench (beyond the paper): aggregate throughput
//! and per-shard load imbalance as the keyspace partitions over 1→16
//! shards, under a uniform workload and the YCSB Zipfian (.99) hot-key mix.
//!
//! The sweep is *weak scaling* — client threads grow with the shard count
//! (a fixed count per shard) because that is exactly what sharding buys: a
//! single replica group saturates its switch fabric near the paper's
//! Figure 8 peak, while S shards offer S independent fabrics. Each cell
//! reports aggregate throughput, per-thread throughput, scaling efficiency
//! versus the 1-shard cell, and the per-shard routed-op imbalance
//! (max/mean; 1.00 = perfectly balanced). Under Zipfian .99 the hottest
//! key alone draws ~8% of all traffic, so whichever shard owns it becomes
//! the hot shard — visible directly in the imbalance column.
//!
//! # Execution model
//!
//! Every cell pre-plans its op streams (`swarm_kv::plan_workload`) and
//! drives each shard on its **own seeded `Sim`**, one shard per OS thread
//! (`swarm_kv::run_sharded_plan`): the two-level parallelism is
//! `SWARM_BENCH_THREADS` sweep cells × `SWARM_SHARD_THREADS` shard threads
//! per cell, capped to the available cores (`composed_threads`). All
//! simulated numbers are bit-identical at any thread count, either level.
//!
//! **stdout is the deterministic report** (simulated metrics only; safe to
//! diff across thread counts and hosts). Wall-clock seconds per cell and
//! the wall-side weak-scaling efficiency — the real multi-core speedup the
//! one-`Sim`-per-shard refactor buys — go to **stderr** and a separate
//! `*_wall.csv`, since elapsed time is inherently nondeterministic.
//!
//! Default is a quick mode over a 2^17-key space; `--full` loads the
//! million-key space.

use std::time::Instant;

use swarm_bench::{composed_threads, env_scaled_keys, sweep_on, write_csv, ExpParams, Protocol};
use swarm_kv::{plan_workload, run_sharded_plan, ShardMode, ShardRunOptions, ShardSpec};
use swarm_workload::{OpType, WorkloadSpec, Zipfian};

/// Client threads (routers) per shard: enough that a single group runs
/// close to its fabric's saturation knee, so added shards buy throughput.
const CLIENTS_PER_SHARD: usize = 6;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dist {
    Uniform,
    Zipfian99,
}

impl Dist {
    fn name(self) -> &'static str {
        match self {
            Dist::Uniform => "uniform",
            Dist::Zipfian99 => "zipf.99",
        }
    }
}

/// One cell's results: simulated metrics (deterministic) plus the measured
/// wall-clock seconds (not).
struct CellResult {
    tput_mops: f64,
    measured_ops: u64,
    op_imbalance: f64,
    msg_imbalance: f64,
    /// Pre-rendered latency summaries (deterministic, for the stderr JSON).
    get_json: String,
    update_json: String,
    wall_secs: f64,
}

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    let n_keys: u64 = if quick { 1 << 17 } else { 1 << 20 };
    let shard_counts: [usize; 5] = [1, 2, 4, 8, 16];
    let (cell_threads, shard_threads) = composed_threads();
    eprintln!(
        "bench_shards: {cell_threads} sweep thread(s) x {shard_threads} shard thread(s) per cell"
    );

    let mut cells = Vec::new();
    for dist in [Dist::Uniform, Dist::Zipfian99] {
        for &shards in &shard_counts {
            cells.push((dist, shards));
        }
    }

    let results = sweep_on(cell_threads, &cells, |&(dist, shards)| {
        let clients = CLIENTS_PER_SHARD * shards;
        let p = ExpParams {
            n_keys,
            clients,
            shards,
            // One metadata buffer per client would dominate the per-key
            // footprint at 96 clients; pin the paper's 4-client default.
            meta_bufs: Some(4),
            warmup_ops: 500 * clients as u64,
            measure_ops: 1_500 * clients as u64,
            ..Default::default()
        };
        let builder = p.builder(Protocol::SafeGuess);
        let mut workload = p.workload(WorkloadSpec::B);
        if dist == Dist::Uniform {
            workload.keys = Zipfian::uniform(workload.keys.n());
        }
        let plan = plan_workload(
            p.seed,
            ShardSpec::new(shards),
            &workload,
            &p.run_config(),
            clients,
        );
        let opts = ShardRunOptions {
            preload_keys: Some(env_scaled_keys(p.n_keys)),
            ..Default::default()
        };
        let wall = Instant::now();
        let run = run_sharded_plan(
            &builder,
            p.seed,
            &plan,
            &workload,
            &opts,
            ShardMode::Threads(shard_threads),
        );
        let wall_secs = wall.elapsed().as_secs_f64();
        let stats = run.merged_stats();

        let max_over_mean = |counts: &[u64]| {
            let mean = counts.iter().sum::<u64>() as f64 / counts.len().max(1) as f64;
            counts.iter().copied().max().unwrap_or(0) as f64 / mean.max(1.0)
        };
        // The plan knows every op's owning shard before anything runs: the
        // routed-load imbalance is a pure function of (seed, workload).
        let op_imbalance = max_over_mean(&plan.per_shard_op_counts());
        // The fabric-level view of the same skew: message counts include
        // retries and replica fan-out, so a hot shard's extra quorum
        // traffic shows up here even when op routing alone would hide it.
        let per_shard_msgs: Vec<u64> = run.per_shard_traffic().iter().map(|s| s.messages).collect();
        let msg_imbalance = max_over_mean(&per_shard_msgs);
        CellResult {
            tput_mops: stats.throughput_ops() / 1e6,
            measured_ops: stats.measured_ops,
            op_imbalance,
            msg_imbalance,
            get_json: stats.lat(OpType::Get).summary_json(),
            update_json: stats.lat(OpType::Update).summary_json(),
            wall_secs,
        }
    });

    let mut results = results.into_iter();
    for dist in [Dist::Uniform, Dist::Zipfian99] {
        println!(
            "bench_shards: SWARM-KV, YCSB B mix, {} distribution, {} keys, \
             {CLIENTS_PER_SHARD} clients/shard, one Sim per shard",
            dist.name(),
            n_keys
        );
        println!(
            "{:>7} {:>8} {:>11} {:>13} {:>9} {:>11} {:>11}",
            "shards", "clients", "tput_Mops", "per_client_k", "scale_eff", "op_imbal", "msg_imbal"
        );
        let mut rows = Vec::new();
        let mut wall_rows = Vec::new();
        let mut base_per_client = 0.0;
        let mut base_wall = 0.0;
        for &shards in &shard_counts {
            let r = results.next().expect("one result per cell");
            let clients = CLIENTS_PER_SHARD * shards;
            let per_client = r.tput_mops * 1e3 / clients as f64;
            if shards == 1 {
                base_per_client = per_client;
                base_wall = r.wall_secs;
            }
            // Weak-scaling efficiency: per-client throughput retained
            // relative to the 1-shard cell.
            let eff = per_client / base_per_client;
            println!(
                "{:>7} {:>8} {:>11.2} {:>13.1} {:>9.2} {:>10.2}x {:>10.2}x",
                shards, clients, r.tput_mops, per_client, eff, r.op_imbalance, r.msg_imbalance
            );
            rows.push(format!(
                "{shards},{clients},{:.4},{per_client:.2},{eff:.3},{:.3},{:.3},{}",
                r.tput_mops, r.op_imbalance, r.msg_imbalance, r.measured_ops
            ));
            // Wall-side weak scaling: per-shard work is constant, so with
            // enough shard threads the S-shard cell should cost about what
            // the 1-shard cell does (efficiency ~1.0); on one thread it
            // degrades toward 1/S.
            let wall_eff = if r.wall_secs > 0.0 {
                base_wall / r.wall_secs
            } else {
                1.0
            };
            eprintln!(
                "  wall {}: {:>2} shards: {:.3}s (weak-scaling eff {:.2} at \
                 {shard_threads} shard thread(s))",
                dist.name(),
                shards,
                r.wall_secs,
                wall_eff
            );
            wall_rows.push(format!(
                "{shards},{clients},{:.4},{wall_eff:.3},{shard_threads}",
                r.wall_secs
            ));
            // Machine-readable per-cell summary (ROADMAP item 3's report
            // harness convention). stderr only: stdout must stay
            // bit-identical to the pre-JSON report.
            eprintln!(
                r#"{{"bench":"bench_shards","dist":"{}","shards":{shards},"clients":{clients},"tput_mops":{:.4},"op_imbalance":{:.3},"msg_imbalance":{:.3},"measured_ops":{},"get":{},"update":{},"wall_secs":{:.4}}}"#,
                dist.name(),
                r.tput_mops,
                r.op_imbalance,
                r.msg_imbalance,
                r.measured_ops,
                r.get_json,
                r.update_json,
                r.wall_secs
            );
        }
        write_csv(
            "bench_shards",
            dist.name(),
            "shards,clients,tput_mops,per_client_kops,scale_eff,op_imbalance,msg_imbalance,measured_ops",
            &rows,
        );
        write_csv(
            "bench_shards",
            &format!("{}_wall", dist.name()),
            "shards,clients,wall_secs,wall_weak_eff,shard_threads",
            &wall_rows,
        );
        println!();
    }
    println!("expectation: uniform throughput grows at least linearly with shards");
    println!("(every router scatters its ops over every shard, so per-shard");
    println!("pipelining deepens as clients grow with the shard count); Zipfian");
    println!(".99 concentrates ~8% of ops on the hot key's shard, so imbalance");
    println!("rises well above 1.0x and hot-shard queuing taxes the aggregate.");
    println!("Wall-clock per cell and its weak-scaling efficiency (stderr +");
    println!("*_wall.csv) track the real multi-core speedup of one-Sim-per-shard");
    println!("execution.");
}
