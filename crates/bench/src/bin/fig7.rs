//! Figure 7: per-core throughput–latency of SWARM-KV and DM-ABD, YCSB A and
//! B, varying the number of concurrent operations per client from 1 to 8.
//!
//! Cells run threaded through the sweep driver (`SWARM_BENCH_THREADS`) and
//! merge in deterministic cell order.

use swarm_bench::{run_system, sweep, write_csv, ExpParams, Protocol};
use swarm_workload::WorkloadSpec;

fn main() {
    let base = ExpParams {
        n_keys: 100_000,
        warmup_ops: 30_000,
        measure_ops: 80_000,
        ..Default::default()
    }
    .apply_cli();

    let mut cells = Vec::new();
    for (wl_name, spec) in [("A", WorkloadSpec::A), ("B", WorkloadSpec::B)] {
        for sys in [Protocol::SafeGuess, Protocol::Abd] {
            for conc in 1..=8usize {
                cells.push((wl_name, spec, sys, conc));
            }
        }
    }
    let results = sweep(&cells, |&(_, spec, sys, conc)| {
        let p = ExpParams {
            concurrency: conc,
            ..base.clone()
        };
        let (stats, _, _) = run_system(p.seed, sys, &p, spec, |_| {});
        let kops_per_core = stats.throughput_ops() / 1e3 / p.clients as f64;
        let avg: f64 = {
            let mut sum = 0.0;
            let mut n = 0u64;
            for h in stats.latency.values() {
                sum += h.mean() * h.len() as f64;
                n += h.len() as u64;
            }
            sum / n.max(1) as f64 / 1e3
        };
        (kops_per_core, avg)
    });

    let mut results = results.into_iter();
    for (wl_name, _) in [("A", WorkloadSpec::A), ("B", WorkloadSpec::B)] {
        println!("Figure 7: YCSB {wl_name}, per-core throughput vs average latency");
        println!(
            "{:<10} {:>5} {:>12} {:>12}",
            "system", "conc", "kops/core", "avg_lat_us"
        );
        for sys in [Protocol::SafeGuess, Protocol::Abd] {
            let mut rows = Vec::new();
            for conc in 1..=8usize {
                let (kops_per_core, avg) = results.next().expect("one result per cell");
                println!(
                    "{:<10} {:>5} {:>12.0} {:>12.2}",
                    sys.name(),
                    conc,
                    kops_per_core,
                    avg
                );
                rows.push(format!("{conc},{kops_per_core:.1},{avg:.3}"));
            }
            write_csv(
                "fig7",
                &format!("ycsb{wl_name}_{}", sys.name()),
                "concurrency,kops_per_core,avg_latency_us",
                &rows,
            );
        }
    }
    println!("\npaper: SWARM-KV YCSB A: 264 kops @2.7us (1 op) -> ~640 kops max;");
    println!(
        "       YCSB B: 389 kops @2.4us -> 1030 kops max @5 ops; wall from CPU submission cost"
    );
}
