//! Scenario-engine bench (ROADMAP item 3's report harness): drives the
//! time-phased `swarm_workload::ScenarioSpec` op streams — YCSB A–F
//! including scans, a flash-crowd variant of each (dynamic skew with the
//! hot set rotated mid-run), a TTL-churn scenario (lease-stamped inserts
//! expiring mid-run), and a bimodal large-value scenario — against SWARM-KV
//! and FUSEE on a 4-shard cluster, and renders one JSON + HTML
//! [`swarm_bench::Report`] per scenario under `target/reports/`.
//!
//! See `docs/SCENARIOS.md` for the scenario cookbook and the field-by-field
//! report reference.
//!
//! # Execution model
//!
//! Every cell (scenario × protocol) builds its own seeded `Sim` with a
//! 4-shard `ShardedCluster` and drives the *same* pre-materialized op
//! stream (`ScenarioSpec::ops(seed)` is pure in `(seed, spec)`) through
//! cross-shard routers, so scans exercise the shard-fanout range-read path
//! and per-shard routed-op counts expose the skew each phase creates.
//! Cells run on `SWARM_BENCH_THREADS` OS threads via [`swarm_bench::sweep`]
//! and are merged in deterministic cell order; no per-shard `Sim`s are
//! involved, so `SWARM_SHARD_THREADS` is trivially irrelevant. stdout and
//! every report file are bit-identical at any thread count.
//!
//! **stdout is the deterministic report** (simulated metrics only).
//! Wall-clock seconds per cell go to **stderr**; nothing wall-clock-derived
//! reaches the report files, which is what makes them safe to byte-diff
//! across reruns and hosts (the `scenario-smoke` CI stage does exactly
//! that).
//!
//! Default is a quick mode (~2 K ops per scenario over a 2 K-key space);
//! `--full` scales to 40 K ops over 64 K keys.

use std::rc::Rc;
use std::time::Instant;

use swarm_bench::{env_scaled_keys, sweep, Protocol, Report};
use swarm_fabric::TrafficStats;
use swarm_kv::{run_scenario, ttl_stamp_never, ScenarioRunConfig, StoreBuilder, TtlStore};
use swarm_sim::Sim;
use swarm_workload::{
    scenario_value, ScenarioMix, ScenarioOpClass, ScenarioSpec, TtlSpec, ValueSizeDist,
};

/// Keyspace shards per cell; scans fan out to all of them.
const SHARDS: usize = 4;
/// Router (client) threads per cell.
const CLIENTS: usize = 4;

/// The two protocols every scenario runs on: the paper's system and the
/// strongest baseline with a comparable feature surface.
const SYSTEMS: [(Protocol, &str); 2] = [
    (Protocol::SafeGuess, "swarm-kv"),
    (Protocol::Fusee, "fusee"),
];

struct Cell {
    spec: ScenarioSpec,
    sys: Protocol,
    seed: u64,
}

struct CellResult {
    measured_ops: u64,
    failed_ops: u64,
    scanned_items: u64,
    tput_kops: f64,
    /// `(class name, summary JSON)` per op class, in fixed class order.
    class_json: Vec<(&'static str, String)>,
    get_p50_us: f64,
    get_p99_us: f64,
    routed: Vec<u64>,
    imbalance: f64,
    bounces: u64,
    cache_hits: u64,
    cache_misses: u64,
    traffic: TrafficStats,
    expired_leases: u64,
    wall_secs: f64,
}

fn run_cell(cell: &Cell) -> CellResult {
    let cap = cell.spec.values.max_size();
    let ttl = cell.spec.ttl.is_some();
    // In-n-Out registers (and FUSEE blocks) are fixed-size slots: provision
    // for the largest scenario value, plus the 8-byte expiry stamp when the
    // run goes through a TtlStore.
    let slot = cap + if ttl { 8 } else { 0 };
    let wall = Instant::now();
    let sim = Sim::new(cell.seed);
    let cluster = StoreBuilder::new(cell.sys)
        .shards(SHARDS)
        .value_size(slot)
        .max_clients(CLIENTS)
        .build_sharded(&sim);
    cluster.load_keys(cell.spec.n_keys, |k| {
        let v = scenario_value(k, 0, cap);
        if ttl {
            ttl_stamp_never(&v)
        } else {
            v
        }
    });
    let routers = cluster.routers(CLIENTS);
    let cfg = ScenarioRunConfig {
        seed: cell.seed,
        value_cap: cap,
        ..Default::default()
    };
    let (stats, expired_leases) = if ttl {
        let stores: Vec<_> = routers
            .iter()
            .map(|r| TtlStore::new(&sim, Rc::clone(r)))
            .collect();
        let stats = run_scenario(&sim, &stores, &cell.spec, &cfg);
        let expired = stores.iter().map(|s| s.take_expired().len() as u64).sum();
        (stats, expired)
    } else {
        (run_scenario(&sim, &routers, &cell.spec, &cfg), 0)
    };

    let mut routed = vec![0u64; SHARDS];
    for r in &routers {
        for (s, n) in r.routed_per_shard().into_iter().enumerate() {
            routed[s] += n;
        }
    }
    let mean = routed.iter().sum::<u64>() as f64 / SHARDS as f64;
    let imbalance = routed.iter().copied().max().unwrap_or(0) as f64 / mean.max(1.0);
    let (cache_hits, cache_misses) = routers.iter().fold((0, 0), |(h, m), r| {
        let (ch, cm) = r.cache_stats();
        (h + ch, m + cm)
    });
    let class_json = ScenarioOpClass::all()
        .iter()
        .map(|&c| (c.name(), stats.lat(c).summary_json()))
        .collect();
    let mut get = stats.lat(ScenarioOpClass::Get);
    let (get_p50_us, get_p99_us) = if get.is_empty() {
        (0.0, 0.0)
    } else {
        (get.median() as f64 / 1e3, get.percentile(99.0) as f64 / 1e3)
    };
    CellResult {
        measured_ops: stats.measured_ops,
        failed_ops: stats.failed_ops,
        scanned_items: stats.scanned_items,
        tput_kops: stats.throughput_ops() / 1e3,
        class_json,
        get_p50_us,
        get_p99_us,
        routed,
        imbalance,
        bounces: routers.iter().map(|r| r.wrong_shard_bounces()).sum(),
        cache_hits,
        cache_misses,
        traffic: cluster.stats(),
        expired_leases,
        wall_secs: wall.elapsed().as_secs_f64(),
    }
}

fn ttl_json(spec: &ScenarioSpec) -> String {
    match spec.ttl {
        None => "null".to_string(),
        Some(t) => format!(
            r#"{{"insert_pct":{},"ttl_ns":{},"ttl_keys":{}}}"#,
            t.insert_pct, t.ttl_ns, t.ttl_keys
        ),
    }
}

fn values_json(spec: &ScenarioSpec) -> String {
    match spec.values {
        ValueSizeDist::Fixed(n) => format!(r#"{{"fixed":{n}}}"#),
        ValueSizeDist::Bimodal {
            small,
            large,
            large_pct,
        } => format!(r#"{{"small":{small},"large":{large},"large_pct":{large_pct}}}"#),
    }
}

fn phases_json(spec: &ScenarioSpec) -> String {
    let phases: Vec<String> = spec
        .phases
        .iter()
        .map(|p| {
            format!(
                r#"{{"ops":{},"theta":{:.2},"rotation":{}}}"#,
                p.ops, p.theta, p.rotation
            )
        })
        .collect();
    format!("[{}]", phases.join(","))
}

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    let n_keys = env_scaled_keys(if quick { 2_048 } else { 1 << 16 });
    // The large-value scenario stores 8 KiB slots; keep its keyspace small
    // enough that bulk loading stays a footnote.
    let big_keys = n_keys.min(2_048);
    let base_ops = if quick { 2_100 } else { 42_000 };
    let ops = match swarm_kv::ops_scale() {
        Some(scale) => ((base_ops as f64 * scale) as usize).max(150),
        None => base_ops,
    };

    let mut specs: Vec<ScenarioSpec> = Vec::new();
    for (letter, mix) in ScenarioMix::ycsb_all() {
        let l = letter.to_ascii_lowercase();
        specs.push(ScenarioSpec::ycsb(
            format!("ycsb_{l}_static"),
            mix,
            n_keys,
            ops,
        ));
        specs.push(ScenarioSpec::flash_crowd(
            format!("ycsb_{l}_flash"),
            mix,
            n_keys,
            ops,
        ));
    }
    // 50 µs leases expire well inside even the smoke-scale run, so the
    // expired_leases counter is live at any SWARM_BENCH_OPS_SCALE.
    specs.push(
        ScenarioSpec::ycsb("ttl_churn", ScenarioMix::D, n_keys, ops).ttl(TtlSpec::always(50_000)),
    );
    specs.push(
        ScenarioSpec::ycsb("bigval", ScenarioMix::B, big_keys, ops)
            .values(ValueSizeDist::small_dominant()),
    );

    let cells: Vec<Cell> = specs
        .iter()
        .enumerate()
        .flat_map(|(i, spec)| {
            SYSTEMS.map(|(sys, _)| Cell {
                spec: spec.clone(),
                sys,
                // Both protocols of a scenario share one seed, so they face
                // the byte-identical op stream.
                seed: 0xA11CE + i as u64,
            })
        })
        .collect();

    println!(
        "bench_scenarios: {} scenarios x {} protocols, {SHARDS} shards, {CLIENTS} routers, \
         {n_keys} keys, {ops} ops/scenario",
        specs.len(),
        SYSTEMS.len()
    );
    println!(
        "{:<16} {:>9} {:>7} {:>6} {:>10} {:>9} {:>9} {:>8} {:>7} {:>7}",
        "scenario",
        "system",
        "ops",
        "fail",
        "tput_kops",
        "p50_us",
        "p99_us",
        "scanned",
        "imbal",
        "bounce"
    );

    let results = sweep(&cells, run_cell);

    let mut reports = 0usize;
    for (i, spec) in specs.iter().enumerate() {
        let mut rep = Report::new(
            spec.name.clone(),
            format!("SWARM scenario report: {}", spec.name),
        );
        rep.section("scenario")
            .str("name", &spec.name)
            .int("n_keys", spec.n_keys)
            .int("total_keys", spec.total_keys())
            .int("total_ops", spec.total_ops() as u64)
            .raw("phases", phases_json(spec))
            .raw("values", values_json(spec))
            .raw("ttl", ttl_json(spec))
            .int("scan_max_len", spec.scan_max_len as u64)
            .int("shards", SHARDS as u64)
            .int("clients", CLIENTS as u64);
        for (j, (_, sys_name)) in SYSTEMS.iter().enumerate() {
            let r = &results[i * SYSTEMS.len() + j];
            println!(
                "{:<16} {:>9} {:>7} {:>6} {:>10.1} {:>9.2} {:>9.2} {:>8} {:>6.2}x {:>7}",
                spec.name,
                sys_name,
                r.measured_ops,
                r.failed_ops,
                r.tput_kops,
                r.get_p50_us,
                r.get_p99_us,
                r.scanned_items,
                r.imbalance,
                r.bounces
            );
            eprintln!("  wall {} / {}: {:.3}s", spec.name, sys_name, r.wall_secs);
            let routed = format!(
                "[{}]",
                r.routed
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            );
            rep.section(format!("protocol {sys_name}"))
                .str("protocol", sys_name)
                .int("measured_ops", r.measured_ops)
                .int("failed_ops", r.failed_ops)
                .int("scanned_items", r.scanned_items)
                .int("expired_leases", r.expired_leases)
                .num("tput_kops", r.tput_kops);
            for (class, json) in &r.class_json {
                rep.raw(&format!("lat_{class}"), json.clone());
            }
            rep.raw("routed_per_shard", routed)
                .num("shard_imbalance", r.imbalance)
                .int("wrong_shard_bounces", r.bounces)
                .int("cache_hits", r.cache_hits)
                .int("cache_misses", r.cache_misses)
                .int("fabric_messages", r.traffic.messages)
                .int("fabric_bytes", r.traffic.bytes)
                .int("hedges_fired", r.traffic.hedges_fired)
                .int("hedges_won", r.traffic.hedges_won)
                .int("duplicates_discarded", r.traffic.duplicates_discarded);
        }
        match rep.write() {
            Ok((json_path, html_path)) => {
                reports += 1;
                println!(
                    "  report: {} + {}",
                    json_path.display(),
                    html_path.display()
                );
            }
            Err(e) => eprintln!("warn: cannot write report {}: {e}", spec.name),
        }
    }
    println!("\nwrote {reports} scenario reports (JSON + HTML) under target/reports/");
    println!("expectation: flash-crowd phases rotate the hot set, so the hot shard");
    println!("moves mid-run and per-shard routed counts even out relative to the");
    println!("static Zipfian cells, while the crowd phase's p99 reflects the");
    println!("tighter skew; YCSB-E scans fan out to all shards (scanned > 0);");
    println!("ttl_churn retires every leased key (expired_leases > 0); bigval's");
    println!("8 KiB tail stretches update tails without moving the small-value");
    println!("median.");
}
