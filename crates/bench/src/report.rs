//! Machine-diffable scenario reports: a [`Report`] collects ordered
//! key/value sections and renders them as JSON (hand-rolled — the harness
//! has no serde) and as a self-contained HTML page, both written under
//! `target/reports/`.
//!
//! # Conventions
//!
//! * Field order is insertion order, in both renderings, so two runs of
//!   the same binary produce byte-identical files — the property the
//!   `scenario-smoke` CI stage diffs on.
//! * Values are stored as **raw JSON fragments**: [`Report::num`],
//!   [`Report::int`] and [`Report::str`] cover the common scalars, and
//!   [`Report::raw`] splices pre-rendered JSON such as
//!   `Histogram::summary_json` output or a `[1,2,3]` array.
//! * Nothing wall-clock-derived belongs in a report; keep elapsed-time
//!   numbers on stderr like every other bench binary.
//!
//! [`validate_json`] is a minimal recursive-descent checker used by the
//! writers (and the CI smoke stage) to guarantee the spliced fragments
//! still add up to well-formed JSON.

use std::io::Write as _;
use std::path::PathBuf;

/// One titled group of ordered `(key, raw JSON value)` fields.
struct Section {
    title: String,
    fields: Vec<(String, String)>,
}

/// An ordered, sectioned report rendered to JSON and HTML (module docs).
pub struct Report {
    name: String,
    title: String,
    sections: Vec<Section>,
}

impl Report {
    /// A new empty report. `name` becomes the file stem under
    /// `target/reports/`; `title` heads the HTML page.
    pub fn new(name: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            name: name.into(),
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// The file stem this report writes under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Opens a new section; subsequent field adders append to it.
    pub fn section(&mut self, title: impl Into<String>) -> &mut Self {
        self.sections.push(Section {
            title: title.into(),
            fields: Vec::new(),
        });
        self
    }

    fn push(&mut self, key: &str, raw: String) -> &mut Self {
        let sec = self
            .sections
            .last_mut()
            .expect("open a section before adding report fields");
        sec.fields.push((key.to_string(), raw));
        self
    }

    /// Adds a float field (finite values only; rendered with 4 decimals so
    /// reruns are byte-identical).
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        assert!(value.is_finite(), "JSON has no encoding for {value}");
        self.push(key, format!("{value:.4}"))
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.push(key, value.to_string())
    }

    /// Adds a string field (escaped).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.push(key, format!("\"{}\"", json_escape(value)))
    }

    /// Splices a pre-rendered JSON fragment (e.g. a histogram summary or
    /// an array literal); validated when the report is rendered.
    pub fn raw(&mut self, key: &str, raw_json: impl Into<String>) -> &mut Self {
        self.push(key, raw_json.into())
    }

    /// The JSON rendering (validated; panics if a [`Report::raw`] fragment
    /// was malformed).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"report\":\"");
        s.push_str(&json_escape(&self.name));
        s.push_str("\",\"title\":\"");
        s.push_str(&json_escape(&self.title));
        s.push_str("\",\"sections\":[");
        for (i, sec) in self.sections.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"section\":\"");
            s.push_str(&json_escape(&sec.title));
            s.push('"');
            for (k, v) in &sec.fields {
                s.push_str(",\"");
                s.push_str(&json_escape(k));
                s.push_str("\":");
                s.push_str(v);
            }
            s.push('}');
        }
        s.push_str("]}");
        if let Err(e) = validate_json(&s) {
            panic!("report {:?} rendered malformed JSON: {e}", self.name);
        }
        s
    }

    /// The self-contained HTML rendering (inline CSS, no external assets).
    pub fn to_html(&self) -> String {
        let mut h = String::new();
        h.push_str("<!doctype html>\n<html><head><meta charset=\"utf-8\">\n<title>");
        h.push_str(&html_escape(&self.title));
        h.push_str("</title>\n<style>\n");
        h.push_str(concat!(
            "body{font:14px/1.5 -apple-system,Segoe UI,sans-serif;margin:2rem auto;",
            "max-width:60rem;color:#222}\n",
            "h1{font-size:1.4rem;border-bottom:2px solid #444;padding-bottom:.3rem}\n",
            "h2{font-size:1.05rem;margin-top:1.6rem}\n",
            "table{border-collapse:collapse;width:100%}\n",
            "td,th{border:1px solid #ccc;padding:.25rem .6rem;text-align:left}\n",
            "th{background:#f0f0f0}\n",
            "td.v{font-family:ui-monospace,monospace;white-space:pre-wrap}\n",
            "p.meta{color:#777;font-size:.85rem}\n",
        ));
        h.push_str("</style></head>\n<body>\n<h1>");
        h.push_str(&html_escape(&self.title));
        h.push_str("</h1>\n<p class=\"meta\">report: ");
        h.push_str(&html_escape(&self.name));
        h.push_str(" &middot; deterministic simulated metrics only</p>\n");
        for sec in &self.sections {
            h.push_str("<h2>");
            h.push_str(&html_escape(&sec.title));
            h.push_str("</h2>\n<table>\n<tr><th>field</th><th>value</th></tr>\n");
            for (k, v) in &sec.fields {
                h.push_str("<tr><td>");
                h.push_str(&html_escape(k));
                h.push_str("</td><td class=\"v\">");
                h.push_str(&html_escape(v));
                h.push_str("</td></tr>\n");
            }
            h.push_str("</table>\n");
        }
        h.push_str("</body></html>\n");
        h
    }

    /// Writes `target/reports/<name>.json` and `.html`, returning the two
    /// paths. The JSON is validated before anything touches disk.
    pub fn write(&self) -> std::io::Result<(PathBuf, PathBuf)> {
        let json = self.to_json();
        let html = self.to_html();
        let dir = std::path::Path::new("target/reports");
        std::fs::create_dir_all(dir)?;
        let json_path = dir.join(format!("{}.json", self.name));
        let html_path = dir.join(format!("{}.html", self.name));
        std::fs::File::create(&json_path)?.write_all(json.as_bytes())?;
        std::fs::File::create(&html_path)?.write_all(html.as_bytes())?;
        Ok((json_path, html_path))
    }
}

/// Escapes a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Checks that `s` is one complete, well-formed JSON value (objects,
/// arrays, strings, numbers, booleans, null). Returns the byte offset and
/// a short description on the first violation. This is a validator, not a
/// parser — nothing is materialized, so arbitrarily large reports check in
/// one pass.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, at: 0 };
    p.ws();
    p.value()?;
    p.ws();
    if p.at != b.len() {
        return Err(format!("trailing bytes at offset {}", p.at));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at offset {}", self.at)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.at).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.at += 1
                        }
                        Some(b'u') => {
                            self.at += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.at += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.at += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let digits = |p: &mut Self| {
            let start = p.at;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.at += 1;
            }
            p.at > start
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_ordered_valid_json() {
        let mut r = Report::new("unit", "Unit \"quoted\" report");
        r.section("cell a")
            .str("protocol", "safe-guess")
            .int("ops", 1200)
            .num("tput_mops", 3.25)
            .raw("get", r#"{"count":0}"#)
            .raw("routed", "[3,1,2]");
        r.section("cell b").int("ops", 7);
        let json = r.to_json();
        validate_json(&json).expect("report JSON validates");
        // Insertion order is preserved — the byte-diff property.
        let a = json.find("\"protocol\"").unwrap();
        let b = json.find("\"ops\"").unwrap();
        let c = json.find("\"tput_mops\"").unwrap();
        assert!(a < b && b < c);
        assert_eq!(r.to_json(), json, "rendering is pure");
        let html = r.to_html();
        assert!(html.contains("&quot;quoted&quot;"));
        assert!(html.contains("<td class=\"v\">[3,1,2]</td>"));
    }

    #[test]
    #[should_panic(expected = "malformed JSON")]
    fn malformed_raw_fragment_is_rejected() {
        let mut r = Report::new("bad", "bad");
        r.section("s").raw("oops", "{not json");
        let _ = r.to_json();
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            r#"{"a":[1,2.5,-3e4,"x\n",true,false,null],"b":{"c":{}}}"#,
            "  42  ",
            r#""é""#,
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            r#"{"a":}"#,
            "01e",
            "1.",
            "nul",
            "\"\u{1}\"",
            "{} {}",
            r#"{"a":1,}"#,
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
