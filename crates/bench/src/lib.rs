//! Experiment harness for the SWARM evaluation (§7).
//!
//! One binary per table/figure regenerates the corresponding result:
//!
//! | binary  | reproduces |
//! |---------|------------|
//! | `table2`| roundtrips per op, common case & P99 |
//! | `fig5`  | latency CDFs, 4 systems, YCSB B |
//! | `fig6`  | latency CDFs with 1 M keys and 5 MiB caches |
//! | `fig7`  | per-core throughput–latency, 1–8 concurrent ops |
//! | `fig8`  | scalability, 1–64 clients |
//! | `fig9`  | value-size sweep, In-n-Out vs pure out-of-place |
//! | `fig10` | replication factor 3/5/7 |
//! | `table3`| resource consumption |
//! | `fig11` | memory-node crash timeline |
//! | `fig12` | extreme contention on a single key |
//! | `fig13` | number of In-n-Out metadata buffers |
//!
//! Beyond the paper, `bench_multiget` measures the batch-size-vs-latency
//! scaling of the pipelined `KvStoreExt` multi-ops, and `bench_shards`
//! sweeps the sharded keyspace (1→16 shards × {uniform, Zipfian .99}),
//! reporting aggregate-throughput weak scaling and per-shard load
//! imbalance. `bench_scenarios` drives the time-phased scenario engine
//! (`swarm_workload::ScenarioSpec`) — YCSB A–F including scans, flash-crowd
//! skew rotation, TTL churn, and bimodal value sizes — and renders a
//! JSON + HTML [`Report`] per scenario under `target/reports/` (see
//! `docs/SCENARIOS.md` for the cookbook).
//!
//! Binaries accept `--full` for paper-scale op counts (default is a quick
//! mode sized to finish in seconds each) and print the same rows/series the
//! paper reports, plus CSVs under `target/experiments/`.
//!
//! The long sweep binaries (`fig7`–`fig9`, `fig13`) run their independent
//! `(seed, config)` cells on `SWARM_BENCH_THREADS` OS threads (default: all
//! cores) via [`sweep`]; results are merged in deterministic cell order, so
//! every number is identical at any thread count. `bench_shards` adds a
//! second level: inside each cell, every shard runs on its own `Sim` driven
//! by `SWARM_SHARD_THREADS` OS threads (`swarm_kv::run_sharded_plan`), and
//! [`composed_threads`] caps cells × shards to the available cores.
//!
//! Every system under test is built through [`swarm_kv::StoreBuilder`], so
//! the four protocols share one construction and measurement path.

#![warn(missing_docs)]

mod report;
mod sweep;

pub use report::{json_escape, validate_json, Report};
pub use sweep::{cap_thread_product, composed_threads, sweep, sweep_on, sweep_threads};

use std::io::Write as _;
use std::rc::Rc;

use swarm_kv::{
    CacheCapacity, KvStore, RunConfig, RunStats, ShardRouter, ShardedCluster, StoreBuilder,
    StoreClient, StoreCluster,
};
use swarm_sim::{Histogram, Sim};
use swarm_workload::{OpType, Workload, WorkloadSpec};

pub use swarm_kv::{run_workload, Protocol};
// The warn-once env-knob convention shared by every harness variable
// (`SWARM_BENCH_OPS_SCALE`, `SWARM_BENCH_THREADS`, `SWARM_CHAOS_SEEDS`);
// defined beside the runner because `ops_scale` sits below this crate.
pub use swarm_kv::{env_knob, parse_knob};

/// Common experiment parameters (defaults follow §7: 3 replicas, 100 K keys,
/// 64 B values, 4 clients, warm-up then measurement).
#[derive(Debug, Clone)]
pub struct ExpParams {
    /// RNG seed.
    pub seed: u64,
    /// Number of keys.
    pub n_keys: u64,
    /// Value size in bytes.
    pub value_size: usize,
    /// Number of clients.
    pub clients: usize,
    /// Concurrent ops per client.
    pub concurrency: usize,
    /// Replicas per key.
    pub replicas: usize,
    /// In-n-Out metadata buffers per key (`None` = one per client, the
    /// paper's recommendation).
    pub meta_bufs: Option<usize>,
    /// In-place data at the designated replica (`false` = "Out-P.").
    pub inplace: bool,
    /// Warm-up ops (total).
    pub warmup_ops: u64,
    /// Measured ops (total).
    pub measure_ops: u64,
    /// Location-cache entries per client (`None` = unbounded).
    pub cache_entries: Option<usize>,
    /// Keyspace shards (1 = the paper's single replica group; more builds
    /// a `ShardedCluster` driven through cross-shard routers).
    pub shards: usize,
}

impl Default for ExpParams {
    fn default() -> Self {
        ExpParams {
            seed: 42,
            n_keys: 100_000,
            value_size: 64,
            clients: 4,
            concurrency: 1,
            replicas: 3,
            meta_bufs: None,
            inplace: true,
            warmup_ops: 50_000,
            measure_ops: 100_000,
            cache_entries: None,
            shards: 1,
        }
    }
}

impl ExpParams {
    /// Scales warm-up/measurement to the paper's 1 M + 1 M when `--full`.
    pub fn apply_cli(mut self) -> Self {
        if std::env::args().any(|a| a == "--full") {
            self.warmup_ops = 1_000_000;
            self.measure_ops = 1_000_000;
        }
        self
    }

    /// The [`StoreBuilder`] for this experiment and system (protocol
    /// invariants — RAW unreplicated, DM-ABD out-of-place — are pinned by
    /// the builder itself). Carries `shards` too, so a multi-shard
    /// `ExpParams` fed to the unsharded [`build`] fails loudly instead of
    /// silently running one replica group.
    pub fn builder(&self, sys: Protocol) -> StoreBuilder {
        StoreBuilder::new(sys)
            .shards(self.shards)
            .value_size(self.value_size)
            .replicas(self.replicas)
            .max_clients(self.clients.max(1))
            .meta_bufs(self.meta_bufs.unwrap_or(self.clients.max(1)))
            .inplace(self.inplace)
            .cache(match self.cache_entries {
                Some(n) => CacheCapacity::Entries(n),
                None => CacheCapacity::Unbounded,
            })
    }

    /// The YCSB workload object for this experiment (keyspace shrunk under
    /// `SWARM_BENCH_OPS_SCALE`, consistently with [`build`]).
    pub fn workload(&self, spec: WorkloadSpec) -> Workload {
        Workload::ycsb(spec, env_scaled_keys(self.n_keys), self.value_size)
    }

    /// The runner configuration for this experiment.
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            warmup_ops: self.warmup_ops,
            measure_ops: self.measure_ops,
            concurrency: self.concurrency,
            ..Default::default()
        }
    }
}

/// A fully built system under test: the cluster plus one client handle per
/// client thread, all four protocols behind the same types.
pub struct Testbed {
    /// The cluster-side state.
    pub cluster: StoreCluster,
    /// One client handle per client thread.
    pub clients: Vec<Rc<StoreClient>>,
}

/// The keyspace size after applying `SWARM_BENCH_OPS_SCALE` (the smoke-test
/// knob, see `swarm_kv::ops_scale`): bulk loading dominates wall time in
/// unoptimized builds, and key-distribution properties do not matter for a
/// smoke run. Used by both [`build`] and [`ExpParams::workload`] so loaded
/// and sampled keyspaces always agree.
pub fn env_scaled_keys(n_keys: u64) -> u64 {
    match swarm_kv::ops_scale() {
        Some(scale) => ((n_keys as f64 * scale) as u64).clamp(64.min(n_keys), n_keys),
        None => n_keys,
    }
}

/// Builds (and bulk-loads) one system under test.
pub fn build(sim: &Sim, sys: Protocol, p: &ExpParams) -> Testbed {
    let n_keys = env_scaled_keys(p.n_keys);
    let wl = p.workload(WorkloadSpec::C);
    let cluster = p.builder(sys).build_cluster(sim);
    cluster.load_keys(n_keys, |k| wl.value_for(k, 0));
    let clients = cluster.clients(p.clients);
    apply_hyperthreading(p.clients, clients.iter().map(|c| c.endpoint()));
    Testbed { cluster, clients }
}

/// The testbed has 32 physical client cores (Table 1: 4 servers with
/// 2 x 8c/16t); beyond 32 clients, threads share cores via hyperthreading
/// and per-thread CPU work slows down (§7.3).
fn apply_hyperthreading(n: usize, endpoints: impl Iterator<Item = Rc<swarm_fabric::Endpoint>>) {
    if n > 32 {
        for ep in endpoints {
            ep.set_cpu_scale(1.5);
        }
    }
}

/// A fully built *sharded* system under test: N independent shard clusters
/// plus one cross-shard router per client thread.
pub struct ShardedTestbed {
    /// The sharded cluster (per-shard fabrics, indexes, memberships).
    pub cluster: ShardedCluster,
    /// One router per client thread, each with a client on every shard
    /// sharing that thread's CPU core.
    pub routers: Vec<Rc<ShardRouter>>,
}

/// Builds (and bulk-loads) one sharded system under test: `p.shards`
/// independent shard clusters, `p.clients` routers.
pub fn build_sharded(sim: &Sim, sys: Protocol, p: &ExpParams) -> ShardedTestbed {
    let n_keys = env_scaled_keys(p.n_keys);
    let wl = p.workload(WorkloadSpec::C);
    let cluster = p.builder(sys).build_sharded(sim);
    cluster.load_keys(n_keys, |k| wl.value_for(k, 0));
    let routers = cluster.routers(p.clients);
    // Hyperthread sharing taxes every endpoint a crowded thread submits
    // through — a router has one per shard, all on its one core.
    apply_hyperthreading(
        p.clients,
        routers
            .iter()
            .flat_map(|r| (0..cluster.num_shards()).map(move |s| r.shard_client(s).endpoint())),
    );
    ShardedTestbed { cluster, routers }
}

/// Builds, runs the workload, and returns the stats (plus the sim and the
/// testbed for resource inspection).
pub fn run_system(
    seed: u64,
    sys: Protocol,
    p: &ExpParams,
    spec: WorkloadSpec,
    tweak: impl FnOnce(&mut RunConfig),
) -> (RunStats, Sim, Testbed) {
    let sim = Sim::new(seed);
    let bed = build(&sim, sys, p);
    let mut rc = p.run_config();
    tweak(&mut rc);
    let wl = p.workload(spec);
    let stats = run_workload(&sim, &bed.clients, &wl, &rc);
    (stats, sim, bed)
}

/// Prints a latency summary and writes its CDF as a CSV series.
pub fn report_cdf(exp: &str, series_name: &str, hist: &mut Histogram, points: usize) {
    if hist.is_empty() {
        println!("  {series_name}: (no samples)");
        return;
    }
    println!(
        "  {series_name}: median={:.2}us p1={:.2}us p99={:.2}us mean={:.2}us n={}",
        hist.median() as f64 / 1e3,
        hist.percentile(1.0) as f64 / 1e3,
        hist.percentile(99.0) as f64 / 1e3,
        hist.mean() / 1e3,
        hist.len(),
    );
    let rows: Vec<String> = hist
        .cdf(points)
        .into_iter()
        .map(|(ns, pct)| format!("{:.3},{:.2}", ns as f64 / 1e3, pct))
        .collect();
    write_csv(exp, series_name, "latency_us,percentile", &rows);
}

/// Writes experiment output under `target/experiments/<exp>/<series>.csv`.
pub fn write_csv(exp: &str, series: &str, header: &str, rows: &[String]) {
    let dir = std::path::Path::new("target/experiments").join(exp);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warn: cannot create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{}.csv", series.replace([' ', '/'], "_")));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{header}");
            for r in rows {
                let _ = writeln!(f, "{r}");
            }
        }
        Err(e) => eprintln!("warn: cannot write {path:?}: {e}"),
    }
}

/// Median get/update latency in µs for quick tables.
pub fn medians(stats: &RunStats) -> (f64, f64) {
    let m = |mut h: Histogram| {
        if h.is_empty() {
            f64::NAN
        } else {
            h.median() as f64 / 1e3
        }
    };
    (m(stats.lat(OpType::Get)), m(stats.lat(OpType::Update)))
}
