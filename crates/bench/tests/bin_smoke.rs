//! Smoke test: every figure/table binary runs to completion in quick mode
//! (op counts shrunk via `SWARM_BENCH_OPS_SCALE`), exits 0, and emits
//! non-empty CSV output under `target/experiments/`.

use std::path::Path;
use std::process::Command;

/// `(name, path)` of every bench binary, via Cargo's test-time env vars.
fn binaries() -> Vec<(&'static str, &'static str)> {
    vec![
        ("table2", env!("CARGO_BIN_EXE_table2")),
        ("table3", env!("CARGO_BIN_EXE_table3")),
        ("fig5", env!("CARGO_BIN_EXE_fig5")),
        ("fig6", env!("CARGO_BIN_EXE_fig6")),
        ("fig7", env!("CARGO_BIN_EXE_fig7")),
        ("fig8", env!("CARGO_BIN_EXE_fig8")),
        ("fig9", env!("CARGO_BIN_EXE_fig9")),
        ("fig10", env!("CARGO_BIN_EXE_fig10")),
        ("fig11", env!("CARGO_BIN_EXE_fig11")),
        ("fig12", env!("CARGO_BIN_EXE_fig12")),
        ("fig13", env!("CARGO_BIN_EXE_fig13")),
        ("bench_multiget", env!("CARGO_BIN_EXE_bench_multiget")),
    ]
}

#[test]
fn every_bench_binary_runs_and_writes_csv() {
    let workdir = std::env::temp_dir().join(format!("swarm-bench-smoke-{}", std::process::id()));
    for (name, exe) in binaries() {
        let cwd = workdir.join(name);
        std::fs::create_dir_all(&cwd).unwrap();
        let out = Command::new(exe)
            .current_dir(&cwd)
            // Tiny op counts: enough to exercise the full pipeline.
            .env("SWARM_BENCH_OPS_SCALE", "0.01")
            .output()
            .unwrap_or_else(|e| panic!("{name}: failed to spawn: {e}"));
        assert!(
            out.status.success(),
            "{name}: exited {:?}\nstdout:\n{}\nstderr:\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        assert!(
            !out.stdout.is_empty(),
            "{name}: produced no stdout in quick mode"
        );
        let exp = cwd.join("target/experiments").join(name);
        let csvs = non_empty_csvs(&exp);
        assert!(
            !csvs.is_empty(),
            "{name}: no non-empty CSV under {}",
            exp.display()
        );
    }
    let _ = std::fs::remove_dir_all(&workdir);
}

/// CSV files under `dir` that contain at least a header and one data row.
fn non_empty_csvs(dir: &Path) -> Vec<std::path::PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .filter(|p| {
            std::fs::read_to_string(p).is_ok_and(|s| {
                let mut lines = s.lines().filter(|l| !l.trim().is_empty());
                lines.next().is_some() && lines.next().is_some()
            })
        })
        .collect()
}
