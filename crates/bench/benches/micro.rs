//! Criterion micro-benchmarks for the building blocks: the hash validating
//! In-n-Out's in-place reads, the Zipfian sampler driving YCSB, raw
//! simulator event throughput, and full simulated KV operations (wall-clock
//! cost of simulating one SWARM-KV / DM-ABD / RAW op end to end).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use swarm_bench::{build, ExpParams, Protocol};
use swarm_kv::KvStore;
use swarm_sim::Sim;
use swarm_workload::Zipfian;

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("xxh64");
    for size in [64usize, 1024, 8192] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| swarm_core::xxh64(black_box(&data), 42))
        });
    }
    g.finish();
}

fn bench_zipfian(c: &mut Criterion) {
    let z = Zipfian::ycsb(1_000_000);
    let mut x = 0.1f64;
    c.bench_function("zipfian_sample", |b| {
        b.iter(|| {
            x = (x * 1103515245.0 + 12345.0) % 1.0;
            black_box(z.sample(x.abs()))
        })
    });
}

fn bench_sim_events(c: &mut Criterion) {
    c.bench_function("sim_10k_timer_events", |b| {
        b.iter_batched(
            || Sim::new(7),
            |sim| {
                let s = sim.clone();
                sim.spawn(async move {
                    for _ in 0..10_000 {
                        s.sleep_ns(10).await;
                    }
                });
                sim.run()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_kv_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated_kv_op");
    for sys in [Protocol::Raw, Protocol::SafeGuess, Protocol::Abd] {
        g.bench_function(format!("{}_get+update", sys.name()), |b| {
            b.iter_batched(
                || {
                    let sim = Sim::new(11);
                    let p = ExpParams {
                        n_keys: 64,
                        warmup_ops: 0,
                        measure_ops: 0,
                        ..Default::default()
                    };
                    let bed = build(&sim, sys, &p);
                    (sim, bed)
                },
                |(sim, bed)| {
                    let c0 = std::rc::Rc::clone(&bed.clients[0]);
                    sim.block_on(async move {
                        black_box(c0.get(1).await.unwrap());
                        c0.update(1, black_box(vec![7u8; 64])).await.unwrap();
                    });
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_zipfian,
    bench_sim_events,
    bench_kv_ops
);
criterion_main!(benches);
