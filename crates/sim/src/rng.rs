//! Deterministic RNG streams: the shared simulation stream, or private
//! forks of it.
//!
//! Historically every random draw — wire jitter, clock offsets, workload
//! sampling — came from the one seeded generator inside [`Sim`]. That is
//! fine for a single cluster, but it couples otherwise independent
//! subsystems: an extra draw in one (say, a fault-injected message drop)
//! shifts the stream for everything built on the same `Sim`, so a fault
//! plan aimed at one shard would perturb every other shard's execution.
//!
//! [`SimRng`] decouples them. A handle is either *shared* — delegating to
//! the `Sim`'s global stream, byte-for-byte compatible with the historical
//! behavior — or *private*: its own generator seeded purely from
//! `(simulation seed, label)` by [`Sim::fork_rng`], consuming nothing from
//! the global stream. Two runs with the same seed give every
//! `fork_rng(label)` the same draw sequence, regardless of what any other
//! stream does in between — which is exactly the isolation sharded
//! clusters need.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::executor::Sim;

/// A deterministic random stream: the simulation's shared stream, or a
/// private fork of it. Cheaply cloneable; clones share the same state.
#[derive(Clone)]
pub struct SimRng {
    kind: Kind,
}

#[derive(Clone)]
enum Kind {
    /// Delegates to the `Sim`'s global generator (the historical behavior).
    Shared(Sim),
    /// An independent generator; draws consume nothing from the global
    /// stream.
    Private(Rc<RefCell<SmallRng>>),
}

/// splitmix64 finalizer: full-avalanche mixing for seed derivation.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// The shared stream of `sim` (draws interleave with every other shared
    /// user, exactly like calling `sim.rand_*` directly).
    pub fn shared(sim: &Sim) -> Self {
        SimRng {
            kind: Kind::Shared(sim.clone()),
        }
    }

    /// A private stream seeded from `(seed, label)` (used by
    /// [`Sim::fork_rng`]).
    pub(crate) fn forked(seed: u64, label: u64) -> Self {
        let derived = splitmix64(seed ^ splitmix64(label));
        SimRng {
            kind: Kind::Private(Rc::new(RefCell::new(SmallRng::seed_from_u64(derived)))),
        }
    }

    /// The exact stream `Sim::new(seed).fork_rng(label)` would return,
    /// without needing a `Sim`.
    ///
    /// This is the bridge between one *root seed* and many independent
    /// simulations: every `Sim::new(seed)` — however many of them exist, on
    /// whatever threads — forks the same private stream for the same label,
    /// and this constructor lets a workload planner draw from those streams
    /// *before* (or without) building any simulation. The one-`Sim`-per-
    /// shard driver in `swarm-kv` leans on this: shard simulations all carry
    /// the root seed, per-shard divergence comes entirely from fork labels,
    /// and the pre-partitioned op streams are planned from the same labels
    /// on the coordinating thread.
    pub fn from_seed(seed: u64, label: u64) -> Self {
        Self::forked(seed, label)
    }

    /// True if this handle draws from a private fork rather than the shared
    /// stream.
    pub fn is_private(&self) -> bool {
        matches!(self.kind, Kind::Private(_))
    }

    /// Draws a uniformly random `u64`.
    pub fn rand_u64(&self) -> u64 {
        match &self.kind {
            Kind::Shared(sim) => sim.rand_u64(),
            Kind::Private(rng) => rng.borrow_mut().random(),
        }
    }

    /// Draws a uniformly random value in `[0, 1)`.
    pub fn rand_f64(&self) -> f64 {
        match &self.kind {
            Kind::Shared(sim) => sim.rand_f64(),
            Kind::Private(rng) => rng.borrow_mut().random::<f64>(),
        }
    }

    /// Draws a uniformly random value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn rand_range(&self, lo: u64, hi: u64) -> u64 {
        match &self.kind {
            Kind::Shared(sim) => sim.rand_range(lo, hi),
            Kind::Private(rng) => {
                assert!(lo < hi, "empty range");
                rng.borrow_mut().random_range(lo..hi)
            }
        }
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            Kind::Shared(_) => f.write_str("SimRng::Shared"),
            Kind::Private(_) => f.write_str("SimRng::Private"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_handle_is_the_global_stream() {
        // Interleaved draws through a shared handle and through the sim must
        // come from one stream: a second seeded sim replays the merged
        // sequence.
        let sim = Sim::new(9);
        let rng = SimRng::shared(&sim);
        let merged = [rng.rand_u64(), sim.rand_u64(), rng.rand_u64()];
        let replay = Sim::new(9);
        let expect = [replay.rand_u64(), replay.rand_u64(), replay.rand_u64()];
        assert_eq!(merged, expect);
        assert!(!rng.is_private());
    }

    #[test]
    fn forks_are_independent_of_global_draws() {
        // Same (seed, label) must yield the same fork stream no matter how
        // many global draws happen around it.
        let a = {
            let sim = Sim::new(7);
            let f = sim.fork_rng(3);
            (0..4).map(|_| f.rand_u64()).collect::<Vec<_>>()
        };
        let b = {
            let sim = Sim::new(7);
            for _ in 0..100 {
                sim.rand_u64(); // global churn a fault plan might cause
            }
            let f = sim.fork_rng(3);
            sim.rand_u64();
            (0..4).map(|_| f.rand_u64()).collect::<Vec<_>>()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn forks_do_not_consume_the_global_stream() {
        let plain = {
            let sim = Sim::new(5);
            [sim.rand_u64(), sim.rand_u64()]
        };
        let with_fork = {
            let sim = Sim::new(5);
            let f = sim.fork_rng(1);
            let first = sim.rand_u64();
            f.rand_u64();
            [first, sim.rand_u64()]
        };
        assert_eq!(plain, with_fork);
    }

    #[test]
    fn distinct_labels_and_seeds_give_distinct_streams() {
        let sim = Sim::new(11);
        let a = sim.fork_rng(0);
        let b = sim.fork_rng(1);
        assert_ne!(
            (0..4).map(|_| a.rand_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.rand_u64()).collect::<Vec<_>>()
        );
        let other_seed = Sim::new(12).fork_rng(0);
        let again = Sim::new(11).fork_rng(0);
        assert_ne!(again.rand_u64(), other_seed.rand_u64());
        assert!(again.is_private());
    }

    #[test]
    fn from_seed_matches_fork_rng() {
        // The sim-free constructor must be byte-compatible with forking off
        // a live simulation — it is how pre-planned workload streams and
        // per-shard simulations on other threads line up.
        let via_sim: Vec<u64> = {
            let f = Sim::new(77).fork_rng(0xD00D);
            (0..8).map(|_| f.rand_u64()).collect()
        };
        let direct: Vec<u64> = {
            let f = SimRng::from_seed(77, 0xD00D);
            (0..8).map(|_| f.rand_u64()).collect()
        };
        assert_eq!(via_sim, direct);
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let f = Sim::new(2).fork_rng(0xABCD);
        for _ in 0..1000 {
            let v = f.rand_range(10, 20);
            assert!((10..20).contains(&v));
        }
        let x = f.rand_f64();
        assert!((0.0..1.0).contains(&x));
    }
}
