//! Latency jitter distributions.
//!
//! Real RDMA roundtrip latencies are tightly concentrated with a long right
//! tail (switch queuing, cache misses, occasional preemption). We model the
//! per-message wire jitter as a lognormal around a base value plus a rare
//! heavy-tail spike; this reproduces the shape of the paper's latency CDFs
//! (steep body, visible P99 shoulder) without hardware.
//!
//! Implemented from scratch on top of uniform `f64`s (Box–Muller) so we do
//! not need `rand_distr`.

use crate::executor::Sim;
use crate::rng::SimRng;
use crate::time::Nanos;

/// A jitter model: lognormal body plus a rare additive tail spike.
#[derive(Debug, Clone, Copy)]
pub struct Jitter {
    /// Median of the lognormal body, in nanoseconds.
    pub median_ns: f64,
    /// Sigma of the underlying normal (0 = deterministic).
    pub sigma: f64,
    /// Probability of an additional tail spike per sample.
    pub tail_prob: f64,
    /// Mean of the (exponential) tail spike, in nanoseconds.
    pub tail_mean_ns: f64,
}

impl Jitter {
    /// A deterministic "jitter" that always returns `median_ns`.
    pub fn fixed(median_ns: f64) -> Self {
        Jitter {
            median_ns,
            sigma: 0.0,
            tail_prob: 0.0,
            tail_mean_ns: 0.0,
        }
    }

    /// Standard fabric jitter used by the evaluation: a narrow lognormal with
    /// a ~0.7% exponential tail.
    pub fn fabric(median_ns: f64) -> Self {
        Jitter {
            median_ns,
            sigma: 0.06,
            tail_prob: 0.007,
            tail_mean_ns: 900.0,
        }
    }

    /// Draws one sample from the simulation's shared stream, in
    /// nanoseconds.
    pub fn sample(&self, sim: &Sim) -> Nanos {
        self.sample_rng(&SimRng::shared(sim))
    }

    /// Draws one sample from the given stream, in nanoseconds. Subsystems
    /// with a private [`SimRng`] (e.g. per-shard fabrics) use this so their
    /// jitter draws cannot perturb any other stream.
    pub fn sample_rng(&self, rng: &SimRng) -> Nanos {
        let mut v = self.median_ns;
        if self.sigma > 0.0 {
            let z = standard_normal_rng(rng);
            v *= (self.sigma * z).exp();
        }
        if self.tail_prob > 0.0 && rng.rand_f64() < self.tail_prob {
            v += exponential_rng(rng, self.tail_mean_ns);
        }
        v.max(0.0) as Nanos
    }
}

/// Draws a standard normal from the given stream via Box–Muller.
pub fn standard_normal_rng(rng: &SimRng) -> f64 {
    // Avoid ln(0).
    let u1 = rng.rand_f64().max(1e-12);
    let u2 = rng.rand_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws an exponential with the given mean from the given stream.
pub fn exponential_rng(rng: &SimRng, mean: f64) -> f64 {
    let u = rng.rand_f64().max(1e-12);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;

    #[test]
    fn fixed_jitter_is_constant() {
        let sim = Sim::new(3);
        let j = Jitter::fixed(650.0);
        for _ in 0..16 {
            assert_eq!(j.sample(&sim), 650);
        }
    }

    #[test]
    fn lognormal_median_is_close() {
        let sim = Sim::new(4);
        let j = Jitter {
            median_ns: 1000.0,
            sigma: 0.1,
            tail_prob: 0.0,
            tail_mean_ns: 0.0,
        };
        let mut samples: Vec<Nanos> = (0..20_001).map(|_| j.sample(&sim)).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        assert!(
            (900..1100).contains(&median),
            "median {median} too far from 1000"
        );
    }

    #[test]
    fn exponential_mean_is_close() {
        let rng = SimRng::shared(&Sim::new(5));
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| exponential_rng(&rng, 500.0)).sum();
        let mean = sum / n as f64;
        assert!((450.0..550.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn normal_mean_and_var_are_close() {
        let rng = SimRng::shared(&Sim::new(6));
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal_rng(&rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn tail_spikes_are_rare_but_present() {
        let sim = Sim::new(7);
        let j = Jitter {
            median_ns: 100.0,
            sigma: 0.0,
            tail_prob: 0.05,
            tail_mean_ns: 10_000.0,
        };
        let n = 20_000;
        let spikes = (0..n).filter(|_| j.sample(&sim) > 1_000).count();
        let frac = spikes as f64 / n as f64;
        assert!((0.03..0.07).contains(&frac), "spike fraction {frac}");
    }
}
