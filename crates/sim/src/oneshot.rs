//! Single-producer single-consumer one-shot channel for task wakeups.
//!
//! Used by simulated devices to deliver operation completions back to the
//! issuing task. Senders live inside scheduled events; receivers are awaited
//! by protocol code. If the sender is dropped without sending (e.g., the
//! target memory node crashed), the receiver resolves to `None`.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Inner<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_alive: bool,
}

/// Sending half of a one-shot channel.
pub struct OneshotSender<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

/// Receiving half of a one-shot channel; a future yielding `Option<T>`.
pub struct OneshotReceiver<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

/// Creates a connected one-shot channel pair.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let inner = Rc::new(RefCell::new(Inner {
        value: None,
        waker: None,
        sender_alive: true,
    }));
    (
        OneshotSender {
            inner: Rc::clone(&inner),
        },
        OneshotReceiver { inner },
    )
}

impl<T> OneshotSender<T> {
    /// Delivers `value` and wakes the receiver. Consumes the sender.
    pub fn send(self, value: T) {
        let mut inner = self.inner.borrow_mut();
        inner.value = Some(value);
        if let Some(w) = inner.waker.take() {
            w.wake();
        }
        // `Drop` below will mark the sender dead; the value is already in.
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        inner.sender_alive = false;
        if inner.value.is_none() {
            if let Some(w) = inner.waker.take() {
                w.wake();
            }
        }
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut inner = self.inner.borrow_mut();
        if let Some(v) = inner.value.take() {
            return Poll::Ready(Some(v));
        }
        if !inner.sender_alive {
            return Poll::Ready(None);
        }
        inner.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;

    #[test]
    fn value_delivered_across_event() {
        let sim = Sim::new(1);
        let (tx, rx) = oneshot::<u32>();
        sim.schedule_after(500, move |_| tx.send(7));
        let s = sim.clone();
        let got = sim.block_on(async move {
            let v = rx.await;
            (v, s.now())
        });
        assert_eq!(got, (Some(7), 500));
    }

    #[test]
    fn dropped_sender_resolves_none() {
        let sim = Sim::new(1);
        let (tx, rx) = oneshot::<u32>();
        sim.schedule_after(200, move |_| drop(tx));
        let got = sim.block_on(rx);
        assert_eq!(got, None);
    }

    #[test]
    fn send_before_poll_is_immediate() {
        let sim = Sim::new(1);
        let (tx, rx) = oneshot::<&'static str>();
        tx.send("hi");
        assert_eq!(sim.block_on(rx), Some("hi"));
    }
}
