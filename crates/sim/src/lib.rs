//! Deterministic discrete-event simulation engine.
//!
//! This crate is the *testbed substrate* of the SWARM reproduction: the paper
//! evaluates on a 4-server/4-memory-node RDMA cluster, which we replace with a
//! single-threaded, seeded, virtual-time simulator. Protocol code is written as
//! ordinary `async` Rust against simulated devices; awaiting a network
//! operation suspends the task until the corresponding virtual-time event
//! fires.
//!
//! Design goals:
//!
//! * **Determinism.** A given seed produces a bit-identical execution, so every
//!   figure in the evaluation is exactly reproducible and failing schedules
//!   found by property tests can be replayed.
//! * **Allocation-free hot path.** Timers ("wake this task at time T") are
//!   inline slab entries — no boxed closure per event; task wakers are built
//!   once per spawn and cloned per poll (a non-atomic refcount bump); the
//!   ready queue is a plain `RefCell<VecDeque>` with no mutex. See
//!   [`Sim::counters`] for the always-on accounting the perf-regression
//!   tests pin these properties with.
//! * **Minimal `unsafe`.** Exactly one unsafe construct: the executor's task
//!   `Waker` is hand-rolled over `Rc` (see `executor.rs`) so the
//!   single-threaded hot path pays no atomics. Soundness relies on the
//!   simulation being single-threaded — `Sim` and all spawned futures are
//!   `!Send`, and wakers must never cross threads (asserted in debug
//!   builds on every wake).
//! * **Multi-core by independence, not by sharing.** A `Sim` never leaves
//!   its thread, but nothing stops a host from running *several* `Sim`s on
//!   several threads, one whole simulation per thread, as long as only
//!   `Send` results (plain data) move out at the end. Independent seeded
//!   streams for such co-simulations come from [`SimRng::from_seed`] /
//!   [`Sim::fork_rng`] with distinct labels: `SimRng::from_seed(seed, l)`
//!   on a fresh `Sim::new(seed)` yields the exact stream `fork_rng(l)`
//!   yields inside a bigger simulation, which is what lets `swarm-kv`
//!   rebuild one keyspace shard alone — on its own `Sim`, on its own OS
//!   thread — bit-identical to that shard's execution alongside its
//!   siblings.
//! * **Microsecond fidelity.** Virtual time is in nanoseconds; latency models
//!   live in `swarm-fabric`, but the primitives (timers, FIFO resources,
//!   jitter distributions) live here.
//!
//! # Examples
//!
//! ```
//! use swarm_sim::{Sim, NANOS_PER_MICRO};
//!
//! let sim = Sim::new(42);
//! let s2 = sim.clone();
//! sim.spawn(async move {
//!     s2.sleep_ns(3 * NANOS_PER_MICRO).await;
//!     assert_eq!(s2.now(), 3 * NANOS_PER_MICRO);
//! });
//! sim.run();
//! ```

mod clock;
mod combinators;
mod dist;
mod executor;
mod oneshot;
mod resource;
mod rng;
mod stats;
mod time;

pub use clock::GuessClock;
pub use combinators::{
    join2, join_all, join_boxed, race2, timeout_at, BoxFuture, Either, Quorum, TimedOut,
};
pub use dist::Jitter;
pub use executor::{Sim, SimCounters, Sleep, TaskId, YieldNow};
pub use oneshot::{oneshot, OneshotReceiver, OneshotSender};
pub use resource::FifoResource;
pub use rng::SimRng;
pub use stats::{Histogram, OnlineStats, TimeSeries};
pub use time::{to_micros, to_secs, Nanos, NANOS_PER_MICRO, NANOS_PER_MILLI, NANOS_PER_SEC};
