//! Deterministic discrete-event simulation engine.
//!
//! This crate is the *testbed substrate* of the SWARM reproduction: the paper
//! evaluates on a 4-server/4-memory-node RDMA cluster, which we replace with a
//! single-threaded, seeded, virtual-time simulator. Protocol code is written as
//! ordinary `async` Rust against simulated devices; awaiting a network
//! operation suspends the task until the corresponding virtual-time event
//! fires.
//!
//! Design goals:
//!
//! * **Determinism.** A given seed produces a bit-identical execution, so every
//!   figure in the evaluation is exactly reproducible and failing schedules
//!   found by property tests can be replayed.
//! * **No `unsafe`.** Wakers are built from [`std::task::Wake`] over `Arc`.
//! * **Microsecond fidelity.** Virtual time is in nanoseconds; latency models
//!   live in `swarm-fabric`, but the primitives (timers, FIFO resources,
//!   jitter distributions) live here.
//!
//! # Examples
//!
//! ```
//! use swarm_sim::{Sim, NANOS_PER_MICRO};
//!
//! let sim = Sim::new(42);
//! let s2 = sim.clone();
//! sim.spawn(async move {
//!     s2.sleep_ns(3 * NANOS_PER_MICRO).await;
//!     assert_eq!(s2.now(), 3 * NANOS_PER_MICRO);
//! });
//! sim.run();
//! ```

mod clock;
mod combinators;
mod dist;
mod executor;
mod oneshot;
mod resource;
mod stats;
mod time;

pub use clock::GuessClock;
pub use combinators::{
    join2, join_all, join_boxed, race2, timeout_at, BoxFuture, Either, Quorum, TimedOut,
};
pub use dist::Jitter;
pub use executor::{Sim, Sleep, TaskId, YieldNow};
pub use oneshot::{oneshot, OneshotReceiver, OneshotSender};
pub use resource::FifoResource;
pub use stats::{Histogram, OnlineStats, TimeSeries};
pub use time::{to_micros, to_secs, Nanos, NANOS_PER_MICRO, NANOS_PER_MILLI, NANOS_PER_SEC};
