//! Measurement utilities: exact-percentile histograms, online moments, and
//! time-bucketed series (for the failure-timeline experiment, Figure 11).

use crate::time::Nanos;

/// Exact-percentile latency recorder.
///
/// Stores every sample (experiments record ~10^6 samples, i.e. a few MiB) so
/// percentiles and CDFs are exact rather than approximated, matching how the
/// paper reports P1/median/P99 and full CDFs.
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    samples: Vec<Nanos>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample (nanoseconds).
    pub fn record(&mut self, v: Nanos) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Returns the `p`-th percentile (0.0–100.0) in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Nanos {
        assert!(!self.samples.is_empty(), "empty histogram");
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p / 100.0) * (n as f64 - 1.0)).round() as usize;
        self.samples[rank.min(n - 1)]
    }

    /// Median, in nanoseconds.
    pub fn median(&mut self) -> Nanos {
        self.percentile(50.0)
    }

    /// The 99.9th percentile, in nanoseconds (tail-latency reporting).
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty.
    pub fn p999(&mut self) -> Nanos {
        self.percentile(99.9)
    }

    /// One-line machine-readable summary:
    /// `{"count":N,"p50":..,"p90":..,"p99":..,"p999":..,"max":..}` (times in
    /// nanoseconds). An empty histogram summarizes as `{"count":0}` so report
    /// harnesses never have to special-case empty cells.
    pub fn summary_json(&mut self) -> String {
        if self.samples.is_empty() {
            return r#"{"count":0}"#.to_string();
        }
        format!(
            r#"{{"count":{},"p50":{},"p90":{},"p99":{},"p999":{},"max":{}}}"#,
            self.len(),
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
            self.p999(),
            self.max()
        )
    }

    /// Arithmetic mean, in nanoseconds.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&v| v as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Maximum sample, in nanoseconds.
    pub fn max(&mut self) -> Nanos {
        assert!(!self.samples.is_empty(), "empty histogram");
        self.ensure_sorted();
        *self.samples.last().unwrap()
    }

    /// Fraction of samples `<= threshold`.
    pub fn fraction_at_most(&mut self, threshold: Nanos) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&v| v <= threshold);
        idx as f64 / self.samples.len() as f64
    }

    /// Evenly spaced CDF points `(latency_ns, percentile)`; `points` >= 2.
    pub fn cdf(&mut self, points: usize) -> Vec<(Nanos, f64)> {
        assert!(points >= 2);
        if self.samples.is_empty() {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        (0..points)
            .map(|i| {
                let frac = i as f64 / (points - 1) as f64;
                let rank = (frac * (n as f64 - 1.0)).round() as usize;
                (self.samples[rank.min(n - 1)], frac * 100.0)
            })
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// Online mean/variance/min/max accumulator (Welford).
#[derive(Debug, Default, Clone, Copy)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Fixed-width time-bucketed series: counts and latency sums per bucket.
///
/// Used to plot throughput/latency against virtual time around injected
/// failures (Figure 11).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket_ns: Nanos,
    counts: Vec<u64>,
    sums: Vec<u128>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    pub fn new(bucket_ns: Nanos) -> Self {
        assert!(bucket_ns > 0);
        TimeSeries {
            bucket_ns,
            counts: Vec::new(),
            sums: Vec::new(),
        }
    }

    /// Records an operation that completed at `at` with latency `latency_ns`.
    pub fn record(&mut self, at: Nanos, latency_ns: Nanos) {
        let idx = (at / self.bucket_ns) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
            self.sums.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.sums[idx] += latency_ns as u128;
    }

    /// Bucket width in nanoseconds.
    pub fn bucket_ns(&self) -> Nanos {
        self.bucket_ns
    }

    /// Iterator of `(bucket_start_ns, ops_in_bucket, mean_latency_ns)`.
    pub fn buckets(&self) -> impl Iterator<Item = (Nanos, u64, f64)> + '_ {
        self.counts.iter().enumerate().map(move |(i, &c)| {
            let mean = if c == 0 {
                0.0
            } else {
                self.sums[i] as f64 / c as f64
            };
            (i as Nanos * self.bucket_ns, c, mean)
        })
    }

    /// Throughput (ops/second) of bucket `i`.
    pub fn throughput_ops_per_sec(&self, i: usize) -> f64 {
        if i >= self.counts.len() {
            return 0.0;
        }
        self.counts[i] as f64 * (crate::time::NANOS_PER_SEC as f64 / self.bucket_ns as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(100.0), 100);
        // Rank = round(0.5 * 99) = 50, i.e. the 51st smallest value.
        assert_eq!(h.median(), 51);
        assert_eq!(h.percentile(99.0), 99);
    }

    #[test]
    fn median_of_odd_count() {
        let mut h = Histogram::new();
        for v in [5u64, 1, 9, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.median(), 5);
    }

    #[test]
    fn fraction_at_most_counts_inclusive() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert!((h.fraction_at_most(20) - 0.5).abs() < 1e-9);
        assert!((h.fraction_at_most(9) - 0.0).abs() < 1e-9);
        assert!((h.fraction_at_most(40) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotonic() {
        let mut h = Histogram::new();
        let mut x = 123456789u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x >> 40);
        }
        let cdf = h.cdf(32);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn online_stats_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.add(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn timeseries_buckets_and_throughput() {
        let mut ts = TimeSeries::new(1_000);
        ts.record(100, 10);
        ts.record(900, 30);
        ts.record(1_500, 50);
        let buckets: Vec<_> = ts.buckets().collect();
        assert_eq!(buckets[0], (0, 2, 20.0));
        assert_eq!(buckets[1], (1_000, 1, 50.0));
        assert!((ts.throughput_ops_per_sec(0) - 2e6).abs() < 1.0);
    }

    #[test]
    fn p999_tracks_the_extreme_tail() {
        let mut h = Histogram::new();
        // 499 fast samples and one straggler: under the nearest-rank
        // convention (rank = round(p/100 * (n-1)), shared with the fig5
        // goldens) p99 stays fast while p999 lands on the straggler.
        for _ in 0..499 {
            h.record(10);
        }
        h.record(1_000_000);
        assert_eq!(h.percentile(99.0), 10);
        assert_eq!(h.p999(), 1_000_000);
    }

    #[test]
    fn summary_json_is_stable_and_exact() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(
            h.summary_json(),
            r#"{"count":1000,"p50":501,"p90":900,"p99":990,"p999":999,"max":1000}"#
        );
        assert_eq!(Histogram::new().summary_json(), r#"{"count":0}"#);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.max(), 3);
    }
}
