//! Loosely synchronized per-client clocks for timestamp guessing.
//!
//! SWARM clients guess write timestamps from "a loosely synchronized
//! TSC-based clock that they re-synchronize every time they guess a stale
//! timestamp" (§6). We model each client clock as true virtual time plus a
//! bounded offset and a parts-per-million drift. [`GuessClock::resync`]
//! shrinks the offset, mimicking the paper's resynchronization on a detected
//! stale guess.

use std::cell::Cell;

use crate::executor::Sim;
use crate::rng::SimRng;
use crate::time::Nanos;

/// A drifting, offset, loosely synchronized clock.
pub struct GuessClock {
    sim: Sim,
    /// Stream the offset/resync draws come from (shared by default; private
    /// for clocks that must not perturb other subsystems' streams).
    rng: SimRng,
    /// Fixed-point offset from true time, in nanoseconds (may be negative).
    offset_ns: Cell<i64>,
    /// Drift in parts per million (positive = runs fast).
    drift_ppm: f64,
    /// Virtual time at which the clock was last synchronized.
    synced_at: Cell<Nanos>,
    /// Maximum |offset| right after a resync.
    resync_bound_ns: i64,
}

impl GuessClock {
    /// Creates a clock with initial offset uniform in `±initial_bound_ns` and
    /// the given drift, drawing from the simulation's shared stream.
    pub fn new(sim: &Sim, initial_bound_ns: i64, drift_ppm: f64, resync_bound_ns: i64) -> Self {
        Self::with_rng(
            sim,
            SimRng::shared(sim),
            initial_bound_ns,
            drift_ppm,
            resync_bound_ns,
        )
    }

    /// [`GuessClock::new`] drawing offsets from the given stream instead of
    /// the shared one (see [`Sim::fork_rng`]).
    pub fn with_rng(
        sim: &Sim,
        rng: SimRng,
        initial_bound_ns: i64,
        drift_ppm: f64,
        resync_bound_ns: i64,
    ) -> Self {
        let off = if initial_bound_ns == 0 {
            0
        } else {
            rng.rand_range(0, 2 * initial_bound_ns as u64) as i64 - initial_bound_ns
        };
        GuessClock {
            sim: sim.clone(),
            rng,
            offset_ns: Cell::new(off),
            drift_ppm,
            synced_at: Cell::new(0),
            resync_bound_ns,
        }
    }

    /// A perfectly synchronized clock (no offset, no drift).
    pub fn perfect(sim: &Sim) -> Self {
        Self::new(sim, 0, 0.0, 0)
    }

    /// Reads the local clock, in nanoseconds.
    pub fn read_ns(&self) -> Nanos {
        let now = self.sim.now();
        let since_sync = now.saturating_sub(self.synced_at.get()) as f64;
        let drifted = (since_sync * self.drift_ppm / 1e6) as i64;
        let local = now as i64 + self.offset_ns.get() + drifted;
        local.max(0) as Nanos
    }

    /// Re-synchronizes: the new offset is uniform in `±resync_bound_ns`.
    ///
    /// Called by writers when they discover they guessed a stale timestamp.
    pub fn resync(&self) {
        let b = self.resync_bound_ns;
        let off = if b == 0 {
            0
        } else {
            self.rng.rand_range(0, 2 * b as u64) as i64 - b
        };
        self.offset_ns.set(off);
        self.synced_at.set(self.sim.now());
    }

    /// Current offset from true time including drift, in nanoseconds.
    pub fn current_error_ns(&self) -> i64 {
        let now = self.sim.now();
        let since_sync = now.saturating_sub(self.synced_at.get()) as f64;
        self.offset_ns.get() + (since_sync * self.drift_ppm / 1e6) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NANOS_PER_SEC;

    #[test]
    fn perfect_clock_tracks_virtual_time() {
        let sim = Sim::new(1);
        let c = GuessClock::perfect(&sim);
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep_ns(12_345).await;
            assert_eq!(c.read_ns(), 12_345);
        });
    }

    #[test]
    fn offset_is_bounded() {
        let sim = Sim::new(2);
        for _ in 0..32 {
            let c = GuessClock::new(&sim, 500, 0.0, 100);
            assert!(c.current_error_ns().abs() <= 500);
            c.resync();
            assert!(c.current_error_ns().abs() <= 100);
        }
    }

    #[test]
    fn drift_accumulates_until_resync() {
        let sim = Sim::new(3);
        let c = GuessClock::new(&sim, 0, 100.0, 0); // 100 ppm fast
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep_ns(NANOS_PER_SEC).await; // 1 s -> 100 µs of drift
            let err = c.current_error_ns();
            assert!((99_000..101_000).contains(&err), "err {err}");
            c.resync();
            assert_eq!(c.current_error_ns(), 0);
        });
    }

    #[test]
    fn read_is_monotone_under_positive_drift() {
        let sim = Sim::new(4);
        let c = GuessClock::new(&sim, 0, 50.0, 0);
        let s = sim.clone();
        sim.block_on(async move {
            let mut prev = c.read_ns();
            for _ in 0..10 {
                s.sleep_ns(1_000).await;
                let v = c.read_ns();
                assert!(v >= prev);
                prev = v;
            }
        });
    }
}
