//! FIFO-serialized resources: client CPU cores and NIC/switch ports.
//!
//! The paper's throughput experiments are bottlenecked first by the client
//! core submitting RDMA work requests ("issuing a series of RDMA operations
//! takes 200+ ns", §7.2) and eventually by the 100 Gbps fabric (§7.3). Both
//! are modeled as [`FifoResource`]s: a server that processes acquisitions in
//! arrival order, each occupying the resource for a caller-specified service
//! time. Acquiring returns a future that resolves when the service slot
//! *completes*, and reports the slot's start time so callers can model
//! "submission finished, now the wire takes over" pipelines.

use std::cell::RefCell;
use std::rc::Rc;

use crate::executor::Sim;
use crate::time::Nanos;

struct Inner {
    /// Virtual time at which the resource next becomes free.
    available_at: Nanos,
    /// Total busy time accumulated (for CPU% accounting, Table 3).
    busy_ns: u128,
}

/// A resource that serves acquisitions one at a time, in FIFO order.
#[derive(Clone)]
pub struct FifoResource {
    sim: Sim,
    inner: Rc<RefCell<Inner>>,
}

impl FifoResource {
    /// Creates an idle resource.
    pub fn new(sim: &Sim) -> Self {
        FifoResource {
            sim: sim.clone(),
            inner: Rc::new(RefCell::new(Inner {
                available_at: 0,
                busy_ns: 0,
            })),
        }
    }

    /// Reserves the resource for `service_ns`, returning `(start, end)` of
    /// the granted slot and a future that resolves at `end`.
    ///
    /// The reservation is made *immediately* (so concurrent acquirers at the
    /// same instant serialize deterministically in call order); the returned
    /// future merely waits for the slot to elapse.
    pub fn acquire(&self, service_ns: Nanos) -> (Nanos, Nanos, crate::executor::Sleep) {
        let now = self.sim.now();
        let mut inner = self.inner.borrow_mut();
        let start = inner.available_at.max(now);
        let end = start + service_ns;
        inner.available_at = end;
        inner.busy_ns += service_ns as u128;
        (start, end, self.sim.sleep_until(end))
    }

    /// Reserves the resource without waiting (fire-and-forget service, e.g.
    /// a NIC serializing an outbound message while the CPU moves on).
    /// Returns `(start, end)` of the slot.
    pub fn reserve(&self, service_ns: Nanos) -> (Nanos, Nanos) {
        let now = self.sim.now();
        let mut inner = self.inner.borrow_mut();
        let start = inner.available_at.max(now);
        let end = start + service_ns;
        inner.available_at = end;
        inner.busy_ns += service_ns as u128;
        (start, end)
    }

    /// Total time this resource has been busy, in nanoseconds.
    pub fn busy_ns(&self) -> u128 {
        self.inner.borrow().busy_ns
    }

    /// Utilization over `[0, now]` as a fraction in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let now = self.sim.now();
        if now == 0 {
            return 0.0;
        }
        (self.inner.borrow().busy_ns as f64 / now as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_acquisitions_queue() {
        let sim = Sim::new(1);
        let r = FifoResource::new(&sim);
        let (s1, e1, _) = r.acquire(100);
        let (s2, e2, _) = r.acquire(50);
        assert_eq!((s1, e1), (0, 100));
        assert_eq!((s2, e2), (100, 150));
    }

    #[test]
    fn resource_idles_between_bursts() {
        let sim = Sim::new(1);
        let r = FifoResource::new(&sim);
        let r2 = r.clone();
        let s = sim.clone();
        sim.block_on(async move {
            let (_, _, wait) = r2.acquire(100);
            wait.await;
            s.sleep_ns(1_000).await;
            let (start, end, wait) = r2.acquire(100);
            assert_eq!((start, end), (1_100, 1_200));
            wait.await;
        });
        assert_eq!(r.busy_ns(), 200);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let sim = Sim::new(1);
        let r = FifoResource::new(&sim);
        let r2 = r.clone();
        let s = sim.clone();
        sim.block_on(async move {
            let (_, _, wait) = r2.acquire(250);
            wait.await;
            s.sleep_ns(750).await;
        });
        assert!((r.utilization() - 0.25).abs() < 1e-9);
    }
}
