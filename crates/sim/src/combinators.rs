//! Small future combinators used by the replication protocols.
//!
//! The protocols need exactly four shapes of concurrency:
//!
//! * [`join2`] / [`join_all`] — run operations fully in parallel (e.g.,
//!   Safe-Guess `in parallel { M.READ(), M.WRITE(w) }`).
//! * [`Quorum`] — wait for `k` of `n` responses, leaving stragglers running
//!   (majority waits in the reliable max register and timestamp lock).
//! * [`race2`] — first of two futures (failure-detection timeouts).
//! * [`timeout_at`] — bound a wait by a virtual-time deadline *without*
//!   consuming the underlying future, so callers can widen a quorum after an
//!   optimistic majority send times out (§6 of the paper).

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::executor::Sim;
use crate::time::Nanos;

/// Awaits two futures concurrently and returns both results.
pub async fn join2<A, B>(a: impl Future<Output = A>, b: impl Future<Output = B>) -> (A, B) {
    let j = Join2 {
        a: Some(Box::pin(a)),
        b: Some(Box::pin(b)),
        ra: None,
        rb: None,
    };
    j.await
}

struct Join2<'f, A, B> {
    a: Option<Pin<Box<dyn Future<Output = A> + 'f>>>,
    b: Option<Pin<Box<dyn Future<Output = B> + 'f>>>,
    ra: Option<A>,
    rb: Option<B>,
}

// `Join2` never projects a pin to its value fields; they are only moved out
// when ready, so it is structurally `Unpin`.
impl<A, B> Unpin for Join2<'_, A, B> {}

impl<A, B> Future for Join2<'_, A, B> {
    type Output = (A, B);

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<(A, B)> {
        let this = self.get_mut();
        if let Some(f) = this.a.as_mut() {
            if let Poll::Ready(v) = f.as_mut().poll(cx) {
                this.ra = Some(v);
                this.a = None;
            }
        }
        if let Some(f) = this.b.as_mut() {
            if let Poll::Ready(v) = f.as_mut().poll(cx) {
                this.rb = Some(v);
                this.b = None;
            }
        }
        if this.ra.is_some() && this.rb.is_some() {
            Poll::Ready((this.ra.take().unwrap(), this.rb.take().unwrap()))
        } else {
            Poll::Pending
        }
    }
}

/// Awaits all futures concurrently, returning results in input order.
pub async fn join_all<T, F>(futs: Vec<F>) -> Vec<T>
where
    F: Future<Output = T> + 'static,
    T: 'static,
{
    let n = futs.len();
    let mut q = Quorum::new(n);
    for f in futs {
        q.push(f);
    }
    (&mut q).await;
    q.take_results().into_iter().map(|r| r.unwrap()).collect()
}

/// A boxed, pinned future with an arbitrary lifetime (the currency of
/// [`join_boxed`]).
pub type BoxFuture<'f, T> = Pin<Box<dyn Future<Output = T> + 'f>>;

/// Awaits a batch of boxed futures concurrently, returning results in input
/// order.
///
/// Unlike [`join_all`] the futures may borrow (`'f` instead of `'static`),
/// which is what store-level batch operations need: each per-key operation
/// borrows its client handle.
pub fn join_boxed<'f, T: 'f>(futs: Vec<BoxFuture<'f, T>>) -> impl Future<Output = Vec<T>> + 'f {
    JoinBoxed {
        results: futs.iter().map(|_| None).collect(),
        remaining: futs.len(),
        futs: futs.into_iter().map(Some).collect(),
    }
}

struct JoinBoxed<'f, T> {
    futs: Vec<Option<BoxFuture<'f, T>>>,
    results: Vec<Option<T>>,
    remaining: usize,
}

// Like `Join2`: every field is a boxed future or a plain value, so the
// wrapper is structurally `Unpin`.
impl<T> Unpin for JoinBoxed<'_, T> {}

impl<T> Future for JoinBoxed<'_, T> {
    type Output = Vec<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Vec<T>> {
        let this = self.get_mut();
        for i in 0..this.futs.len() {
            if let Some(f) = this.futs[i].as_mut() {
                if let Poll::Ready(v) = f.as_mut().poll(cx) {
                    this.results[i] = Some(v);
                    this.futs[i] = None;
                    this.remaining -= 1;
                }
            }
        }
        if this.remaining == 0 {
            Poll::Ready(this.results.iter_mut().map(|r| r.take().unwrap()).collect())
        } else {
            Poll::Pending
        }
    }
}

/// Result of [`race2`].
pub enum Either<A, B> {
    /// The first future finished first.
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// Awaits the first of two futures to complete; the loser is dropped.
pub async fn race2<A, B>(a: impl Future<Output = A>, b: impl Future<Output = B>) -> Either<A, B> {
    Race2 {
        a: Box::pin(a),
        b: Box::pin(b),
    }
    .await
}

struct Race2<'f, A, B> {
    a: Pin<Box<dyn Future<Output = A> + 'f>>,
    b: Pin<Box<dyn Future<Output = B> + 'f>>,
}

// Same reasoning as `Join2`: both fields are boxed futures, hence `Unpin`.
impl<A, B> Unpin for Race2<'_, A, B> {}

impl<A, B> Future for Race2<'_, A, B> {
    type Output = Either<A, B>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(v) = self.a.as_mut().poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = self.b.as_mut().poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

/// Marker returned when [`timeout_at`] fires before the inner future.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOut;

/// Awaits `fut` (by mutable reference) until virtual time `deadline`.
///
/// On timeout the inner future is *not* consumed: callers keep ownership and
/// may push more sub-futures into a [`Quorum`] and await it again. This is how
/// the implementation models "optimistically contact a majority; on a slow
/// response, contact all replicas" (§6).
pub async fn timeout_at<F>(sim: &Sim, deadline: Nanos, fut: F) -> Result<F::Output, TimedOut>
where
    F: Future + Unpin,
{
    match race2(fut, sim.sleep_until(deadline)).await {
        Either::Left(v) => Ok(v),
        Either::Right(()) => Err(TimedOut),
    }
}

/// Waits for `needed` of the pushed futures to complete.
///
/// `Quorum` is `Unpin` and is usually awaited by `&mut` so that, after a
/// majority completes (or a timeout fires), the caller can inspect partial
/// [`results`](Quorum::results), [`push`](Quorum::push) additional futures, or
/// raise [`set_needed`](Quorum::set_needed) and await again. Futures that
/// never complete (crashed nodes) simply stay pending; device-level side
/// effects of already-submitted operations are unaffected by dropping the
/// `Quorum`.
pub struct Quorum<T> {
    futs: Vec<Option<Pin<Box<dyn Future<Output = T>>>>>,
    results: Vec<Option<T>>,
    completed: usize,
    needed: usize,
}

impl<T> Quorum<T> {
    /// Creates an empty quorum waiting for `needed` completions.
    pub fn new(needed: usize) -> Self {
        Quorum {
            futs: Vec::new(),
            results: Vec::new(),
            completed: 0,
            needed,
        }
    }

    /// Adds a future; returns its slot index.
    pub fn push(&mut self, fut: impl Future<Output = T> + 'static) -> usize {
        self.futs.push(Some(Box::pin(fut)));
        self.results.push(None);
        self.futs.len() - 1
    }

    /// Number of futures that have completed so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Number of futures pushed in total.
    pub fn len(&self) -> usize {
        self.futs.len()
    }

    /// True if no futures were pushed.
    pub fn is_empty(&self) -> bool {
        self.futs.is_empty()
    }

    /// Changes the completion threshold (may immediately satisfy a pending
    /// await).
    pub fn set_needed(&mut self, needed: usize) {
        self.needed = needed;
    }

    /// Results gathered so far, indexed by push order (`None` = still
    /// pending).
    pub fn results(&self) -> &[Option<T>] {
        &self.results
    }

    /// Consumes the quorum, returning all gathered results.
    pub fn take_results(self) -> Vec<Option<T>> {
        self.results
    }
}

impl<T> Future for &mut Quorum<T> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut **self;
        for i in 0..this.futs.len() {
            if let Some(f) = this.futs[i].as_mut() {
                if let Poll::Ready(v) = f.as_mut().poll(cx) {
                    this.results[i] = Some(v);
                    this.futs[i] = None;
                    this.completed += 1;
                }
            }
        }
        if this.completed >= this.needed {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;

    fn delayed(sim: &Sim, delay: Nanos, v: u32) -> impl Future<Output = u32> {
        let s = sim.clone();
        async move {
            s.sleep_ns(delay).await;
            v
        }
    }

    #[test]
    fn join2_waits_for_both() {
        let sim = Sim::new(1);
        let (a, b) = (delayed(&sim, 100, 1), delayed(&sim, 300, 2));
        let s = sim.clone();
        let ((ra, rb), t) = sim.block_on(async move {
            let r = join2(a, b).await;
            (r, s.now())
        });
        assert_eq!((ra, rb), (1, 2));
        assert_eq!(t, 300);
    }

    #[test]
    fn join_all_preserves_order() {
        let sim = Sim::new(1);
        let futs = vec![
            delayed(&sim, 300, 10),
            delayed(&sim, 100, 20),
            delayed(&sim, 200, 30),
        ];
        let out = sim.block_on(async move { join_all(futs).await });
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn join_boxed_runs_borrowing_futures_concurrently() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let (out, t) = sim.block_on(async move {
            // Futures that borrow a local — impossible with `join_all`.
            let delays = [300u64, 100, 200];
            let futs: Vec<BoxFuture<'_, u64>> = delays
                .iter()
                .map(|&d| {
                    let s2 = s.clone();
                    Box::pin(async move {
                        s2.sleep_ns(d).await;
                        d
                    }) as BoxFuture<'_, u64>
                })
                .collect();
            (join_boxed(futs).await, s.now())
        });
        assert_eq!(out, vec![300, 100, 200]);
        assert_eq!(t, 300, "futures must overlap, not serialize");
    }

    #[test]
    fn join_boxed_empty_batch_resolves_immediately() {
        let sim = Sim::new(2);
        let out: Vec<u8> = sim.block_on(async move { join_boxed(Vec::new()).await });
        assert!(out.is_empty());
    }

    #[test]
    fn race2_returns_winner() {
        let sim = Sim::new(1);
        let (a, b) = (delayed(&sim, 500, 1), delayed(&sim, 100, 2));
        match sim.block_on(async move { race2(a, b).await }) {
            Either::Right(v) => assert_eq!(v, 2),
            Either::Left(_) => panic!("slow future won"),
        }
    }

    #[test]
    fn quorum_completes_at_threshold() {
        let sim = Sim::new(1);
        let mut q = Quorum::new(2);
        q.push(delayed(&sim, 100, 1));
        q.push(delayed(&sim, 900, 2));
        q.push(delayed(&sim, 200, 3));
        let s = sim.clone();
        let (t, done) = sim.block_on(async move {
            (&mut q).await;
            (s.now(), q.completed())
        });
        assert_eq!(t, 200);
        assert_eq!(done, 2);
    }

    #[test]
    fn quorum_can_be_widened_after_timeout() {
        let sim = Sim::new(1);
        let mut q = Quorum::new(2);
        q.push(delayed(&sim, 100, 1));
        // The second "replica" never answers (simulated crash): push a future
        // that sleeps effectively forever.
        q.push(delayed(&sim, u64::MAX / 2, 2));
        let s = sim.clone();
        let out = sim.block_on(async move {
            let r = timeout_at(&s, 1_000, &mut q).await;
            assert_eq!(r, Err(TimedOut));
            assert_eq!(q.completed(), 1);
            // Widen: contact a third replica, still needing 2 total.
            q.push(delayed(&s, 100, 3));
            (&mut q).await;
            q.results()[0].unwrap() + q.results()[2].unwrap()
        });
        assert_eq!(out, 4);
    }

    #[test]
    fn timeout_returns_ok_when_fast() {
        let sim = Sim::new(1);
        let mut q = Quorum::new(1);
        q.push(delayed(&sim, 50, 9));
        let s = sim.clone();
        let r = sim.block_on(async move { timeout_at(&s, 1_000, &mut q).await });
        assert_eq!(r, Ok(()));
    }
}
