//! Single-threaded deterministic executor over virtual time.
//!
//! The executor owns an event queue ordered by `(virtual time, sequence)` and
//! a set of tasks (non-`Send` futures). Running the simulation alternates
//! between polling ready tasks and firing the earliest pending event, which
//! advances the virtual clock. Because ties are broken by a monotonically
//! increasing sequence number and the only source of randomness is a seeded
//! RNG, executions are bit-for-bit reproducible.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::Nanos;

/// Identifier of a spawned task.
///
/// Task slots are recycled after completion (simulations spawn one short
/// task per in-flight fabric message, i.e. millions per experiment); the
/// generation counter keeps stale wakers from waking a recycled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId {
    idx: usize,
    gen: u64,
}

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

/// An event scheduled at a virtual time; fired in `(at, seq)` order.
struct Event {
    at: Nanos,
    seq: u64,
    action: Box<dyn FnOnce(&Sim)>,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Queue of tasks made runnable by wakers.
///
/// Wakers must be `Send + Sync`, so this little queue uses `Arc<Mutex<..>>`
/// even though the simulation itself is single-threaded; contention is nil.
#[derive(Default)]
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

impl ReadyQueue {
    fn push(&self, id: TaskId) {
        self.queue.lock().unwrap().push_back(id);
    }
    fn pop(&self) -> Option<TaskId> {
        self.queue.lock().unwrap().pop_front()
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }
}

struct TaskSlot {
    gen: u64,
    fut: Option<BoxFuture>,
}

struct SimInner {
    now: Cell<Nanos>,
    seq: Cell<u64>,
    events: RefCell<BinaryHeap<Reverse<Event>>>,
    tasks: RefCell<Vec<TaskSlot>>,
    free_slots: RefCell<Vec<usize>>,
    live_tasks: Cell<usize>,
    ready: Arc<ReadyQueue>,
    rng: RefCell<SmallRng>,
}

/// Handle to the simulation world; cheaply cloneable.
///
/// All simulated devices (`swarm-fabric` nodes, clocks, CPU resources) hold a
/// `Sim` and use it to schedule events, spawn background tasks, and draw
/// random numbers.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<SimInner>,
}

impl Sim {
    /// Creates a new simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            inner: Rc::new(SimInner {
                now: Cell::new(0),
                seq: Cell::new(0),
                events: RefCell::new(BinaryHeap::new()),
                tasks: RefCell::new(Vec::new()),
                free_slots: RefCell::new(Vec::new()),
                live_tasks: Cell::new(0),
                ready: Arc::new(ReadyQueue::default()),
                rng: RefCell::new(SmallRng::seed_from_u64(seed)),
            }),
        }
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> Nanos {
        self.inner.now.get()
    }

    /// Draws a uniformly random `u64` from the simulation RNG.
    pub fn rand_u64(&self) -> u64 {
        self.inner.rng.borrow_mut().random()
    }

    /// Draws a uniformly random value in `[0, 1)`.
    pub fn rand_f64(&self) -> f64 {
        self.inner.rng.borrow_mut().random::<f64>()
    }

    /// Draws a uniformly random value in `[lo, hi)`.
    pub fn rand_range(&self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.rng.borrow_mut().random_range(lo..hi)
    }

    /// Runs `action` at virtual time `at` (clamped to be no earlier than now).
    pub fn schedule_at(&self, at: Nanos, action: impl FnOnce(&Sim) + 'static) {
        let at = at.max(self.now());
        let seq = self.inner.seq.get();
        self.inner.seq.set(seq + 1);
        self.inner.events.borrow_mut().push(Reverse(Event {
            at,
            seq,
            action: Box::new(action),
        }));
    }

    /// Runs `action` after `delay` nanoseconds of virtual time.
    pub fn schedule_after(&self, delay: Nanos, action: impl FnOnce(&Sim) + 'static) {
        self.schedule_at(self.now() + delay, action);
    }

    /// Spawns a task onto the executor; it starts running when `run` is
    /// (re-)entered.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let mut tasks = self.inner.tasks.borrow_mut();
        let idx = match self.inner.free_slots.borrow_mut().pop() {
            Some(idx) => {
                tasks[idx].fut = Some(Box::pin(fut));
                idx
            }
            None => {
                tasks.push(TaskSlot {
                    gen: 0,
                    fut: Some(Box::pin(fut)),
                });
                tasks.len() - 1
            }
        };
        let id = TaskId {
            idx,
            gen: tasks[idx].gen,
        };
        self.inner.live_tasks.set(self.inner.live_tasks.get() + 1);
        self.inner.ready.push(id);
        id
    }

    /// Number of tasks that have been spawned but not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.live_tasks.get()
    }

    /// Future that resolves at virtual time `deadline`.
    pub fn sleep_until(&self, deadline: Nanos) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            scheduled: false,
        }
    }

    /// Future that resolves after `dur` nanoseconds of virtual time.
    pub fn sleep_ns(&self, dur: Nanos) -> Sleep {
        self.sleep_until(self.now() + dur)
    }

    /// Future that yields once, letting other ready tasks run at the same
    /// virtual instant.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    fn poll_task(&self, id: TaskId) {
        let fut = {
            let mut tasks = self.inner.tasks.borrow_mut();
            let slot = &mut tasks[id.idx];
            if slot.gen != id.gen {
                return; // Stale waker for a recycled slot.
            }
            slot.fut.take()
        };
        let Some(mut fut) = fut else { return };
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.inner.ready),
        }));
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                let mut tasks = self.inner.tasks.borrow_mut();
                tasks[id.idx].gen += 1;
                self.inner.free_slots.borrow_mut().push(id.idx);
                self.inner.live_tasks.set(self.inner.live_tasks.get() - 1);
            }
            Poll::Pending => {
                self.inner.tasks.borrow_mut()[id.idx].fut = Some(fut);
            }
        }
    }

    /// Runs the simulation until no ready task and no pending event remains.
    ///
    /// Returns the final virtual time.
    pub fn run(&self) -> Nanos {
        loop {
            // Drain all tasks runnable at the current instant.
            while let Some(id) = self.inner.ready.pop() {
                self.poll_task(id);
            }
            // Advance time to the next event.
            let ev = self.inner.events.borrow_mut().pop();
            match ev {
                Some(Reverse(ev)) => {
                    debug_assert!(ev.at >= self.now());
                    self.inner.now.set(ev.at);
                    (ev.action)(self);
                }
                None => return self.now(),
            }
        }
    }

    /// Runs the simulation, but stops once virtual time would exceed
    /// `deadline`. Events after the deadline remain queued.
    pub fn run_until(&self, deadline: Nanos) -> Nanos {
        loop {
            while let Some(id) = self.inner.ready.pop() {
                self.poll_task(id);
            }
            let next_at = self.inner.events.borrow().peek().map(|Reverse(ev)| ev.at);
            match next_at {
                Some(at) if at <= deadline => {
                    let Reverse(ev) = self.inner.events.borrow_mut().pop().unwrap();
                    self.inner.now.set(ev.at);
                    (ev.action)(self);
                }
                _ => return self.now(),
            }
        }
    }

    /// Convenience: spawn `fut` and run the simulation to completion,
    /// returning the value the future produced.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks before the future completes.
    pub fn block_on<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> T {
        let slot: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let slot2 = Rc::clone(&slot);
        self.spawn(async move {
            let v = fut.await;
            *slot2.borrow_mut() = Some(v);
        });
        self.run();
        Rc::try_unwrap(slot)
            .ok()
            .expect("simulation still holds result slot")
            .into_inner()
            .expect("simulation deadlocked before block_on future completed")
    }
}

/// Future returned by [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: Nanos,
    scheduled: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.scheduled {
            self.scheduled = true;
            let waker = cx.waker().clone();
            let deadline = self.deadline;
            self.sim.schedule_at(deadline, move |_| waker.wake());
        }
        Poll::Pending
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_starts_at_zero() {
        let sim = Sim::new(1);
        assert_eq!(sim.now(), 0);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let end = sim.block_on(async move {
            s.sleep_ns(1_000).await;
            s.sleep_ns(500).await;
            s.now()
        });
        assert_eq!(end, 1_500);
    }

    #[test]
    fn events_fire_in_time_then_fifo_order() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for (delay, tag) in [(50u64, 2u32), (10, 0), (50, 3), (20, 1)] {
            let log = Rc::clone(&log);
            sim.schedule_after(delay, move |_| log.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn concurrent_tasks_interleave_deterministically() {
        let sim = Sim::new(7);
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        for t in 0..3u32 {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for i in 0..3u64 {
                    s.sleep_ns(10 * (t as u64 + 1)).await;
                    log.borrow_mut().push((s.now(), t + 10 * i as u32));
                }
            });
        }
        sim.run();
        let first: Vec<_> = log.borrow().clone();
        // Re-run with the same seed: identical interleaving.
        let sim2 = Sim::new(7);
        let log2: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        for t in 0..3u32 {
            let s = sim2.clone();
            let log2 = Rc::clone(&log2);
            sim2.spawn(async move {
                for i in 0..3u64 {
                    s.sleep_ns(10 * (t as u64 + 1)).await;
                    log2.borrow_mut().push((s.now(), t + 10 * i as u32));
                }
            });
        }
        sim2.run();
        assert_eq!(first, *log2.borrow());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.spawn(async move {
            loop {
                s.sleep_ns(100).await;
            }
        });
        let t = sim.run_until(1_000);
        assert_eq!(t, 1_000);
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let (l1, l2) = (Rc::clone(&log), Rc::clone(&log));
        let s1 = sim.clone();
        sim.spawn(async move {
            l1.borrow_mut().push(1);
            s1.yield_now().await;
            l1.borrow_mut().push(3);
        });
        sim.spawn(async move {
            l2.borrow_mut().push(2);
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn task_slots_are_recycled() {
        let sim = Sim::new(1);
        for _ in 0..1_000 {
            let s = sim.clone();
            sim.spawn(async move { s.sleep_ns(1).await });
            sim.run();
        }
        assert!(sim.inner.tasks.borrow().len() <= 2);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let sim = Sim::new(99);
            (0..8).map(|_| sim.rand_u64()).collect()
        };
        let b: Vec<u64> = {
            let sim = Sim::new(99);
            (0..8).map(|_| sim.rand_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let sim = Sim::new(100);
            (0..8).map(|_| sim.rand_u64()).collect()
        };
        assert_ne!(a, c);
    }
}
