//! Single-threaded deterministic executor over virtual time.
//!
//! The executor owns an event queue ordered by `(virtual time, sequence)` and
//! a set of tasks (non-`Send` futures). Running the simulation alternates
//! between polling ready tasks and firing the earliest pending event, which
//! advances the virtual clock. Because ties are broken by a monotonically
//! increasing sequence number and the only source of randomness is a seeded
//! RNG, executions are bit-for-bit reproducible.
//!
//! # Hot-path design
//!
//! Simulations push millions of fabric messages through this loop, so the
//! per-event and per-poll costs are engineered to be allocation-free:
//!
//! * **Events** live in a slab ([`EventSlot`]); the common case — "wake this
//!   task at time T" (sleeps, message deliveries, deadlines) — is an inline
//!   [`EventKind::Wake`] carrying a cached [`Waker`] and no heap closure.
//!   Only the explicit [`Sim::schedule_at`] API boxes a `dyn FnOnce`.
//! * **Ordering** uses an index-based 4-ary min-heap of `(at, seq, slab key)`
//!   entries. Exact `(at, seq)` order is preserved, so swapping the old
//!   `BinaryHeap<Reverse<Event>>` for this heap changes no execution.
//! * **Wakers** are created once per task slot generation (at spawn) and
//!   cloned per use — a non-atomic refcount bump, not an allocation. The
//!   waker is hand-rolled over `Rc` (the only `unsafe` in the crate, see
//!   below), so waking pushes onto a plain `RefCell<VecDeque>` ready queue
//!   with no mutex and no atomics.
//!
//! # Safety of the `Rc`-backed waker
//!
//! `std::task::Waker` is `Send + Sync` by type, but this executor's wakers
//! wrap an `Rc` and must never leave the thread that owns the [`Sim`]. That
//! invariant holds throughout this workspace: `Sim` is `!Send`, spawned
//! futures are `!Send`, and nothing hands a waker to another thread. Debug
//! builds assert the invariant on every wake.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::Nanos;

/// Identifier of a spawned task.
///
/// Task slots are recycled after completion (simulations spawn one short
/// task per in-flight fabric message, i.e. millions per experiment); the
/// generation counter keeps stale wakers from waking a recycled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId {
    idx: usize,
    gen: u64,
}

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Queue of tasks made runnable by wakers. Strict FIFO; single-threaded, so
/// a `RefCell` suffices (wakers are guaranteed not to cross threads, see the
/// module docs).
#[derive(Default)]
struct ReadyQueue {
    queue: RefCell<VecDeque<TaskId>>,
}

impl ReadyQueue {
    fn push(&self, id: TaskId) {
        self.queue.borrow_mut().push_back(id);
    }
    fn pop(&self) -> Option<TaskId> {
        self.queue.borrow_mut().pop_front()
    }
}

/// Payload behind a task waker: which task to enqueue where. One `Rc` is
/// allocated per task slot *generation* (at spawn); every `Waker` clone
/// afterwards is a non-atomic refcount bump.
struct WakerData {
    id: TaskId,
    ready: Rc<ReadyQueue>,
    #[cfg(debug_assertions)]
    thread: std::thread::ThreadId,
}

impl WakerData {
    #[inline]
    fn assert_thread(&self) {
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            std::thread::current().id(),
            self.thread,
            "a Sim waker crossed threads; the Rc-backed waker is single-threaded"
        );
    }

    fn wake(&self) {
        self.assert_thread();
        self.ready.push(self.id);
    }
}

fn new_task_waker(id: TaskId, ready: Rc<ReadyQueue>) -> Waker {
    let data = Rc::new(WakerData {
        id,
        ready,
        #[cfg(debug_assertions)]
        thread: std::thread::current().id(),
    });
    let raw = RawWaker::new(Rc::into_raw(data) as *const (), &WAKER_VTABLE);
    // SAFETY: the vtable below upholds the RawWaker contract over an
    // `Rc<WakerData>` produced by `Rc::into_raw`; thread confinement is the
    // caller's invariant (module docs) and asserted in debug builds.
    unsafe { Waker::from_raw(raw) }
}

static WAKER_VTABLE: RawWakerVTable =
    RawWakerVTable::new(waker_clone, waker_wake, waker_wake_by_ref, waker_drop);

// SAFETY (all four): `p` is an `Rc<WakerData>` pointer from `Rc::into_raw`,
// used on the owning thread only (asserted in debug builds on every vtable
// entry, since the non-atomic refcount makes a cross-thread clone/drop UB
// just like a cross-thread wake).
unsafe fn waker_clone(p: *const ()) -> RawWaker {
    (*(p as *const WakerData)).assert_thread();
    Rc::increment_strong_count(p as *const WakerData);
    RawWaker::new(p, &WAKER_VTABLE)
}
unsafe fn waker_wake(p: *const ()) {
    let data = Rc::from_raw(p as *const WakerData);
    data.wake();
}
unsafe fn waker_wake_by_ref(p: *const ()) {
    let data = &*(p as *const WakerData);
    data.wake();
}
unsafe fn waker_drop(p: *const ()) {
    (*(p as *const WakerData)).assert_thread();
    drop(Rc::from_raw(p as *const WakerData));
}

struct TaskSlot {
    gen: u64,
    fut: Option<BoxFuture>,
    /// The slot's cached waker for the current generation; rebuilt at spawn,
    /// cloned (refcount bump) per poll and per timer registration.
    waker: Option<Waker>,
}

/// A scheduled event: what to do when its `(at, seq)` heap entry pops.
enum EventKind {
    /// Wake a stored waker — the closure-free fast path used by every timer
    /// (sleeps, message deliveries, deadlines).
    Wake(Waker),
    /// Run a boxed action ([`Sim::schedule_at`]'s general case).
    Call(Box<dyn FnOnce(&Sim)>),
    /// A fired slot awaiting reuse.
    Vacant,
}

/// Slab slot for one pending event. Slots are freed only when their unique
/// heap entry pops, so a live key never has two heap entries; the generation
/// guards [`TimerKey`] handles held by `Sleep` futures across slot reuse.
struct EventSlot {
    gen: u64,
    kind: EventKind,
}

#[derive(Clone, Copy)]
struct HeapEntry {
    at: Nanos,
    seq: u64,
    key: u32,
}

#[inline]
fn entry_less(a: &HeapEntry, b: &HeapEntry) -> bool {
    (a.at, a.seq) < (b.at, b.seq)
}

/// Handle to a pending [`EventKind::Wake`] event, held by [`Sleep`].
#[derive(Clone, Copy)]
struct TimerKey {
    key: u32,
    gen: u64,
}

/// Slab-backed event store plus an index-based 4-ary min-heap over it,
/// ordered by exact `(at, seq)` — the same total order the previous
/// `BinaryHeap<Reverse<Event>>` used, so executions are unchanged.
#[derive(Default)]
struct EventQueue {
    heap: Vec<HeapEntry>,
    slots: Vec<EventSlot>,
    free: Vec<u32>,
}

impl EventQueue {
    fn push(&mut self, at: Nanos, seq: u64, kind: EventKind) -> TimerKey {
        let key = match self.free.pop() {
            Some(key) => {
                self.slots[key as usize].kind = kind;
                key
            }
            None => {
                let key = u32::try_from(self.slots.len()).expect("event slab exhausted");
                self.slots.push(EventSlot { gen: 0, kind });
                key
            }
        };
        self.heap.push(HeapEntry { at, seq, key });
        self.sift_up(self.heap.len() - 1);
        TimerKey {
            key,
            gen: self.slots[key as usize].gen,
        }
    }

    fn peek_at(&self) -> Option<Nanos> {
        self.heap.first().map(|e| e.at)
    }

    fn pop(&mut self) -> Option<(Nanos, EventKind)> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        let slot = &mut self.slots[top.key as usize];
        let kind = std::mem::replace(&mut slot.kind, EventKind::Vacant);
        slot.gen += 1;
        self.free.push(top.key);
        Some((top.at, kind))
    }

    fn sift_up(&mut self, mut i: usize) {
        let e = self.heap[i];
        while i > 0 {
            let p = (i - 1) / 4;
            if entry_less(&e, &self.heap[p]) {
                self.heap[i] = self.heap[p];
                i = p;
            } else {
                break;
            }
        }
        self.heap[i] = e;
    }

    fn sift_down(&mut self, mut i: usize) {
        let e = self.heap[i];
        let n = self.heap.len();
        loop {
            let first = 4 * i + 1;
            if first >= n {
                break;
            }
            let mut m = first;
            for c in first + 1..(first + 4).min(n) {
                if entry_less(&self.heap[c], &self.heap[m]) {
                    m = c;
                }
            }
            if entry_less(&self.heap[m], &e) {
                self.heap[i] = self.heap[m];
                i = m;
            } else {
                break;
            }
        }
        self.heap[i] = e;
    }
}

/// Cheap always-on executor counters (all plain `Cell` increments), exposed
/// via [`Sim::counters`]. Used by perf-regression tests to pin down the
/// allocation profile of the hot path — e.g. asserting that steady-state
/// fabric traffic schedules zero boxed closures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Total events scheduled (timer wakes + boxed actions).
    pub events_scheduled: u64,
    /// Closure-free wake-at-T events (the allocation-free fast path).
    pub timer_events: u64,
    /// Events that boxed a `dyn FnOnce` ([`Sim::schedule_at`]).
    pub boxed_events: u64,
    /// Tasks spawned.
    pub tasks_spawned: u64,
    /// Task polls executed.
    pub tasks_polled: u64,
}

struct SimInner {
    now: Cell<Nanos>,
    seq: Cell<u64>,
    events: RefCell<EventQueue>,
    tasks: RefCell<Vec<TaskSlot>>,
    free_slots: RefCell<Vec<usize>>,
    live_tasks: Cell<usize>,
    ready: Rc<ReadyQueue>,
    seed: u64,
    rng: RefCell<SmallRng>,
    counters: Cell<SimCounters>,
}

/// Handle to the simulation world; cheaply cloneable.
///
/// All simulated devices (`swarm-fabric` nodes, clocks, CPU resources) hold a
/// `Sim` and use it to schedule events, spawn background tasks, and draw
/// random numbers.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<SimInner>,
}

impl Sim {
    /// Creates a new simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            inner: Rc::new(SimInner {
                now: Cell::new(0),
                seq: Cell::new(0),
                events: RefCell::new(EventQueue::default()),
                tasks: RefCell::new(Vec::new()),
                free_slots: RefCell::new(Vec::new()),
                live_tasks: Cell::new(0),
                ready: Rc::new(ReadyQueue::default()),
                seed,
                rng: RefCell::new(SmallRng::seed_from_u64(seed)),
                counters: Cell::new(SimCounters::default()),
            }),
        }
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> Nanos {
        self.inner.now.get()
    }

    /// Snapshot of the executor's event/poll counters.
    pub fn counters(&self) -> SimCounters {
        self.inner.counters.get()
    }

    fn bump_counters(&self, f: impl FnOnce(&mut SimCounters)) {
        let mut c = self.inner.counters.get();
        f(&mut c);
        self.inner.counters.set(c);
    }

    /// The seed this simulation was created with.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// A private random stream seeded purely from `(seed, label)`: its
    /// draws consume nothing from — and are unaffected by — the shared
    /// stream behind [`Sim::rand_u64`]. Independent subsystems (e.g. the
    /// shards of a sharded cluster) each fork their own label so that extra
    /// draws in one cannot perturb another; see [`crate::SimRng`].
    pub fn fork_rng(&self, label: u64) -> crate::SimRng {
        crate::SimRng::forked(self.inner.seed, label)
    }

    /// Draws a uniformly random `u64` from the simulation RNG.
    pub fn rand_u64(&self) -> u64 {
        self.inner.rng.borrow_mut().random()
    }

    /// Draws a uniformly random value in `[0, 1)`.
    pub fn rand_f64(&self) -> f64 {
        self.inner.rng.borrow_mut().random::<f64>()
    }

    /// Draws a uniformly random value in `[lo, hi)`.
    pub fn rand_range(&self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.rng.borrow_mut().random_range(lo..hi)
    }

    fn next_seq(&self) -> u64 {
        let seq = self.inner.seq.get();
        self.inner.seq.set(seq + 1);
        seq
    }

    /// Runs `action` at virtual time `at` (clamped to be no earlier than now).
    ///
    /// This is the *general* (boxing) entry point; timers and message
    /// deliveries go through the closure-free wake path instead (awaiting
    /// [`Sim::sleep_until`] and friends).
    pub fn schedule_at(&self, at: Nanos, action: impl FnOnce(&Sim) + 'static) {
        let at = at.max(self.now());
        let seq = self.next_seq();
        self.bump_counters(|c| {
            c.events_scheduled += 1;
            c.boxed_events += 1;
        });
        self.inner
            .events
            .borrow_mut()
            .push(at, seq, EventKind::Call(Box::new(action)));
    }

    /// Runs `action` after `delay` nanoseconds of virtual time.
    pub fn schedule_after(&self, delay: Nanos, action: impl FnOnce(&Sim) + 'static) {
        self.schedule_at(self.now() + delay, action);
    }

    /// Registers a closure-free "wake `waker` at `at`" event.
    fn register_wake_at(&self, at: Nanos, waker: Waker) -> TimerKey {
        let at = at.max(self.now());
        let seq = self.next_seq();
        self.bump_counters(|c| {
            c.events_scheduled += 1;
            c.timer_events += 1;
        });
        self.inner
            .events
            .borrow_mut()
            .push(at, seq, EventKind::Wake(waker))
    }

    /// Points a pending wake event at `waker` (no-op once fired). Keeps
    /// re-polled [`Sleep`]s waking the *latest* context, not the first one.
    fn reregister_waker(&self, t: TimerKey, waker: &Waker) {
        let mut events = self.inner.events.borrow_mut();
        let slot = &mut events.slots[t.key as usize];
        if slot.gen != t.gen {
            return; // Already fired (and possibly recycled).
        }
        if let EventKind::Wake(w) = &mut slot.kind {
            if !w.will_wake(waker) {
                *w = waker.clone();
            }
        }
    }

    /// Spawns a task onto the executor; it starts running when `run` is
    /// (re-)entered.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let mut tasks = self.inner.tasks.borrow_mut();
        let idx = match self.inner.free_slots.borrow_mut().pop() {
            Some(idx) => {
                tasks[idx].fut = Some(Box::pin(fut));
                idx
            }
            None => {
                tasks.push(TaskSlot {
                    gen: 0,
                    fut: Some(Box::pin(fut)),
                    waker: None,
                });
                tasks.len() - 1
            }
        };
        let id = TaskId {
            idx,
            gen: tasks[idx].gen,
        };
        tasks[idx].waker = Some(new_task_waker(id, Rc::clone(&self.inner.ready)));
        drop(tasks);
        self.bump_counters(|c| c.tasks_spawned += 1);
        self.inner.live_tasks.set(self.inner.live_tasks.get() + 1);
        self.inner.ready.push(id);
        id
    }

    /// Number of tasks that have been spawned but not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.live_tasks.get()
    }

    /// Future that resolves at virtual time `deadline`.
    pub fn sleep_until(&self, deadline: Nanos) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            timer: None,
        }
    }

    /// Future that resolves after `dur` nanoseconds of virtual time.
    pub fn sleep_ns(&self, dur: Nanos) -> Sleep {
        self.sleep_until(self.now() + dur)
    }

    /// Future that yields once, letting other ready tasks run at the same
    /// virtual instant.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    fn poll_task(&self, id: TaskId) {
        let (mut fut, waker) = {
            let mut tasks = self.inner.tasks.borrow_mut();
            let slot = &mut tasks[id.idx];
            if slot.gen != id.gen {
                return; // Stale waker for a recycled slot.
            }
            let Some(fut) = slot.fut.take() else { return };
            let waker = slot.waker.clone().expect("live task slot has a waker");
            (fut, waker)
        };
        self.bump_counters(|c| c.tasks_polled += 1);
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                let mut tasks = self.inner.tasks.borrow_mut();
                tasks[id.idx].gen += 1;
                tasks[id.idx].waker = None;
                self.inner.free_slots.borrow_mut().push(id.idx);
                self.inner.live_tasks.set(self.inner.live_tasks.get() - 1);
            }
            Poll::Pending => {
                self.inner.tasks.borrow_mut()[id.idx].fut = Some(fut);
            }
        }
    }

    fn fire(&self, kind: EventKind) {
        match kind {
            EventKind::Wake(w) => w.wake(),
            EventKind::Call(f) => f(self),
            EventKind::Vacant => {}
        }
    }

    /// Runs the simulation until no ready task and no pending event remains.
    ///
    /// Returns the final virtual time.
    pub fn run(&self) -> Nanos {
        loop {
            // Drain all tasks runnable at the current instant.
            while let Some(id) = self.inner.ready.pop() {
                self.poll_task(id);
            }
            // Advance time to the next event.
            let ev = self.inner.events.borrow_mut().pop();
            match ev {
                Some((at, kind)) => {
                    debug_assert!(at >= self.now());
                    self.inner.now.set(at);
                    self.fire(kind);
                }
                None => return self.now(),
            }
        }
    }

    /// Runs the simulation, but stops once virtual time would exceed
    /// `deadline`. Events after the deadline remain queued.
    pub fn run_until(&self, deadline: Nanos) -> Nanos {
        loop {
            while let Some(id) = self.inner.ready.pop() {
                self.poll_task(id);
            }
            let next_at = self.inner.events.borrow().peek_at();
            match next_at {
                Some(at) if at <= deadline => {
                    let (at, kind) = self.inner.events.borrow_mut().pop().expect("event peeked");
                    self.inner.now.set(at);
                    self.fire(kind);
                }
                _ => return self.now(),
            }
        }
    }

    /// Convenience: spawn `fut` and run the simulation to completion,
    /// returning the value the future produced.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks before the future completes.
    pub fn block_on<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> T {
        let slot: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let slot2 = Rc::clone(&slot);
        self.spawn(async move {
            let v = fut.await;
            *slot2.borrow_mut() = Some(v);
        });
        self.run();
        Rc::try_unwrap(slot)
            .ok()
            .expect("simulation still holds result slot")
            .into_inner()
            .expect("simulation deadlocked before block_on future completed")
    }
}

/// Future returned by [`Sim::sleep_until`].
///
/// Registers one closure-free wake event on first poll; later polls from a
/// different context re-point the event at the *latest* waker (so `Sleep` is
/// safe inside `select`-style combinators that migrate futures between
/// contexts).
///
/// Dropping a `Sleep` does **not** cancel the wake: the event still fires at
/// the deadline and wakes the registered waker (a gen-guarded no-op if the
/// task has completed, a spurious poll if it is still running). This mirrors
/// the pre-slab executor, whose dropped sleeps left their scheduled closure
/// behind — suppressing those spurious wakes would change how simultaneous
/// events interleave within one virtual instant and break bit-identical
/// replay of seeded runs.
pub struct Sleep {
    sim: Sim,
    deadline: Nanos,
    timer: Option<TimerKey>,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        match self.timer {
            Some(t) => self.sim.reregister_waker(t, cx.waker()),
            None => {
                let t = self.sim.register_wake_at(self.deadline, cx.waker().clone());
                self.timer = Some(t);
            }
        }
        Poll::Pending
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_starts_at_zero() {
        let sim = Sim::new(1);
        assert_eq!(sim.now(), 0);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let end = sim.block_on(async move {
            s.sleep_ns(1_000).await;
            s.sleep_ns(500).await;
            s.now()
        });
        assert_eq!(end, 1_500);
    }

    #[test]
    fn events_fire_in_time_then_fifo_order() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for (delay, tag) in [(50u64, 2u32), (10, 0), (50, 3), (20, 1)] {
            let log = Rc::clone(&log);
            sim.schedule_after(delay, move |_| log.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn concurrent_tasks_interleave_deterministically() {
        let sim = Sim::new(7);
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        for t in 0..3u32 {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for i in 0..3u64 {
                    s.sleep_ns(10 * (t as u64 + 1)).await;
                    log.borrow_mut().push((s.now(), t + 10 * i as u32));
                }
            });
        }
        sim.run();
        let first: Vec<_> = log.borrow().clone();
        // Re-run with the same seed: identical interleaving.
        let sim2 = Sim::new(7);
        let log2: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        for t in 0..3u32 {
            let s = sim2.clone();
            let log2 = Rc::clone(&log2);
            sim2.spawn(async move {
                for i in 0..3u64 {
                    s.sleep_ns(10 * (t as u64 + 1)).await;
                    log2.borrow_mut().push((s.now(), t + 10 * i as u32));
                }
            });
        }
        sim2.run();
        assert_eq!(first, *log2.borrow());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.spawn(async move {
            loop {
                s.sleep_ns(100).await;
            }
        });
        let t = sim.run_until(1_000);
        assert_eq!(t, 1_000);
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let (l1, l2) = (Rc::clone(&log), Rc::clone(&log));
        let s1 = sim.clone();
        sim.spawn(async move {
            l1.borrow_mut().push(1);
            s1.yield_now().await;
            l1.borrow_mut().push(3);
        });
        sim.spawn(async move {
            l2.borrow_mut().push(2);
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn task_slots_are_recycled() {
        let sim = Sim::new(1);
        for _ in 0..1_000 {
            let s = sim.clone();
            sim.spawn(async move { s.sleep_ns(1).await });
            sim.run();
        }
        assert!(sim.inner.tasks.borrow().len() <= 2);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let sim = Sim::new(99);
            (0..8).map(|_| sim.rand_u64()).collect()
        };
        let b: Vec<u64> = {
            let sim = Sim::new(99);
            (0..8).map(|_| sim.rand_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let sim = Sim::new(100);
            (0..8).map(|_| sim.rand_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn sleeps_schedule_no_boxed_closures() {
        // The wake-at-T fast path must stay allocation-free: no boxed
        // `dyn FnOnce` per sleep, one inline timer event each.
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.block_on(async move {
            for _ in 0..100 {
                s.sleep_ns(10).await;
            }
        });
        let c = sim.counters();
        assert_eq!(c.boxed_events, 0, "sleeps must not box closures");
        assert_eq!(c.timer_events, 100);
        assert_eq!(c.events_scheduled, 100);
        assert!(c.tasks_polled >= 101, "one poll per wake plus the first");
        assert_eq!(c.tasks_spawned, 1);
    }

    #[test]
    fn schedule_at_counts_as_boxed_event() {
        let sim = Sim::new(1);
        sim.schedule_after(5, |_| {});
        sim.run();
        let c = sim.counters();
        assert_eq!(c.boxed_events, 1);
        assert_eq!(c.timer_events, 0);
    }

    #[test]
    fn dropped_sleep_still_advances_time_on_run() {
        // A dropped Sleep's event stays armed: it must keep advancing
        // virtual time (and spuriously wake its task, a no-op here since the
        // task is gone), exactly like the stale closure the pre-slab
        // executor left behind — so `run()` end times stay bit-identical.
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.spawn(async move {
            let long = s.sleep_ns(10_000);
            let short = s.sleep_ns(100);
            match crate::combinators::race2(long, short).await {
                crate::combinators::Either::Right(()) => {}
                crate::combinators::Either::Left(()) => panic!("short sleep lost the race"),
            }
            // `long` is dropped here; its event remains queued.
        });
        let end = sim.run();
        assert_eq!(end, 10_000, "cancelled timer entry must advance the clock");
    }

    #[test]
    fn sleep_wakes_the_latest_waker_after_repoll() {
        // Regression for waker staleness: a Sleep first polled inside task A
        // and then moved to (and re-polled by) task B must wake *B* at the
        // deadline. The old executor captured A's waker forever, leaving B
        // asleep and the simulation deadlocked.
        struct PollOnceThenStash {
            sleep: Option<Sleep>,
            stash: Rc<RefCell<Option<Sleep>>>,
        }
        impl Future for PollOnceThenStash {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                let mut sl = self.sleep.take().expect("polled once");
                let _ = Pin::new(&mut sl).poll(cx); // registers task A's waker
                *self.stash.borrow_mut() = Some(sl);
                Poll::Ready(())
            }
        }

        let sim = Sim::new(1);
        let stash: Rc<RefCell<Option<Sleep>>> = Rc::new(RefCell::new(None));
        let sleep = sim.sleep_ns(1_000);
        sim.spawn(PollOnceThenStash {
            sleep: Some(sleep),
            stash: Rc::clone(&stash),
        });
        let stash2 = Rc::clone(&stash);
        let s = sim.clone();
        let done = Rc::new(Cell::new(false));
        let done2 = Rc::clone(&done);
        sim.spawn(async move {
            // Runs at the same instant, after task A stashed the Sleep.
            let sl = stash2.borrow_mut().take().expect("task A stashed it");
            sl.await;
            assert_eq!(s.now(), 1_000);
            done2.set(true);
        });
        sim.run();
        assert!(done.get(), "task B never woke: stale waker used");
    }

    #[test]
    fn four_ary_heap_matches_binary_heap_order() {
        // Exhaustive-ish shuffle test: the 4-ary heap must pop in exact
        // (at, seq) order for adversarial insertion patterns.
        let sim = Sim::new(123);
        let fired: Rc<RefCell<Vec<(Nanos, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut expected = Vec::new();
        for i in 0..500u64 {
            let at = sim.rand_range(0, 50); // many ties -> seq ordering
            expected.push((at, i));
            let fired = Rc::clone(&fired);
            sim.schedule_at(at, move |s| fired.borrow_mut().push((s.now(), i)));
        }
        sim.run();
        expected.sort();
        assert_eq!(*fired.borrow(), expected);
    }
}
