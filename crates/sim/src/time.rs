//! Virtual-time units.
//!
//! All simulation time is expressed in nanoseconds as a plain `u64`
//! ([`Nanos`]). A `u64` of nanoseconds covers ~584 years of virtual time,
//! far beyond any experiment, and keeps arithmetic in hot paths trivial.

/// Virtual time / duration in nanoseconds.
pub type Nanos = u64;

/// Nanoseconds per microsecond.
pub const NANOS_PER_MICRO: Nanos = 1_000;

/// Nanoseconds per millisecond.
pub const NANOS_PER_MILLI: Nanos = 1_000_000;

/// Nanoseconds per second.
pub const NANOS_PER_SEC: Nanos = 1_000_000_000;

/// Converts nanoseconds to fractional microseconds (for reporting).
pub fn to_micros(ns: Nanos) -> f64 {
    ns as f64 / NANOS_PER_MICRO as f64
}

/// Converts nanoseconds to fractional seconds (for reporting).
pub fn to_secs(ns: Nanos) -> f64 {
    ns as f64 / NANOS_PER_SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(NANOS_PER_SEC, 1_000 * NANOS_PER_MILLI);
        assert_eq!(NANOS_PER_MILLI, 1_000 * NANOS_PER_MICRO);
        assert!((to_micros(2_400) - 2.4).abs() < 1e-9);
        assert!((to_secs(1_500_000_000) - 1.5).abs() < 1e-9);
    }
}
