//! Workload mixes and the operation stream generator.

use crate::zipfian::Zipfian;

/// One key-value operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpType {
    /// Read a key.
    Get,
    /// Overwrite a key's value.
    Update,
    /// Insert a new key.
    Insert,
    /// Remove a key.
    Delete,
}

/// An operation mix (percentages must sum to 100).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Percent of gets.
    pub get_pct: u64,
    /// Percent of updates.
    pub update_pct: u64,
    /// Percent of inserts.
    pub insert_pct: u64,
    /// Percent of deletes.
    pub delete_pct: u64,
}

impl WorkloadSpec {
    /// YCSB workload A: 50% gets, 50% updates.
    pub const A: WorkloadSpec = WorkloadSpec {
        get_pct: 50,
        update_pct: 50,
        insert_pct: 0,
        delete_pct: 0,
    };

    /// YCSB workload B: 95% gets, 5% updates.
    pub const B: WorkloadSpec = WorkloadSpec {
        get_pct: 95,
        update_pct: 5,
        insert_pct: 0,
        delete_pct: 0,
    };

    /// YCSB workload C: read-only.
    pub const C: WorkloadSpec = WorkloadSpec {
        get_pct: 100,
        update_pct: 0,
        insert_pct: 0,
        delete_pct: 0,
    };

    /// YCSB workload D (read latest): 95% gets, 5% inserts. The "latest"
    /// aspect lives in the key distribution the caller pairs it with; the
    /// mix itself is what distinguishes D from B.
    pub const D: WorkloadSpec = WorkloadSpec {
        get_pct: 95,
        update_pct: 0,
        insert_pct: 5,
        delete_pct: 0,
    };

    /// Picks an [`OpType`] from a uniform draw in `[0, 100)`.
    ///
    /// # Panics
    ///
    /// Panics if the percentages do not sum to 100.
    pub fn pick(&self, roll: u64) -> OpType {
        assert_eq!(
            self.get_pct + self.update_pct + self.insert_pct + self.delete_pct,
            100,
            "workload percentages must sum to 100"
        );
        if roll < self.get_pct {
            OpType::Get
        } else if roll < self.get_pct + self.update_pct {
            OpType::Update
        } else if roll < self.get_pct + self.update_pct + self.insert_pct {
            OpType::Insert
        } else {
            OpType::Delete
        }
    }
}

/// A workload: a mix plus a key distribution.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Operation mix.
    pub spec: WorkloadSpec,
    /// Key sampler.
    pub keys: Zipfian,
    /// Value size in bytes.
    pub value_size: usize,
}

impl Workload {
    /// YCSB workload over `n_keys` keys with the given mix and value size.
    pub fn ycsb(spec: WorkloadSpec, n_keys: u64, value_size: usize) -> Self {
        Workload {
            spec,
            keys: Zipfian::ycsb(n_keys),
            value_size,
        }
    }

    /// Draws the next `(op, key)` pair from two uniform samples.
    pub fn next_op(&self, roll: u64, u: f64) -> (OpType, u64) {
        (self.spec.pick(roll % 100), self.keys.sample(u))
    }

    /// Deterministic per-(key, version) value payload of `value_size` bytes.
    pub fn value_for(&self, key: u64, version: u64) -> Vec<u8> {
        let mut v = vec![0u8; self.value_size];
        let tag = key
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(version)
            .to_le_bytes();
        for (i, b) in v.iter_mut().enumerate() {
            *b = tag[i % 8] ^ (i as u8);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_pick_respects_mix() {
        let mut gets = 0;
        for roll in 0..100 {
            if WorkloadSpec::B.pick(roll) == OpType::Get {
                gets += 1;
            }
        }
        assert_eq!(gets, 95);
    }

    #[test]
    fn workload_a_is_half_updates() {
        let updates = (0..100)
            .filter(|&r| WorkloadSpec::A.pick(r) == OpType::Update)
            .count();
        assert_eq!(updates, 50);
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_panics() {
        let bad = WorkloadSpec {
            get_pct: 10,
            update_pct: 10,
            insert_pct: 0,
            delete_pct: 0,
        };
        bad.pick(5);
    }

    #[test]
    fn values_differ_by_key_and_version() {
        let w = Workload::ycsb(WorkloadSpec::C, 10, 64);
        assert_eq!(w.value_for(1, 0).len(), 64);
        assert_ne!(w.value_for(1, 0), w.value_for(2, 0));
        assert_ne!(w.value_for(1, 0), w.value_for(1, 1));
    }

    #[test]
    fn next_op_uses_distribution() {
        let w = Workload::ycsb(WorkloadSpec::A, 100, 8);
        let (op, key) = w.next_op(0, 0.5);
        assert_eq!(op, OpType::Get);
        assert!(key < 100);
    }
}
