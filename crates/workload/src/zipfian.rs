//! Zipfian key sampler (Gray et al., "Quickly generating billion-record
//! synthetic databases", SIGMOD '94 — the algorithm YCSB uses).

/// Zipfian distribution over `0..n` with parameter `theta` (YCSB default
/// 0.99), plus an optional hash scramble decorrelating rank from key id.
/// `theta = 0` degenerates to the uniform distribution (every key equally
/// likely — the sharded scale bench's balanced-load workload).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
    scramble: bool,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Exact for the sizes used here (<= a few million); O(n) once at setup.
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl Zipfian {
    /// Creates a sampler over `n` items with parameter `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `[0, 1)`.
    pub fn new(n: u64, theta: f64, scramble: bool) -> Self {
        assert!(n > 0);
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
            scramble,
        }
    }

    /// YCSB's default: theta = 0.99, scrambled.
    pub fn ycsb(n: u64) -> Self {
        Self::new(n, 0.99, true)
    }

    /// The uniform distribution over `0..n` (`theta = 0`; the Gray et al.
    /// recurrence collapses to `rank = u * n` exactly). Unscrambled: with
    /// no rank skew there is nothing to decorrelate, and skipping the
    /// scramble keeps every key's probability exactly `1/n` (`hash % n`
    /// collides occasionally).
    pub fn uniform(n: u64) -> Self {
        Self::new(n, 0.0, false)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one key in `0..n` from a uniform sample `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> u64 {
        let rank = self.sample_rank(u);
        if self.scramble {
            // Fibonacci-hash scramble, bijective over 0..n via re-ranking.
            scramble64(rank) % self.n
        } else {
            rank
        }
    }

    /// Draws the popularity *rank* (0 = hottest) in `0..n` from a uniform
    /// sample `u ∈ [0, 1)`, before any scramble. The scenario engine uses
    /// this to rotate hot sets: offset the rank, then scramble.
    pub fn sample_rank(&self, u: f64) -> u64 {
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        rank.min(self.n - 1)
    }

    /// Probability of the most popular (rank-0) item.
    pub fn top_probability(&self) -> f64 {
        1.0 / self.zetan
    }

    /// Internal consistency check value (used by tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

pub(crate) fn scramble64(x: u64) -> u64 {
    // splitmix64 finalizer: bijective on u64, excellent diffusion.
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipfian::ycsb(1000);
        for u in uniform_stream(1, 10_000) {
            assert!(z.sample(u) < 1000);
        }
    }

    #[test]
    fn unscrambled_rank0_frequency_matches_theory() {
        let z = Zipfian::new(10_000, 0.99, false);
        let n = 200_000;
        let hits = uniform_stream(2, n)
            .into_iter()
            .filter(|&u| z.sample(u) == 0)
            .count();
        let expected = z.top_probability();
        let got = hits as f64 / n as f64;
        assert!(
            (got - expected).abs() / expected < 0.1,
            "rank-0 freq {got}, expected {expected}"
        );
    }

    #[test]
    fn distribution_is_heavily_skewed() {
        // With theta=.99 over 100k keys, the top ~1% of keys should draw a
        // large fraction of accesses.
        let z = Zipfian::new(100_000, 0.99, false);
        let samples: Vec<u64> = uniform_stream(3, 100_000)
            .into_iter()
            .map(|u| z.sample(u))
            .collect();
        let hot = samples.iter().filter(|&&k| k < 1_000).count();
        let frac = hot as f64 / samples.len() as f64;
        assert!(frac > 0.3, "hot-key fraction only {frac}");
    }

    #[test]
    fn scramble_spreads_hot_keys() {
        let z = Zipfian::ycsb(100_000);
        let samples: Vec<u64> = uniform_stream(4, 50_000)
            .into_iter()
            .map(|u| z.sample(u))
            .collect();
        // The most frequent key should NOT be key 0 after scrambling (with
        // overwhelming probability).
        let mut counts = std::collections::HashMap::new();
        for s in &samples {
            *counts.entry(*s).or_insert(0u32) += 1;
        }
        let (&top, _) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert_ne!(top, 0, "scramble left rank 0 at key 0");
        // Still skewed: top key sampled much more than uniform share.
        assert!(counts[&top] as f64 > 50.0 * (50_000.0 / 100_000.0));
    }

    #[test]
    fn scramble_collisions_are_birthday_bounded() {
        // `hash % n` does collide occasionally (as in YCSB itself); the rate
        // among the 1000 hottest ranks must stay at birthday-paradox levels,
        // not systematic clustering.
        let z = Zipfian::ycsb(100_000);
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for rank in 0..1_000u64 {
            if !seen.insert(scramble64(rank) % z.n) {
                collisions += 1;
            }
        }
        assert!(
            collisions <= 15,
            "too many hot-rank collisions: {collisions}"
        );
    }

    #[test]
    fn uniform_theta_zero_is_flat() {
        let z = Zipfian::uniform(1_000);
        let n = 200_000;
        let mut counts = vec![0u32; 1_000];
        for u in uniform_stream(8, n) {
            counts[z.sample(u) as usize] += 1;
        }
        // Every key sampled, none wildly over-represented: max/mean well
        // under the ~13x a theta=.99 Zipfian would show.
        let max = *counts.iter().max().unwrap() as f64;
        let mean = n as f64 / 1_000.0;
        assert!(counts.iter().all(|&c| c > 0), "a key was never sampled");
        assert!(max / mean < 1.5, "uniform max/mean {:.2}", max / mean);
    }

    #[test]
    fn uniform_rank_is_u_times_n() {
        let z = Zipfian::uniform(10_000);
        for u in uniform_stream(9, 1_000) {
            assert_eq!(z.sample(u), (u * 10_000.0) as u64);
        }
    }
}
