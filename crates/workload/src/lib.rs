//! YCSB-style workload generation (§7: "We run YCSB workloads A (50% gets
//! and 50% updates) and B (95% gets and 5% updates) with Zipfian (.99) key
//! distribution").
//!
//! The Zipfian sampler is the standard Gray et al. rejection-free generator
//! (the one YCSB itself uses), with a multiplicative hash scramble so that
//! popular keys are spread across the key space rather than clustered at
//! small ids.

mod spec;
mod zipfian;

pub use spec::{OpType, Workload, WorkloadSpec};
pub use zipfian::Zipfian;
