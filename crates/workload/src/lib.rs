//! YCSB-style workload generation (§7: "We run YCSB workloads A (50% gets
//! and 50% updates) and B (95% gets and 5% updates) with Zipfian (.99) key
//! distribution").
//!
//! The Zipfian sampler is the standard Gray et al. rejection-free generator
//! (the one YCSB itself uses), with a multiplicative hash scramble so that
//! popular keys are spread across the key space rather than clustered at
//! small ids.
//!
//! Beyond the static [`Workload`] mixes, the [`scenario`](ScenarioSpec)
//! layer adds time-phased specs: per-phase op mixes covering the full YCSB
//! A–F family (scans and read-modify-writes included), per-phase Zipfian
//! theta, hot-set rotation for flash crowds, value-size distributions, and
//! TTL/expiry traffic. Scenario op streams are pure in `(seed, spec)` —
//! see `docs/SCENARIOS.md` for the cookbook.

#![warn(missing_docs)]

mod scenario;
mod spec;
mod zipfian;

pub use scenario::{
    scenario_value, Phase, ScenarioMix, ScenarioOp, ScenarioOpClass, ScenarioSpec, ScenarioStream,
    TtlSpec, ValueSizeDist,
};
pub use spec::{OpType, Workload, WorkloadSpec};
pub use zipfian::Zipfian;
