//! Time-phased scenario specifications: dynamic skew, the full YCSB A–F
//! mix family (including scans and read-modify-writes), value-size
//! distributions, and TTL/expiry traffic.
//!
//! A [`ScenarioSpec`] is a *schedule* of [`Phase`]s. Each phase carries its
//! own operation mix ([`ScenarioMix`]), Zipfian skew (`theta`), and hot-set
//! rotation, so a scenario can model a flash crowd: the hot keys move
//! mid-run when one phase's `rotation` differs from the previous phase's.
//!
//! # Determinism
//!
//! The operation stream is a **pure function of `(seed, spec)`**: the
//! generator's only entropy source is a self-contained splitmix64 stream
//! seeded from the scenario seed, so `spec.ops(seed)` regenerates
//! bit-identically on every call, in every process, at any thread count.
//! (A property test pins exactly that.) Replaying one phase of a run needs
//! nothing but the `(seed, spec)` pair and the phase index — see
//! TESTING.md's scenario replay conventions.
//!
//! # Example
//!
//! ```
//! use swarm_workload::{Phase, ScenarioMix, ScenarioOp, ScenarioSpec};
//!
//! // A flash crowd: 200 calm YCSB-B ops, then 200 ops with the hot set
//! // rotated to a different key region, then calm again.
//! let spec = ScenarioSpec::new("flash", 10_000)
//!     .phase(Phase::new(200, ScenarioMix::B).theta(0.9))
//!     .phase(Phase::new(200, ScenarioMix::A).theta(0.99).rotate(5_000))
//!     .phase(Phase::new(200, ScenarioMix::B).theta(0.9));
//! let ops = spec.ops(42);
//! assert_eq!(ops.len(), 600);
//! assert_eq!(ops, spec.ops(42), "pure in (seed, spec)");
//! assert!(ops.iter().all(|op| match *op {
//!     ScenarioOp::Scan { start, .. } => start < 10_000,
//!     op => op.key() < 10_000,
//! }));
//! ```

use crate::zipfian::{scramble64, Zipfian};

/// One operation class a scenario mix can emit (the histogram axis of
/// scenario reports). [`ScenarioOp::class`] maps a concrete operation back
/// to its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioOpClass {
    /// Point read.
    Get,
    /// Point overwrite.
    Update,
    /// Insert (possibly lease-stamped, see [`TtlSpec`]).
    Insert,
    /// Point delete.
    Delete,
    /// Ordered range read (YCSB E).
    Scan,
    /// Read-modify-write: a get followed by an update of the same key
    /// (YCSB F).
    Rmw,
}

impl ScenarioOpClass {
    /// All classes, in reporting order.
    pub fn all() -> [ScenarioOpClass; 6] {
        [
            ScenarioOpClass::Get,
            ScenarioOpClass::Update,
            ScenarioOpClass::Insert,
            ScenarioOpClass::Delete,
            ScenarioOpClass::Scan,
            ScenarioOpClass::Rmw,
        ]
    }

    /// Lower-case display name (report field keys).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioOpClass::Get => "get",
            ScenarioOpClass::Update => "update",
            ScenarioOpClass::Insert => "insert",
            ScenarioOpClass::Delete => "delete",
            ScenarioOpClass::Scan => "scan",
            ScenarioOpClass::Rmw => "rmw",
        }
    }
}

/// One fully resolved operation of a scenario stream. Every field a driver
/// needs — key, payload size, write version, scan bounds, TTL lease — is
/// baked in at generation time, so executing the stream draws no further
/// randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioOp {
    /// Read `key`.
    Get {
        /// The key to read.
        key: u64,
    },
    /// Overwrite `key` with a `size`-byte payload derived from
    /// [`scenario_value`]`(key, version, size)`.
    Update {
        /// The key to overwrite.
        key: u64,
        /// Payload size in bytes.
        size: usize,
        /// Monotone stream-unique version (the payload tag seed).
        version: u64,
    },
    /// Insert `key`, optionally carrying a TTL lease (see [`TtlSpec`]).
    Insert {
        /// The key to insert.
        key: u64,
        /// Payload size in bytes.
        size: usize,
        /// Monotone stream-unique version (the payload tag seed).
        version: u64,
        /// Lease duration in virtual nanoseconds; `None` = no expiry.
        ttl_ns: Option<u64>,
    },
    /// Delete `key`.
    Delete {
        /// The key to delete.
        key: u64,
    },
    /// Ordered range read: up to `limit` live keys starting at `start`,
    /// ascending (YCSB E).
    Scan {
        /// First key of the range (inclusive).
        start: u64,
        /// Maximum number of keys to return.
        limit: usize,
    },
    /// Read `key`, then overwrite it with a fresh `size`-byte payload
    /// (YCSB F's read-modify-write).
    Rmw {
        /// The key to read and overwrite.
        key: u64,
        /// Payload size of the overwrite, in bytes.
        size: usize,
        /// Monotone stream-unique version (the payload tag seed).
        version: u64,
    },
}

impl ScenarioOp {
    /// The operation's class (histogram axis).
    pub fn class(&self) -> ScenarioOpClass {
        match self {
            ScenarioOp::Get { .. } => ScenarioOpClass::Get,
            ScenarioOp::Update { .. } => ScenarioOpClass::Update,
            ScenarioOp::Insert { .. } => ScenarioOpClass::Insert,
            ScenarioOp::Delete { .. } => ScenarioOpClass::Delete,
            ScenarioOp::Scan { .. } => ScenarioOpClass::Scan,
            ScenarioOp::Rmw { .. } => ScenarioOpClass::Rmw,
        }
    }

    /// The primary key the operation addresses (a scan's range start).
    pub fn key(&self) -> u64 {
        match *self {
            ScenarioOp::Get { key }
            | ScenarioOp::Update { key, .. }
            | ScenarioOp::Insert { key, .. }
            | ScenarioOp::Delete { key }
            | ScenarioOp::Rmw { key, .. } => key,
            ScenarioOp::Scan { start, .. } => start,
        }
    }
}

/// A six-way operation mix (percentages must sum to 100). Extends the
/// four-way [`crate::WorkloadSpec`] with scans and read-modify-writes,
/// which completes the standard YCSB core workload family A–F.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioMix {
    /// Percent of point reads.
    pub get_pct: u64,
    /// Percent of point overwrites.
    pub update_pct: u64,
    /// Percent of inserts.
    pub insert_pct: u64,
    /// Percent of deletes.
    pub delete_pct: u64,
    /// Percent of ordered range reads (scans).
    pub scan_pct: u64,
    /// Percent of read-modify-writes.
    pub rmw_pct: u64,
}

impl ScenarioMix {
    const ZERO: ScenarioMix = ScenarioMix {
        get_pct: 0,
        update_pct: 0,
        insert_pct: 0,
        delete_pct: 0,
        scan_pct: 0,
        rmw_pct: 0,
    };

    /// YCSB A — update heavy: 50% gets, 50% updates.
    pub const A: ScenarioMix = ScenarioMix {
        get_pct: 50,
        update_pct: 50,
        ..Self::ZERO
    };

    /// YCSB B — read mostly: 95% gets, 5% updates.
    pub const B: ScenarioMix = ScenarioMix {
        get_pct: 95,
        update_pct: 5,
        ..Self::ZERO
    };

    /// YCSB C — read only: 100% gets.
    pub const C: ScenarioMix = ScenarioMix {
        get_pct: 100,
        ..Self::ZERO
    };

    /// YCSB D — read latest: 95% gets, 5% inserts.
    pub const D: ScenarioMix = ScenarioMix {
        get_pct: 95,
        insert_pct: 5,
        ..Self::ZERO
    };

    /// YCSB E — short ranges: 95% scans, 5% inserts.
    pub const E: ScenarioMix = ScenarioMix {
        scan_pct: 95,
        insert_pct: 5,
        ..Self::ZERO
    };

    /// YCSB F — read-modify-write: 50% gets, 50% RMWs.
    pub const F: ScenarioMix = ScenarioMix {
        get_pct: 50,
        rmw_pct: 50,
        ..Self::ZERO
    };

    /// The six standard mixes with their YCSB letters, in order.
    pub fn ycsb_all() -> [(&'static str, ScenarioMix); 6] {
        [
            ("A", ScenarioMix::A),
            ("B", ScenarioMix::B),
            ("C", ScenarioMix::C),
            ("D", ScenarioMix::D),
            ("E", ScenarioMix::E),
            ("F", ScenarioMix::F),
        ]
    }

    /// Picks an operation class from a uniform draw in `[0, 100)`.
    ///
    /// # Panics
    ///
    /// Panics if the percentages do not sum to 100.
    pub fn pick(&self, roll: u64) -> ScenarioOpClass {
        assert_eq!(
            self.get_pct
                + self.update_pct
                + self.insert_pct
                + self.delete_pct
                + self.scan_pct
                + self.rmw_pct,
            100,
            "scenario mix percentages must sum to 100"
        );
        let mut edge = self.get_pct;
        if roll < edge {
            return ScenarioOpClass::Get;
        }
        edge += self.update_pct;
        if roll < edge {
            return ScenarioOpClass::Update;
        }
        edge += self.insert_pct;
        if roll < edge {
            return ScenarioOpClass::Insert;
        }
        edge += self.delete_pct;
        if roll < edge {
            return ScenarioOpClass::Delete;
        }
        edge += self.scan_pct;
        if roll < edge {
            return ScenarioOpClass::Scan;
        }
        ScenarioOpClass::Rmw
    }
}

impl From<crate::WorkloadSpec> for ScenarioMix {
    /// Widens a four-way mix (no scans, no RMWs) into the six-way form.
    fn from(s: crate::WorkloadSpec) -> Self {
        ScenarioMix {
            get_pct: s.get_pct,
            update_pct: s.update_pct,
            insert_pct: s.insert_pct,
            delete_pct: s.delete_pct,
            ..Self::ZERO
        }
    }
}

/// One phase of a scenario: an operation count plus the mix/skew/rotation
/// that govern it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Number of operations this phase emits.
    pub ops: usize,
    /// The operation mix.
    pub mix: ScenarioMix,
    /// Zipfian skew parameter in `[0, 1)`; `0.0` is uniform, `0.99` the
    /// YCSB default.
    pub theta: f64,
    /// Hot-set rotation: ranks are offset by this amount *before* the hash
    /// scramble, so two phases with different rotations have (almost
    /// entirely) disjoint hot sets over the same keyspace. `rotation = 0`
    /// reproduces [`Zipfian::ycsb`]'s mapping bit for bit.
    pub rotation: u64,
}

impl Phase {
    /// A phase of `ops` operations with mix `mix`, YCSB-default skew
    /// (`theta = 0.99`), and no rotation.
    pub fn new(ops: usize, mix: ScenarioMix) -> Self {
        Phase {
            ops,
            mix,
            theta: 0.99,
            rotation: 0,
        }
    }

    /// Sets the Zipfian skew (`0.0` = uniform; must be `< 1`).
    pub fn theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Rotates the hot set: offsets sampled ranks by `rotation` before the
    /// hash scramble (see [`Phase::rotation`]).
    pub fn rotate(mut self, rotation: u64) -> Self {
        self.rotation = rotation;
        self
    }
}

/// Distribution of write-payload sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueSizeDist {
    /// Every payload is exactly this many bytes.
    Fixed(usize),
    /// Small-dominant with a heavy tail: `small` bytes with probability
    /// `(100 - large_pct)%`, `large` bytes otherwise. The paper-motivated
    /// default tail is 8 KiB+ values (where In-n-Out's no-compute
    /// conditional updates should beat FUSEE's CAS-chase).
    Bimodal {
        /// The common (small) payload size in bytes.
        small: usize,
        /// The tail (large) payload size in bytes.
        large: usize,
        /// Percent of writes drawing the large size (`0..=100`).
        large_pct: u64,
    },
}

impl ValueSizeDist {
    /// The small-dominant default: 64-byte values with a 5% tail of
    /// 8 KiB payloads.
    pub fn small_dominant() -> Self {
        ValueSizeDist::Bimodal {
            small: 64,
            large: 8 * 1024,
            large_pct: 5,
        }
    }

    /// Draws a payload size from a uniform roll in `[0, 100)`.
    pub fn sample(&self, roll: u64) -> usize {
        match *self {
            ValueSizeDist::Fixed(n) => n,
            ValueSizeDist::Bimodal {
                small,
                large,
                large_pct,
            } => {
                if roll < large_pct {
                    large
                } else {
                    small
                }
            }
        }
    }

    /// The largest size this distribution can draw (buffer sizing).
    pub fn max_size(&self) -> usize {
        match *self {
            ValueSizeDist::Fixed(n) => n,
            ValueSizeDist::Bimodal { small, large, .. } => small.max(large),
        }
    }
}

/// TTL/expiry traffic knobs: a fraction of inserts carry a lease, after
/// which the key reads as absent (`Ok(None)`).
///
/// Lease-carrying inserts draw their keys from a **dedicated tail range**
/// of the keyspace (`n_keys..n_keys + ttl_keys`), so expiring keys never
/// collide with the bulk-loaded working set. Expiry is a *legal
/// linearization point*: the checker models it as an ambiguous delete at
/// the expiry instant (see `swarm_core::KvHistory::expire`), so both a
/// pre-expiry `Some` and a post-expiry `None` read of the same key
/// linearize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TtlSpec {
    /// Percent of inserts that carry a lease (`0..=100`).
    pub insert_pct: u64,
    /// Lease duration in virtual nanoseconds.
    pub ttl_ns: u64,
    /// Size of the dedicated expiring-key range appended after the main
    /// keyspace.
    pub ttl_keys: u64,
}

impl TtlSpec {
    /// Every insert carries a `ttl_ns` lease, over a 64-key expiring range.
    pub fn always(ttl_ns: u64) -> Self {
        TtlSpec {
            insert_pct: 100,
            ttl_ns,
            ttl_keys: 64,
        }
    }
}

/// A complete scenario: a named schedule of [`Phase`]s over one keyspace,
/// plus value-size and TTL knobs shared by every phase.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (report section titles, CSV file stems).
    pub name: String,
    /// Keys in the main keyspace (`0..n_keys` are assumed bulk-loaded).
    pub n_keys: u64,
    /// The phase schedule, executed in order.
    pub phases: Vec<Phase>,
    /// Write-payload size distribution.
    pub values: ValueSizeDist,
    /// TTL/expiry traffic, if any.
    pub ttl: Option<TtlSpec>,
    /// Upper bound on scan lengths; each scan draws a limit uniformly from
    /// `1..=scan_max_len`.
    pub scan_max_len: usize,
}

impl ScenarioSpec {
    /// A scenario over `0..n_keys` with no phases yet, 64-byte fixed
    /// values, no TTL traffic, and scans of up to 16 keys.
    pub fn new(name: impl Into<String>, n_keys: u64) -> Self {
        assert!(n_keys > 0, "a scenario needs a non-empty keyspace");
        ScenarioSpec {
            name: name.into(),
            n_keys,
            phases: Vec::new(),
            values: ValueSizeDist::Fixed(64),
            ttl: None,
            scan_max_len: 16,
        }
    }

    /// Appends a phase to the schedule.
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Sets the write-payload size distribution.
    pub fn values(mut self, dist: ValueSizeDist) -> Self {
        self.values = dist;
        self
    }

    /// Arms TTL/expiry traffic (see [`TtlSpec`]).
    pub fn ttl(mut self, ttl: TtlSpec) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Sets the scan-length upper bound (`>= 1`).
    pub fn scan_max_len(mut self, len: usize) -> Self {
        assert!(len >= 1, "scans return at least one key");
        self.scan_max_len = len;
        self
    }

    /// A single-phase YCSB scenario: `ops` operations of `mix` at the
    /// default skew (`theta = 0.99`).
    pub fn ycsb(name: impl Into<String>, mix: ScenarioMix, n_keys: u64, ops: usize) -> Self {
        Self::new(name, n_keys).phase(Phase::new(ops, mix))
    }

    /// The canonical flash-crowd schedule: a calm third at moderate skew, a
    /// crowd third at maximum skew with the hot set rotated halfway across
    /// the keyspace, then a calm third again. Total `ops` operations.
    pub fn flash_crowd(name: impl Into<String>, mix: ScenarioMix, n_keys: u64, ops: usize) -> Self {
        let third = ops / 3;
        Self::new(name, n_keys)
            .phase(Phase::new(third, mix).theta(0.9))
            .phase(
                Phase::new(ops - 2 * third, mix)
                    .theta(0.99)
                    .rotate(n_keys / 2),
            )
            .phase(Phase::new(third, mix).theta(0.9))
    }

    /// Total operations across all phases.
    pub fn total_ops(&self) -> usize {
        self.phases.iter().map(|p| p.ops).sum()
    }

    /// Total keyspace size including the TTL tail range (the load loop's
    /// bound is `n_keys`; the TTL tail starts absent by design).
    pub fn total_keys(&self) -> u64 {
        self.n_keys + self.ttl.map_or(0, |t| t.ttl_keys)
    }

    /// The stream of operations for `seed`, generated lazily. Pure in
    /// `(seed, spec)`: the same pair regenerates the identical stream.
    pub fn stream(&self, seed: u64) -> ScenarioStream<'_> {
        ScenarioStream {
            spec: self,
            rng: StreamRng::new(seed),
            phase: 0,
            emitted_in_phase: 0,
            emitted_total: 0,
            keys: None,
        }
    }

    /// The full operation vector for `seed` (see [`ScenarioSpec::stream`]).
    pub fn ops(&self, seed: u64) -> Vec<ScenarioOp> {
        self.stream(seed).collect()
    }
}

/// Deterministic per-`(key, version)` payload of exactly `size` bytes: the
/// first 8 bytes are a little-endian tag unique per `(key, version)` (what
/// `swarm_kv::value_tag` recovers), the rest a tag-derived pattern.
/// Mirrors `Workload::value_for` with an explicit size.
pub fn scenario_value(key: u64, version: u64, size: usize) -> Vec<u8> {
    let mut v = vec![0u8; size];
    let tag = key
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(version)
        .to_le_bytes();
    for (i, b) in v.iter_mut().enumerate() {
        *b = tag[i % 8] ^ (i as u8);
    }
    v[..8.min(size)].copy_from_slice(&tag[..8.min(size)]);
    v
}

/// Lazy scenario op generator (see [`ScenarioSpec::stream`]).
///
/// The per-phase Zipfian sampler is built on phase entry; every draw comes
/// from one self-contained splitmix64 stream, so the iterator is pure in
/// `(seed, spec)` and allocation-light.
pub struct ScenarioStream<'a> {
    spec: &'a ScenarioSpec,
    rng: StreamRng,
    phase: usize,
    emitted_in_phase: usize,
    emitted_total: u64,
    keys: Option<Zipfian>,
}

impl Iterator for ScenarioStream<'_> {
    type Item = ScenarioOp;

    fn next(&mut self) -> Option<ScenarioOp> {
        // Advance past exhausted (or empty) phases.
        loop {
            let phase = self.spec.phases.get(self.phase)?;
            if self.emitted_in_phase < phase.ops {
                break;
            }
            self.phase += 1;
            self.emitted_in_phase = 0;
            self.keys = None;
        }
        let phase = self.spec.phases[self.phase];
        let keys = self
            .keys
            .get_or_insert_with(|| Zipfian::new(self.spec.n_keys, phase.theta, true));
        self.emitted_in_phase += 1;
        let version = self.emitted_total;
        self.emitted_total += 1;

        let class = phase.mix.pick(self.rng.roll(100));
        let rank_u = self.rng.next_f64();
        let key = sample_rotated(keys, rank_u, phase.rotation);
        let size = self.spec.values.sample(self.rng.roll(100));
        Some(match class {
            ScenarioOpClass::Get => ScenarioOp::Get { key },
            ScenarioOpClass::Update => ScenarioOp::Update { key, size, version },
            ScenarioOpClass::Insert => {
                // A lease-carrying insert retargets to the dedicated
                // expiring-key tail range (see `TtlSpec`).
                let ttl = self.spec.ttl.filter(|t| self.rng.roll(100) < t.insert_pct);
                match ttl {
                    Some(t) => ScenarioOp::Insert {
                        key: self.spec.n_keys + self.rng.roll(t.ttl_keys),
                        size,
                        version,
                        ttl_ns: Some(t.ttl_ns),
                    },
                    None => ScenarioOp::Insert {
                        key,
                        size,
                        version,
                        ttl_ns: None,
                    },
                }
            }
            ScenarioOpClass::Delete => ScenarioOp::Delete { key },
            ScenarioOpClass::Scan => ScenarioOp::Scan {
                start: key,
                limit: 1 + self.rng.roll(self.spec.scan_max_len as u64) as usize,
            },
            ScenarioOpClass::Rmw => ScenarioOp::Rmw { key, size, version },
        })
    }
}

/// Samples a key with the phase's hot-set rotation: the Zipfian *rank* is
/// offset (mod `n`) before the hash scramble, so rotation moves which keys
/// are hot without changing the rank distribution. At `rotation = 0` this
/// is exactly `Zipfian::sample`.
fn sample_rotated(z: &Zipfian, u: f64, rotation: u64) -> u64 {
    let rank = z.sample_rank(u);
    scramble64((rank + rotation) % z.n()) % z.n()
}

/// Self-contained splitmix64 stream: the scenario generator's only entropy
/// source. Kept private to this crate so scenario purity cannot silently
/// grow a dependency on simulator RNG state.
#[derive(Debug, Clone)]
struct StreamRng {
    state: u64,
}

impl StreamRng {
    fn new(seed: u64) -> Self {
        // One warm-up step decorrelates small consecutive seeds.
        let mut s = StreamRng {
            state: seed ^ 0xA076_1D64_78BD_642F,
        };
        s.next_u64();
        s
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, n)`.
    fn roll(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn six_mix_spec(ops: usize) -> ScenarioSpec {
        let mix = ScenarioMix {
            get_pct: 30,
            update_pct: 20,
            insert_pct: 20,
            delete_pct: 10,
            scan_pct: 10,
            rmw_pct: 10,
        };
        ScenarioSpec::new("six", 1_000)
            .phase(Phase::new(ops, mix))
            .values(ValueSizeDist::small_dominant())
            .ttl(TtlSpec {
                insert_pct: 50,
                ttl_ns: 1_000_000,
                ttl_keys: 32,
            })
    }

    #[test]
    fn stream_is_pure_in_seed_and_spec() {
        let spec = six_mix_spec(500);
        let a = spec.ops(7);
        let b = spec.ops(7);
        assert_eq!(a, b, "same (seed, spec) must regenerate bit-identically");
        let c = spec.ops(8);
        assert_ne!(a, c, "a different seed must produce a different stream");
    }

    #[test]
    fn phases_emit_exactly_their_op_counts() {
        let spec = ScenarioSpec::new("phases", 100)
            .phase(Phase::new(10, ScenarioMix::A))
            .phase(Phase::new(0, ScenarioMix::B))
            .phase(Phase::new(5, ScenarioMix::C));
        assert_eq!(spec.total_ops(), 15);
        assert_eq!(spec.ops(1).len(), 15);
        // The last 5 ops come from the read-only phase.
        let ops = spec.ops(1);
        assert!(ops[10..]
            .iter()
            .all(|op| op.class() == ScenarioOpClass::Get));
    }

    #[test]
    fn mixes_sum_to_100_and_pick_covers_all_classes() {
        for (_, mix) in ScenarioMix::ycsb_all() {
            for roll in 0..100 {
                let _ = mix.pick(roll); // would panic on a bad sum
            }
        }
        let e_scans = (0..100)
            .filter(|&r| ScenarioMix::E.pick(r) == ScenarioOpClass::Scan)
            .count();
        assert_eq!(e_scans, 95);
        let f_rmws = (0..100)
            .filter(|&r| ScenarioMix::F.pick(r) == ScenarioOpClass::Rmw)
            .count();
        assert_eq!(f_rmws, 50);
    }

    #[test]
    fn keys_stay_in_range_and_scans_respect_bounds() {
        let spec = six_mix_spec(2_000);
        let total = spec.total_keys();
        for op in spec.ops(3) {
            match op {
                ScenarioOp::Scan { start, limit } => {
                    assert!(start < spec.n_keys);
                    assert!((1..=spec.scan_max_len).contains(&limit));
                }
                ScenarioOp::Insert { key, ttl_ns, .. } => {
                    if ttl_ns.is_some() {
                        assert!(
                            (spec.n_keys..total).contains(&key),
                            "leased inserts live in the TTL tail range"
                        );
                    } else {
                        assert!(key < spec.n_keys);
                    }
                }
                op => assert!(op.key() < spec.n_keys),
            }
        }
    }

    #[test]
    fn rotation_zero_matches_plain_ycsb_sampling() {
        let z = Zipfian::ycsb(10_000);
        let mut rng = StreamRng::new(9);
        for _ in 0..5_000 {
            let u = rng.next_f64();
            assert_eq!(sample_rotated(&z, u, 0), z.sample(u));
        }
    }

    #[test]
    fn rotation_moves_the_hot_set() {
        // The most frequent key under rotation 0 and rotation n/2 must
        // differ: the whole point of a flash crowd.
        let spec0 = ScenarioSpec::new("r0", 10_000).phase(Phase::new(20_000, ScenarioMix::C));
        let spec1 =
            ScenarioSpec::new("r1", 10_000).phase(Phase::new(20_000, ScenarioMix::C).rotate(5_000));
        let top = |spec: &ScenarioSpec| {
            let mut counts = std::collections::HashMap::new();
            for op in spec.ops(4) {
                *counts.entry(op.key()).or_insert(0u32) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap()
        };
        let (k0, c0) = top(&spec0);
        let (k1, c1) = top(&spec1);
        assert_ne!(k0, k1, "rotation must move the hottest key");
        // Both phases are equally skewed.
        assert!(c0 > 200 && c1 > 200, "hot keys stay hot: {c0} {c1}");
    }

    #[test]
    fn value_sizes_follow_the_distribution() {
        let spec = ScenarioSpec::new("sizes", 1_000)
            .phase(Phase::new(4_000, ScenarioMix::A))
            .values(ValueSizeDist::Bimodal {
                small: 64,
                large: 8_192,
                large_pct: 10,
            });
        let sizes: Vec<usize> = spec
            .ops(5)
            .into_iter()
            .filter_map(|op| match op {
                ScenarioOp::Update { size, .. } => Some(size),
                _ => None,
            })
            .collect();
        let large = sizes.iter().filter(|&&s| s == 8_192).count();
        assert!(sizes.iter().all(|&s| s == 64 || s == 8_192));
        let frac = large as f64 / sizes.len() as f64;
        assert!((0.05..0.2).contains(&frac), "large fraction {frac}");
        assert_eq!(spec.values.max_size(), 8_192);
    }

    #[test]
    fn scenario_values_are_distinct_and_sized() {
        assert_eq!(scenario_value(1, 0, 64).len(), 64);
        assert_ne!(scenario_value(1, 0, 64), scenario_value(2, 0, 64));
        assert_ne!(scenario_value(1, 0, 64), scenario_value(1, 1, 64));
        // The tag prefix round-trips through a first-8-bytes-LE reader.
        let v = scenario_value(3, 7, 64);
        let tag = u64::from_le_bytes(v[..8].try_into().unwrap());
        assert_eq!(tag, 3u64.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7));
    }

    #[test]
    fn versions_are_stream_unique() {
        let spec = six_mix_spec(1_000);
        let mut seen = std::collections::HashSet::new();
        for op in spec.ops(6) {
            let v = match op {
                ScenarioOp::Update { version, .. }
                | ScenarioOp::Insert { version, .. }
                | ScenarioOp::Rmw { version, .. } => version,
                _ => continue,
            };
            assert!(seen.insert(v), "duplicate version {v}");
        }
    }

    #[test]
    fn flash_crowd_preset_has_three_phases() {
        let spec = ScenarioSpec::flash_crowd("fc", ScenarioMix::B, 1_000, 300);
        assert_eq!(spec.phases.len(), 3);
        assert_eq!(spec.total_ops(), 300);
        assert_eq!(spec.phases[1].rotation, 500);
        assert!(spec.phases[1].theta > spec.phases[0].theta);
    }
}
