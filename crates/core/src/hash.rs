//! 64-bit non-cryptographic hash validating In-n-Out in-place data.
//!
//! The paper's implementation uses xxHash3 (§6); the only property In-n-Out
//! needs is that a *torn* buffer (a mix of two writes, or in-place data that
//! belongs to an older metadata word) virtually never validates against the
//! stored hash. We implement the classic xxHash64 algorithm from scratch to
//! stay within the allowed dependency set; it is well-specified, fast, and
//! has excellent avalanche behavior.

const PRIME64_1: u64 = 0x9E3779B185EBCA87;
const PRIME64_2: u64 = 0xC2B2AE3D27D4EB4F;
const PRIME64_3: u64 = 0x165667B19E3779F9;
const PRIME64_4: u64 = 0x85EBCA77C2B2AE63;
const PRIME64_5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline]
fn read_u32(b: &[u8]) -> u64 {
    u32::from_le_bytes(b[..4].try_into().unwrap()) as u64
}

/// Computes the xxHash64 of `data` with the given `seed`.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut rest = data;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h = (h ^ round(0, read_u64(rest)))
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h = (h ^ read_u32(rest).wrapping_mul(PRIME64_1))
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &b in rest {
        h = (h ^ (b as u64).wrapping_mul(PRIME64_5))
            .rotate_left(11)
            .wrapping_mul(PRIME64_1);
    }

    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

/// Hash binding an In-n-Out metadata word to its in-place value
/// (Algorithm 5 line 7 / Algorithm 6 line 11).
pub fn innout_hash(meta_word: u64, value: &[u8]) -> u64 {
    xxh64(value, meta_word)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the canonical xxHash implementation.
    #[test]
    fn known_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46DB3751D8E999);
        assert_eq!(xxh64(b"a", 0), 0xD24EC4F1A98C6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC2CF5AD770999);
        assert_eq!(
            xxh64(b"The quick brown fox jumps over the lazy dog", 0),
            0x0B242D361FDA71BC
        );
    }

    #[test]
    fn seed_changes_hash() {
        assert_ne!(xxh64(b"hello", 0), xxh64(b"hello", 1));
    }

    #[test]
    fn long_inputs_cover_stripe_loop() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 31) as u8).collect();
        let a = xxh64(&data, 0);
        let mut tampered = data.clone();
        tampered[777] ^= 1;
        assert_ne!(a, xxh64(&tampered, 0));
        // Deterministic.
        assert_eq!(a, xxh64(&data, 0));
    }

    #[test]
    fn innout_hash_binds_metadata() {
        let v = vec![9u8; 64];
        assert_ne!(innout_hash(1, &v), innout_hash(2, &v));
        assert_ne!(innout_hash(1, &v), innout_hash(1, &[8u8; 64]));
    }

    #[test]
    fn torn_buffers_do_not_validate() {
        // A mix of two writes must not hash to either write's stored hash.
        let old = vec![0x11u8; 256];
        let new = vec![0x22u8; 256];
        let h_new = innout_hash(42, &new);
        for cut in [1usize, 64, 128, 255] {
            let mut torn = new.clone();
            torn[cut..].copy_from_slice(&old[cut..]);
            assert_ne!(innout_hash(42, &torn), h_new, "cut at {cut} validated");
        }
    }
}
