//! Linearizability checking for KV and register histories (Wing–Gong
//! search with per-key compositionality).
//!
//! Used by the test suite to validate Safe-Guess, ABD, RAW and FUSEE
//! executions recorded from the simulator against an atomic specification
//! (the paper proves linearizability in Appendix C; we check it empirically
//! on thousands of randomized and fault-injected schedules).
//!
//! Two front doors:
//!
//! * [`KvHistory`] — multi-key histories of `Get`/`Insert`/`Update`/`Delete`
//!   operations, including error returns (`NotFound`-style observations of
//!   absence) and *ambiguous* operations whose effect is unknown because the
//!   client timed out or crashed mid-call. Linearizability is compositional
//!   over objects (Herlihy & Wing's locality theorem), so the checker
//!   verifies each key's subhistory independently — the exhaustive search
//!   stays tractable on histories of thousands of operations as long as no
//!   single key sees more than 128.
//! * [`History`] — the original single-register `Write`/`Read` history,
//!   now a thin shim over [`KvHistory`] (a register is a single always-
//!   present key).
//!
//! Each per-key search is exhaustive over linearization points with
//! memoization on `(set of completed ops, key state)`.

use std::collections::{HashMap, HashSet};

/// Maximum operations the per-key search supports (the completion set is a
/// `u128` bitmask).
pub const MAX_OPS_PER_KEY: usize = 128;

/// What one KV operation did, from the client's point of view.
///
/// Value payloads are abstracted to `u64` tags (the recorder derives them
/// from stored bytes). Error returns carry information too: a mutation that
/// failed with a `NotFound`-style error *observed absence* and is checked as
/// such.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KvOpKind {
    /// `get() -> Some(v)` (key must hold `v`) or `None` (key must be
    /// absent).
    Get(Option<u64>),
    /// `insert(v)` succeeded. Inserts are upserts (§5.3.1: an insert over a
    /// live mapping becomes an update), so this is legal in any state and
    /// sets the key to `v`.
    Insert(u64),
    /// `update(v)` succeeded: sets the key to `v`. Checked as an upsert,
    /// like [`KvOpKind::Insert`]: the store's update contract verifies a
    /// mapping exists at *lookup* time, not atomically with the write, so
    /// an update racing a §5.3.1 insert can legitimately succeed while the
    /// insert's own value write is still in flight. Presence is only
    /// *observed* when update fails ([`KvOpKind::FailAbsent`]).
    Update(u64),
    /// `delete()` succeeded: sets the key absent. Legal in any state —
    /// SWARM's delete is a tombstone write, which succeeds even when racing
    /// another delete (§5.3.2).
    Delete,
    /// A mutation failed with an absence observation (`NotFound`,
    /// `NotIndexed`, or a tombstone rejection): requires the key absent, no
    /// effect.
    FailAbsent,
    /// An operation that neither observed nor changed anything (a refused
    /// `IndexFull` insert — capacity is global, not per-key — or a `get`
    /// that timed out): legal at any point.
    FailNoop,
}

/// One recorded operation in a multi-key concurrent history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvHistoryOp {
    /// The key operated on.
    pub key: u64,
    /// Invocation (virtual) time.
    pub invoke: u64,
    /// Response (virtual) time, or `None` for an *ambiguous* operation: the
    /// client timed out or crashed, so the effect may or may not have been
    /// applied — and may still land arbitrarily late (in-flight messages,
    /// background writes). Ambiguous ops impose no real-time ordering on
    /// later operations and the search may apply *or discard* them.
    pub ret: Option<u64>,
    /// What the operation did.
    pub kind: KvOpKind,
}

/// Why a history failed the check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonLinearizable {
    /// The key whose subhistory admits no linearization.
    pub key: u64,
    /// Number of operations on that key.
    pub ops: usize,
}

impl std::fmt::Display for NonLinearizable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no linearization exists for key {} ({} ops)",
            self.key, self.ops
        )
    }
}

impl std::error::Error for NonLinearizable {}

/// Why [`KvHistory::check`] could not certify a history: either a genuine
/// linearizability violation, or a key whose subhistory is too large for
/// the `u128`-bitmask search to examine at all. The distinction matters to
/// harnesses: the former is a correctness bug in the system under test,
/// the latter a bug in the *test* (record fewer ops per key, or shard the
/// workload), and conflating them — or panicking mid-suite, as the checker
/// once did — would hide which side failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckError {
    /// A key's subhistory admits no linearization.
    NonLinearizable(NonLinearizable),
    /// A key saw more operations than the search supports; the history was
    /// **not** checked.
    TooManyOps {
        /// The overloaded key.
        key: u64,
        /// Operations recorded on it.
        ops: usize,
        /// The supported maximum ([`MAX_OPS_PER_KEY`]).
        max: usize,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::NonLinearizable(e) => e.fmt(f),
            CheckError::TooManyOps { key, ops, max } => write!(
                f,
                "key {key} has {ops} ops; the checker supports at most {max} per key \
                 (history not checked)"
            ),
        }
    }
}

impl std::error::Error for CheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckError::NonLinearizable(e) => Some(e),
            CheckError::TooManyOps { .. } => None,
        }
    }
}

impl From<NonLinearizable> for CheckError {
    fn from(e: NonLinearizable) -> Self {
        CheckError::NonLinearizable(e)
    }
}

/// A recorded multi-key concurrent history.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct KvHistory {
    ops: Vec<KvHistoryOp>,
    /// Keys present before the history started (bulk-loaded), with their
    /// value tags. Unlisted keys start absent.
    initial: HashMap<u64, u64>,
}

impl KvHistory {
    /// Creates an empty history with an empty initial store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `key` present with value tag `tag` before the history
    /// starts (the bulk-load phase).
    pub fn set_initial(&mut self, key: u64, tag: u64) {
        self.initial.insert(key, tag);
    }

    /// Records one completed operation.
    pub fn push(&mut self, key: u64, invoke: u64, ret: u64, kind: KvOpKind) {
        assert!(ret >= invoke, "response before invocation");
        self.ops.push(KvHistoryOp {
            key,
            invoke,
            ret: Some(ret),
            kind,
        });
    }

    /// Records an *ambiguous* operation (timed out / client crashed): its
    /// effect may or may not have been applied, at any time after `invoke`.
    pub fn push_ambiguous(&mut self, key: u64, invoke: u64, kind: KvOpKind) {
        self.ops.push(KvHistoryOp {
            key,
            invoke,
            ret: None,
            kind,
        });
    }

    /// Records a TTL lease expiry at instant `at`: the key became absent
    /// when virtual time passed its lease, with no explicit delete op in
    /// the history to witness it.
    ///
    /// Expiry is a *legal linearization point*, modeled as an **ambiguous
    /// delete** invoked at `at`:
    ///
    /// * Operations that completed before `at` precede it, so a pre-expiry
    ///   read still observing the value linearizes before the expiry.
    /// * Being ambiguous, the delete may take effect at any legal later
    ///   point — wherever the first post-expiry `None` read needs it — or
    ///   be **discarded** entirely, which is exactly right when a
    ///   subsequent write "resurrected" the key before anyone observed the
    ///   expiry.
    ///
    /// No checker search changes back this: `Delete` is already legal in
    /// any state and ambiguous ops are already apply-or-discard.
    pub fn expire(&mut self, key: u64, at: u64) {
        self.push_ambiguous(key, at, KvOpKind::Delete);
    }

    /// Number of operations recorded.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded operations, in recording order.
    pub fn ops(&self) -> &[KvHistoryOp] {
        &self.ops
    }

    /// Number of operations recorded that completed unambiguously.
    pub fn definite_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.ret.is_some()).count()
    }

    /// Checks the history against the atomic KV specification.
    ///
    /// Some linearization must exist per key: a total order of the key's
    /// operations that (a) respects real-time precedence (`a` returned
    /// before `b` was invoked ⇒ `a` before `b`), (b) is a legal sequential
    /// KV execution from the key's initial state, and (c) includes every
    /// unambiguous operation, while ambiguous ones may be applied or
    /// discarded.
    ///
    /// A key with more than [`MAX_OPS_PER_KEY`] operations fails with
    /// [`CheckError::TooManyOps`] instead of being searched (the completion
    /// set is a `u128` bitmask): an over-recorded history is a harness bug,
    /// reported as such rather than as a panic mid-suite.
    pub fn check(&self) -> Result<(), CheckError> {
        let mut by_key: HashMap<u64, Vec<&KvHistoryOp>> = HashMap::new();
        for op in &self.ops {
            by_key.entry(op.key).or_default().push(op);
        }
        // Deterministic key order, so failures always name the same key.
        let mut keys: Vec<u64> = by_key.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let ops = &by_key[&key];
            if ops.len() > MAX_OPS_PER_KEY {
                return Err(CheckError::TooManyOps {
                    key,
                    ops: ops.len(),
                    max: MAX_OPS_PER_KEY,
                });
            }
            if !check_key(ops, self.initial.get(&key).copied()) {
                return Err(CheckError::NonLinearizable(NonLinearizable {
                    key,
                    ops: ops.len(),
                }));
            }
        }
        Ok(())
    }

    /// [`KvHistory::check`] as a boolean.
    pub fn is_linearizable(&self) -> bool {
        self.check().is_ok()
    }
}

/// Wing–Gong search over one key's subhistory. `initial` is the key's state
/// before the history (present with a tag, or absent).
fn check_key(ops: &[&KvHistoryOp], initial: Option<u64>) -> bool {
    let n = ops.len();
    if n == 0 {
        return true;
    }
    // precede[i] = bitmask of ops that must linearize before op i. An
    // ambiguous op (ret == None) precedes nothing: its effect may land
    // arbitrarily late.
    let mut precede = vec![0u128; n];
    for (i, mask) in precede.iter_mut().enumerate() {
        for (j, other) in ops.iter().enumerate() {
            if i != j && other.ret.is_some_and(|r| r < ops[i].invoke) {
                *mask |= 1 << j;
            }
        }
    }
    let mut visited: HashSet<(u128, Option<u64>)> = HashSet::new();
    search(ops, 0, initial, &precede, &mut visited)
}

/// Sequential-spec transition: the state after applying `kind` to `state`,
/// or `None` if `kind` is illegal there.
fn apply(kind: KvOpKind, state: Option<u64>) -> Option<Option<u64>> {
    match kind {
        KvOpKind::Get(observed) => (observed == state).then_some(state),
        KvOpKind::Insert(v) | KvOpKind::Update(v) => Some(Some(v)),
        KvOpKind::Delete => Some(None),
        KvOpKind::FailAbsent => state.is_none().then_some(None),
        KvOpKind::FailNoop => Some(state),
    }
}

fn search(
    ops: &[&KvHistoryOp],
    done: u128,
    state: Option<u64>,
    precede: &[u128],
    visited: &mut HashSet<(u128, Option<u64>)>,
) -> bool {
    let n = ops.len();
    if done == u128::MAX >> (128 - n) {
        return true;
    }
    if !visited.insert((done, state)) {
        return false;
    }
    for i in 0..n {
        let bit = 1u128 << i;
        if done & bit != 0 || precede[i] & !done != 0 {
            continue; // Already taken, or a predecessor is pending.
        }
        if let Some(next) = apply(ops[i].kind, state) {
            if search(ops, done | bit, next, precede, visited) {
                return true;
            }
        }
        // An ambiguous op may also be *discarded*: its effect never landed.
        if ops[i].ret.is_none() && search(ops, done | bit, state, precede, visited) {
            return true;
        }
    }
    false
}

/// Register operation kinds for the single-register [`History`]. Values are
/// `u64` tags (tests write unique values; `0` is the initial register
/// value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `write(v)`.
    Write(u64),
    /// `read() -> v`.
    Read(u64),
}

/// One completed operation in a single-register concurrent history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryOp {
    /// Invocation (virtual) time.
    pub invoke: u64,
    /// Response (virtual) time; must be `>= invoke`.
    pub ret: u64,
    /// What the operation did.
    pub kind: OpKind,
}

/// A recorded single-register concurrent history: a register is a KV store
/// with one always-present key, so this delegates to [`KvHistory`].
#[derive(Debug, Default, Clone)]
pub struct History {
    ops: Vec<HistoryOp>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed operation.
    pub fn push(&mut self, invoke: u64, ret: u64, kind: OpKind) {
        assert!(ret >= invoke, "response before invocation");
        self.ops.push(HistoryOp { invoke, ret, kind });
    }

    /// Number of operations recorded.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Checks the history against the atomic single-register spec with
    /// initial value `0`.
    ///
    /// Returns `true` iff some linearization exists: a total order of all
    /// operations that (a) respects real-time precedence (`a.ret <
    /// b.invoke` implies `a` before `b`) and (b) is a legal sequential
    /// register execution (every read returns the latest preceding write,
    /// or `0`).
    pub fn is_linearizable(&self) -> bool {
        let mut kv = KvHistory::new();
        kv.set_initial(0, 0);
        for op in &self.ops {
            let kind = match op.kind {
                // A register write is unconditional: the upsert.
                OpKind::Write(v) => KvOpKind::Insert(v),
                OpKind::Read(v) => KvOpKind::Get(Some(v)),
            };
            kv.push(0, op.invoke, op.ret, kind);
        }
        kv.is_linearizable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_is_linearizable() {
        assert!(History::new().is_linearizable());
        assert!(KvHistory::new().is_linearizable());
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let mut h = History::new();
        h.push(0, 1, OpKind::Write(1));
        h.push(2, 3, OpKind::Read(1));
        h.push(4, 5, OpKind::Write(2));
        h.push(6, 7, OpKind::Read(2));
        assert!(h.is_linearizable());
    }

    #[test]
    fn stale_read_is_rejected() {
        let mut h = History::new();
        h.push(0, 1, OpKind::Write(1));
        h.push(2, 3, OpKind::Read(0)); // Must see 1.
        assert!(!h.is_linearizable());
    }

    #[test]
    fn concurrent_read_may_see_either_side() {
        let mut h = History::new();
        h.push(0, 10, OpKind::Write(1));
        h.push(2, 4, OpKind::Read(0)); // Concurrent: old value OK.
        assert!(h.is_linearizable());
        let mut h2 = History::new();
        h2.push(0, 10, OpKind::Write(1));
        h2.push(2, 4, OpKind::Read(1)); // Concurrent: new value OK.
        assert!(h2.is_linearizable());
    }

    #[test]
    fn oscillating_reads_are_rejected() {
        // The exact anomaly Safe-Guess's slow path prevents (§2.4): a value
        // written "twice" lets reads oscillate new -> old -> new.
        let mut h = History::new();
        h.push(0, 1, OpKind::Write(1));
        h.push(2, 20, OpKind::Write(2));
        h.push(3, 4, OpKind::Read(2));
        h.push(5, 6, OpKind::Read(1)); // Back to the old value: illegal.
        h.push(7, 8, OpKind::Read(2));
        assert!(!h.is_linearizable());
    }

    #[test]
    fn read_inversion_is_rejected() {
        // Two sequential reads observing writes in opposite order.
        let mut h = History::new();
        h.push(0, 100, OpKind::Write(1));
        h.push(0, 100, OpKind::Write(2));
        h.push(10, 20, OpKind::Read(1));
        h.push(30, 40, OpKind::Read(2));
        assert!(h.is_linearizable());
        let mut h2 = History::new();
        h2.push(0, 100, OpKind::Write(1));
        h2.push(0, 100, OpKind::Write(2));
        h2.push(10, 20, OpKind::Read(1));
        h2.push(30, 40, OpKind::Read(2));
        h2.push(50, 60, OpKind::Read(1)); // 2 then 1 again: illegal.
        assert!(!h2.is_linearizable());
    }

    #[test]
    fn real_time_order_is_enforced_between_writes() {
        let mut h = History::new();
        h.push(0, 1, OpKind::Write(1));
        h.push(2, 3, OpKind::Write(2)); // strictly after write(1)
        h.push(4, 5, OpKind::Read(1)); // must see 2
        assert!(!h.is_linearizable());
    }

    #[test]
    fn concurrent_writes_allow_both_orders() {
        let mut h = History::new();
        h.push(0, 10, OpKind::Write(1));
        h.push(0, 10, OpKind::Write(2));
        h.push(12, 13, OpKind::Read(1));
        assert!(h.is_linearizable());
    }

    // ---- multi-key KV checker ----

    #[test]
    fn keys_compose_independently() {
        // Interleaved ops on two keys: each key legal on its own.
        let mut h = KvHistory::new();
        h.push(1, 0, 1, KvOpKind::Insert(10));
        h.push(2, 2, 3, KvOpKind::Insert(20));
        h.push(1, 4, 5, KvOpKind::Get(Some(10)));
        h.push(2, 6, 7, KvOpKind::Get(Some(20)));
        assert!(h.is_linearizable());
        // Cross-key value confusion is caught per key.
        let mut bad = h.clone();
        bad.push(1, 8, 9, KvOpKind::Get(Some(20)));
        assert_eq!(
            bad.check(),
            Err(CheckError::NonLinearizable(NonLinearizable {
                key: 1,
                ops: 3
            }))
        );
    }

    #[test]
    fn absent_key_reads_none_until_inserted() {
        let mut h = KvHistory::new();
        h.push(5, 0, 1, KvOpKind::Get(None));
        h.push(5, 2, 3, KvOpKind::Insert(7));
        h.push(5, 4, 5, KvOpKind::Get(Some(7)));
        assert!(h.is_linearizable());
        let mut bad = KvHistory::new();
        bad.push(5, 0, 1, KvOpKind::Insert(7));
        bad.push(5, 2, 3, KvOpKind::Get(None)); // Must see 7.
        assert!(!bad.is_linearizable());
    }

    #[test]
    fn initial_values_seed_the_key_state() {
        let mut h = KvHistory::new();
        h.set_initial(3, 99);
        h.push(3, 0, 1, KvOpKind::Get(Some(99)));
        assert!(h.is_linearizable());
        let mut bad = KvHistory::new();
        bad.set_initial(3, 99);
        bad.push(3, 0, 1, KvOpKind::Get(None));
        assert!(!bad.is_linearizable());
    }

    #[test]
    fn delete_makes_reads_observe_absence() {
        let mut h = KvHistory::new();
        h.set_initial(1, 5);
        h.push(1, 0, 1, KvOpKind::Delete);
        h.push(1, 2, 3, KvOpKind::Get(None));
        h.push(1, 4, 5, KvOpKind::FailAbsent); // update after delete: NotIndexed
        h.push(1, 6, 7, KvOpKind::Insert(8));
        h.push(1, 8, 9, KvOpKind::Get(Some(8)));
        assert!(h.is_linearizable());
    }

    #[test]
    fn successful_update_is_an_upsert() {
        // A successful update racing an in-flight insert (§5.3.1's
        // index-insert ∥ value-write) can land on a key whose value write
        // has not arrived yet — the real schedule the chaos suite found at
        // seed 3299212769. The spec therefore treats update success as an
        // upsert; only *failed* updates observe absence.
        let mut h = KvHistory::new();
        h.set_initial(3, 1);
        h.push(3, 0, 1, KvOpKind::Delete);
        h.push(3, 2, 20, KvOpKind::Insert(15)); // long in-flight insert
        h.push(3, 5, 8, KvOpKind::Update(19)); // succeeds mid-insert
        h.push(3, 25, 26, KvOpKind::Get(Some(15))); // insert's stamp won
        assert!(h.is_linearizable());
        // The value written still anchors reads: sequentially after the
        // update, nothing but 19 (or a later write) may be observed.
        let mut bad = KvHistory::new();
        bad.set_initial(3, 1);
        bad.push(3, 0, 1, KvOpKind::Update(19));
        bad.push(3, 2, 3, KvOpKind::Get(Some(1)));
        assert!(!bad.is_linearizable());
    }

    #[test]
    fn fail_absent_when_present_is_rejected() {
        let mut bad = KvHistory::new();
        bad.set_initial(9, 1);
        bad.push(9, 0, 1, KvOpKind::FailAbsent); // NotFound on a live key
        assert!(!bad.is_linearizable());
    }

    #[test]
    fn ambiguous_write_may_or_may_not_apply() {
        // A timed-out update with no later evidence: fine either way.
        let mut h = KvHistory::new();
        h.set_initial(1, 10);
        h.push_ambiguous(1, 0, KvOpKind::Update(11));
        h.push(1, 5, 6, KvOpKind::Get(Some(10))); // didn't land (yet)
        assert!(h.is_linearizable());
        let mut h2 = KvHistory::new();
        h2.set_initial(1, 10);
        h2.push_ambiguous(1, 0, KvOpKind::Update(11));
        h2.push(1, 5, 6, KvOpKind::Get(Some(11))); // landed
        assert!(h2.is_linearizable());
        // But it cannot flicker: landed, then un-landed.
        let mut bad = KvHistory::new();
        bad.set_initial(1, 10);
        bad.push_ambiguous(1, 0, KvOpKind::Update(11));
        bad.push(1, 5, 6, KvOpKind::Get(Some(11)));
        bad.push(1, 7, 8, KvOpKind::Get(Some(10)));
        assert!(!bad.is_linearizable());
    }

    #[test]
    fn ttl_expiry_is_a_legal_linearization_point() {
        // A leased insert, a pre-expiry read of the value, the expiry event
        // at t=100, then a post-expiry read of absence: all four linearize
        // as insert → get(Some) → expiry-delete → get(None).
        let mut h = KvHistory::new();
        h.push(5, 0, 1, KvOpKind::Insert(9));
        h.push(5, 10, 11, KvOpKind::Get(Some(9)));
        h.expire(5, 100);
        h.push(5, 200, 201, KvOpKind::Get(None));
        assert!(h.is_linearizable());

        // Resurrection: a write after expiry makes the key live again —
        // the expiry delete linearizes between the reads (or before the
        // update; both are legal).
        let mut h2 = KvHistory::new();
        h2.push(5, 0, 1, KvOpKind::Insert(9));
        h2.expire(5, 100);
        h2.push(5, 200, 201, KvOpKind::Get(None));
        h2.push(5, 300, 301, KvOpKind::Update(10));
        h2.push(5, 400, 401, KvOpKind::Get(Some(10)));
        assert!(h2.is_linearizable());

        // The expiry cannot excuse a *wrong value*: a read observing a tag
        // nobody wrote stays non-linearizable.
        let mut bad = KvHistory::new();
        bad.push(5, 0, 1, KvOpKind::Insert(9));
        bad.expire(5, 100);
        bad.push(5, 200, 201, KvOpKind::Get(Some(42)));
        assert!(!bad.is_linearizable());
    }

    #[test]
    fn expiry_must_follow_ops_completed_before_it() {
        // An op that completed before the expiry instant precedes the
        // expiry delete: absence cannot be observed before the lease ran
        // out and then "un-expire".
        let mut h = KvHistory::new();
        h.push(5, 0, 1, KvOpKind::Insert(9));
        // Read of absence completed at t=11, long before the expiry at
        // t=100 — with no other delete in the history this cannot
        // linearize (the expiry delete is constrained to come after it).
        h.push(5, 10, 11, KvOpKind::Get(None));
        h.expire(5, 100);
        assert!(!h.is_linearizable());
    }

    #[test]
    fn ambiguous_write_may_land_arbitrarily_late() {
        // The client gave up at t=1, but the in-flight write landed after a
        // later read — allowed, because an ambiguous op has no response
        // edge.
        let mut h = KvHistory::new();
        h.set_initial(1, 10);
        h.push_ambiguous(1, 0, KvOpKind::Update(11));
        h.push(1, 100, 101, KvOpKind::Get(Some(10)));
        h.push(1, 200, 201, KvOpKind::Get(Some(11)));
        assert!(h.is_linearizable());
    }

    #[test]
    fn definite_ops_are_counted_and_must_all_linearize() {
        let mut h = KvHistory::new();
        h.push(1, 0, 1, KvOpKind::Insert(1));
        h.push_ambiguous(1, 2, KvOpKind::Delete);
        assert_eq!(h.len(), 2);
        assert_eq!(h.definite_ops(), 1);
    }

    #[test]
    fn oversized_key_subhistory_is_a_typed_error_not_a_panic() {
        // One key over the u128-bitmask budget: the checker must refuse
        // with TooManyOps (naming the key), not panic and not silently
        // "pass" an unchecked history.
        let mut h = KvHistory::new();
        for i in 0..(MAX_OPS_PER_KEY as u64 + 1) {
            h.push(7, 2 * i, 2 * i + 1, KvOpKind::Insert(i));
        }
        assert_eq!(
            h.check(),
            Err(CheckError::TooManyOps {
                key: 7,
                ops: MAX_OPS_PER_KEY + 1,
                max: MAX_OPS_PER_KEY,
            })
        );
        assert!(!h.is_linearizable());
        // Exactly at the limit the search runs (and this history passes).
        let mut ok = KvHistory::new();
        for i in 0..(MAX_OPS_PER_KEY as u64) {
            ok.push(9, 2 * i, 2 * i + 1, KvOpKind::Insert(i));
        }
        assert_eq!(ok.check(), Ok(()));
    }

    #[test]
    fn per_key_search_handles_thousands_of_total_ops() {
        // 4000 sequential ops spread over 100 keys: compositionality keeps
        // every per-key search tiny.
        let mut h = KvHistory::new();
        let mut t = 0u64;
        for round in 0..20u64 {
            for key in 0..100u64 {
                h.push(key, t, t + 1, KvOpKind::Insert(round));
                h.push(key, t + 2, t + 3, KvOpKind::Get(Some(round)));
                t += 4;
            }
        }
        assert_eq!(h.len(), 4000);
        assert!(h.is_linearizable());
    }
}
