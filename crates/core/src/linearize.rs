//! Linearizability checking for register histories (Wing–Gong search).
//!
//! Used by the test suite to validate Safe-Guess and ABD executions recorded
//! from the simulator against the atomic-register specification (the paper
//! proves linearizability in Appendix C; we check it empirically on
//! thousands of randomized schedules).
//!
//! The checker performs an exhaustive search over linearization points with
//! memoization on `(set of completed ops, register value)`. Histories from
//! protocol tests are small (tens of operations), where this is fast.

use std::collections::HashSet;

/// One completed operation in a concurrent history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryOp {
    /// Invocation (virtual) time.
    pub invoke: u64,
    /// Response (virtual) time; must be `>= invoke`.
    pub ret: u64,
    /// What the operation did.
    pub kind: OpKind,
}

/// Register operation kinds. Values are `u64` tags (tests write unique
/// values; `0` is the initial register value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `write(v)`.
    Write(u64),
    /// `read() -> v`.
    Read(u64),
}

/// A recorded concurrent history.
#[derive(Debug, Default, Clone)]
pub struct History {
    ops: Vec<HistoryOp>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed operation.
    pub fn push(&mut self, invoke: u64, ret: u64, kind: OpKind) {
        assert!(ret >= invoke, "response before invocation");
        self.ops.push(HistoryOp { invoke, ret, kind });
    }

    /// Number of operations recorded.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Checks the history against the atomic single-register spec with
    /// initial value `0`.
    ///
    /// Returns `true` iff some linearization exists: a total order of all
    /// operations that (a) respects real-time precedence (`a.ret <
    /// b.invoke` implies `a` before `b`) and (b) is a legal sequential
    /// register execution (every read returns the latest preceding write,
    /// or `0`).
    pub fn is_linearizable(&self) -> bool {
        let n = self.ops.len();
        if n == 0 {
            return true;
        }
        assert!(n <= 64, "checker supports at most 64 operations");
        // precede[i] = bitmask of ops that must come before op i.
        let mut precede = vec![0u64; n];
        for (i, mask) in precede.iter_mut().enumerate() {
            for (j, other) in self.ops.iter().enumerate() {
                if i != j && other.ret < self.ops[i].invoke {
                    *mask |= 1 << j;
                }
            }
        }
        let mut visited: HashSet<(u64, u64)> = HashSet::new();
        self.search(0, 0, &precede, &mut visited)
    }

    fn search(
        &self,
        done: u64,
        value: u64,
        precede: &[u64],
        visited: &mut HashSet<(u64, u64)>,
    ) -> bool {
        let n = self.ops.len();
        if done == (1u64 << n) - 1 {
            return true;
        }
        if !visited.insert((done, value)) {
            return false;
        }
        for i in 0..n {
            let bit = 1u64 << i;
            if done & bit != 0 || precede[i] & !done != 0 {
                continue; // Already taken, or a predecessor is pending.
            }
            match self.ops[i].kind {
                OpKind::Write(v) => {
                    if self.search(done | bit, v, precede, visited) {
                        return true;
                    }
                }
                OpKind::Read(v) => {
                    if v == value && self.search(done | bit, value, precede, visited) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_is_linearizable() {
        assert!(History::new().is_linearizable());
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let mut h = History::new();
        h.push(0, 1, OpKind::Write(1));
        h.push(2, 3, OpKind::Read(1));
        h.push(4, 5, OpKind::Write(2));
        h.push(6, 7, OpKind::Read(2));
        assert!(h.is_linearizable());
    }

    #[test]
    fn stale_read_is_rejected() {
        let mut h = History::new();
        h.push(0, 1, OpKind::Write(1));
        h.push(2, 3, OpKind::Read(0)); // Must see 1.
        assert!(!h.is_linearizable());
    }

    #[test]
    fn concurrent_read_may_see_either_side() {
        let mut h = History::new();
        h.push(0, 10, OpKind::Write(1));
        h.push(2, 4, OpKind::Read(0)); // Concurrent: old value OK.
        assert!(h.is_linearizable());
        let mut h2 = History::new();
        h2.push(0, 10, OpKind::Write(1));
        h2.push(2, 4, OpKind::Read(1)); // Concurrent: new value OK.
        assert!(h2.is_linearizable());
    }

    #[test]
    fn oscillating_reads_are_rejected() {
        // The exact anomaly Safe-Guess's slow path prevents (§2.4): a value
        // written "twice" lets reads oscillate new -> old -> new.
        let mut h = History::new();
        h.push(0, 1, OpKind::Write(1));
        h.push(2, 20, OpKind::Write(2));
        h.push(3, 4, OpKind::Read(2));
        h.push(5, 6, OpKind::Read(1)); // Back to the old value: illegal.
        h.push(7, 8, OpKind::Read(2));
        assert!(!h.is_linearizable());
    }

    #[test]
    fn read_inversion_is_rejected() {
        // Two sequential reads observing writes in opposite order.
        let mut h = History::new();
        h.push(0, 100, OpKind::Write(1));
        h.push(0, 100, OpKind::Write(2));
        h.push(10, 20, OpKind::Read(1));
        h.push(30, 40, OpKind::Read(2));
        assert!(h.is_linearizable());
        let mut h2 = History::new();
        h2.push(0, 100, OpKind::Write(1));
        h2.push(0, 100, OpKind::Write(2));
        h2.push(10, 20, OpKind::Read(1));
        h2.push(30, 40, OpKind::Read(2));
        h2.push(50, 60, OpKind::Read(1)); // 2 then 1 again: illegal.
        assert!(!h2.is_linearizable());
    }

    #[test]
    fn real_time_order_is_enforced_between_writes() {
        let mut h = History::new();
        h.push(0, 1, OpKind::Write(1));
        h.push(2, 3, OpKind::Write(2)); // strictly after write(1)
        h.push(4, 5, OpKind::Read(1)); // must see 2
        assert!(!h.is_linearizable());
    }

    #[test]
    fn concurrent_writes_allow_both_orders() {
        let mut h = History::new();
        h.push(0, 10, OpKind::Write(1));
        h.push(0, 10, OpKind::Write(2));
        h.push(12, 13, OpKind::Read(1));
        assert!(h.is_linearizable());
    }
}
