//! Protocol-layer traits and shared client state.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::rc::Rc;

use swarm_sim::Nanos;

use crate::stamp::Stamp;
use crate::value::MVal;

/// What a single fallible (per-node) max-register replica returns to a read.
///
/// With the paper's bandwidth optimization (§6), in-place data lives at only
/// one replica, so a replica may answer with its stamp but *without* the
/// value; the reliable layer then [`ReplicaClient::fetch`]es the payload from
/// whichever replica reported the maximum.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Highest stamp stored at the replica.
    pub stamp: Stamp,
    /// Opaque replica-specific token identifying the stamped data (the raw
    /// In-n-Out metadata word); passed back to [`ReplicaClient::fetch`].
    pub token: u64,
    /// Payload, if the replica could return it in the same roundtrip.
    pub value: Option<Rc<Vec<u8>>>,
}

/// Client handle to one fallible per-node max register (the paper's
/// "unreliable max register", §2.3).
///
/// Methods consume a clone so the returned futures are `'static` and can be
/// raced in quorums; a crashed node's future simply never resolves (the
/// fabric is silent), so callers bound waits with timeouts.
pub trait ReplicaClient: Clone + 'static {
    /// Applies `MAX(register, v)` at the replica; resolves once acknowledged.
    fn write(self, v: MVal) -> impl Future<Output = ()> + 'static;

    /// Reads the replica's current maximum.
    fn read(self) -> impl Future<Output = Snapshot> + 'static;

    /// Retrieves the payload for a previously observed `token`, returning a
    /// value whose stamp is `>=` the token's stamp (newer is fine: max
    /// registers only promise a lower bound).
    fn fetch(self, token: u64) -> impl Future<Output = MVal> + 'static;
}

/// A reliable (majority-replicated, wait-free) max register — the interface
/// shared by ABD and Safe-Guess (Algorithms 1, 2/3) and implemented by
/// [`crate::ReliableMaxReg`].
pub trait MaxRegister: Clone + 'static {
    /// Writes `v`; on return, `v` is stored at a majority.
    fn write(&self, v: MVal) -> impl Future<Output = ()> + 'static;

    /// Reads the maximum; includes the write-back phase required for
    /// read-read monotonicity (Appendix A).
    fn read(&self) -> impl Future<Output = MVal> + 'static;

    /// 1-RTT stamp-only read without write-back: sufficient for fresh-
    /// timestamp discovery in writes (Appendix A.2 optimization).
    fn read_stamp(&self) -> impl Future<Output = Stamp> + 'static;

    /// Fire-and-forget background write (Safe-Guess `in bg: M.WRITE(..)`).
    fn write_bg(&self, v: MVal);
}

/// Per-client failure suspicion, shared across all registers of one client.
///
/// When a quorum wait times out, unresponsive nodes are suspected and
/// subsequent operations stop contacting them optimistically (they are still
/// contacted when quorums must widen). This reproduces §7.7: after a memory
/// node crashes, only the first few operations pay the timeout, and no
/// reconfiguration is needed.
///
/// The health state also tracks a smoothed estimate of this client's quorum
/// roundtrip time, from which the widen deadline is derived (TCP-RTO style):
/// under load-induced queueing the timeout scales with observed latency, so
/// widening fires only for genuine stragglers and crashes. A fixed timeout
/// instead false-fires for *every* operation once queueing delay crosses it,
/// and the widened quorums double the message load — a self-sustaining
/// congestion collapse (~760 roundtrips/op at 32 clients x 4 concurrent ops)
/// that the paper's testbed does not exhibit (§7.3 saturates gracefully).
#[derive(Debug)]
pub struct NodeHealth {
    suspected: RefCell<Vec<bool>>,
    /// Smoothed quorum RTT in nanoseconds; 0.0 until the first sample.
    srtt_ns: Cell<f64>,
}

impl NodeHealth {
    /// Creates all-healthy state for `n` nodes.
    pub fn new(n: usize) -> Rc<Self> {
        Rc::new(NodeHealth {
            suspected: RefCell::new(vec![false; n]),
            srtt_ns: Cell::new(0.0),
        })
    }

    /// Feeds one observed quorum completion time into the RTT estimate
    /// (EWMA with gain 1/8, as in TCP's SRTT).
    pub fn observe_rtt(&self, ns: Nanos) {
        let sample = ns as f64;
        let old = self.srtt_ns.get();
        self.srtt_ns.set(if old == 0.0 {
            sample
        } else {
            old + (sample - old) / 8.0
        });
    }

    /// The smoothed quorum RTT estimate in nanoseconds (0 before any sample).
    pub fn srtt_ns(&self) -> Nanos {
        self.srtt_ns.get() as Nanos
    }

    /// The widen deadline to allow from now: `widen_rtt_multiple` times the
    /// smoothed RTT, clamped between the configured floor (crash-failover
    /// latency when idle) and cap (bounds the estimator's feedback when
    /// widened operations themselves feed back inflated samples).
    pub fn widen_timeout_ns(&self, cfg: &QuorumConfig) -> Nanos {
        let adaptive = (self.srtt_ns.get() * cfg.widen_rtt_multiple) as Nanos;
        adaptive.clamp(
            cfg.widen_timeout_ns,
            cfg.widen_timeout_ns * cfg.widen_timeout_max_scale,
        )
    }

    /// Marks node `i` suspected.
    pub fn suspect(&self, i: usize) {
        self.suspected.borrow_mut()[i] = true;
    }

    /// Clears suspicion of node `i` (e.g., membership says it recovered).
    pub fn clear(&self, i: usize) {
        self.suspected.borrow_mut()[i] = false;
    }

    /// True if node `i` is currently suspected.
    pub fn is_suspected(&self, i: usize) -> bool {
        self.suspected.borrow()[i]
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.suspected.borrow().len()
    }

    /// True if no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Shared roundtrip counter: protocols bump it once per *sequential* network
/// phase, so the KV layer can report per-operation roundtrip counts
/// (Table 2) by differencing.
#[derive(Debug, Clone, Default)]
pub struct Rounds {
    count: Rc<Cell<u64>>,
}

impl Rounds {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one roundtrip.
    pub fn bump(&self) {
        self.add(1);
    }

    /// Adds `n` roundtrips.
    pub fn add(&self, n: u64) {
        self.count.set(self.count.get() + n);
    }

    /// Total roundtrips recorded.
    pub fn get(&self) -> u64 {
        self.count.get()
    }

    /// Removes `n` counted roundtrips: used when two phases that each
    /// counted themselves actually ran in parallel (e.g. Safe-Guess's
    /// write + freshness read, Algorithm 2 line 6).
    pub fn uncount(&self, n: u64) {
        self.count.set(self.count.get().saturating_sub(n));
    }
}

/// Common quorum-timing knobs shared by the reliable register and the
/// timestamp lock.
#[derive(Debug, Clone, Copy)]
pub struct QuorumConfig {
    /// Minimum wait for the optimistic majority before widening to all
    /// replicas and suspecting the stragglers (§6, §7.7). This floor is the
    /// effective timeout while the fabric is unloaded; under load the
    /// deadline stretches adaptively (see [`NodeHealth::widen_timeout_ns`]).
    pub widen_timeout_ns: Nanos,
    /// Widen after this multiple of the smoothed quorum RTT.
    pub widen_rtt_multiple: f64,
    /// The adaptive deadline never exceeds `widen_timeout_ns` times this.
    pub widen_timeout_max_scale: Nanos,
}

impl Default for QuorumConfig {
    fn default() -> Self {
        QuorumConfig {
            widen_timeout_ns: 6_000,
            widen_rtt_multiple: 4.0,
            widen_timeout_max_scale: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_tracks_suspicion() {
        let h = NodeHealth::new(3);
        assert!(!h.is_suspected(1));
        h.suspect(1);
        assert!(h.is_suspected(1));
        h.clear(1);
        assert!(!h.is_suspected(1));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn rounds_accumulate_shared() {
        let r = Rounds::new();
        let r2 = r.clone();
        r.bump();
        r2.add(2);
        assert_eq!(r.get(), 3);
    }
}
