//! Protocol-layer traits and shared client state.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::rc::Rc;

use swarm_sim::{Histogram, Nanos};

use crate::stamp::Stamp;
use crate::value::MVal;

/// What a single fallible (per-node) max-register replica returns to a read.
///
/// With the paper's bandwidth optimization (§6), in-place data lives at only
/// one replica, so a replica may answer with its stamp but *without* the
/// value; the reliable layer then [`ReplicaClient::fetch`]es the payload from
/// whichever replica reported the maximum.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Highest stamp stored at the replica.
    pub stamp: Stamp,
    /// Opaque replica-specific token identifying the stamped data (the raw
    /// In-n-Out metadata word); passed back to [`ReplicaClient::fetch`].
    pub token: u64,
    /// Payload, if the replica could return it in the same roundtrip.
    pub value: Option<Rc<Vec<u8>>>,
}

/// Client handle to one fallible per-node max register (the paper's
/// "unreliable max register", §2.3).
///
/// Methods consume a clone so the returned futures are `'static` and can be
/// raced in quorums; a crashed node's future simply never resolves (the
/// fabric is silent), so callers bound waits with timeouts.
pub trait ReplicaClient: Clone + 'static {
    /// Applies `MAX(register, v)` at the replica; resolves once acknowledged.
    fn write(self, v: MVal) -> impl Future<Output = ()> + 'static;

    /// Reads the replica's current maximum.
    fn read(self) -> impl Future<Output = Snapshot> + 'static;

    /// Retrieves the payload for a previously observed `token`, returning a
    /// value whose stamp is `>=` the token's stamp (newer is fine: max
    /// registers only promise a lower bound).
    fn fetch(self, token: u64) -> impl Future<Output = MVal> + 'static;
}

/// A reliable (majority-replicated, wait-free) max register — the interface
/// shared by ABD and Safe-Guess (Algorithms 1, 2/3) and implemented by
/// [`crate::ReliableMaxReg`].
pub trait MaxRegister: Clone + 'static {
    /// Writes `v`; on return, `v` is stored at a majority.
    fn write(&self, v: MVal) -> impl Future<Output = ()> + 'static;

    /// Reads the maximum; includes the write-back phase required for
    /// read-read monotonicity (Appendix A).
    fn read(&self) -> impl Future<Output = MVal> + 'static;

    /// 1-RTT stamp-only read without write-back: sufficient for fresh-
    /// timestamp discovery in writes (Appendix A.2 optimization).
    fn read_stamp(&self) -> impl Future<Output = Stamp> + 'static;

    /// Fire-and-forget background write (Safe-Guess `in bg: M.WRITE(..)`).
    fn write_bg(&self, v: MVal);
}

/// Per-client failure suspicion, shared across all registers of one client.
///
/// When a quorum wait times out, unresponsive nodes are suspected and
/// subsequent operations stop contacting them optimistically (they are still
/// contacted when quorums must widen). This reproduces §7.7: after a memory
/// node crashes, only the first few operations pay the timeout, and no
/// reconfiguration is needed.
///
/// The health state also tracks a smoothed estimate of this client's quorum
/// roundtrip time, from which the widen deadline is derived (TCP-RTO style):
/// under load-induced queueing the timeout scales with observed latency, so
/// widening fires only for genuine stragglers and crashes. A fixed timeout
/// instead false-fires for *every* operation once queueing delay crosses it,
/// and the widened quorums double the message load — a self-sustaining
/// congestion collapse (~760 roundtrips/op at 32 clients x 4 concurrent ops)
/// that the paper's testbed does not exhibit (§7.3 saturates gracefully).
#[derive(Debug)]
pub struct NodeHealth {
    suspected: RefCell<Vec<bool>>,
    /// Smoothed quorum RTT in nanoseconds; 0.0 until the first sample.
    srtt_ns: Cell<f64>,
}

impl NodeHealth {
    /// Creates all-healthy state for `n` nodes.
    pub fn new(n: usize) -> Rc<Self> {
        Rc::new(NodeHealth {
            suspected: RefCell::new(vec![false; n]),
            srtt_ns: Cell::new(0.0),
        })
    }

    /// Feeds one observed quorum completion time into the RTT estimate
    /// (EWMA with gain 1/8, as in TCP's SRTT).
    pub fn observe_rtt(&self, ns: Nanos) {
        let sample = ns as f64;
        let old = self.srtt_ns.get();
        self.srtt_ns.set(if old == 0.0 {
            sample
        } else {
            old + (sample - old) / 8.0
        });
    }

    /// The smoothed quorum RTT estimate in nanoseconds (0 before any sample).
    pub fn srtt_ns(&self) -> Nanos {
        self.srtt_ns.get() as Nanos
    }

    /// The widen deadline to allow from now: `widen_rtt_multiple` times the
    /// smoothed RTT, clamped between the configured floor (crash-failover
    /// latency when idle) and cap (bounds the estimator's feedback when
    /// widened operations themselves feed back inflated samples).
    pub fn widen_timeout_ns(&self, cfg: &QuorumConfig) -> Nanos {
        let adaptive = (self.srtt_ns.get() * cfg.widen_rtt_multiple) as Nanos;
        adaptive.clamp(
            cfg.widen_timeout_ns,
            cfg.widen_timeout_ns * cfg.widen_timeout_max_scale,
        )
    }

    /// Marks node `i` suspected.
    pub fn suspect(&self, i: usize) {
        self.suspected.borrow_mut()[i] = true;
    }

    /// Clears suspicion of node `i` (e.g., membership says it recovered).
    pub fn clear(&self, i: usize) {
        self.suspected.borrow_mut()[i] = false;
    }

    /// True if node `i` is currently suspected.
    pub fn is_suspected(&self, i: usize) -> bool {
        self.suspected.borrow()[i]
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.suspected.borrow().len()
    }

    /// True if no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Tail-latency hedging knobs (§"tail at scale"-style request hedging).
///
/// Off by default: with `enabled = false` no [`Hedger`] is minted, no extra
/// timers are scheduled, no RNG is drawn, and every existing execution
/// replays bit-identically (the same discipline as the repair subsystem).
/// When enabled, a quorum operation that is still incomplete after the
/// slowest contacted node's tracked `delay_pct` latency sends one extra copy
/// of the request to spare quorum members; first response wins and the
/// loser's delivery is idempotent (reads and CAS-MAX writes commute with
/// themselves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Master switch; `false` is bit-identical to the pre-hedging code.
    pub enabled: bool,
    /// Percentile of the per-destination RTT window that arms the hedge
    /// (`SWARM_HEDGE_DELAY_PCT`; default 99.0).
    pub delay_pct: f64,
    /// Per-node samples required before hedging arms: until every contacted
    /// node has an estimate, operations run unhedged.
    pub min_samples: usize,
    /// Maximum hedges in flight per client across all its registers
    /// (`SWARM_HEDGE_MAX_INFLIGHT`); excess stragglers fall through to the
    /// ordinary widen path.
    pub max_inflight: usize,
    /// Per-node RTT window size: the percentile estimate refreshes from the
    /// last `window` samples.
    pub window: usize,
}

impl HedgeConfig {
    /// Hedging off — the default, bit-identical to pre-hedging executions.
    pub fn disabled() -> Self {
        HedgeConfig {
            enabled: false,
            ..Self::on()
        }
    }

    /// Hedging on with the default tuning (p99 arm, 4 in flight, 512-sample
    /// windows).
    pub fn on() -> Self {
        HedgeConfig {
            enabled: true,
            delay_pct: 99.0,
            min_samples: 16,
            max_inflight: 4,
            window: 512,
        }
    }
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Per-node exact-percentile RTT windows (built on
/// [`swarm_sim::Histogram`]): the estimator behind hedged requests.
///
/// Each node keeps a rolling window of observed request RTTs; the
/// `delay_pct` percentile is recomputed every [`HedgeConfig::min_samples`]
/// observations (and the window restarts after
/// [`HedgeConfig::window`] samples), so the estimate tracks latency shifts
/// without sorting on every query.
#[derive(Debug)]
pub struct RttTracker {
    pct: f64,
    min_samples: usize,
    window: usize,
    nodes: RefCell<Vec<NodeWindow>>,
}

#[derive(Debug, Default)]
struct NodeWindow {
    hist: Histogram,
    est: Option<Nanos>,
}

impl RttTracker {
    /// Creates a tracker for `n` nodes with the given estimator tuning.
    pub fn new(n: usize, cfg: &HedgeConfig) -> Self {
        RttTracker {
            pct: cfg.delay_pct,
            min_samples: cfg.min_samples.max(1),
            window: cfg.window.max(2),
            nodes: RefCell::new((0..n).map(|_| NodeWindow::default()).collect()),
        }
    }

    /// Feeds one observed RTT for `node`.
    pub fn observe(&self, node: usize, ns: Nanos) {
        let mut nodes = self.nodes.borrow_mut();
        let w = &mut nodes[node];
        w.hist.record(ns);
        let n = w.hist.len();
        if n >= self.window {
            w.est = Some(w.hist.percentile(self.pct));
            w.hist = Histogram::new();
        } else if n.is_multiple_of(self.min_samples) {
            w.est = Some(w.hist.percentile(self.pct));
        }
    }

    /// The current `delay_pct` estimate for `node` (`None` until the node
    /// has at least [`HedgeConfig::min_samples`] observations).
    pub fn estimate(&self, node: usize) -> Option<Nanos> {
        self.nodes.borrow()[node].est
    }
}

/// Per-client hedging state shared by all of a client's registers (like
/// [`NodeHealth`]): config + RTT tracker + the in-flight hedge budget +
/// the fabric counter sink.
///
/// Deterministic by construction: arming decisions read only virtual time
/// and the tracker (no RNG), so hedged runs are bit-reproducible and a
/// `None` hedger leaves every code path untouched.
#[derive(Clone)]
pub struct Hedger {
    inner: Rc<HedgerInner>,
}

struct HedgerInner {
    cfg: HedgeConfig,
    tracker: RttTracker,
    inflight: Cell<usize>,
    /// Counter sink: hedge events land in the fabric's [`TrafficStats`]
    /// (`None` in substrate-less unit tests).
    fabric: Option<swarm_fabric::Fabric>,
}

impl Hedger {
    /// Mints a hedger for `nodes` nodes, or `None` when `cfg` is disabled —
    /// the "off" representation that guarantees bit-parity.
    pub fn new(
        cfg: HedgeConfig,
        nodes: usize,
        fabric: Option<swarm_fabric::Fabric>,
    ) -> Option<Self> {
        if !cfg.enabled {
            return None;
        }
        Some(Hedger {
            inner: Rc::new(HedgerInner {
                tracker: RttTracker::new(nodes, &cfg),
                cfg,
                inflight: Cell::new(0),
                fabric,
            }),
        })
    }

    /// Feeds one observed per-node request RTT.
    pub fn observe(&self, node: usize, ns: Nanos) {
        self.inner.tracker.observe(node, ns);
    }

    /// The hedge delay for a quorum contacting `nodes`: the slowest
    /// contacted node's tracked percentile. `None` (operation runs
    /// unhedged) until every contacted node has an estimate.
    pub fn delay_for(&self, nodes: impl Iterator<Item = usize>) -> Option<Nanos> {
        let mut max: Option<Nanos> = None;
        for n in nodes {
            let est = self.inner.tracker.estimate(n)?;
            max = Some(max.map_or(est, |m| m.max(est)));
        }
        max
    }

    /// Claims one slot of the in-flight hedge budget and counts the hedge
    /// as fired; `None` when the budget is exhausted (the op falls through
    /// to the ordinary widen path). The returned [`HedgeTicket`] must be
    /// settled with the hedge's outcome; if the operation future is
    /// cancelled first (e.g. at its op deadline), dropping the unsettled
    /// ticket settles it as discarded — the budget can never leak.
    pub fn try_fire(&self) -> Option<HedgeTicket> {
        if self.inner.inflight.get() >= self.inner.cfg.max_inflight {
            return None;
        }
        self.inner.inflight.set(self.inner.inflight.get() + 1);
        if let Some(f) = &self.inner.fabric {
            f.note_hedge_fired();
        }
        Some(HedgeTicket {
            hedger: self.clone(),
            settled: false,
        })
    }

    /// Releases a fired hedge's budget slot and records its outcome.
    fn release(&self, won: bool) {
        self.inner.inflight.set(self.inner.inflight.get() - 1);
        if let Some(f) = &self.inner.fabric {
            if won {
                f.note_hedge_won();
            } else {
                f.note_duplicate_discarded();
            }
        }
    }

    /// Hedges currently in flight (tests).
    pub fn inflight(&self) -> usize {
        self.inner.inflight.get()
    }
}

/// One claimed slot of a [`Hedger`]'s in-flight budget (see
/// [`Hedger::try_fire`]). Settling records the hedge's outcome; an
/// unsettled ticket settles as *discarded* when dropped, so cancelled
/// operations (op-deadline timeouts dropping the future between fire and
/// settle) still release the budget and `fired == won + discarded` holds.
pub struct HedgeTicket {
    hedger: Hedger,
    settled: bool,
}

impl HedgeTicket {
    /// Releases the budget slot, recording `won` if the hedge's response
    /// counted toward completing the operation (otherwise the duplicate
    /// was discarded).
    pub fn settle(mut self, won: bool) {
        self.settled = true;
        self.hedger.release(won);
    }
}

impl Drop for HedgeTicket {
    fn drop(&mut self) {
        if !self.settled {
            self.hedger.release(false);
        }
    }
}

/// Shared roundtrip counter: protocols bump it once per *sequential* network
/// phase, so the KV layer can report per-operation roundtrip counts
/// (Table 2) by differencing.
#[derive(Debug, Clone, Default)]
pub struct Rounds {
    count: Rc<Cell<u64>>,
}

impl Rounds {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one roundtrip.
    pub fn bump(&self) {
        self.add(1);
    }

    /// Adds `n` roundtrips.
    pub fn add(&self, n: u64) {
        self.count.set(self.count.get() + n);
    }

    /// Total roundtrips recorded.
    pub fn get(&self) -> u64 {
        self.count.get()
    }

    /// Removes `n` counted roundtrips: used when two phases that each
    /// counted themselves actually ran in parallel (e.g. Safe-Guess's
    /// write + freshness read, Algorithm 2 line 6).
    pub fn uncount(&self, n: u64) {
        self.count.set(self.count.get().saturating_sub(n));
    }
}

/// Common quorum-timing knobs shared by the reliable register and the
/// timestamp lock.
#[derive(Debug, Clone, Copy)]
pub struct QuorumConfig {
    /// Minimum wait for the optimistic majority before widening to all
    /// replicas and suspecting the stragglers (§6, §7.7). This floor is the
    /// effective timeout while the fabric is unloaded; under load the
    /// deadline stretches adaptively (see [`NodeHealth::widen_timeout_ns`]).
    pub widen_timeout_ns: Nanos,
    /// Widen after this multiple of the smoothed quorum RTT.
    pub widen_rtt_multiple: f64,
    /// The adaptive deadline never exceeds `widen_timeout_ns` times this.
    pub widen_timeout_max_scale: Nanos,
}

impl Default for QuorumConfig {
    fn default() -> Self {
        QuorumConfig {
            widen_timeout_ns: 6_000,
            widen_rtt_multiple: 4.0,
            widen_timeout_max_scale: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_tracks_suspicion() {
        let h = NodeHealth::new(3);
        assert!(!h.is_suspected(1));
        h.suspect(1);
        assert!(h.is_suspected(1));
        h.clear(1);
        assert!(!h.is_suspected(1));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn rounds_accumulate_shared() {
        let r = Rounds::new();
        let r2 = r.clone();
        r.bump();
        r2.add(2);
        assert_eq!(r.get(), 3);
    }

    #[test]
    fn rtt_tracker_estimates_after_min_samples() {
        let cfg = HedgeConfig {
            min_samples: 4,
            window: 16,
            ..HedgeConfig::on()
        };
        let t = RttTracker::new(2, &cfg);
        assert_eq!(t.estimate(0), None);
        for ns in [100, 200, 300, 400] {
            t.observe(0, ns);
        }
        // p99 of a 4-sample window is its maximum.
        assert_eq!(t.estimate(0), Some(400));
        // Other nodes stay unestimated.
        assert_eq!(t.estimate(1), None);
        // The estimate refreshes as the window rolls.
        for _ in 0..4 {
            t.observe(0, 1_000);
        }
        assert_eq!(t.estimate(0), Some(1_000));
    }

    #[test]
    fn rtt_tracker_window_restarts_and_forgets() {
        let cfg = HedgeConfig {
            min_samples: 2,
            window: 4,
            ..HedgeConfig::on()
        };
        let t = RttTracker::new(1, &cfg);
        for ns in [9_000, 9_000, 9_000, 9_000] {
            t.observe(0, ns);
        }
        assert_eq!(t.estimate(0), Some(9_000));
        // A fresh window of fast samples replaces the slow estimate.
        for ns in [10, 10, 10, 10] {
            t.observe(0, ns);
        }
        assert_eq!(t.estimate(0), Some(10));
    }

    #[test]
    fn disabled_hedge_config_mints_no_hedger() {
        assert!(Hedger::new(HedgeConfig::disabled(), 3, None).is_none());
        assert!(Hedger::new(HedgeConfig::default(), 3, None).is_none());
        assert!(Hedger::new(HedgeConfig::on(), 3, None).is_some());
    }

    #[test]
    fn hedger_delay_is_slowest_contacted_estimate() {
        let h = Hedger::new(
            HedgeConfig {
                min_samples: 1,
                ..HedgeConfig::on()
            },
            3,
            None,
        )
        .unwrap();
        h.observe(0, 500);
        h.observe(1, 2_000);
        // Node 2 has no estimate yet: quorums touching it run unhedged.
        assert_eq!(h.delay_for([0, 2].into_iter()), None);
        assert_eq!(h.delay_for([0].into_iter()), Some(500));
        assert_eq!(h.delay_for([0, 1].into_iter()), Some(2_000));
    }

    #[test]
    fn hedge_budget_caps_inflight_and_settles() {
        let h = Hedger::new(
            HedgeConfig {
                max_inflight: 2,
                ..HedgeConfig::on()
            },
            3,
            None,
        )
        .unwrap();
        let t1 = h.try_fire().unwrap();
        let t2 = h.try_fire().unwrap();
        assert!(h.try_fire().is_none(), "budget of 2 exhausted");
        t1.settle(true);
        assert_eq!(h.inflight(), 1);
        let t3 = h.try_fire().expect("settling frees a slot");
        t2.settle(false);
        t3.settle(false);
        assert_eq!(h.inflight(), 0);
        // A cancelled op drops its ticket unsettled: the budget still
        // releases (as a discarded duplicate), never leaking a slot.
        drop(h.try_fire().unwrap());
        assert_eq!(h.inflight(), 0);
    }
}
