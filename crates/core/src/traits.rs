//! Protocol-layer traits and shared client state.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::rc::Rc;

use swarm_sim::Nanos;

use crate::stamp::Stamp;
use crate::value::MVal;

/// What a single fallible (per-node) max-register replica returns to a read.
///
/// With the paper's bandwidth optimization (§6), in-place data lives at only
/// one replica, so a replica may answer with its stamp but *without* the
/// value; the reliable layer then [`ReplicaClient::fetch`]es the payload from
/// whichever replica reported the maximum.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Highest stamp stored at the replica.
    pub stamp: Stamp,
    /// Opaque replica-specific token identifying the stamped data (the raw
    /// In-n-Out metadata word); passed back to [`ReplicaClient::fetch`].
    pub token: u64,
    /// Payload, if the replica could return it in the same roundtrip.
    pub value: Option<Rc<Vec<u8>>>,
}

/// Client handle to one fallible per-node max register (the paper's
/// "unreliable max register", §2.3).
///
/// Methods consume a clone so the returned futures are `'static` and can be
/// raced in quorums; a crashed node's future simply never resolves (the
/// fabric is silent), so callers bound waits with timeouts.
pub trait ReplicaClient: Clone + 'static {
    /// Applies `MAX(register, v)` at the replica; resolves once acknowledged.
    fn write(self, v: MVal) -> impl Future<Output = ()> + 'static;

    /// Reads the replica's current maximum.
    fn read(self) -> impl Future<Output = Snapshot> + 'static;

    /// Retrieves the payload for a previously observed `token`, returning a
    /// value whose stamp is `>=` the token's stamp (newer is fine: max
    /// registers only promise a lower bound).
    fn fetch(self, token: u64) -> impl Future<Output = MVal> + 'static;
}

/// A reliable (majority-replicated, wait-free) max register — the interface
/// shared by ABD and Safe-Guess (Algorithms 1, 2/3) and implemented by
/// [`crate::ReliableMaxReg`].
pub trait MaxRegister: Clone + 'static {
    /// Writes `v`; on return, `v` is stored at a majority.
    fn write(&self, v: MVal) -> impl Future<Output = ()> + 'static;

    /// Reads the maximum; includes the write-back phase required for
    /// read-read monotonicity (Appendix A).
    fn read(&self) -> impl Future<Output = MVal> + 'static;

    /// 1-RTT stamp-only read without write-back: sufficient for fresh-
    /// timestamp discovery in writes (Appendix A.2 optimization).
    fn read_stamp(&self) -> impl Future<Output = Stamp> + 'static;

    /// Fire-and-forget background write (Safe-Guess `in bg: M.WRITE(..)`).
    fn write_bg(&self, v: MVal);
}

/// Per-client failure suspicion, shared across all registers of one client.
///
/// When a quorum wait times out, unresponsive nodes are suspected and
/// subsequent operations stop contacting them optimistically (they are still
/// contacted when quorums must widen). This reproduces §7.7: after a memory
/// node crashes, only the first few operations pay the timeout, and no
/// reconfiguration is needed.
#[derive(Debug)]
pub struct NodeHealth {
    suspected: RefCell<Vec<bool>>,
}

impl NodeHealth {
    /// Creates all-healthy state for `n` nodes.
    pub fn new(n: usize) -> Rc<Self> {
        Rc::new(NodeHealth {
            suspected: RefCell::new(vec![false; n]),
        })
    }

    /// Marks node `i` suspected.
    pub fn suspect(&self, i: usize) {
        self.suspected.borrow_mut()[i] = true;
    }

    /// Clears suspicion of node `i` (e.g., membership says it recovered).
    pub fn clear(&self, i: usize) {
        self.suspected.borrow_mut()[i] = false;
    }

    /// True if node `i` is currently suspected.
    pub fn is_suspected(&self, i: usize) -> bool {
        self.suspected.borrow()[i]
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.suspected.borrow().len()
    }

    /// True if no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Shared roundtrip counter: protocols bump it once per *sequential* network
/// phase, so the KV layer can report per-operation roundtrip counts
/// (Table 2) by differencing.
#[derive(Debug, Clone, Default)]
pub struct Rounds {
    count: Rc<Cell<u64>>,
}

impl Rounds {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one roundtrip.
    pub fn bump(&self) {
        self.add(1);
    }

    /// Adds `n` roundtrips.
    pub fn add(&self, n: u64) {
        self.count.set(self.count.get() + n);
    }

    /// Total roundtrips recorded.
    pub fn get(&self) -> u64 {
        self.count.get()
    }

    /// Removes `n` counted roundtrips: used when two phases that each
    /// counted themselves actually ran in parallel (e.g. Safe-Guess's
    /// write + freshness read, Algorithm 2 line 6).
    pub fn uncount(&self, n: u64) {
        self.count.set(self.count.get().saturating_sub(n));
    }
}

/// Common quorum-timing knobs shared by the reliable register and the
/// timestamp lock.
#[derive(Debug, Clone, Copy)]
pub struct QuorumConfig {
    /// How long to wait for the optimistic majority before widening to all
    /// replicas and suspecting the stragglers (§6, §7.7).
    pub widen_timeout_ns: Nanos,
}

impl Default for QuorumConfig {
    fn default() -> Self {
        QuorumConfig {
            widen_timeout_ns: 6_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_tracks_suspicion() {
        let h = NodeHealth::new(3);
        assert!(!h.is_suspected(1));
        h.suspect(1);
        assert!(h.is_suspected(1));
        h.clear(1);
        assert!(!h.is_suspected(1));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn rounds_accumulate_shared() {
        let r = Rounds::new();
        let r2 = r.clone();
        r.bump();
        r2.add(2);
        assert_eq!(r.get(), 3);
    }
}
