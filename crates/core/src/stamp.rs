//! Logical timestamps ("stamps") ordering SWARM writes.
//!
//! A stamp is the paper's 3-part ordering key: the guessed/fresh timestamp
//! `i`, the writer's thread id breaking ties (§2.3), and the
//! `GUESSED`/`VERIFIED` flag, with `VERIFIED > GUESSED` at equal `(i, tid)`
//! (§3.2). Stamps pack into 48 bits so that, together with a 16-bit
//! out-of-place slot index, the whole In-n-Out metadata word fits the 8 B
//! atomic CAS the disaggregated memory supports (§4.3) — and numeric order of
//! the packed word equals the logical order of the stamp.

/// Number of bits for the timestamp counter `i`.
pub const I_BITS: u32 = 39;
/// Number of bits for the thread id.
pub const TID_BITS: u32 = 8;
/// Maximum representable `i` (also the tombstone value, §5.3.2).
pub const I_MAX: u64 = (1 << I_BITS) - 1;
/// Maximum thread id (255).
pub const TID_MAX: u8 = u8::MAX;

/// Nanoseconds per timestamp tick used by clock-based guessing: `i`
/// advances every 64 ns, giving 39 bits ≈ 9.7 hours of unique guesses.
pub const TICK_NS: u64 = 64;

/// A logical write timestamp: `(i, tid, verified)`, ordered
/// lexicographically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stamp {
    /// Monotonic timestamp counter (clock-guessed or `max.i + 1`).
    pub i: u64,
    /// Writer thread id (tie-breaker).
    pub tid: u8,
    /// `true` once the stamp is known fresh (`VERIFIED`), `false` while
    /// speculative (`GUESSED`).
    pub verified: bool,
}

impl Stamp {
    /// The initial register stamp `((0, ⊥), VERIFIED)` (Algorithm 2 line 1).
    pub const ZERO: Stamp = Stamp {
        i: 0,
        tid: 0,
        verified: true,
    };

    /// The tombstone: all bits set, so no later write can exceed it
    /// (SWARM-KV `delete`, §5.3.2).
    pub const TOMBSTONE: Stamp = Stamp {
        i: I_MAX,
        tid: TID_MAX,
        verified: true,
    };

    /// Creates a guessed stamp.
    pub fn guessed(i: u64, tid: u8) -> Stamp {
        assert!(i <= I_MAX, "timestamp counter overflow");
        Stamp {
            i,
            tid,
            verified: false,
        }
    }

    /// Creates a verified stamp.
    pub fn verified(i: u64, tid: u8) -> Stamp {
        assert!(i <= I_MAX, "timestamp counter overflow");
        Stamp {
            i,
            tid,
            verified: true,
        }
    }

    /// This stamp with the `VERIFIED` flag set.
    pub fn with_verified(self) -> Stamp {
        Stamp {
            verified: true,
            ..self
        }
    }

    /// True if this is the delete tombstone.
    pub fn is_tombstone(&self) -> bool {
        self.i == I_MAX && self.tid == TID_MAX
    }

    /// The `(i, tid)` pair *without* the flag — what the timestamp lock
    /// protects (a guessed write and its verified confirmation share it).
    pub fn key(&self) -> (u64, u8) {
        (self.i, self.tid)
    }

    /// Packs into 48 bits: `[i:39][tid:8][verified:1]`, numeric order ==
    /// logical order.
    pub fn pack48(&self) -> u64 {
        (self.i << (TID_BITS + 1)) | ((self.tid as u64) << 1) | (self.verified as u64)
    }

    /// Inverse of [`Stamp::pack48`].
    pub fn unpack48(v: u64) -> Stamp {
        Stamp {
            i: v >> (TID_BITS + 1),
            tid: ((v >> 1) & 0xff) as u8,
            verified: v & 1 == 1,
        }
    }
}

impl std::fmt::Display for Stamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}.{}{}",
            self.i,
            self.tid,
            if self.verified { "V" } else { "g" }
        )
    }
}

/// Strictly monotonic clock-based timestamp guesser (one per writer thread).
///
/// Wraps a [`swarm_sim::GuessClock`]: guesses derive from the local loosely
/// synchronized clock (good guesses under clock synchrony, §3.2) but are
/// forced strictly increasing per thread, as Safe-Guess mandates.
pub struct TsGuesser {
    clock: std::rc::Rc<swarm_sim::GuessClock>,
    tid: u8,
    last: std::cell::Cell<u64>,
}

impl TsGuesser {
    /// Creates a guesser for thread `tid` over the given clock.
    pub fn new(clock: std::rc::Rc<swarm_sim::GuessClock>, tid: u8) -> Self {
        TsGuesser {
            clock,
            tid,
            last: std::cell::Cell::new(0),
        }
    }

    /// This guesser's thread id.
    pub fn tid(&self) -> u8 {
        self.tid
    }

    /// Guesses a (hopefully fresh) timestamp: strictly monotonic at this
    /// thread (Assumption 1 of the correctness proof).
    pub fn guess(&self) -> Stamp {
        let from_clock = self.clock.read_ns() / TICK_NS + 1;
        let i = from_clock.max(self.last.get() + 1).min(I_MAX - 1);
        self.last.set(i);
        Stamp::guessed(i, self.tid)
    }

    /// Re-synchronizes the underlying clock (called after a stale guess, §6).
    pub fn resync(&self) {
        self.clock.resync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use swarm_sim::{GuessClock, Sim};

    #[test]
    fn ordering_is_i_then_tid_then_flag() {
        let a = Stamp::guessed(1, 5);
        let b = Stamp::guessed(2, 0);
        let c = Stamp::verified(1, 5);
        let d = Stamp::guessed(1, 6);
        assert!(a < b);
        assert!(a < c); // VERIFIED beats GUESSED at equal (i, tid)
        assert!(c < b);
        assert!(a < d);
        assert!(d < b);
    }

    #[test]
    fn pack48_preserves_order_and_roundtrips() {
        let stamps = [
            Stamp::ZERO,
            Stamp::guessed(1, 0),
            Stamp::verified(1, 0),
            Stamp::guessed(1, 1),
            Stamp::guessed(2, 0),
            Stamp::verified(I_MAX - 1, 3),
            Stamp::TOMBSTONE,
        ];
        for w in stamps.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].pack48() < w[1].pack48());
        }
        for s in stamps {
            assert_eq!(Stamp::unpack48(s.pack48()), s);
            assert!(s.pack48() < (1 << 48));
        }
    }

    #[test]
    fn tombstone_dominates_everything() {
        assert!(Stamp::TOMBSTONE > Stamp::verified(I_MAX - 1, TID_MAX));
        assert!(Stamp::TOMBSTONE.is_tombstone());
        assert!(!Stamp::verified(3, 1).is_tombstone());
    }

    #[test]
    fn with_verified_keeps_key() {
        let g = Stamp::guessed(7, 2);
        let v = g.with_verified();
        assert_eq!(g.key(), v.key());
        assert!(v > g);
    }

    #[test]
    fn guesser_is_strictly_monotonic() {
        let sim = Sim::new(1);
        let clock = Rc::new(GuessClock::perfect(&sim));
        let g = TsGuesser::new(clock, 3);
        let mut prev = 0;
        for _ in 0..100 {
            let s = g.guess();
            assert!(s.i > prev);
            assert_eq!(s.tid, 3);
            assert!(!s.verified);
            prev = s.i;
        }
    }

    #[test]
    fn guesser_tracks_advancing_clock() {
        let sim = Sim::new(2);
        let clock = Rc::new(GuessClock::perfect(&sim));
        let g = TsGuesser::new(clock, 0);
        let s = sim.clone();
        sim.block_on(async move {
            let a = g.guess();
            s.sleep_ns(10_000).await;
            let b = g.guess();
            assert!(b.i - a.i >= 10_000 / TICK_NS - 1);
        });
    }
}
