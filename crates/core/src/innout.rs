//! In-n-Out (§4): a per-node max register for large values, with
//! single-roundtrip conditional updates and no compute at the memory node.
//!
//! Memory layout of one register on one node (Figure 3, extended with the
//! §4.4 contention-reduction metadata array):
//!
//! ```text
//! meta_addr:    [ k × 8 B metadata words ]   // (stamp:48 | oop_slot:16)
//!               [ value_cap bytes in-place ] // contiguous with metadata so
//!               [ 8 B hash               ]   // one READ fetches everything
//! oop_addr:     [ slots × (8 B meta | 8 B hash | value_cap bytes) ]
//! ```
//!
//! A write fills a fresh out-of-place slot and MAXes its metadata word in a
//! single pipelined roundtrip (Algorithm 5); the MAX is emulated with CAS
//! and a client-side cache of the word (Algorithm 7). Readers fetch the
//! metadata array + in-place data in one roundtrip and validate the in-place
//! bytes against the hash, falling back to the out-of-place buffer only when
//! validation fails (Algorithm 6).

use std::cell::Cell;
use std::rc::Rc;

use swarm_fabric::{Endpoint, NodeId, Op};

use crate::hash::innout_hash;
use crate::stamp::Stamp;
use crate::traits::{ReplicaClient, Rounds, Snapshot};
use crate::value::MVal;

/// Addresses and shape of one In-n-Out register on one node.
#[derive(Debug, Clone)]
pub struct InnOutLayout {
    /// Node hosting this replica.
    pub node: NodeId,
    /// Base of the metadata array (the in-place region follows contiguously).
    pub meta_addr: u64,
    /// Number of 8 B metadata words (`k` of §4.4; 1 = the basic scheme).
    pub meta_bufs: usize,
    /// Fixed value size of this register in bytes.
    pub value_cap: usize,
    /// Base of the out-of-place slot array.
    pub oop_addr: u64,
    /// Total out-of-place slots (partitioned evenly among writers).
    pub oop_slots: usize,
    /// Maximum number of writer clients (determines slot partitioning).
    pub max_writers: usize,
}

/// Per-slot header: embedded metadata word + hash.
const OOP_HEADER: usize = 16;

impl InnOutLayout {
    /// Bytes of node memory needed for the metadata + in-place region.
    pub fn inplace_region_len(meta_bufs: usize, value_cap: usize) -> u64 {
        (meta_bufs * 8 + value_cap + 8) as u64
    }

    /// Bytes of node memory needed for the out-of-place region.
    pub fn oop_region_len(oop_slots: usize, value_cap: usize) -> u64 {
        (oop_slots * (OOP_HEADER + value_cap)) as u64
    }

    /// Allocates a register of this shape on `node` of `fabric`.
    pub fn allocate(
        fabric: &swarm_fabric::Fabric,
        node: NodeId,
        meta_bufs: usize,
        value_cap: usize,
        oop_slots: usize,
        max_writers: usize,
    ) -> InnOutLayout {
        assert!(oop_slots >= max_writers, "need >= 1 slot per writer");
        assert!(oop_slots <= 1 << 16, "slot index must fit 16 bits");
        let n = fabric.node(node);
        let meta_addr = n.alloc(Self::inplace_region_len(meta_bufs, value_cap), 8);
        let oop_addr = n.alloc(Self::oop_region_len(oop_slots, value_cap), 8);
        InnOutLayout {
            node,
            meta_addr,
            meta_bufs,
            value_cap,
            oop_addr,
            oop_slots,
            max_writers,
        }
    }

    fn meta_word_addr(&self, buf: usize) -> u64 {
        self.meta_addr + (buf * 8) as u64
    }

    fn inplace_addr(&self) -> u64 {
        self.meta_addr + (self.meta_bufs * 8) as u64
    }

    fn read_len(&self) -> usize {
        self.meta_bufs * 8 + self.value_cap + 8
    }

    fn slot_addr(&self, slot: u16) -> u64 {
        self.oop_addr + (slot as usize * (OOP_HEADER + self.value_cap)) as u64
    }
}

/// Packs a stamp and slot into the 8 B metadata word.
fn meta_word(stamp: Stamp, slot: u16) -> u64 {
    (stamp.pack48() << 16) | slot as u64
}

fn word_stamp(word: u64) -> Stamp {
    Stamp::unpack48(word >> 16)
}

fn word_slot(word: u64) -> u16 {
    (word & 0xffff) as u16
}

/// Client handle to one In-n-Out register replica.
pub struct InnOutReplica {
    inner: Rc<InnOutInner>,
}

impl Clone for InnOutReplica {
    fn clone(&self) -> Self {
        InnOutReplica {
            inner: Rc::clone(&self.inner),
        }
    }
}

struct InnOutInner {
    ep: Rc<Endpoint>,
    layout: InnOutLayout,
    /// Writer identity: selects the metadata buffer and slot partition.
    writer: usize,
    /// Whether `VERIFIED` writes also lazily store in-place data here (§6:
    /// only at one hash-designated replica per key).
    inplace_enabled: bool,
    /// Cached value of *our* metadata word (Algorithm 7's one-RTT trick).
    cached_meta: Cell<u64>,
    /// Next slot in this writer's partition, used round-robin.
    next_slot: Cell<u16>,
    rounds: Rounds,
    /// Statistics: in-place hits / out-of-place fallbacks (Fig. 9/12).
    inplace_hits: Cell<u64>,
    oop_fallbacks: Cell<u64>,
}

impl InnOutReplica {
    /// Creates a client handle for `writer` (0-based, `< max_writers`).
    pub fn new(
        ep: Rc<Endpoint>,
        layout: InnOutLayout,
        writer: usize,
        inplace_enabled: bool,
        rounds: Rounds,
    ) -> Self {
        assert!(writer < layout.max_writers);
        InnOutReplica {
            inner: Rc::new(InnOutInner {
                ep,
                layout,
                writer,
                inplace_enabled,
                cached_meta: Cell::new(0),
                next_slot: Cell::new(0),
                rounds,
                inplace_hits: Cell::new(0),
                oop_fallbacks: Cell::new(0),
            }),
        }
    }

    /// `(in-place hits, out-of-place fallbacks)` observed by this handle.
    pub fn read_stats(&self) -> (u64, u64) {
        (
            self.inner.inplace_hits.get(),
            self.inner.oop_fallbacks.get(),
        )
    }

    fn metadata_buf(&self) -> usize {
        self.inner.writer % self.inner.layout.meta_bufs
    }

    fn alloc_slot(&self) -> u16 {
        let l = &self.inner.layout;
        let per_writer = (l.oop_slots / l.max_writers) as u16;
        let local = self.inner.next_slot.get();
        self.inner.next_slot.set((local + 1) % per_writer);
        self.inner.writer as u16 * per_writer + local
    }

    /// Builds the `[meta | hash | value]` out-of-place buffer. This is the
    /// one place a write's bytes are copied (the slot header is
    /// per-replica); the buffer is then `Rc`-shared through the fabric.
    fn encode_oop(&self, word: u64, value: &[u8]) -> swarm_fabric::Payload {
        let l = &self.inner.layout;
        assert_eq!(value.len(), l.value_cap, "fixed-size register");
        let mut buf = Vec::with_capacity(OOP_HEADER + l.value_cap);
        buf.extend_from_slice(&word.to_le_bytes());
        buf.extend_from_slice(&innout_hash(word, value).to_le_bytes());
        buf.extend_from_slice(value);
        buf.into()
    }

    /// Applies `MAX(meta_word_addr, word)` given that the out-of-place data
    /// for `word` was already pipelined in front of the first CAS.
    ///
    /// `expected` must be the exact comparand the first (pipelined) CAS used
    /// on the wire — *not* a fresh read of `cached_meta`, which concurrent
    /// reads of the same client may have advanced in the meantime (that
    /// would fake a "CAS applied" and lose the write).
    async fn max_meta(&self, first_cas_prev: u64, mut expected: u64, word: u64) {
        let inner = &self.inner;
        let addr = inner.layout.meta_word_addr(self.metadata_buf());
        let mut prev = first_cas_prev;
        // Algorithm 7: retry while the stored word is still below ours.
        while prev < word {
            if prev == expected {
                // Our CAS applied.
                inner.cached_meta.set(inner.cached_meta.get().max(word));
                return;
            }
            expected = prev;
            inner.rounds.bump();
            match inner.ep.cas(inner.layout.node, addr, expected, word).await {
                Some(p) => prev = p,
                None => std::future::pending().await,
            }
        }
        // Someone else already stored a higher word.
        inner.cached_meta.set(inner.cached_meta.get().max(prev));
    }

    /// Lazily writes the in-place copy (Algorithm 5 line 7): fire-and-forget.
    fn write_inplace_bg(&self, word: u64, value: &Rc<Vec<u8>>) {
        let l = &self.inner.layout;
        let mut buf = Vec::with_capacity(l.value_cap + 8);
        buf.extend_from_slice(value);
        buf.extend_from_slice(&innout_hash(word, value).to_le_bytes());
        drop(self.inner.ep.submit(
            l.node,
            vec![Op::Write {
                addr: l.inplace_addr(),
                data: buf.into(),
            }],
        ));
    }

    fn parse_region(&self, bytes: &[u8]) -> (u64, Vec<u8>, u64) {
        let l = &self.inner.layout;
        let mut max_word = 0u64;
        for b in 0..l.meta_bufs {
            let w = u64::from_le_bytes(bytes[b * 8..b * 8 + 8].try_into().unwrap());
            max_word = max_word.max(w);
        }
        let v_start = l.meta_bufs * 8;
        if bytes.len() < v_start + l.value_cap + 8 {
            // Metadata-only read (no in-place data at this replica): report
            // an unvalidatable value so callers fall back to the pointer.
            return (max_word, Vec::new(), 0);
        }
        let value = bytes[v_start..v_start + l.value_cap].to_vec();
        let hash = u64::from_le_bytes(
            bytes[v_start + l.value_cap..v_start + l.value_cap + 8]
                .try_into()
                .unwrap(),
        );
        (max_word, value, hash)
    }

    /// Reads the metadata array — plus the in-place data if this replica is
    /// designated to hold it (§6: in-place data lives at one replica only,
    /// so reads of the others move just `k × 8` bytes).
    async fn read_region(&self) -> (u64, Vec<u8>, u64) {
        let inner = &self.inner;
        let l = &inner.layout;
        let len = if inner.inplace_enabled {
            l.read_len()
        } else {
            l.meta_bufs * 8
        };
        match inner
            .ep
            .submit(
                l.node,
                vec![Op::Read {
                    addr: l.meta_addr,
                    len,
                }],
            )
            .await
        {
            Some(mut r) => {
                let bytes = r.remove(0).into_read();
                // Reads refresh the writer's metadata cache for free — with
                // *our own* buffer's word (the CAS comparand), never the
                // array maximum, which may belong to another writer's
                // buffer and would never match ours.
                let own = self.metadata_buf();
                let own_word = u64::from_le_bytes(bytes[own * 8..own * 8 + 8].try_into().unwrap());
                inner.cached_meta.set(inner.cached_meta.get().max(own_word));
                self.parse_region(&bytes)
            }
            None => std::future::pending().await,
        }
    }

    /// Chases the out-of-place pointer of `word`, retrying through fresh
    /// metadata if the slot was recycled or torn mid-write. Returns a value
    /// whose stamp is `>=` `word`'s stamp (max-register semantics).
    async fn chase(&self, mut word: u64) -> MVal {
        let inner = &self.inner;
        let l = &inner.layout;
        loop {
            inner.rounds.bump();
            inner.oop_fallbacks.set(inner.oop_fallbacks.get() + 1);
            let bytes = match inner
                .ep
                .read(
                    l.node,
                    l.slot_addr(word_slot(word)),
                    OOP_HEADER + l.value_cap,
                )
                .await
            {
                Some(b) => b,
                None => std::future::pending().await,
            };
            let emb_word = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
            let emb_hash = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
            let value = &bytes[OOP_HEADER..];
            if emb_word >= word && innout_hash(emb_word, value) == emb_hash {
                // Valid (possibly newer, if the slot was recycled by a later
                // write of the same writer — still a legal max-register
                // result).
                return MVal::new(word_stamp(emb_word), value.to_vec());
            }
            // Torn or stale slot: the metadata must have moved on; re-read
            // it and chase the new maximum.
            let (new_word, value, hash) = self.read_region().await;
            debug_assert!(new_word >= word);
            if word_stamp(new_word).is_tombstone() {
                return MVal::new(word_stamp(new_word), Vec::new());
            }
            if new_word != 0 && value.len() == l.value_cap && innout_hash(new_word, &value) == hash
            {
                return MVal::new(word_stamp(new_word), value);
            }
            word = new_word;
        }
    }
}

impl ReplicaClient for InnOutReplica {
    /// Algorithm 5: one pipelined roundtrip writes the out-of-place buffer
    /// and MAXes the metadata word; the in-place copy is written lazily.
    async fn write(self, v: MVal) {
        let inner = &self.inner;
        let l = &inner.layout;
        if v.stamp.is_tombstone() {
            // Deletes carry no payload: MAX the metadata word to the
            // all-ones tombstone in one CAS (§5.3.2).
            let word = meta_word(v.stamp, u16::MAX);
            let expected = inner.cached_meta.get();
            if expected >= word {
                return;
            }
            let prev = match inner
                .ep
                .cas(
                    l.node,
                    l.meta_word_addr(self.metadata_buf()),
                    expected,
                    word,
                )
                .await
            {
                Some(p) => p,
                None => std::future::pending().await,
            };
            self.max_meta(prev, expected, word).await;
            return;
        }
        let slot = self.alloc_slot();
        let word = meta_word(v.stamp, slot);
        let expected = inner.cached_meta.get();
        if expected >= word {
            // Already superseded at this replica: MAX is a no-op.
            return;
        }
        let series = vec![
            Op::Write {
                addr: l.slot_addr(slot),
                data: self.encode_oop(word, &v.value),
            },
            Op::Cas {
                addr: l.meta_word_addr(self.metadata_buf()),
                expected,
                new: word,
            },
        ];
        let res = match inner.ep.submit(l.node, series).await {
            Some(r) => r,
            None => std::future::pending().await,
        };
        let prev = res[1].clone().into_cas();
        self.max_meta(prev, expected, word).await;
        if v.stamp.verified && inner.inplace_enabled {
            self.write_inplace_bg(word, &v.value);
        }
    }

    /// Algorithm 6 + §4.4: one roundtrip fetches the metadata array and the
    /// in-place data; hash validation decides between returning in-place
    /// data and reporting stamp-only (the reliable layer may then `fetch`).
    async fn read(self) -> Snapshot {
        let (word, value, hash) = self.read_region().await;
        if word == 0 {
            return Snapshot {
                stamp: Stamp::ZERO,
                token: 0,
                value: Some(Rc::new(Vec::new())),
            };
        }
        if word_stamp(word).is_tombstone() {
            return Snapshot {
                stamp: word_stamp(word),
                token: word,
                value: Some(Rc::new(Vec::new())),
            };
        }
        if value.len() == self.inner.layout.value_cap && innout_hash(word, &value) == hash {
            self.inner
                .inplace_hits
                .set(self.inner.inplace_hits.get() + 1);
            Snapshot {
                stamp: word_stamp(word),
                token: word,
                value: Some(Rc::new(value)),
            }
        } else {
            Snapshot {
                stamp: word_stamp(word),
                token: word,
                value: None,
            }
        }
    }

    async fn fetch(self, token: u64) -> MVal {
        if token == 0 {
            return MVal::initial();
        }
        if word_stamp(token).is_tombstone() {
            return MVal::new(word_stamp(token), Vec::new());
        }
        self.chase(token).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_fabric::{Fabric, FabricConfig};
    use swarm_sim::Sim;

    fn setup(seed: u64, meta_bufs: usize, cap: usize) -> (Sim, Fabric, InnOutLayout) {
        let sim = Sim::new(seed);
        let fabric = Fabric::new(&sim, FabricConfig::default(), 1);
        let layout = InnOutLayout::allocate(&fabric, NodeId(0), meta_bufs, cap, 64, 8);
        (sim, fabric, layout)
    }

    fn replica(fabric: &Fabric, layout: &InnOutLayout, writer: usize) -> InnOutReplica {
        InnOutReplica::new(
            Rc::new(fabric.endpoint()),
            layout.clone(),
            writer,
            true,
            Rounds::new(),
        )
    }

    #[test]
    fn word_packing_orders_like_stamps() {
        let a = meta_word(Stamp::guessed(1, 0), 9);
        let b = meta_word(Stamp::verified(1, 0), 3);
        let c = meta_word(Stamp::guessed(2, 0), 0);
        assert!(a < b && b < c);
        assert_eq!(word_stamp(b), Stamp::verified(1, 0));
        assert_eq!(word_slot(a), 9);
    }

    #[test]
    fn empty_register_reads_initial() {
        let (sim, fabric, layout) = setup(1, 1, 64);
        let r = replica(&fabric, &layout, 0);
        let snap = sim.block_on(async move { r.read().await });
        assert_eq!(snap.stamp, Stamp::ZERO);
        assert_eq!(*snap.value.unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn guessed_write_reads_back_via_oop() {
        // GUESSED writes skip the lazy in-place copy, so the first read
        // reports stamp-only and fetch() chases out of place.
        let (sim, fabric, layout) = setup(2, 1, 64);
        let w = replica(&fabric, &layout, 0);
        let r = replica(&fabric, &layout, 1);
        let v = MVal::new(Stamp::guessed(5, 0), vec![7u8; 64]);
        let got = sim.block_on(async move {
            w.write(v).await;
            let snap = r.clone().read().await;
            assert!(snap.value.is_none(), "no in-place copy for GUESSED");
            r.fetch(snap.token).await
        });
        assert_eq!(got.stamp, Stamp::guessed(5, 0));
        assert_eq!(*got.value, vec![7u8; 64]);
    }

    #[test]
    fn verified_write_enables_inplace_hit() {
        let (sim, fabric, layout) = setup(3, 1, 64);
        let w = replica(&fabric, &layout, 0);
        let r = replica(&fabric, &layout, 1);
        let sim2 = sim.clone();
        let snap = sim.block_on(async move {
            w.write(MVal::new(Stamp::verified(5, 0), vec![9u8; 64]))
                .await;
            // Let the lazy in-place write land.
            sim2.sleep_ns(10_000).await;
            r.read().await
        });
        assert_eq!(snap.stamp, Stamp::verified(5, 0));
        assert_eq!(*snap.value.unwrap(), vec![9u8; 64]);
    }

    #[test]
    fn max_semantics_old_write_does_not_regress() {
        let (sim, fabric, layout) = setup(4, 1, 8);
        let w0 = replica(&fabric, &layout, 0);
        let w1 = replica(&fabric, &layout, 1);
        let r = replica(&fabric, &layout, 2);
        let got = sim.block_on(async move {
            w0.write(MVal::new(Stamp::verified(10, 0), vec![1u8; 8]))
                .await;
            w1.write(MVal::new(Stamp::verified(4, 1), vec![2u8; 8]))
                .await;
            let snap = r.clone().read().await;
            r.fetch(snap.token).await
        });
        assert_eq!(got.stamp, Stamp::verified(10, 0));
        assert_eq!(*got.value, vec![1u8; 8]);
    }

    #[test]
    fn stale_cache_costs_extra_cas_rounds() {
        // Two writers share one metadata buffer: the second write's cached
        // expected value is stale, forcing a CAS retry (Fig. 13's story).
        let (sim, fabric, layout) = setup(5, 1, 8);
        let w0 = replica(&fabric, &layout, 0);
        let rounds1 = Rounds::new();
        let w1 = InnOutReplica::new(
            Rc::new(fabric.endpoint()),
            layout.clone(),
            1,
            true,
            rounds1.clone(),
        );
        sim.block_on(async move {
            w0.write(MVal::new(Stamp::verified(3, 0), vec![0u8; 8]))
                .await;
            w1.write(MVal::new(Stamp::verified(7, 1), vec![1u8; 8]))
                .await;
        });
        assert!(rounds1.get() >= 1, "stale-cache CAS retry not counted");
    }

    #[test]
    fn separate_meta_buffers_avoid_cas_retries() {
        let (sim, fabric, layout) = setup(6, 4, 8);
        let w0 = replica(&fabric, &layout, 0);
        let rounds1 = Rounds::new();
        let w1 = InnOutReplica::new(
            Rc::new(fabric.endpoint()),
            layout.clone(),
            1,
            true,
            rounds1.clone(),
        );
        let r = replica(&fabric, &layout, 2);
        let got = sim.block_on(async move {
            w0.write(MVal::new(Stamp::verified(3, 0), vec![0u8; 8]))
                .await;
            w1.write(MVal::new(Stamp::verified(7, 1), vec![1u8; 8]))
                .await;
            let snap = r.clone().read().await;
            r.fetch(snap.token).await
        });
        assert_eq!(rounds1.get(), 0, "dedicated buffer should not retry");
        assert_eq!(got.stamp, Stamp::verified(7, 1));
    }

    #[test]
    fn stale_inplace_from_older_write_fails_validation() {
        // Writer A (verified) populates in-place; writer B (guessed, higher
        // stamp) supersedes it. Readers must not return A's bytes for B's
        // stamp: validation fails and the reliable layer fetches.
        let (sim, fabric, layout) = setup(7, 2, 16);
        let a = replica(&fabric, &layout, 0);
        let b = replica(&fabric, &layout, 1);
        let r = replica(&fabric, &layout, 2);
        let sim2 = sim.clone();
        let (snap, fetched) = sim.block_on(async move {
            a.write(MVal::new(Stamp::verified(5, 0), vec![0xA; 16]))
                .await;
            sim2.sleep_ns(10_000).await;
            b.write(MVal::new(Stamp::guessed(9, 1), vec![0xB; 16]))
                .await;
            let snap = r.clone().read().await;
            let f = r.fetch(snap.token).await;
            (snap, f)
        });
        assert_eq!(snap.stamp, Stamp::guessed(9, 1));
        assert!(snap.value.is_none(), "returned stale in-place bytes");
        assert_eq!(*fetched.value, vec![0xB; 16]);
    }

    #[test]
    fn slot_ring_wraps_per_writer() {
        let (sim, fabric, layout) = setup(8, 1, 8);
        let w = replica(&fabric, &layout, 3);
        // 64 slots / 8 writers = 8 per writer; 20 writes wrap the ring.
        let r = replica(&fabric, &layout, 0);
        let got = sim.block_on(async move {
            for i in 1..=20u64 {
                w.clone()
                    .write(MVal::new(Stamp::verified(i, 3), vec![i as u8; 8]))
                    .await;
            }
            let snap = r.clone().read().await;
            r.fetch(snap.token).await
        });
        assert_eq!(got.stamp, Stamp::verified(20, 3));
        assert_eq!(*got.value, vec![20u8; 8]);
    }
}
