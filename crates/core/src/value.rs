//! Register values: a stamped byte buffer.

use std::rc::Rc;

use crate::stamp::Stamp;

/// A max-register value: the written bytes tagged with their [`Stamp`].
///
/// Ordering (and therefore the max-register semantics) is by stamp alone;
/// two distinct writes never share a stamp (Observation 4 of the paper's
/// proof), and a write and its `VERIFIED` confirmation carry the same bytes.
/// Values are reference-counted so quorum fan-out does not copy payloads.
#[derive(Debug, Clone)]
pub struct MVal {
    /// The ordering stamp.
    pub stamp: Stamp,
    /// The written bytes (fixed-size per register; the KV layer pads).
    pub value: Rc<Vec<u8>>,
}

impl MVal {
    /// The initial register value: `((0, ⊥), VERIFIED, ⊥)` (Algorithm 2).
    pub fn initial() -> MVal {
        MVal {
            stamp: Stamp::ZERO,
            value: Rc::new(Vec::new()),
        }
    }

    /// Creates a value. Accepts a `Vec<u8>` (moved into an `Rc`, no copy) or
    /// an already-shared `Rc<Vec<u8>>` (refcount bump only), so one payload
    /// buffer flows from the KV layer through quorum fan-out to the fabric
    /// without deep copies.
    pub fn new(stamp: Stamp, value: impl Into<Rc<Vec<u8>>>) -> MVal {
        MVal {
            stamp,
            value: value.into(),
        }
    }

    /// This value re-stamped as `VERIFIED` (same bytes, same `(i, tid)`).
    pub fn with_verified(&self) -> MVal {
        MVal {
            stamp: self.stamp.with_verified(),
            value: Rc::clone(&self.value),
        }
    }

    /// True if this is still the initial (never-written) value.
    pub fn is_initial(&self) -> bool {
        self.stamp == Stamp::ZERO
    }

    /// True if this value is a delete tombstone (SWARM-KV, §5.3.2).
    pub fn is_tombstone(&self) -> bool {
        self.stamp.is_tombstone()
    }
}

impl PartialEq for MVal {
    fn eq(&self, other: &Self) -> bool {
        self.stamp == other.stamp
    }
}
impl Eq for MVal {}
impl PartialOrd for MVal {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MVal {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.stamp.cmp(&other.stamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_stamp() {
        let a = MVal::new(Stamp::guessed(1, 0), vec![1]);
        let b = MVal::new(Stamp::guessed(2, 0), vec![0]);
        assert!(a < b);
        assert!(a < a.with_verified());
    }

    #[test]
    fn initial_is_smallest() {
        let init = MVal::initial();
        assert!(init.is_initial());
        assert!(init < MVal::new(Stamp::guessed(1, 0), vec![]));
    }

    #[test]
    fn verified_shares_bytes() {
        let a = MVal::new(Stamp::guessed(3, 1), vec![9; 16]);
        let v = a.with_verified();
        assert!(Rc::ptr_eq(&a.value, &v.value));
        assert_eq!(a.stamp.key(), v.stamp.key());
    }
}
