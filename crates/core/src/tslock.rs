//! Timestamp locks (§3.3, Algorithms 4/9): SWARM's novel wait-free
//! conflict-resolution primitive.
//!
//! A timestamp lock arbitrates, per guessed timestamp, between a writer that
//! wants to *re-execute* its write with a fresher timestamp and readers that
//! want to *return* the value at the guessed timestamp. Both race to record
//! `(ts, mode)` in a majority of 2f+1 fallible CAS objects (one 8 B word per
//! memory node); whoever hears the opposite mode — or any higher timestamp —
//! loses. Unlike a readers–writer lock it is never unlocked, only re-locked
//! at higher timestamps, and both sides may lose simultaneously.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use swarm_fabric::{Endpoint, NodeId};
use swarm_sim::{timeout_at, Quorum, Sim};

use crate::traits::{NodeHealth, QuorumConfig, Rounds};

/// Lock mode: who is trying to claim the timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// A reader wants to return the value at this timestamp.
    Read,
    /// The writer wants to re-execute its write with a different timestamp.
    Write,
}

impl LockMode {
    fn bit(self) -> u64 {
        match self {
            LockMode::Read => 0,
            LockMode::Write => 1,
        }
    }
}

/// Packs `(i, tid, mode)` into a CAS word: `[i:39][tid:8][mode:1]` — numeric
/// comparison of `word >> 1` is exactly lexicographic `(i, tid)` order, and
/// `⊥` is 0 (real guesses always have `i >= 1`).
fn pack(ts: (u64, u8), mode: LockMode) -> u64 {
    (ts.0 << 9) | ((ts.1 as u64) << 1) | mode.bit()
}

fn ts_part(word: u64) -> u64 {
    word >> 1
}

/// One timestamp lock: a CAS word at the same offset on each replica node.
pub struct TsLock {
    inner: Rc<TsLockInner>,
}

impl Clone for TsLock {
    fn clone(&self) -> Self {
        TsLock {
            inner: Rc::clone(&self.inner),
        }
    }
}

struct TsLockInner {
    sim: Sim,
    ep: Rc<Endpoint>,
    /// `(node, address)` of each CAS object (2f+1 of them).
    words: Vec<(NodeId, u64)>,
    /// Maps word index -> health index (node id) for suspicion.
    health: Rc<NodeHealth>,
    cfg: QuorumConfig,
    rounds: Rounds,
}

impl TsLock {
    /// Creates a lock over CAS words at `words` (one per replica node),
    /// accessed through `ep`.
    pub fn new(
        sim: &Sim,
        ep: Rc<Endpoint>,
        words: Vec<(NodeId, u64)>,
        health: Rc<NodeHealth>,
        cfg: QuorumConfig,
        rounds: Rounds,
    ) -> Self {
        assert!(!words.is_empty());
        TsLock {
            inner: Rc::new(TsLockInner {
                sim: sim.clone(),
                ep,
                words,
                health,
                cfg,
                rounds,
            }),
        }
    }

    /// Tries to lock timestamp `ts = (i, tid)` in `mode`.
    ///
    /// Guarantees (Appendix B): **true safety** — returns `true` when no
    /// conflicting call (opposite mode at `ts`, or any call at a higher
    /// timestamp) precedes or runs concurrently; **true exclusion** —
    /// `TRYLOCK(ts, READ)` and `TRYLOCK(ts, WRITE)` never both return `true`;
    /// and **wait-freedom**.
    pub async fn try_lock(&self, ts: (u64, u8), mode: LockMode) -> bool {
        let inner = &self.inner;
        let desired = pack(ts, mode);
        let target = ts_part(desired);
        let n = inner.words.len();
        let maj = n / 2 + 1;
        // Track the most CAS roundtrips any contributing word needed.
        let max_iters: Rc<Cell<u64>> = Rc::new(Cell::new(0));

        let make = |idx: usize| {
            let ep = Rc::clone(&inner.ep);
            let (node, addr) = inner.words[idx];
            let iters = Rc::clone(&max_iters);
            async move {
                // Local view starts at ⊥ on every call (Algorithm 4 line 4).
                let mut read: u64 = 0;
                let mut used: u64 = 0;
                while ts_part(read) < target {
                    used += 1;
                    let prev = match ep.cas(node, addr, read, desired).await {
                        Some(p) => p,
                        None => {
                            // Simulation wind-down; treat as unresponsive.
                            std::future::pending::<()>().await;
                            unreachable!()
                        }
                    };
                    if prev == read {
                        read = desired;
                        break;
                    }
                    read = prev;
                }
                iters.set(iters.get().max(used));
                read
            }
        };

        let mut q = Quorum::new(maj);
        let mut map: Vec<usize> = Vec::new();
        // Preferred subset: unsuspected word replicas first.
        let order: Vec<usize> = {
            let mut o: Vec<usize> = (0..n)
                .filter(|&i| !inner.health.is_suspected(inner.words[i].0 .0))
                .collect();
            o.extend((0..n).filter(|&i| inner.health.is_suspected(inner.words[i].0 .0)));
            o
        };
        for &i in order.iter().take(maj) {
            map.push(i);
            q.push(make(i));
        }
        let t0 = inner.sim.now();
        let deadline = t0 + inner.health.widen_timeout_ns(&inner.cfg);
        if timeout_at(&inner.sim, deadline, &mut q).await.is_err() {
            for (slot, &i) in map.iter().enumerate() {
                if q.results()[slot].is_none() {
                    inner.health.suspect(inner.words[i].0 .0);
                }
            }
            for &i in order.iter().skip(maj) {
                map.push(i);
                q.push(make(i));
            }
            (&mut q).await;
        }
        inner.health.observe_rtt(inner.sim.now() - t0);
        inner.rounds.add(max_iters.get().max(1));

        // Decision (Algorithm 4 lines 11–13) over the completed majority.
        let observed: Vec<u64> = q.results().iter().filter_map(|r| *r).collect();
        if observed.iter().any(|&w| ts_part(w) > target) {
            return false;
        }
        if observed.iter().any(|&w| w == pack(ts, opposite(mode))) {
            return false;
        }
        true
    }
}

fn opposite(m: LockMode) -> LockMode {
    match m {
        LockMode::Read => LockMode::Write,
        LockMode::Write => LockMode::Read,
    }
}

/// The per-writer timestamp locks of one register (`TSL[tid]`, §3.1),
/// materialized lazily.
///
/// Safe-Guess touches a timestamp lock only on its slow paths (a possibly
/// stale guess, a twice-seen read), but a key handle needs one lock per
/// *potential* writer. Building `max_clients` `TsLock`s eagerly dominated
/// the cost of a location-cache miss at high client counts (two heap
/// allocations per writer), so the set stores a recipe and constructs each
/// writer's lock on first touch. Construction is pure (no RNG, no simulated
/// time), so laziness cannot perturb deterministic replay.
pub struct TsLockSet {
    slots: RefCell<Vec<Option<TsLock>>>,
    make: Box<dyn Fn(usize) -> TsLock>,
}

impl TsLockSet {
    /// A lazy set of `writers` locks; `make(tid)` builds writer `tid`'s lock
    /// on first use.
    pub fn new(writers: usize, make: impl Fn(usize) -> TsLock + 'static) -> Self {
        TsLockSet {
            slots: RefCell::new((0..writers).map(|_| None).collect()),
            make: Box::new(make),
        }
    }

    /// An eagerly built set (tests and small fixed-writer setups).
    pub fn eager(locks: Vec<TsLock>) -> Self {
        TsLockSet {
            slots: RefCell::new(locks.into_iter().map(Some).collect()),
            make: Box::new(|_| unreachable!("eager TsLockSet never constructs")),
        }
    }

    /// Number of writer slots.
    pub fn len(&self) -> usize {
        self.slots.borrow().len()
    }

    /// True if the set has no writer slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writer `tid`'s lock, constructing it on first touch.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn get(&self, tid: usize) -> TsLock {
        if let Some(lock) = &self.slots.borrow()[tid] {
            return lock.clone();
        }
        // Run `make` with no borrow held: a re-entrant recipe (one that
        // consults the set itself) must not hit a RefCell panic. If it
        // raced us to this slot, keep the earlier lock.
        let lock = (self.make)(tid);
        self.slots.borrow_mut()[tid].get_or_insert(lock).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_fabric::{Fabric, FabricConfig};

    fn setup(seed: u64, nodes: usize) -> (Sim, Fabric, Vec<(NodeId, u64)>) {
        let sim = Sim::new(seed);
        let fabric = Fabric::new(&sim, FabricConfig::default(), nodes);
        let words: Vec<(NodeId, u64)> = fabric
            .node_ids()
            .into_iter()
            .map(|id| (id, fabric.node(id).alloc(8, 8)))
            .collect();
        (sim, fabric, words)
    }

    fn lock_for(sim: &Sim, fabric: &Fabric, words: &[(NodeId, u64)]) -> TsLock {
        TsLock::new(
            sim,
            Rc::new(fabric.endpoint()),
            words.to_vec(),
            NodeHealth::new(fabric.num_nodes()),
            QuorumConfig::default(),
            Rounds::new(),
        )
    }

    #[test]
    fn uncontended_lock_succeeds() {
        let (sim, fabric, words) = setup(1, 3);
        let l = lock_for(&sim, &fabric, &words);
        let ok = sim.block_on(async move { l.try_lock((5, 1), LockMode::Write).await });
        assert!(ok);
    }

    #[test]
    fn higher_timestamp_defeats_lower() {
        let (sim, fabric, words) = setup(2, 3);
        let l1 = lock_for(&sim, &fabric, &words);
        let l2 = lock_for(&sim, &fabric, &words);
        let (a, b) = sim.block_on(async move {
            let a = l1.try_lock((9, 0), LockMode::Read).await;
            let b = l2.try_lock((5, 0), LockMode::Write).await;
            (a, b)
        });
        assert!(a);
        assert!(!b, "lower timestamp locked after higher");
    }

    #[test]
    fn opposite_modes_exclude() {
        // Sequential: whoever comes second must fail.
        let (sim, fabric, words) = setup(3, 3);
        let l1 = lock_for(&sim, &fabric, &words);
        let l2 = lock_for(&sim, &fabric, &words);
        let (a, b) = sim.block_on(async move {
            let a = l1.try_lock((7, 2), LockMode::Write).await;
            let b = l2.try_lock((7, 2), LockMode::Read).await;
            (a, b)
        });
        assert!(a);
        assert!(!b);
    }

    #[test]
    fn exclusion_holds_under_concurrency_many_seeds() {
        // True exclusion: READ and WRITE at the same ts never both succeed,
        // under racing clients across many random schedules.
        for seed in 0..50 {
            let (sim, fabric, words) = setup(1000 + seed, 3);
            let l1 = lock_for(&sim, &fabric, &words);
            let l2 = lock_for(&sim, &fabric, &words);
            let res: Rc<std::cell::RefCell<Vec<(LockMode, bool)>>> =
                Rc::new(std::cell::RefCell::new(Vec::new()));
            for (l, mode, delay) in [(l1, LockMode::Read, 0u64), (l2, LockMode::Write, 1)] {
                let res = Rc::clone(&res);
                let sim2 = sim.clone();
                sim.spawn(async move {
                    sim2.sleep_ns(delay * sim2.rand_range(0, 800)).await;
                    let ok = l.try_lock((11, 3), mode).await;
                    res.borrow_mut().push((mode, ok));
                });
            }
            sim.run();
            let res = res.borrow();
            let both = res.iter().filter(|(_, ok)| *ok).count();
            assert!(both <= 1, "seed {seed}: both modes locked ts");
        }
    }

    #[test]
    fn relock_same_mode_same_ts_succeeds() {
        let (sim, fabric, words) = setup(4, 3);
        let l = lock_for(&sim, &fabric, &words);
        let l2 = l.clone();
        let (a, b) = sim.block_on(async move {
            let a = l.try_lock((4, 0), LockMode::Read).await;
            let b = l2.try_lock((4, 0), LockMode::Read).await;
            (a, b)
        });
        assert!(a && b, "same-mode relock should succeed");
    }

    #[test]
    fn survives_minority_crash() {
        let (sim, fabric, words) = setup(5, 3);
        fabric.crash_node(NodeId(0));
        let l = lock_for(&sim, &fabric, &words);
        let ok = sim.block_on(async move { l.try_lock((6, 1), LockMode::Write).await });
        assert!(ok);
    }

    #[test]
    fn true_safety_unconflicted_call_wins() {
        // A call with the highest timestamp and no opposite-mode rival must
        // return true even after unrelated lower-ts activity.
        let (sim, fabric, words) = setup(6, 5);
        let l1 = lock_for(&sim, &fabric, &words);
        let l2 = lock_for(&sim, &fabric, &words);
        let ok = sim.block_on(async move {
            l1.try_lock((3, 0), LockMode::Write).await;
            l2.try_lock((8, 1), LockMode::Read).await
        });
        assert!(ok);
    }
}
