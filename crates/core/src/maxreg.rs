//! Reliable wait-free max register over fallible replicas (Appendix A,
//! Algorithm 8), with the paper's deployment optimizations (§6):
//! operations optimistically contact a mere majority of the replicas
//! (chosen per register to spread load) and widen to all replicas when a
//! response is slow; a per-client local cache makes the write-back phase of
//! reads free in the common case.
//!
//! With a [`Hedger`] attached ([`ReliableMaxReg::with_hedger`]), quorum
//! waits gain one extra stage between the optimistic send and the widen
//! deadline: if the quorum is still short after the slowest contacted
//! node's tracked p99 RTT, one copy of the request goes to a *spare* quorum
//! member (a replica not yet contacted in this operation — never a
//! duplicate to an already-counted replica, which would double-count it
//! toward the majority) and the first responses win. Duplicate delivery is
//! idempotent: reads and CAS-MAX writes commute with themselves. Hedging
//! draws no RNG and is armed purely from virtual time + the RTT tracker, so
//! hedged runs are bit-reproducible and a `None` hedger leaves every code
//! path byte-identical to the pre-hedging implementation.

use std::cell::RefCell;
use std::rc::Rc;

use swarm_sim::{timeout_at, Nanos, Quorum, Sim};

use crate::stamp::Stamp;
use crate::traits::{
    HedgeTicket, Hedger, MaxRegister, NodeHealth, QuorumConfig, ReplicaClient, Rounds, Snapshot,
};
use crate::value::MVal;

struct Inner<R> {
    sim: Sim,
    replicas: Vec<R>,
    /// Node id hosting each replica (indexes [`NodeHealth`]; a node may
    /// host several replicas when replicas > nodes, §7.5).
    node_of: Vec<usize>,
    /// Preferred contact order (rotated per register by key hash, §6).
    prefer: Vec<usize>,
    /// Highest stamp known to be stored at each replica.
    cache: RefCell<Vec<Stamp>>,
    health: Rc<NodeHealth>,
    cfg: QuorumConfig,
    rounds: Rounds,
    /// Roundtrips of background work (verified upgrades, replica refresh):
    /// counted separately so per-operation accounting (Table 2) is clean.
    bg_rounds: Rounds,
    /// Tail-latency hedging (shared per client, like `health`); `None` —
    /// the default — is bit-identical to the pre-hedging code.
    hedger: Option<Hedger>,
}

/// Majority-replicated max register (the `M` of ABD and Safe-Guess).
pub struct ReliableMaxReg<R> {
    inner: Rc<Inner<R>>,
}

impl<R> Clone for ReliableMaxReg<R> {
    fn clone(&self) -> Self {
        ReliableMaxReg {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<R: ReplicaClient> ReliableMaxReg<R> {
    /// Creates a register over `replicas`, contacting them in an order
    /// rotated by `rotation` (derived from the key hash by the KV layer).
    pub fn new(
        sim: &Sim,
        replicas: Vec<R>,
        node_of: Vec<usize>,
        rotation: usize,
        health: Rc<NodeHealth>,
        cfg: QuorumConfig,
        rounds: Rounds,
    ) -> Self {
        Self::with_hedger(sim, replicas, node_of, rotation, health, cfg, rounds, None)
    }

    /// [`ReliableMaxReg::new`] with an optional per-client [`Hedger`]
    /// attached (see the module docs for the staged hedged wait). All
    /// existing call sites use `new`, i.e. no hedger, and replay
    /// bit-identically.
    #[allow(clippy::too_many_arguments)]
    pub fn with_hedger(
        sim: &Sim,
        replicas: Vec<R>,
        node_of: Vec<usize>,
        rotation: usize,
        health: Rc<NodeHealth>,
        cfg: QuorumConfig,
        rounds: Rounds,
        hedger: Option<Hedger>,
    ) -> Self {
        let n = replicas.len();
        assert!(n >= 1, "register needs at least one replica");
        assert_eq!(node_of.len(), n, "one hosting node per replica");
        let prefer: Vec<usize> = (0..n).map(|i| (i + rotation) % n).collect();
        ReliableMaxReg {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                replicas,
                node_of,
                prefer,
                cache: RefCell::new(vec![Stamp::ZERO; n]),
                health,
                cfg,
                rounds,
                bg_rounds: Rounds::new(),
                hedger,
            }),
        }
    }

    /// Number of replicas.
    pub fn num_replicas(&self) -> usize {
        self.inner.replicas.len()
    }

    fn majority(&self) -> usize {
        self.num_replicas() / 2 + 1
    }

    /// The roundtrip counter used by this register.
    pub fn rounds(&self) -> &Rounds {
        &self.inner.rounds
    }

    fn deadline(&self) -> Nanos {
        self.inner.sim.now() + self.inner.health.widen_timeout_ns(&self.inner.cfg)
    }

    /// Preferred replica indices: unsuspected first (in rotation order),
    /// then suspected ones.
    fn contact_order(&self) -> Vec<usize> {
        let inner = &self.inner;
        let mut order: Vec<usize> = inner
            .prefer
            .iter()
            .copied()
            .filter(|&i| !inner.health.is_suspected(inner.node_of[i]))
            .collect();
        order.extend(
            inner
                .prefer
                .iter()
                .copied()
                .filter(|&i| inner.health.is_suspected(inner.node_of[i])),
        );
        order
    }

    fn note_stored(&self, idx: usize, stamp: Stamp) {
        let mut cache = self.inner.cache.borrow_mut();
        if stamp > cache[idx] {
            cache[idx] = stamp;
        }
    }

    /// Pushes replica `i`'s write onto `q`. On hedged clients the future is
    /// wrapped to feed the per-node RTT tracker on completion — the wrapper
    /// draws no RNG and schedules no events, and unhedged clients push the
    /// raw future exactly as before.
    fn push_write(&self, q: &mut Quorum<()>, i: usize, v: &MVal) {
        let fut = self.inner.replicas[i].clone().write(v.clone());
        match &self.inner.hedger {
            None => {
                q.push(fut);
            }
            Some(h) => {
                let h = h.clone();
                let sim = self.inner.sim.clone();
                let node = self.inner.node_of[i];
                let t0 = sim.now();
                q.push(async move {
                    fut.await;
                    h.observe(node, sim.now() - t0);
                });
            }
        }
    }

    /// [`ReliableMaxReg::push_write`] for snapshot reads.
    fn push_read(&self, q: &mut Quorum<Snapshot>, i: usize) {
        let fut = self.inner.replicas[i].clone().read();
        match &self.inner.hedger {
            None => {
                q.push(fut);
            }
            Some(h) => {
                let h = h.clone();
                let sim = self.inner.sim.clone();
                let node = self.inner.node_of[i];
                let t0 = sim.now();
                q.push(async move {
                    let snap = fut.await;
                    h.observe(node, sim.now() - t0);
                    snap
                });
            }
        }
    }

    /// [`ReliableMaxReg::push_write`] for payload fetches.
    fn push_fetch(&self, q: &mut Quorum<MVal>, i: usize, token: u64) {
        let fut = self.inner.replicas[i].clone().fetch(token);
        match &self.inner.hedger {
            None => {
                q.push(fut);
            }
            Some(h) => {
                let h = h.clone();
                let sim = self.inner.sim.clone();
                let node = self.inner.node_of[i];
                let t0 = sim.now();
                q.push(async move {
                    let v = fut.await;
                    h.observe(node, sim.now() - t0);
                    v
                });
            }
        }
    }

    /// Settles fired hedges after the op's quorum waits are over: a hedge
    /// whose response landed in time counted toward the quorum (won); one
    /// still pending was superfluous and its delivery is discarded
    /// idempotently. (If the op future is cancelled before this runs, the
    /// tickets' `Drop` settles them as discarded instead.)
    fn settle_hedges<T>(&self, hedges: Vec<(usize, HedgeTicket)>, q: &Quorum<T>) {
        for (slot, ticket) in hedges {
            ticket.settle(q.results()[slot].is_some());
        }
    }

    /// The write-to-majority core (Algorithm 8 `inner_write`): returns once
    /// `v` is stored at a majority, costing 0 RTTs when the cache already
    /// proves it, 1 RTT commonly, more when quorums must widen.
    async fn inner_write(&self, v: &MVal, rounds: &Rounds) {
        let n = self.num_replicas();
        let maj = self.majority();
        let already: Vec<bool> = {
            let cache = self.inner.cache.borrow();
            (0..n).map(|i| cache[i] >= v.stamp).collect()
        };
        let good = already.iter().filter(|&&b| b).count();
        if good >= maj {
            // 0-RTT fast path; refresh stale replicas in the background.
            for (i, stored) in already.iter().enumerate() {
                if !stored {
                    self.write_replica_bg(i, v.clone());
                }
            }
            return;
        }

        rounds.bump();
        let t0 = self.inner.sim.now();
        let needed = maj - good;
        let mut q = Quorum::new(needed);
        let mut map = Vec::new();
        let order = self.contact_order();
        for &i in order.iter().filter(|&&i| !already[i]).take(needed) {
            map.push(i);
            self.push_write(&mut q, i, v);
        }
        let widen_at = self.deadline();
        let mut hedges: Vec<(usize, HedgeTicket)> = Vec::new();
        // Hedge stage: if a contacted node's tracked p99 elapses before the
        // widen deadline and the quorum is still short, send one duplicate
        // request per missing response to spare quorum members (never to a
        // replica already counted, which would double-count it).
        if let Some(h) = self.inner.hedger.clone() {
            if let Some(d) = h.delay_for(map.iter().map(|&i| self.inner.node_of[i])) {
                let hedge_at = t0 + d;
                if hedge_at < widen_at
                    && timeout_at(&self.inner.sim, hedge_at, &mut q).await.is_err()
                {
                    let shortfall = needed - q.completed();
                    let spares: Vec<usize> = order
                        .iter()
                        .copied()
                        .filter(|i| !map.contains(i) && !already[*i])
                        .take(shortfall)
                        .collect();
                    for i in spares {
                        let Some(ticket) = h.try_fire() else { break };
                        hedges.push((map.len(), ticket));
                        map.push(i);
                        self.push_write(&mut q, i, v);
                    }
                }
            }
        }
        if timeout_at(&self.inner.sim, widen_at, &mut q).await.is_err() {
            // Widen: suspect stragglers, contact every remaining replica.
            rounds.bump();
            for (slot, &i) in map.iter().enumerate() {
                if q.results()[slot].is_none() && !hedges.iter().any(|(s, _)| *s == slot) {
                    self.inner.health.suspect(self.inner.node_of[i]);
                }
            }
            let extra: Vec<usize> = order
                .iter()
                .copied()
                .filter(|i| !map.contains(i) && !already[*i])
                .collect();
            for i in extra {
                map.push(i);
                self.push_write(&mut q, i, v);
            }
            (&mut q).await;
        }
        self.inner.health.observe_rtt(self.inner.sim.now() - t0);
        self.settle_hedges(hedges, &q);
        for (slot, &i) in map.iter().enumerate() {
            if q.results()[slot].is_some() {
                self.note_stored(i, v.stamp);
                self.inner.health.clear(self.inner.node_of[i]);
            }
        }
    }

    fn write_replica_bg(&self, idx: usize, v: MVal) {
        let this = self.clone();
        let fut = self.inner.replicas[idx].clone().write(v.clone());
        self.inner.sim.spawn(async move {
            fut.await;
            this.note_stored(idx, v.stamp);
        });
    }

    /// Reads snapshots from a majority; returns `(replica_idx, snapshot)`
    /// pairs for the responders.
    async fn read_majority(&self) -> Vec<(usize, Snapshot)> {
        self.inner.rounds.bump();
        let t0 = self.inner.sim.now();
        let maj = self.majority();
        let mut q = Quorum::new(maj);
        let order = self.contact_order();
        let mut map = Vec::new();
        for &i in order.iter().take(maj) {
            map.push(i);
            self.push_read(&mut q, i);
        }
        let widen_at = self.deadline();
        let mut hedges: Vec<(usize, HedgeTicket)> = Vec::new();
        // Hedge stage — same staged wait as `inner_write` (see module docs).
        if let Some(h) = self.inner.hedger.clone() {
            if let Some(d) = h.delay_for(map.iter().map(|&i| self.inner.node_of[i])) {
                let hedge_at = t0 + d;
                if hedge_at < widen_at
                    && timeout_at(&self.inner.sim, hedge_at, &mut q).await.is_err()
                {
                    let shortfall = maj - q.completed();
                    let spares: Vec<usize> = order
                        .iter()
                        .copied()
                        .filter(|i| !map.contains(i))
                        .take(shortfall)
                        .collect();
                    for i in spares {
                        let Some(ticket) = h.try_fire() else { break };
                        hedges.push((map.len(), ticket));
                        map.push(i);
                        self.push_read(&mut q, i);
                    }
                }
            }
        }
        if timeout_at(&self.inner.sim, widen_at, &mut q).await.is_err() {
            self.inner.rounds.bump();
            for (slot, &i) in map.iter().enumerate() {
                if q.results()[slot].is_none() && !hedges.iter().any(|(s, _)| *s == slot) {
                    self.inner.health.suspect(self.inner.node_of[i]);
                }
            }
            let extra: Vec<usize> = order.iter().copied().filter(|i| !map.contains(i)).collect();
            for i in extra {
                map.push(i);
                self.push_read(&mut q, i);
            }
            (&mut q).await;
        }
        self.inner.health.observe_rtt(self.inner.sim.now() - t0);
        self.settle_hedges(hedges, &q);
        let mut out = Vec::new();
        for (slot, &i) in map.iter().enumerate() {
            if let Some(snap) = q.results()[slot].clone() {
                self.note_stored(i, snap.stamp);
                self.inner.health.clear(self.inner.node_of[i]);
                out.push((i, snap));
            }
        }
        out
    }

    /// Resolves the full value of the maximum among `snaps`, fetching the
    /// payload if the winning replica answered stamp-only. Clients never
    /// cache values (the paper's clients cache only ~24–32 B locations,
    /// §5.2); read-read monotonicity comes from the write-back phase plus
    /// quorum intersection.
    ///
    /// Returns `None` if the payload chase timed out (the hosting node
    /// crashed between the snapshot and the fetch); the caller re-runs the
    /// quorum read, which is safe (max registers are monotone) and live (a
    /// majority stays reachable).
    async fn resolve_max(&self, snaps: Vec<(usize, Snapshot)>) -> Option<MVal> {
        // Among replicas reporting the maximal stamp, prefer one that could
        // return the payload in the same roundtrip (the in-place-designated
        // replica) so no pointer chase is needed.
        let best = snaps
            .into_iter()
            .max_by_key(|(_, s)| (s.stamp, s.value.is_some()))
            .expect("majority read returned no snapshots");
        let (idx, snap) = best;
        let v = match snap.value {
            Some(bytes) => MVal {
                stamp: snap.stamp,
                value: bytes,
            },
            None => {
                // Payload not co-located: chase it (the replica client
                // counts the chase roundtrips itself).
                let t0 = self.inner.sim.now();
                let widen_at = self.deadline();
                let mut q = Quorum::new(1);
                self.push_fetch(&mut q, idx, snap.token);
                // Hedge stage: with only one candidate replica for the
                // payload, the duplicate goes to the *same* replica — safe
                // here (needed = 1, fetches are idempotent, and a duplicate
                // cannot double-count toward a majority).
                let mut hedge: Option<HedgeTicket> = None;
                if let Some(h) = self.inner.hedger.clone() {
                    if let Some(d) = h.delay_for(std::iter::once(self.inner.node_of[idx])) {
                        let hedge_at = t0 + d;
                        if hedge_at < widen_at
                            && timeout_at(&self.inner.sim, hedge_at, &mut q).await.is_err()
                        {
                            if let Some(ticket) = h.try_fire() {
                                hedge = Some(ticket);
                                self.push_fetch(&mut q, idx, snap.token);
                            }
                        }
                    }
                }
                if timeout_at(&self.inner.sim, widen_at, &mut q).await.is_err() {
                    if let Some(t) = hedge.take() {
                        t.settle(q.results()[1].is_some());
                    }
                    self.inner.health.suspect(self.inner.node_of[idx]);
                    return None;
                }
                if let Some(t) = hedge {
                    t.settle(q.results()[1].is_some());
                }
                let v = q
                    .take_results()
                    .into_iter()
                    .flatten()
                    .next()
                    .expect("completed fetch quorum has a result");
                self.note_stored(idx, v.stamp);
                v
            }
        };
        Some(v)
    }
}

impl<R: ReplicaClient> MaxRegister for ReliableMaxReg<R> {
    fn write(&self, v: MVal) -> impl std::future::Future<Output = ()> + 'static {
        let this = self.clone();
        async move { this.inner_write(&v, &this.inner.rounds.clone()).await }
    }

    fn read(&self) -> impl std::future::Future<Output = MVal> + 'static {
        let this = self.clone();
        async move {
            let v = loop {
                let snaps = this.read_majority().await;
                if let Some(v) = this.resolve_max(snaps).await {
                    break v;
                }
                // Payload chase timed out (node crashed mid-read): retry
                // against the surviving majority.
            };
            // Write-back so later reads cannot observe an older maximum
            // (Algorithm 8 line 20); free when the cache already proves
            // majority storage.
            this.inner_write(&v, &this.inner.rounds.clone()).await;
            v
        }
    }

    fn read_stamp(&self) -> impl std::future::Future<Output = Stamp> + 'static {
        let this = self.clone();
        async move {
            let snaps = this.read_majority().await;
            snaps.iter().map(|(_, s)| s.stamp).max().unwrap()
        }
    }

    fn write_bg(&self, v: MVal) {
        let this = self.clone();
        self.inner.sim.spawn(async move {
            let bg = this.inner.bg_rounds.clone();
            this.inner_write(&v, &bg).await;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_replica::{SimReplica, SimReplicaState};

    fn setup(seed: u64, n: usize) -> (Sim, Vec<Rc<SimReplicaState>>, ReliableMaxReg<SimReplica>) {
        let sim = Sim::new(seed);
        let states: Vec<_> = (0..n).map(|_| SimReplicaState::new()).collect();
        let replicas: Vec<_> = states
            .iter()
            .map(|s| SimReplica::new(&sim, Rc::clone(s), 700))
            .collect();
        let reg = ReliableMaxReg::new(
            &sim,
            replicas,
            (0..n).collect(),
            0,
            NodeHealth::new(n),
            QuorumConfig::default(),
            Rounds::new(),
        );
        (sim, states, reg)
    }

    #[test]
    fn read_after_write_sees_value() {
        let (sim, _, reg) = setup(1, 3);
        let v = sim.block_on(async move {
            reg.write(MVal::new(Stamp::verified(4, 1), vec![42])).await;
            reg.read().await
        });
        assert_eq!(*v.value, vec![42]);
    }

    #[test]
    fn write_reaches_only_majority_synchronously() {
        let (sim, states, reg) = setup(2, 3);
        sim.block_on(async move {
            reg.write(MVal::new(Stamp::verified(1, 0), vec![7])).await;
        });
        let stored = states
            .iter()
            .filter(|s| s.current().stamp == Stamp::verified(1, 0))
            .count();
        assert!(stored >= 2, "write not at a majority");
    }

    #[test]
    fn tolerates_minority_crash() {
        let (sim, states, reg) = setup(3, 3);
        states[0].crash();
        let v = sim.block_on(async move {
            reg.write(MVal::new(Stamp::verified(9, 2), vec![9])).await;
            reg.read().await
        });
        assert_eq!(v.stamp, Stamp::verified(9, 2));
    }

    #[test]
    fn suspected_node_is_skipped_next_time() {
        let (sim, states, reg) = setup(4, 3);
        states[0].crash();
        let rounds = reg.rounds().clone();
        let sim2 = sim.clone();
        sim.block_on(async move {
            // First op pays the widen timeout…
            let t0 = sim2.now();
            reg.write(MVal::new(Stamp::verified(1, 0), vec![1])).await;
            let first = sim2.now() - t0;
            // …subsequent ops avoid the crashed node entirely.
            let t0 = sim2.now();
            reg.write(MVal::new(Stamp::verified(2, 0), vec![2])).await;
            let second = sim2.now() - t0;
            assert!(first > second * 2, "first={first} second={second}");
        });
        assert!(rounds.get() >= 3);
    }

    #[test]
    fn read_read_monotonicity_under_concurrent_writes() {
        // One reader reads repeatedly while two writers write increasing
        // stamps; returned stamps must be monotone per reader.
        let (sim, _, reg) = setup(5, 5);
        for tid in 0..2u8 {
            let w = reg.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                for i in 1..30u64 {
                    w.write(MVal::new(Stamp::verified(i, tid), vec![i as u8]))
                        .await;
                    sim2.sleep_ns(sim2.rand_range(1, 2_000)).await;
                }
            });
        }
        let r = reg.clone();
        let sim3 = sim.clone();
        sim.spawn(async move {
            let mut prev = Stamp::ZERO;
            for _ in 0..50 {
                let v = r.read().await;
                assert!(v.stamp >= prev, "read-read monotonicity violated");
                prev = v.stamp;
                sim3.sleep_ns(sim3.rand_range(1, 1_000)).await;
            }
        });
        sim.run();
    }

    #[test]
    fn cached_majority_makes_writeback_free() {
        let (sim, _, reg) = setup(6, 3);
        let rounds = reg.rounds().clone();
        sim.block_on(async move {
            reg.write(MVal::new(Stamp::verified(1, 0), vec![1])).await;
            let after_write = reg.rounds().get();
            // Quiescent read: 1 RTT quorum read + 0 RTT write-back.
            reg.read().await;
            assert_eq!(reg.rounds().get() - after_write, 1);
        });
        assert!(rounds.get() >= 2);
    }

    fn setup_hedged(
        seed: u64,
        n: usize,
    ) -> (
        Sim,
        Vec<Rc<SimReplicaState>>,
        ReliableMaxReg<SimReplica>,
        Hedger,
    ) {
        use crate::traits::HedgeConfig;
        let sim = Sim::new(seed);
        let states: Vec<_> = (0..n).map(|_| SimReplicaState::new()).collect();
        let replicas: Vec<_> = states
            .iter()
            .map(|s| SimReplica::new(&sim, Rc::clone(s), 700))
            .collect();
        // min_samples = 1 so the tracker arms after a single warm-up op.
        let cfg = HedgeConfig {
            min_samples: 1,
            ..HedgeConfig::on()
        };
        let hedger = Hedger::new(cfg, n, None).unwrap();
        let reg = ReliableMaxReg::with_hedger(
            &sim,
            replicas,
            (0..n).collect(),
            0,
            NodeHealth::new(n),
            QuorumConfig::default(),
            Rounds::new(),
            Some(hedger.clone()),
        );
        (sim, states, reg, hedger)
    }

    #[test]
    fn hedged_write_beats_the_widen_timeout_under_a_delay_spike() {
        let (sim, states, reg, hedger) = setup_hedged(11, 3);
        let sim2 = sim.clone();
        sim.block_on(async move {
            // Warm up the RTT tracker on the two optimistically contacted
            // replicas, then spike one of them well past the widen floor.
            for i in 1..=4u64 {
                reg.write(MVal::new(Stamp::verified(i, 0), vec![i as u8]))
                    .await;
            }
            states[1].set_extra_delay(200_000);
            let t0 = sim2.now();
            reg.write(MVal::new(Stamp::verified(9, 0), vec![9])).await;
            let took = sim2.now() - t0;
            // The hedge to the spare replica completes the quorum well
            // before the widen deadline (>= 6 us) would even fire.
            assert!(took < 6_000, "hedged write took {took} ns");
            // The spare replica (index 2) holds the value: the hedge won.
            assert_eq!(states[2].current().stamp, Stamp::verified(9, 0));
            assert_eq!(hedger.inflight(), 0, "hedge budget not settled");
        });
    }

    #[test]
    fn hedged_read_beats_the_widen_timeout_under_a_delay_spike() {
        let (sim, states, reg, hedger) = setup_hedged(12, 3);
        let sim2 = sim.clone();
        sim.block_on(async move {
            for i in 1..=4u64 {
                reg.write(MVal::new(Stamp::verified(i, 0), vec![i as u8]))
                    .await;
            }
            reg.read().await;
            states[0].set_extra_delay(200_000);
            let t0 = sim2.now();
            let v = reg.read().await;
            let took = sim2.now() - t0;
            assert_eq!(v.stamp, Stamp::verified(4, 0));
            assert!(took < 6_000, "hedged read took {took} ns");
            assert_eq!(hedger.inflight(), 0, "hedge budget not settled");
        });
    }

    #[test]
    fn hedge_budget_settles_to_zero_under_healthy_load() {
        // Healthy replicas: ops mostly complete before the hedge delay, and
        // any hedge that does fire is settled, so the budget drains to zero.
        let (sim, _, reg, hedger) = setup_hedged(13, 3);
        sim.block_on(async move {
            for i in 1..=20u64 {
                reg.write(MVal::new(Stamp::verified(i, 0), vec![i as u8]))
                    .await;
                reg.read().await;
            }
            assert_eq!(hedger.inflight(), 0);
        });
    }

    #[test]
    fn read_stamp_is_single_round() {
        let (sim, _, reg) = setup(7, 3);
        sim.block_on(async move {
            reg.write(MVal::new(Stamp::verified(3, 1), vec![3])).await;
            let before = reg.rounds().get();
            let s = reg.read_stamp().await;
            assert_eq!(s, Stamp::verified(3, 1));
            assert_eq!(reg.rounds().get() - before, 1);
        });
    }
}
