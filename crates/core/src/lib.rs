//! SWARM's core protocols (SOSP '24): Safe-Guess, In-n-Out, timestamp locks,
//! reliable max registers, and the ABD baseline.
//!
//! The stack, bottom-up:
//!
//! 1. [`InnOutReplica`] — a per-node max register for large values with
//!    single-roundtrip conditional updates and *no compute at the memory
//!    node* (§4: in-place reads validated by hash, out-of-place fallback,
//!    CAS-emulated MAX, per-writer metadata buffers).
//! 2. [`ReliableMaxReg`] — majority replication of fallible max registers
//!    (Appendix A), with the deployment optimizations of §6 (optimistic
//!    majority quorums, widen-on-timeout, client-side caching).
//! 3. [`TsLock`] — the wait-free timestamp lock arbitrating between a writer
//!    re-executing a possibly-stale guess and readers returning it (§3.3).
//! 4. [`SafeGuess`] — the replication protocol: linearizable, wait-free
//!    reads/writes in one roundtrip in the common case (§3). [`Abd`] is the
//!    classic two-phase-write baseline (§2.3).
//!
//! `SafeGuess` is generic over any [`MaxRegister`]; production composes it
//! with `ReliableMaxReg<InnOutReplica>` (that composition *is* SWARM), while
//! tests also run it over idealized [`SimReplica`]s to isolate protocol
//! logic from In-n-Out.
//!
//! # Examples
//!
//! A single SWARM register over a 3-node fabric:
//!
//! ```
//! use std::rc::Rc;
//! use swarm_sim::{Sim, GuessClock};
//! use swarm_fabric::{Fabric, FabricConfig};
//! use swarm_core::{
//!     InnOutLayout, InnOutReplica, MaxRegister, NodeHealth, QuorumConfig,
//!     ReliableMaxReg, Rounds, SafeGuess, TsGuesser, TsLock, TsLockSet,
//! };
//!
//! let sim = Sim::new(7);
//! let fabric = Fabric::new(&sim, FabricConfig::default(), 3);
//! let ep = Rc::new(fabric.endpoint());
//! let health = NodeHealth::new(3);
//! let rounds = Rounds::new();
//!
//! // One In-n-Out replica per node (in-place data at node 0 only).
//! let replicas: Vec<InnOutReplica> = fabric
//!     .node_ids()
//!     .into_iter()
//!     .map(|n| {
//!         let layout = InnOutLayout::allocate(&fabric, n, 1, 16, 8, 8);
//!         InnOutReplica::new(Rc::clone(&ep), layout, 0, n.0 == 0, rounds.clone())
//!     })
//!     .collect();
//! let m = ReliableMaxReg::new(&sim, replicas, vec![0, 1, 2], 0, Rc::clone(&health),
//!                             QuorumConfig::default(), rounds.clone());
//!
//! // Timestamp locks: one 8 B CAS word per node, per writer (1 writer here).
//! let words = fabric.node_ids().iter()
//!     .map(|&n| (n, fabric.node(n).alloc(8, 8))).collect();
//! let tsl = Rc::new(TsLockSet::eager(vec![TsLock::new(
//!     &sim, Rc::clone(&ep), words, Rc::clone(&health),
//!     QuorumConfig::default(), rounds.clone())]));
//! let guesser = Rc::new(TsGuesser::new(Rc::new(GuessClock::perfect(&sim)), 0));
//! let reg = SafeGuess::new(m, tsl, guesser, rounds);
//!
//! sim.block_on(async move {
//!     reg.write(vec![42u8; 16]).await;
//!     assert_eq!(reg.read_value().await, vec![42u8; 16]);
//! });
//! ```

mod hash;
mod innout;
mod linearize;
mod maxreg;
mod safeguess;
mod sim_replica;
mod stamp;
mod traits;
mod tslock;
mod value;

pub use hash::{innout_hash, xxh64};
pub use innout::{InnOutLayout, InnOutReplica};
pub use linearize::{
    CheckError, History, HistoryOp, KvHistory, KvHistoryOp, KvOpKind, NonLinearizable, OpKind,
    MAX_OPS_PER_KEY,
};
pub use maxreg::ReliableMaxReg;
pub use safeguess::{Abd, ReadOutcome, ReadPath, SafeGuess, WritePath};
pub use sim_replica::{SimReplica, SimReplicaState};
pub use stamp::{Stamp, TsGuesser, I_MAX, TICK_NS};
pub use traits::{
    HedgeConfig, HedgeTicket, Hedger, MaxRegister, NodeHealth, QuorumConfig, ReplicaClient, Rounds,
    RttTracker, Snapshot,
};
pub use tslock::{LockMode, TsLock, TsLockSet};
pub use value::MVal;
