//! Idealized in-simulation replica used to validate protocol logic.
//!
//! `SimReplica` is a max register held by a *compute-capable* process: the
//! MAX is applied atomically at a single instant, values always travel with
//! the stamp, and message delays are randomized per leg. It isolates the
//! Safe-Guess / reliable-max-register / timestamp-lock logic from In-n-Out,
//! so linearizability stress tests can attribute failures precisely, and it
//! doubles as the message-passing baseline the paper contrasts with
//! disaggregated memory ("implementing these primitive max registers over
//! message passing with compute-capable replicas is simple", §4).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use swarm_sim::{Nanos, Sim};

use crate::traits::{ReplicaClient, Snapshot};
use crate::value::MVal;

/// Shared state of one idealized replica process.
#[derive(Debug)]
pub struct SimReplicaState {
    state: RefCell<MVal>,
    alive: Cell<bool>,
    extra_delay_ns: Cell<Nanos>,
}

impl SimReplicaState {
    /// Creates an initial-valued replica.
    pub fn new() -> Rc<Self> {
        Rc::new(SimReplicaState {
            state: RefCell::new(MVal::initial()),
            alive: Cell::new(true),
            extra_delay_ns: Cell::new(0),
        })
    }

    /// Crashes the replica: requests go unanswered from now on.
    pub fn crash(&self) {
        self.alive.set(false);
    }

    /// Injects a fixed extra service delay into every subsequent request
    /// (a delay spike, for tail-latency tests); `0` restores normal speed.
    pub fn set_extra_delay(&self, ns: Nanos) {
        self.extra_delay_ns.set(ns);
    }

    /// Current stored maximum (test inspection).
    pub fn current(&self) -> MVal {
        self.state.borrow().clone()
    }
}

impl Default for SimReplicaState {
    fn default() -> Self {
        SimReplicaState {
            state: RefCell::new(MVal::initial()),
            alive: Cell::new(true),
            extra_delay_ns: Cell::new(0),
        }
    }
}

/// Client handle to a [`SimReplicaState`].
#[derive(Clone)]
pub struct SimReplica {
    sim: Sim,
    state: Rc<SimReplicaState>,
    /// Mean one-way delay; actual legs are uniform in `[mean/2, 3*mean/2)`.
    half_rtt_ns: Nanos,
}

impl SimReplica {
    /// Creates a client handle with the given mean one-way delay.
    pub fn new(sim: &Sim, state: Rc<SimReplicaState>, half_rtt_ns: Nanos) -> Self {
        SimReplica {
            sim: sim.clone(),
            state,
            half_rtt_ns,
        }
    }

    fn leg(&self) -> Nanos {
        let h = self.half_rtt_ns.max(2);
        self.sim.rand_range(h / 2, h + h / 2)
    }

    async fn if_dead_hang_forever(&self) {
        if !self.state.alive.get() {
            std::future::pending::<()>().await;
        }
    }

    /// Serves an injected delay spike, if one is active. Sleeps only when a
    /// spike is set, so spike-free executions replay bit-identically.
    async fn spike(&self) {
        let extra = self.state.extra_delay_ns.get();
        if extra > 0 {
            self.sim.sleep_ns(extra).await;
        }
    }
}

impl ReplicaClient for SimReplica {
    async fn write(self, v: MVal) {
        self.sim.sleep_ns(self.leg()).await;
        self.if_dead_hang_forever().await;
        self.spike().await;
        {
            // Atomic MAX at a single instant: the idealization.
            let mut cur = self.state.state.borrow_mut();
            if v > *cur {
                *cur = v;
            }
        }
        self.sim.sleep_ns(self.leg()).await;
    }

    async fn read(self) -> Snapshot {
        self.sim.sleep_ns(self.leg()).await;
        self.if_dead_hang_forever().await;
        self.spike().await;
        let cur = self.state.state.borrow().clone();
        self.sim.sleep_ns(self.leg()).await;
        Snapshot {
            stamp: cur.stamp,
            token: cur.stamp.pack48(),
            value: Some(Rc::clone(&cur.value)),
        }
    }

    async fn fetch(self, _token: u64) -> MVal {
        self.sim.sleep_ns(self.leg()).await;
        self.if_dead_hang_forever().await;
        self.spike().await;
        let cur = self.state.state.borrow().clone();
        self.sim.sleep_ns(self.leg()).await;
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stamp::Stamp;

    #[test]
    fn write_applies_max_only() {
        let sim = Sim::new(1);
        let st = SimReplicaState::new();
        let r = SimReplica::new(&sim, Rc::clone(&st), 500);
        let (r1, r2) = (r.clone(), r.clone());
        sim.block_on(async move {
            r1.write(MVal::new(Stamp::verified(5, 0), vec![5])).await;
            r2.write(MVal::new(Stamp::verified(3, 0), vec![3])).await;
        });
        assert_eq!(st.current().stamp, Stamp::verified(5, 0));
        assert_eq!(*st.current().value, vec![5]);
    }

    #[test]
    fn read_returns_snapshot_with_value() {
        let sim = Sim::new(2);
        let st = SimReplicaState::new();
        let r = SimReplica::new(&sim, Rc::clone(&st), 500);
        let (w, rd) = (r.clone(), r.clone());
        let snap = sim.block_on(async move {
            w.write(MVal::new(Stamp::guessed(9, 1), vec![7; 8])).await;
            rd.read().await
        });
        assert_eq!(snap.stamp, Stamp::guessed(9, 1));
        assert_eq!(*snap.value.unwrap(), vec![7; 8]);
    }

    #[test]
    fn crashed_replica_is_silent() {
        let sim = Sim::new(3);
        let st = SimReplicaState::new();
        st.crash();
        let r = SimReplica::new(&sim, Rc::clone(&st), 500);
        let done = Rc::new(Cell::new(false));
        let done2 = Rc::clone(&done);
        sim.spawn(async move {
            r.read().await;
            done2.set(true);
        });
        sim.run();
        assert!(!done.get());
    }
}
