//! Safe-Guess (§3): SWARM's core replication protocol.
//!
//! Safe-Guess implements a linearizable, wait-free multi-writer multi-reader
//! register whose reads and writes complete in a single roundtrip in the
//! common case (no failures, no contention, nearly synchronized clocks).
//! Writes *guess* an ordering timestamp instead of discovering one (saving
//! ABD's first roundtrip) and verify the guess with a parallel read; stale
//! guesses are resolved through the per-writer timestamp lock, which lets the
//! writer safely re-execute with a fresh timestamp only once no reader can
//! ever return the guessed one.

use std::collections::HashMap;
use std::rc::Rc;

use crate::stamp::{Stamp, TsGuesser};
use crate::traits::{MaxRegister, Rounds};
use crate::tslock::{LockMode, TsLockSet};
use crate::value::MVal;

/// Outcome labels for a completed write (used by the evaluation to explain
/// roundtrip distributions, §7.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePath {
    /// Fresh guess confirmed by the parallel read: one roundtrip.
    Fast,
    /// Guess possibly stale, but a reader locked it (so it must have been
    /// fresh): write is already linearized.
    LockedByReader,
    /// Guess locked out; write re-executed with a verified timestamp.
    Reexecuted,
    /// The register holds the delete tombstone: the write cannot take
    /// effect until the key is re-inserted (SWARM-KV semantics, §5.3.2).
    Deleted,
}

/// Result of a Safe-Guess read: the value, the path taken, and how many
/// iterations of the read loop were needed (bounded by `2 * writers + 1`,
/// Appendix C.2).
#[derive(Debug, Clone)]
pub struct ReadOutcome {
    /// The linearized value (may be the tombstone).
    pub value: MVal,
    /// Which protocol path produced it.
    pub path: ReadPath,
    /// Read-loop iterations used.
    pub iterations: u32,
}

/// Outcome labels for a completed read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPath {
    /// Found a `VERIFIED` tuple (common case, one roundtrip).
    FastVerified,
    /// Confirmed a guessed tuple by double-read + read-lock.
    LockedGuess,
    /// Returned an earlier tuple after seeing two writes from one writer
    /// (the wait-free escape hatch, Algorithm 3 lines 23–24).
    SecondFromWriter,
}

/// A Safe-Guess-replicated register over any reliable max register `M` and a
/// set of per-writer timestamp locks.
pub struct SafeGuess<M> {
    m: M,
    /// `TSL[tid]` — one lock per potential writer (§3.1, footnote 2),
    /// materialized lazily on the slow paths that touch them.
    tsl: Rc<TsLockSet>,
    guesser: Rc<TsGuesser>,
    rounds: Rounds,
}

impl<M: Clone> Clone for SafeGuess<M> {
    fn clone(&self) -> Self {
        SafeGuess {
            m: self.m.clone(),
            tsl: Rc::clone(&self.tsl),
            guesser: Rc::clone(&self.guesser),
            rounds: self.rounds.clone(),
        }
    }
}

impl<M: MaxRegister> SafeGuess<M> {
    /// Creates a register handle for the writer identified by `guesser`'s
    /// tid. `tsl` must hold one lock per potential writer, indexed by tid.
    pub fn new(m: M, tsl: Rc<TsLockSet>, guesser: Rc<TsGuesser>, rounds: Rounds) -> Self {
        SafeGuess {
            m,
            tsl,
            guesser,
            rounds,
        }
    }

    /// The underlying max register.
    pub fn max_register(&self) -> &M {
        &self.m
    }

    /// Writes `v` (Algorithm 2). Wait-free; single roundtrip on the fast
    /// path. Returns which path was taken. The payload may be an
    /// already-shared `Rc<Vec<u8>>` (no copy) or a plain `Vec<u8>`.
    pub async fn write(&self, v: impl Into<Rc<Vec<u8>>>) -> WritePath {
        let stamp = self.guesser.guess();
        let w = MVal::new(stamp, v);

        // In parallel: write the guessed tuple and read the register
        // (stamp-only read suffices for the freshness check, Appendix A.2).
        let (m_stamp, ()) = swarm_sim::join2(self.m.read_stamp(), self.m.write(w.clone())).await;
        // The read overlapped the write: together they are one roundtrip.
        self.rounds.uncount(1);

        if m_stamp <= w.stamp {
            // Fast path: the guess was fresh and our write is linearized.
            // Mark it VERIFIED in the background to speed up readers.
            self.m.write_bg(w.with_verified());
            return WritePath::Fast;
        }

        // Slow path: the guess may have been stale. Detecting staleness is
        // impossible here; instead, lock readers out of the guessed
        // timestamp so re-execution cannot make the value readable twice.
        self.guesser.resync();
        let tid = self.guesser.tid();
        if self
            .tsl
            .get(tid as usize)
            .try_lock(w.stamp.key(), LockMode::Write)
            .await
        {
            if m_stamp.is_tombstone() {
                // The key was deleted; nothing can overwrite the tombstone.
                return WritePath::Deleted;
            }
            // No reader can ever return the guessed tuple; re-execute with a
            // timestamp provably fresh (> the stamp the parallel read saw).
            let fresh = Stamp::verified(m_stamp.i + 1, tid);
            self.m
                .write(MVal {
                    stamp: fresh,
                    value: w.value,
                })
                .await;
            WritePath::Reexecuted
        } else {
            // A reader locked the guessed timestamp in read mode, which
            // means it deemed the guess fresh: the write is linearized as-is.
            WritePath::LockedByReader
        }
    }

    /// Writes `v` with a *verified* timestamp discovered by an extra
    /// roundtrip (ABD's write discipline, Algorithm 1, over the same
    /// register). Always two phases, never a guess — so it cannot miss and
    /// cannot trigger lock arbitration or re-execution.
    ///
    /// This is the degrade-best path adaptive routing switches persistently
    /// contended keys to: a verified write is indistinguishable from a
    /// re-executed one, so it composes linearizably with concurrent guessed
    /// writes and Safe-Guess reads from other clients (unlike a raw
    /// [`Abd::read`], which would return a guessed tuple without
    /// arbitration). Returns [`WritePath::Deleted`] against a tombstone,
    /// [`WritePath::Reexecuted`] otherwise (same roundtrip shape).
    pub async fn write_verified(&self, v: impl Into<Rc<Vec<u8>>>) -> WritePath {
        let cur = self.m.read_stamp().await;
        if cur.is_tombstone() {
            return WritePath::Deleted;
        }
        let fresh = Stamp::verified(cur.i + 1, self.guesser.tid());
        self.m.write(MVal::new(fresh, v)).await;
        WritePath::Reexecuted
    }

    /// Writes a value that can never be overwritten (SWARM-KV `delete`,
    /// §5.3.2): the tombstone carries the maximum timestamp.
    pub async fn write_tombstone(&self) {
        self.m.write(MVal::new(Stamp::TOMBSTONE, Vec::new())).await;
    }

    /// Reads the register (Algorithm 3). Wait-free: returns within
    /// `2 * writers + 1` iterations (Appendix C.2).
    pub async fn read(&self) -> ReadOutcome {
        let mut seen: HashMap<u8, MVal> = HashMap::new();
        let mut iterations = 0u32;
        loop {
            iterations += 1;
            let m = self.m.read().await;
            if m.stamp.verified {
                return ReadOutcome {
                    value: m,
                    path: ReadPath::FastVerified, // Fast path.
                    iterations,
                };
            }
            let tid = m.stamp.tid;
            // NOT a collapsible match: a failed read-lock must fall through
            // to re-reading, never to the second-tuple arm below — the lock
            // fails exactly when the writer holds the write lock and will
            // re-execute, so returning the guess here would let two reads
            // observe it at different timestamps (new-old inversion).
            #[allow(clippy::collapsible_match)]
            match seen.get(&tid) {
                Some(prev) if prev.stamp == m.stamp => {
                    // Seen twice: the stamp was fresh (Lemma C.1). Ensure the
                    // writer will never re-execute by read-locking it.
                    if self
                        .tsl
                        .get(tid as usize)
                        .try_lock(m.stamp.key(), LockMode::Read)
                        .await
                    {
                        self.m.write_bg(m.with_verified());
                        return ReadOutcome {
                            value: m,
                            path: ReadPath::LockedGuess,
                            iterations,
                        };
                    }
                }
                Some(prev) => {
                    // A second, different tuple from the same writer: its
                    // first write must have completed, so it is safe to
                    // return (wait-free escape hatch).
                    return ReadOutcome {
                        value: prev.clone(),
                        path: ReadPath::SecondFromWriter,
                        iterations,
                    };
                }
                None => {}
            }
            seen.insert(tid, m);
        }
    }

    /// Convenience: read just the bytes.
    pub async fn read_value(&self) -> Vec<u8> {
        (*self.read().await.value.value).clone()
    }

    /// The roundtrip counter shared with the underlying register and locks.
    pub fn rounds(&self) -> &Rounds {
        &self.rounds
    }
}

/// The ABD baseline (Algorithm 1) over the same reliable max register:
/// strongly consistent, wait-free, but writes always pay the extra
/// timestamp-discovery roundtrip.
pub struct Abd<M> {
    m: M,
    tid: u8,
}

impl<M: Clone> Clone for Abd<M> {
    fn clone(&self) -> Self {
        Abd {
            m: self.m.clone(),
            tid: self.tid,
        }
    }
}

impl<M: MaxRegister> Abd<M> {
    /// Creates an ABD register handle for writer `tid`.
    pub fn new(m: M, tid: u8) -> Self {
        Abd { m, tid }
    }

    /// The underlying max register.
    pub fn max_register(&self) -> &M {
        &self.m
    }

    /// Writes `v`: reads a fresh timestamp, then writes (two phases).
    /// Returns `false` if the register holds a delete tombstone. Accepts a
    /// shared `Rc<Vec<u8>>` payload like [`SafeGuess::write`].
    pub async fn write(&self, v: impl Into<Rc<Vec<u8>>>) -> bool {
        let cur = self.m.read_stamp().await;
        if cur.is_tombstone() {
            return false;
        }
        let fresh = Stamp::verified(cur.i + 1, self.tid);
        self.m.write(MVal::new(fresh, v)).await;
        true
    }

    /// Writes the delete tombstone.
    pub async fn write_tombstone(&self) {
        self.m.write(MVal::new(Stamp::TOMBSTONE, Vec::new())).await;
    }

    /// Reads the register.
    pub async fn read(&self) -> MVal {
        self.m.read().await
    }
}
