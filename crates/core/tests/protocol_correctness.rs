//! End-to-end correctness of the protocol stack: linearizability (checked
//! against the atomic-register spec on randomized schedules), wait-freedom
//! bounds, and fault tolerance — the properties Appendices B/C prove.

use std::cell::RefCell;
use std::rc::Rc;

use swarm_core::{
    Abd, History, InnOutLayout, InnOutReplica, MaxRegister, NodeHealth, OpKind, QuorumConfig,
    ReliableMaxReg, Rounds, SafeGuess, SimReplica, SimReplicaState, TsGuesser, TsLock, TsLockSet,
    WritePath,
};
use swarm_fabric::{Fabric, FabricConfig, NodeId};
use swarm_sim::{GuessClock, Sim};

const VALUE_LEN: usize = 16;

fn encode(v: u64) -> Vec<u8> {
    let mut b = v.to_le_bytes().to_vec();
    b.resize(VALUE_LEN, 0);
    b
}

fn decode(b: &[u8]) -> u64 {
    if b.is_empty() {
        return 0;
    }
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

/// Builds one Safe-Guess register per client over idealized replicas with
/// *badly skewed* clocks (to exercise the stale-guess slow path).
fn sim_replica_registers(
    sim: &Sim,
    n_replicas: usize,
    n_clients: usize,
    skew_ns: i64,
) -> Vec<SafeGuess<ReliableMaxReg<SimReplica>>> {
    let states: Vec<_> = (0..n_replicas).map(|_| SimReplicaState::new()).collect();
    // Timestamp-lock words live on a dedicated fabric (CAS objects).
    let fabric = Fabric::new(sim, FabricConfig::default(), n_replicas);
    let words: Vec<(NodeId, u64)> = fabric
        .node_ids()
        .into_iter()
        .map(|id| (id, fabric.node(id).alloc(8 * n_clients as u64, 8)))
        .collect();
    (0..n_clients)
        .map(|tid| {
            let health = NodeHealth::new(n_replicas);
            let rounds = Rounds::new();
            let replicas: Vec<_> = states
                .iter()
                .map(|s| SimReplica::new(sim, Rc::clone(s), 700))
                .collect();
            let m = ReliableMaxReg::new(
                sim,
                replicas,
                (0..n_replicas).collect(),
                tid,
                Rc::clone(&health),
                QuorumConfig::default(),
                rounds.clone(),
            );
            let ep = Rc::new(fabric.endpoint());
            let tsl: Vec<TsLock> = (0..n_clients)
                .map(|w| {
                    let w_words: Vec<(NodeId, u64)> = words
                        .iter()
                        .map(|&(n, base)| (n, base + 8 * w as u64))
                        .collect();
                    TsLock::new(
                        sim,
                        Rc::clone(&ep),
                        w_words,
                        Rc::clone(&health),
                        QuorumConfig::default(),
                        rounds.clone(),
                    )
                })
                .collect();
            let clock = Rc::new(GuessClock::new(sim, skew_ns, 20.0, skew_ns / 4));
            let guesser = Rc::new(TsGuesser::new(clock, tid as u8));
            SafeGuess::new(m, Rc::new(TsLockSet::eager(tsl)), guesser, rounds)
        })
        .collect()
}

/// Builds one full-SWARM register per client: In-n-Out replicas + timestamp
/// locks on a shared fabric (this composition is the production SWARM).
fn swarm_registers(
    sim: &Sim,
    fabric: &Fabric,
    n_clients: usize,
    meta_bufs: usize,
    skew_ns: i64,
) -> Vec<SafeGuess<ReliableMaxReg<InnOutReplica>>> {
    let n_nodes = fabric.num_nodes();
    let layouts: Vec<InnOutLayout> = fabric
        .node_ids()
        .into_iter()
        .map(|n| InnOutLayout::allocate(fabric, n, meta_bufs, VALUE_LEN, n_clients * 8, n_clients))
        .collect();
    let lock_words: Vec<(NodeId, u64)> = fabric
        .node_ids()
        .into_iter()
        .map(|id| (id, fabric.node(id).alloc(8 * n_clients as u64, 8)))
        .collect();
    (0..n_clients)
        .map(|tid| {
            let health = NodeHealth::new(n_nodes);
            let rounds = Rounds::new();
            let ep = Rc::new(fabric.endpoint());
            let replicas: Vec<InnOutReplica> = layouts
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    InnOutReplica::new(Rc::clone(&ep), l.clone(), tid, i == 0, rounds.clone())
                })
                .collect();
            let m = ReliableMaxReg::new(
                sim,
                replicas,
                (0..n_nodes).collect(),
                tid,
                Rc::clone(&health),
                QuorumConfig::default(),
                rounds.clone(),
            );
            let tsl: Vec<TsLock> = (0..n_clients)
                .map(|w| {
                    let w_words: Vec<(NodeId, u64)> = lock_words
                        .iter()
                        .map(|&(n, base)| (n, base + 8 * w as u64))
                        .collect();
                    TsLock::new(
                        sim,
                        Rc::clone(&ep),
                        w_words,
                        Rc::clone(&health),
                        QuorumConfig::default(),
                        rounds.clone(),
                    )
                })
                .collect();
            let clock = Rc::new(GuessClock::new(sim, skew_ns, 10.0, skew_ns / 4));
            let guesser = Rc::new(TsGuesser::new(clock, tid as u8));
            SafeGuess::new(m, Rc::new(TsLockSet::eager(tsl)), guesser, rounds)
        })
        .collect()
}

/// Runs a randomized workload over per-client register handles and checks
/// the recorded history against the atomic-register specification.
fn run_linearizability_workload<M: MaxRegister>(
    sim: &Sim,
    regs: Vec<SafeGuess<M>>,
    ops_per_client: usize,
    write_prob_pct: u64,
) -> History {
    let history = Rc::new(RefCell::new(History::new()));
    let n_clients = regs.len();
    for (tid, reg) in regs.into_iter().enumerate() {
        let sim2 = sim.clone();
        let history = Rc::clone(&history);
        sim.spawn(async move {
            for k in 0..ops_per_client {
                sim2.sleep_ns(sim2.rand_range(1, 4_000)).await;
                let invoke = sim2.now();
                if sim2.rand_range(0, 100) < write_prob_pct {
                    // Unique value per (client, op index).
                    let v = 1 + (tid * ops_per_client + k) as u64;
                    reg.write(encode(v)).await;
                    history
                        .borrow_mut()
                        .push(invoke, sim2.now(), OpKind::Write(v));
                } else {
                    let out = reg.read().await;
                    assert!(
                        out.iterations <= 2 * n_clients as u32 + 1,
                        "wait-freedom bound exceeded: {} iters",
                        out.iterations
                    );
                    let v = decode(&out.value.value);
                    history
                        .borrow_mut()
                        .push(invoke, sim2.now(), OpKind::Read(v));
                }
            }
        });
    }
    sim.run();
    Rc::try_unwrap(history).unwrap().into_inner()
}

#[test]
fn safeguess_is_linearizable_over_ideal_replicas() {
    // Well-synchronized clocks: mostly fast paths.
    for seed in 0..30 {
        let sim = Sim::new(seed);
        let regs = sim_replica_registers(&sim, 3, 3, 200);
        let h = run_linearizability_workload(&sim, regs, 6, 50);
        assert!(h.is_linearizable(), "seed {seed}: non-linearizable history");
    }
}

#[test]
fn safeguess_is_linearizable_with_bad_clocks() {
    // Clocks skewed by ±40 µs: many stale guesses exercise the timestamp
    // lock and write re-execution, which must stay linearizable.
    for seed in 0..30 {
        let sim = Sim::new(1_000 + seed);
        let regs = sim_replica_registers(&sim, 3, 3, 40_000);
        let h = run_linearizability_workload(&sim, regs, 6, 60);
        assert!(h.is_linearizable(), "seed {seed}: non-linearizable history");
    }
}

#[test]
fn full_swarm_stack_is_linearizable() {
    // Safe-Guess over In-n-Out over the torn-write fabric.
    for seed in 0..20 {
        let sim = Sim::new(2_000 + seed);
        let fabric = Fabric::new(&sim, FabricConfig::default(), 3);
        let regs = swarm_registers(&sim, &fabric, 3, 1, 5_000);
        let h = run_linearizability_workload(&sim, regs, 5, 50);
        assert!(h.is_linearizable(), "seed {seed}: non-linearizable history");
    }
}

#[test]
fn full_swarm_stack_survives_minority_crash() {
    for seed in 0..10 {
        let sim = Sim::new(3_000 + seed);
        let fabric = Fabric::new(&sim, FabricConfig::default(), 3);
        let regs = swarm_registers(&sim, &fabric, 2, 1, 1_000);
        // Crash one node mid-run.
        let f2 = fabric.clone();
        sim.schedule_after(30_000, move |_| f2.crash_node(NodeId(1)));
        let h = run_linearizability_workload(&sim, regs, 8, 50);
        assert!(h.is_linearizable(), "seed {seed}: non-linearizable history");
        assert_eq!(h.len(), 16, "seed {seed}: some op never completed");
    }
}

#[test]
fn abd_is_linearizable() {
    for seed in 0..20 {
        let sim = Sim::new(4_000 + seed);
        let fabric = Fabric::new(&sim, FabricConfig::default(), 3);
        // ABD over the same In-n-Out substrate (this is DM-ABD's register).
        let regs: Vec<Abd<_>> = swarm_registers(&sim, &fabric, 3, 1, 0)
            .into_iter()
            .enumerate()
            .map(|(tid, sg)| Abd::new(sg.max_register().clone(), tid as u8))
            .collect();
        let history = Rc::new(RefCell::new(History::new()));
        for (tid, reg) in regs.into_iter().enumerate() {
            let sim2 = sim.clone();
            let history = Rc::clone(&history);
            sim.spawn(async move {
                for k in 0..5usize {
                    sim2.sleep_ns(sim2.rand_range(1, 4_000)).await;
                    let invoke = sim2.now();
                    if sim2.rand_range(0, 100) < 50 {
                        let v = 1 + (tid * 5 + k) as u64;
                        reg.write(encode(v)).await;
                        history
                            .borrow_mut()
                            .push(invoke, sim2.now(), OpKind::Write(v));
                    } else {
                        let out = reg.read().await;
                        let v = decode(&out.value);
                        history
                            .borrow_mut()
                            .push(invoke, sim2.now(), OpKind::Read(v));
                    }
                }
            });
        }
        sim.run();
        let h = Rc::try_unwrap(history).unwrap().into_inner();
        assert!(h.is_linearizable(), "seed {seed}: ABD non-linearizable");
    }
}

#[test]
fn well_synced_solo_writes_take_fast_path() {
    let sim = Sim::new(42);
    let fabric = Fabric::new(&sim, FabricConfig::default(), 3);
    let regs = swarm_registers(&sim, &fabric, 1, 1, 0);
    let reg = regs.into_iter().next().unwrap();
    let sim2 = sim.clone();
    sim.block_on(async move {
        for i in 0..20u64 {
            let path = reg.write(encode(i + 1)).await;
            assert_eq!(path, WritePath::Fast, "uncontended write left fast path");
            sim2.sleep_ns(5_000).await;
            assert_eq!(decode(&reg.read_value().await), i + 1);
        }
    });
}

#[test]
fn tombstone_blocks_later_writes() {
    let sim = Sim::new(43);
    let fabric = Fabric::new(&sim, FabricConfig::default(), 3);
    let regs = swarm_registers(&sim, &fabric, 2, 1, 0);
    let mut it = regs.into_iter();
    let a = it.next().unwrap();
    let b = it.next().unwrap();
    let sim2 = sim.clone();
    sim.block_on(async move {
        a.write(encode(7)).await;
        a.write_tombstone().await;
        sim2.sleep_ns(2_000).await;
        let path = b.write(encode(9)).await;
        assert_eq!(path, WritePath::Deleted);
        let out = b.read().await;
        assert!(out.value.is_tombstone(), "read did not observe tombstone");
    });
}

#[test]
fn stale_guess_goes_slow_path_and_still_linearizes() {
    // Writer B's clock is far behind: its guess is stale; it must detect the
    // conflict and re-execute (or be saved by a reader lock), never losing
    // the write or corrupting order.
    for seed in 0..10 {
        let sim = Sim::new(5_000 + seed);
        let fabric = Fabric::new(&sim, FabricConfig::default(), 3);
        let regs = swarm_registers(&sim, &fabric, 2, 1, 0);
        let mut it = regs.into_iter();
        let a = it.next().unwrap();
        let b = it.next().unwrap();
        let sim2 = sim.clone();
        let paths = sim.block_on(async move {
            // A writes with a high (clock-driven) timestamp.
            a.write(encode(1)).await;
            sim2.sleep_ns(100_000).await; // A's guess is now ~100 µs ahead…
            a.write(encode(2)).await;
            // …B writes immediately after with a *forced* stale guess: its
            // clock is fine, but A re-used high stamps; emulate staleness by
            // writing twice quickly (second guess > first but < A's next).
            let p1 = b.write(encode(3)).await;
            let v = a.read().await;
            (p1, v.value)
        });
        // Whatever path B took, the register must hold a single coherent
        // maximum that A's read returns.
        let (_, v) = paths;
        assert!(
            [2u64, 3u64].contains(&decode(&v.value)),
            "seed {seed}: read returned {}",
            decode(&v.value)
        );
    }
}
