//! One-sided fabric operations and their wire-size accounting — including
//! the anti-entropy *repair* summaries a memory node computes over a
//! registered table of max-register metadata words.

use std::rc::Rc;

use crate::mem::NodeMemory;

/// Reference-counted payload bytes.
///
/// Write payloads are shared, not copied, on their way through the fabric:
/// the KV layer builds one padded buffer per logical write and every hop
/// (op construction, the in-flight message task, chunked application) holds
/// the same `Rc`. Extends `swarm-core::MVal`'s refcounting through the
/// endpoint. A `Vec<u8>` converts with `.into()` (a move, not a copy).
pub type Payload = Rc<Vec<u8>>;

/// One entry of a repair table: a key's In-n-Out metadata array on one node.
///
/// The repair digest of the entry is a function of the key `id` and the
/// entry's *stamp* — the maximum metadata word shifted right 16 bits. The
/// slot index in the low bits is per-replica state (the same logical write
/// lands in different slots on different nodes), so digesting full words
/// would report divergence between converged replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairEntry {
    /// Key identity mixed into digests (bucket + bloom placement).
    pub id: u64,
    /// Base address of the metadata array on the addressed node.
    pub addr: u64,
    /// Number of 8 B metadata words (In-n-Out's `k` of §4.4).
    pub words: u32,
}

/// A control-plane-registered table of repair entries, shared (not copied)
/// between the repair agent and in-flight messages. On the wire a repair
/// request carries only a small descriptor naming the table — both sides of
/// an anti-entropy session register the same keyspace up front.
pub type RepairTable = Rc<Vec<RepairEntry>>;

/// Which entries of a repair table a [`Op::RepairStamps`] op reports.
#[derive(Debug, Clone)]
pub enum RepairSel {
    /// Every entry, in table order (the `Full` baseline strategy).
    All,
    /// Only entries whose bucket (under `buckets`/`salt`) appears in the
    /// sorted `ids` list — the delta of a mismatched-digest exchange.
    Buckets {
        /// Sorted, deduplicated mismatched-bucket indices.
        ids: Rc<Vec<u32>>,
        /// Bucket count the digests were computed with.
        buckets: u32,
        /// Digest salt (forked per repair round).
        salt: u64,
    },
}

impl RepairSel {
    /// True if `entry` is selected.
    pub fn selects(&self, entry: &RepairEntry) -> bool {
        match self {
            RepairSel::All => true,
            RepairSel::Buckets { ids, buckets, salt } => ids
                .binary_search(&repair_bucket(entry.id, *buckets, *salt))
                .is_ok(),
        }
    }

    /// Number of entries of `table` this selection reports.
    pub fn count(&self, table: &[RepairEntry]) -> usize {
        match self {
            RepairSel::All => table.len(),
            RepairSel::Buckets { .. } => table.iter().filter(|e| self.selects(e)).count(),
        }
    }
}

/// Splitmix-mixes a key id, its stamp, and a round salt into one digest
/// contribution. Summed with `wrapping_add` per bucket the result is
/// order-independent, so two replicas enumerating the same table in any
/// order produce equal bucket digests iff every selected stamp matches.
pub fn repair_mix(id: u64, stamp: u64, salt: u64) -> u64 {
    let mut z = id
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(stamp)
        .wrapping_mul(0xBF58476D1CE4E5B9)
        .wrapping_add(salt);
    z ^= z >> 29;
    z = z.wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 32)
}

/// Bucket index of key `id` under `buckets`/`salt` (stamp-independent: a
/// key stays in one bucket for the whole round).
pub fn repair_bucket(id: u64, buckets: u32, salt: u64) -> u32 {
    debug_assert!(buckets > 0);
    (repair_mix(id, 0, salt) % buckets as u64) as u32
}

/// Sets `key`'s `hashes` double-hashed bit positions in a `bits`-bit bloom
/// filter.
pub fn bloom_set(filter: &mut [u8], bits: u32, hashes: u32, key: u64) {
    for pos in bloom_positions(bits, hashes, key) {
        filter[pos / 8] |= 1 << (pos % 8);
    }
}

/// True if every one of `key`'s bit positions is set in `filter` (no false
/// negatives; false positives at the usual bloom rate).
pub fn bloom_has(filter: &[u8], bits: u32, hashes: u32, key: u64) -> bool {
    bloom_positions(bits, hashes, key).all(|pos| filter[pos / 8] & (1 << (pos % 8)) != 0)
}

/// The standard double-hashing position schedule `h1 + i·h2 mod bits`.
fn bloom_positions(bits: u32, hashes: u32, key: u64) -> impl Iterator<Item = usize> {
    debug_assert!(bits > 0);
    let h1 = repair_mix(key, 0x626C_6F6F, 0);
    let h2 = repair_mix(key, 0x6D31_7832, 1) | 1;
    (0..hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % bits as u64) as usize)
}

/// Stamp of one repair entry as stored on `mem`: the maximum of its
/// metadata words, slot bits stripped.
pub fn repair_entry_stamp(mem: &NodeMemory, e: &RepairEntry) -> u64 {
    (0..e.words as u64)
        .map(|j| mem.read_u64(e.addr + 8 * j))
        .max()
        .unwrap_or(0)
        >> 16
}

/// A one-sided operation against a memory node.
///
/// A `Vec<Op>` submitted together forms a *pipelined series*: the node applies
/// the operations in order (FIFO, §2.1) and a single response acknowledges all
/// of them — this is what lets In-n-Out write the out-of-place buffer and
/// update the metadata word in one roundtrip (Algorithm 5).
///
/// The `Repair*` variants are the anti-entropy summaries: they scan a
/// pre-registered [`RepairTable`] of metadata words and return digests,
/// stamps, or filter bits. Like READs they move node state to the client
/// without mutating it, so the latency model treats them as reads.
#[derive(Debug, Clone)]
pub enum Op {
    /// Read `len` bytes from `addr`.
    Read {
        /// Base address on the node.
        addr: u64,
        /// Number of bytes to read.
        len: usize,
    },
    /// Write `data` to `addr` (non-atomic: applies in chunks).
    Write {
        /// Base address on the node.
        addr: u64,
        /// Bytes to store (shared, never deep-copied per hop).
        data: Payload,
    },
    /// Atomic 64-bit compare-and-swap at `addr`.
    Cas {
        /// Address of the 8-aligned word.
        addr: u64,
        /// Value the word must hold for the swap to apply.
        expected: u64,
        /// Replacement value.
        new: u64,
    },
    /// Hash-bucketed digest of a repair table's stamps: returns `buckets`
    /// order-independent sums of [`repair_mix`] contributions.
    RepairDigest {
        /// The registered table to digest.
        table: RepairTable,
        /// Number of digest buckets.
        buckets: u32,
        /// Per-round salt.
        salt: u64,
    },
    /// Raw stamps of the selected entries, in table order.
    RepairStamps {
        /// The registered table to report.
        table: RepairTable,
        /// Which entries to report.
        sel: RepairSel,
    },
    /// Bloom filter over `(id, stamp)` pairs of the whole table: the
    /// pre-pass of the `BloomBuckets` strategy.
    RepairBloom {
        /// The registered table to summarize.
        table: RepairTable,
        /// Filter size in bits.
        bits: u32,
        /// Double-hashing probe count.
        hashes: u32,
        /// Per-round salt mixed into every `(id, stamp)` key.
        salt: u64,
    },
    /// Membership check of the table's `(id, stamp)` pairs against a peer's
    /// bloom filter: returns a bitmap with bit *i* set iff entry *i* is
    /// definitely absent from the filter (a guaranteed difference — bloom
    /// filters have no false negatives).
    RepairCheck {
        /// The registered table to check.
        table: RepairTable,
        /// The peer's filter bytes.
        filter: Payload,
        /// Probe count the filter was built with.
        hashes: u32,
        /// Salt the filter was built with.
        salt: u64,
    },
}

/// Result of one [`Op`], in submission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// Bytes observed by a read (snapshot at node application time).
    Read(Vec<u8>),
    /// Write acknowledged (fully applied at the node).
    Write,
    /// Previous value observed by a CAS (swap applied iff it equals
    /// `expected`).
    Cas(u64),
    /// Per-bucket digests from a [`Op::RepairDigest`].
    Digests(Vec<u64>),
    /// Selected stamps (in table order) from a [`Op::RepairStamps`].
    Stamps(Vec<u64>),
    /// Filter or bitmap bytes from a [`Op::RepairBloom`] /
    /// [`Op::RepairCheck`].
    Bits(Vec<u8>),
}

impl Op {
    /// Request payload bytes carried on the wire for this op.
    pub fn request_payload(&self) -> usize {
        match self {
            // A read request carries only a descriptor (addr+len), folded
            // into the header; model it as 8 extra bytes.
            Op::Read { .. } => 8,
            Op::Write { data, .. } => data.len(),
            Op::Cas { .. } => 16,
            // Repair requests name a registered table plus round
            // parameters: a fixed 16 B descriptor...
            Op::RepairDigest { .. } | Op::RepairBloom { .. } => 16,
            // ...plus the mismatched-bucket list for a delta selection...
            Op::RepairStamps { sel, .. } => match sel {
                RepairSel::All => 16,
                RepairSel::Buckets { ids, .. } => 16 + 4 * ids.len(),
            },
            // ...or the peer's filter bytes for a membership check.
            Op::RepairCheck { filter, .. } => 16 + filter.len(),
        }
    }

    /// Response payload bytes for this op.
    pub fn response_payload(&self) -> usize {
        match self {
            Op::Read { len, .. } => *len,
            Op::Write { .. } => 0,
            Op::Cas { .. } => 8,
            Op::RepairDigest { buckets, .. } => 8 * *buckets as usize,
            Op::RepairStamps { table, sel } => 8 * sel.count(table),
            Op::RepairBloom { bits, .. } => (*bits as usize).div_ceil(8),
            Op::RepairCheck { table, .. } => table.len().div_ceil(8),
        }
    }

    /// True for ops whose response carries node state back to the client —
    /// the latency model charges these the DMA-fetch read penalty.
    pub fn is_read_like(&self) -> bool {
        !matches!(self, Op::Write { .. } | Op::Cas { .. })
    }

    /// Applies a repair summary against `mem`, or `None` for the plain
    /// `Read`/`Write`/`Cas` ops the endpoint handles itself.
    pub(crate) fn apply_repair(&self, mem: &NodeMemory) -> Option<OpResult> {
        match self {
            Op::Read { .. } | Op::Write { .. } | Op::Cas { .. } => None,
            Op::RepairDigest {
                table,
                buckets,
                salt,
            } => {
                let mut d = vec![0u64; *buckets as usize];
                for e in table.iter() {
                    let b = repair_bucket(e.id, *buckets, *salt) as usize;
                    d[b] = d[b].wrapping_add(repair_mix(e.id, repair_entry_stamp(mem, e), *salt));
                }
                Some(OpResult::Digests(d))
            }
            Op::RepairStamps { table, sel } => Some(OpResult::Stamps(
                table
                    .iter()
                    .filter(|e| sel.selects(e))
                    .map(|e| repair_entry_stamp(mem, e))
                    .collect(),
            )),
            Op::RepairBloom {
                table,
                bits,
                hashes,
                salt,
            } => {
                let mut filter = vec![0u8; (*bits as usize).div_ceil(8)];
                for e in table.iter() {
                    let key = repair_mix(e.id, repair_entry_stamp(mem, e), *salt);
                    bloom_set(&mut filter, *bits, *hashes, key);
                }
                Some(OpResult::Bits(filter))
            }
            Op::RepairCheck {
                table,
                filter,
                hashes,
                salt,
            } => {
                let bits = (filter.len() * 8) as u32;
                let mut missing = vec![0u8; table.len().div_ceil(8)];
                for (i, e) in table.iter().enumerate() {
                    let key = repair_mix(e.id, repair_entry_stamp(mem, e), *salt);
                    if !bloom_has(filter, bits, *hashes, key) {
                        missing[i / 8] |= 1 << (i % 8);
                    }
                }
                Some(OpResult::Bits(missing))
            }
        }
    }
}

impl OpResult {
    /// Extracts read bytes.
    ///
    /// # Panics
    ///
    /// Panics if this result is not a `Read`.
    pub fn into_read(self) -> Vec<u8> {
        match self {
            OpResult::Read(b) => b,
            other => panic!("expected Read result, got {other:?}"),
        }
    }

    /// Extracts the CAS-observed previous value.
    ///
    /// # Panics
    ///
    /// Panics if this result is not a `Cas`.
    pub fn into_cas(self) -> u64 {
        match self {
            OpResult::Cas(v) => v,
            other => panic!("expected Cas result, got {other:?}"),
        }
    }

    /// Read bytes, or `None` on a kind mismatch — for reply paths that must
    /// treat a malformed batch as a dropped message rather than panic.
    pub fn read(self) -> Option<Vec<u8>> {
        match self {
            OpResult::Read(b) => Some(b),
            _ => None,
        }
    }

    /// CAS-observed previous value, or `None` on a kind mismatch.
    pub fn cas(self) -> Option<u64> {
        match self {
            OpResult::Cas(v) => Some(v),
            _ => None,
        }
    }

    /// Bucket digests, or `None` on a kind mismatch.
    pub fn digests(self) -> Option<Vec<u64>> {
        match self {
            OpResult::Digests(d) => Some(d),
            _ => None,
        }
    }

    /// Selected stamps, or `None` on a kind mismatch.
    pub fn stamps(self) -> Option<Vec<u64>> {
        match self {
            OpResult::Stamps(s) => Some(s),
            _ => None,
        }
    }

    /// Filter/bitmap bytes, or `None` on a kind mismatch.
    pub fn bits(self) -> Option<Vec<u8>> {
        match self {
            OpResult::Bits(b) => Some(b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_accounting() {
        assert_eq!(Op::Read { addr: 0, len: 64 }.request_payload(), 8);
        assert_eq!(Op::Read { addr: 0, len: 64 }.response_payload(), 64);
        let w = Op::Write {
            addr: 0,
            data: vec![0; 100].into(),
        };
        assert_eq!(w.request_payload(), 100);
        assert_eq!(w.response_payload(), 0);
        let c = Op::Cas {
            addr: 0,
            expected: 1,
            new: 2,
        };
        assert_eq!(c.request_payload(), 16);
        assert_eq!(c.response_payload(), 8);
    }

    #[test]
    #[should_panic(expected = "expected Cas")]
    fn wrong_extraction_panics() {
        OpResult::Write.into_cas();
    }

    #[test]
    fn option_accessors_never_panic() {
        assert_eq!(OpResult::Write.cas(), None);
        assert_eq!(OpResult::Cas(7).cas(), Some(7));
        assert_eq!(OpResult::Cas(7).read(), None);
        assert_eq!(OpResult::Read(vec![1]).read(), Some(vec![1]));
        assert_eq!(OpResult::Write.digests(), None);
        assert_eq!(OpResult::Digests(vec![3]).digests(), Some(vec![3]));
        assert_eq!(OpResult::Stamps(vec![9]).stamps(), Some(vec![9]));
        assert_eq!(OpResult::Bits(vec![0xFF]).bits(), Some(vec![0xFF]));
        assert_eq!(OpResult::Read(vec![]).bits(), None);
    }

    fn table(n: u64) -> RepairTable {
        Rc::new(
            (0..n)
                .map(|i| RepairEntry {
                    id: i,
                    addr: 8 * i,
                    words: 1,
                })
                .collect(),
        )
    }

    #[test]
    fn repair_payload_accounting() {
        let t = table(100);
        let d = Op::RepairDigest {
            table: Rc::clone(&t),
            buckets: 16,
            salt: 1,
        };
        assert_eq!(d.request_payload(), 16);
        assert_eq!(d.response_payload(), 16 * 8);
        assert!(d.is_read_like());

        let all = Op::RepairStamps {
            table: Rc::clone(&t),
            sel: RepairSel::All,
        };
        assert_eq!(all.request_payload(), 16);
        assert_eq!(all.response_payload(), 100 * 8);

        // A bucket selection reports exactly the keys hashing into the
        // chosen buckets, and ships the bucket list on the request.
        let ids = Rc::new(vec![3u32, 7]);
        let sel = RepairSel::Buckets {
            ids: Rc::clone(&ids),
            buckets: 16,
            salt: 1,
        };
        let expect = (0..100)
            .filter(|&k| ids.contains(&repair_bucket(k, 16, 1)))
            .count();
        let some = Op::RepairStamps {
            table: Rc::clone(&t),
            sel,
        };
        assert_eq!(some.request_payload(), 16 + 8);
        assert_eq!(some.response_payload(), 8 * expect);

        let bloom = Op::RepairBloom {
            table: Rc::clone(&t),
            bits: 1000,
            hashes: 4,
            salt: 2,
        };
        assert_eq!(bloom.request_payload(), 16);
        assert_eq!(bloom.response_payload(), 125);

        let check = Op::RepairCheck {
            table: t,
            filter: vec![0u8; 125].into(),
            hashes: 4,
            salt: 2,
        };
        assert_eq!(check.request_payload(), 16 + 125);
        assert_eq!(check.response_payload(), 13);
    }

    #[test]
    fn bucket_digest_is_order_independent() {
        let contributions = [(1u64, 10u64), (2, 20), (3, 30)];
        let sum = |order: &[usize]| {
            order.iter().fold(0u64, |acc, &i| {
                let (id, stamp) = contributions[i];
                acc.wrapping_add(repair_mix(id, stamp, 42))
            })
        };
        assert_eq!(sum(&[0, 1, 2]), sum(&[2, 0, 1]));
        // A changed stamp changes the sum.
        assert_ne!(
            sum(&[0, 1, 2]),
            sum(&[0, 1]).wrapping_add(repair_mix(3, 31, 42))
        );
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut filter = vec![0u8; 64];
        for k in 0..100u64 {
            bloom_set(&mut filter, 512, 4, k);
        }
        for k in 0..100u64 {
            assert!(bloom_has(&filter, 512, 4, k), "false negative on {k}");
        }
        // An empty filter contains nothing.
        let empty = vec![0u8; 64];
        assert!(!bloom_has(&empty, 512, 4, 1));
    }

    #[test]
    fn repair_ops_scan_node_memory() {
        let mem = NodeMemory::new();
        let base = mem.alloc(8 * 4, 8);
        // Two keys, two metadata words each; stamps live in the high 48
        // bits, slots in the low 16 — only the stamps may matter.
        mem.write_u64(base, (5 << 16) | 9);
        mem.write_u64(base + 8, (3 << 16) | 1);
        mem.write_u64(base + 16, (7 << 16) | 2);
        mem.write_u64(base + 24, 0);
        let t: RepairTable = Rc::new(vec![
            RepairEntry {
                id: 100,
                addr: base,
                words: 2,
            },
            RepairEntry {
                id: 200,
                addr: base + 16,
                words: 2,
            },
        ]);
        assert_eq!(repair_entry_stamp(&mem, &t[0]), 5);
        assert_eq!(repair_entry_stamp(&mem, &t[1]), 7);

        let stamps = Op::RepairStamps {
            table: Rc::clone(&t),
            sel: RepairSel::All,
        }
        .apply_repair(&mem)
        .unwrap()
        .stamps()
        .unwrap();
        assert_eq!(stamps, vec![5, 7]);

        let digest = |salt| {
            Op::RepairDigest {
                table: Rc::clone(&t),
                buckets: 4,
                salt,
            }
            .apply_repair(&mem)
            .unwrap()
            .digests()
            .unwrap()
        };
        // Equal state digests equal; a bumped stamp diverges.
        let before = digest(9);
        mem.write_u64(base + 16, (8 << 16) | 3);
        assert_ne!(digest(9), before);

        // The changed key — and only it — fails the membership check
        // against the old filter.
        let old_filter = {
            mem.write_u64(base + 16, (7 << 16) | 2);
            Op::RepairBloom {
                table: Rc::clone(&t),
                bits: 256,
                hashes: 4,
                salt: 11,
            }
            .apply_repair(&mem)
            .unwrap()
            .bits()
            .unwrap()
        };
        mem.write_u64(base + 16, (8 << 16) | 3);
        let missing = Op::RepairCheck {
            table: t,
            filter: old_filter.into(),
            hashes: 4,
            salt: 11,
        }
        .apply_repair(&mem)
        .unwrap()
        .bits()
        .unwrap();
        assert_eq!(missing, vec![0b10]);
    }
}
