//! One-sided fabric operations and their wire-size accounting.

use std::rc::Rc;

/// Reference-counted payload bytes.
///
/// Write payloads are shared, not copied, on their way through the fabric:
/// the KV layer builds one padded buffer per logical write and every hop
/// (op construction, the in-flight message task, chunked application) holds
/// the same `Rc`. Extends `swarm-core::MVal`'s refcounting through the
/// endpoint. A `Vec<u8>` converts with `.into()` (a move, not a copy).
pub type Payload = Rc<Vec<u8>>;

/// A one-sided operation against a memory node.
///
/// A `Vec<Op>` submitted together forms a *pipelined series*: the node applies
/// the operations in order (FIFO, §2.1) and a single response acknowledges all
/// of them — this is what lets In-n-Out write the out-of-place buffer and
/// update the metadata word in one roundtrip (Algorithm 5).
#[derive(Debug, Clone)]
pub enum Op {
    /// Read `len` bytes from `addr`.
    Read {
        /// Base address on the node.
        addr: u64,
        /// Number of bytes to read.
        len: usize,
    },
    /// Write `data` to `addr` (non-atomic: applies in chunks).
    Write {
        /// Base address on the node.
        addr: u64,
        /// Bytes to store (shared, never deep-copied per hop).
        data: Payload,
    },
    /// Atomic 64-bit compare-and-swap at `addr`.
    Cas {
        /// Address of the 8-aligned word.
        addr: u64,
        /// Value the word must hold for the swap to apply.
        expected: u64,
        /// Replacement value.
        new: u64,
    },
}

/// Result of one [`Op`], in submission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// Bytes observed by a read (snapshot at node application time).
    Read(Vec<u8>),
    /// Write acknowledged (fully applied at the node).
    Write,
    /// Previous value observed by a CAS (swap applied iff it equals
    /// `expected`).
    Cas(u64),
}

impl Op {
    /// Request payload bytes carried on the wire for this op.
    pub fn request_payload(&self) -> usize {
        match self {
            // A read request carries only a descriptor (addr+len), folded
            // into the header; model it as 8 extra bytes.
            Op::Read { .. } => 8,
            Op::Write { data, .. } => data.len(),
            Op::Cas { .. } => 16,
        }
    }

    /// Response payload bytes for this op.
    pub fn response_payload(&self) -> usize {
        match self {
            Op::Read { len, .. } => *len,
            Op::Write { .. } => 0,
            Op::Cas { .. } => 8,
        }
    }
}

impl OpResult {
    /// Extracts read bytes.
    ///
    /// # Panics
    ///
    /// Panics if this result is not a `Read`.
    pub fn into_read(self) -> Vec<u8> {
        match self {
            OpResult::Read(b) => b,
            other => panic!("expected Read result, got {other:?}"),
        }
    }

    /// Extracts the CAS-observed previous value.
    ///
    /// # Panics
    ///
    /// Panics if this result is not a `Cas`.
    pub fn into_cas(self) -> u64 {
        match self {
            OpResult::Cas(v) => v,
            other => panic!("expected Cas result, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_accounting() {
        assert_eq!(Op::Read { addr: 0, len: 64 }.request_payload(), 8);
        assert_eq!(Op::Read { addr: 0, len: 64 }.response_payload(), 64);
        let w = Op::Write {
            addr: 0,
            data: vec![0; 100].into(),
        };
        assert_eq!(w.request_payload(), 100);
        assert_eq!(w.response_payload(), 0);
        let c = Op::Cas {
            addr: 0,
            expected: 1,
            new: 2,
        };
        assert_eq!(c.request_payload(), 16);
        assert_eq!(c.response_payload(), 8);
    }

    #[test]
    #[should_panic(expected = "expected Cas")]
    fn wrong_extraction_panics() {
        OpResult::Write.into_cas();
    }
}
