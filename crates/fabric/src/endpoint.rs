//! Client endpoints: submission pipeline for one-sided operation series.
//!
//! An [`Endpoint`] models one client thread's RDMA context: a CPU core that
//! serializes work-request submission, and one queue pair per memory node
//! that delivers messages in FIFO order. `submit` returns a receiver the
//! caller may await *or drop*: node-side effects of a submitted series happen
//! regardless, which is exactly the fire-and-forget semantics the protocols
//! rely on for background writes (e.g. Safe-Guess's `in bg: M.WRITE(..)`).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use swarm_sim::{oneshot, FifoResource, Nanos, OneshotReceiver};

use crate::fabric::Fabric;
use crate::node::NodeId;
use crate::op::{Op, OpResult, Payload};

/// Per-client traffic counters (drives per-client IO accounting, Table 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct EndpointStats {
    /// Message series submitted.
    pub series: u64,
    /// Request bytes sent.
    pub bytes_out: u64,
    /// Response bytes received (includes responses still in flight).
    pub bytes_in: u64,
}

/// A client-side fabric endpoint (one per client thread).
pub struct Endpoint {
    fabric: Fabric,
    id: usize,
    cpu: FifoResource,
    /// CPU time multiplier (models hyperthread sharing beyond 32 clients,
    /// §7.3).
    cpu_scale: Cell<f64>,
    /// Last scheduled arrival per destination node, enforcing QP FIFO.
    /// Shared (`Rc`) with in-flight message tasks.
    qp_clock: Rc<RefCell<Vec<Nanos>>>,
    stats: Cell<EndpointStats>,
}

impl Endpoint {
    pub(crate) fn new(fabric: Fabric, id: usize, cpu: FifoResource) -> Self {
        let n = fabric.num_nodes();
        Endpoint {
            fabric,
            id,
            cpu,
            cpu_scale: Cell::new(1.0),
            qp_clock: Rc::new(RefCell::new(vec![0; n])),
            stats: Cell::new(EndpointStats::default()),
        }
    }

    /// This endpoint's client id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The fabric this endpoint is attached to.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The CPU core submissions serialize on.
    pub fn cpu(&self) -> &FifoResource {
        &self.cpu
    }

    /// Sets the CPU slowdown factor (1.0 = dedicated physical core).
    pub fn set_cpu_scale(&self, scale: f64) {
        assert!(scale >= 1.0);
        self.cpu_scale.set(scale);
    }

    /// Per-endpoint traffic counters.
    pub fn stats(&self) -> EndpointStats {
        self.stats.get()
    }

    fn scaled(&self, ns: Nanos) -> Nanos {
        (ns as f64 * self.cpu_scale.get()).round() as Nanos
    }

    /// Occupies this endpoint's CPU core for `ns` nanoseconds of
    /// application-level work (workload generation, cache lookups,
    /// completion processing) and waits for it to elapse.
    pub async fn work(&self, ns: Nanos) {
        let (_, _, wait) = self.cpu.acquire(self.scaled(ns));
        wait.await;
    }

    /// Submits a pipelined series of operations to `node`.
    ///
    /// Returns a receiver for the per-op results. The receiver yields `None`
    /// only if the simulation ends the message's task early; a crashed node
    /// produces *silence* (the receiver never resolves), so callers bound
    /// waits with [`swarm_sim::timeout_at`].
    pub fn submit(&self, node: NodeId, ops: Vec<Op>) -> OneshotReceiver<Vec<OpResult>> {
        let (tx, rx) = oneshot();
        let cfg = self.fabric.config();
        let header = cfg.header_bytes;
        let req_bytes = header + ops.iter().map(Op::request_payload).sum::<usize>();
        let resp_bytes = header + ops.iter().map(Op::response_payload).sum::<usize>();
        let has_read = ops.iter().any(Op::is_read_like);

        // Reserve the submission slot *now*: concurrent submitters on the
        // same core serialize in call order, deterministically.
        let (_, submit_done, _) = self.cpu.acquire(self.scaled(cfg.issue_ns));

        let mut st = self.stats.get();
        st.series += 1;
        st.bytes_out += req_bytes as u64;
        st.bytes_in += resp_bytes as u64;
        self.stats.set(st);
        self.fabric.account(req_bytes + resp_bytes);

        let fabric = self.fabric.clone();
        let sim = fabric.sim().clone();
        let qp = QpClockRef {
            clock: Rc::clone(&self.qp_clock),
            node: node.0,
        };

        let sim2 = sim.clone();
        sim.spawn(async move {
            // Borrow the config from the moved-in fabric handle; the old
            // code cloned the whole `FabricConfig` per message.
            let cfg = fabric.config();
            // 1. Wait for the CPU to finish posting the work requests.
            sim2.sleep_until(submit_done).await;

            // 2. Uplink: serialize through the shared switch, then propagate
            // (an active delay spike on the destination stretches the wire).
            let (_, ser_end) = fabric.inner.switch.reserve(cfg.link_ns(req_bytes));
            let mut arrival =
                ser_end + cfg.wire.sample_rng(&fabric.inner.rng) + fabric.fault_extra_ns(node);
            // Enforce FIFO on this queue pair.
            arrival = arrival.max(qp.get() + 1);
            qp.set(arrival);
            sim2.sleep_until(arrival).await;

            // 3. Node receive. A crashed node — or an injected partition /
            // drop-window fault — swallows the request silently.
            let node_rc = fabric.node(node);
            if !node_rc.is_alive() || fabric.fault_silences(node) {
                fabric.inner.graveyard.borrow_mut().push(tx);
                return;
            }
            node_rc.account(req_bytes + resp_bytes);
            // The NIC reservation shapes response timing and captures
            // queuing under load; DMA application itself is cut-through and
            // proceeds in parallel across queue pairs (so reads from other
            // clients can observe a write mid-application).
            // Reads pay an extra DMA-fetch delay, but NICs pipeline it
            // across queue pairs: it adds latency, not NIC occupancy.
            let service = cfg.node_fixed_ns + cfg.link_ns(req_bytes);
            let (_, nic_done) = node_rc.nic().reserve(service);
            let nic_done = nic_done + if has_read { cfg.read_extra_ns } else { 0 };

            // 4. Apply the series in FIFO order.
            let mut results = Vec::with_capacity(ops.len());
            for op in &ops {
                match op {
                    Op::Read { addr, len } => {
                        // Snapshot at a single instant: a read overlapping a
                        // chunked write observes torn data.
                        results.push(OpResult::Read(node_rc.mem().read(*addr, *len)));
                    }
                    Op::Write { addr, data } => {
                        let chunk = cfg.chunk_bytes;
                        let mut off = 0;
                        while off < data.len() {
                            let end = (off + chunk).min(data.len());
                            node_rc.mem().write(addr + off as u64, &data[off..end]);
                            off = end;
                            sim2.sleep_ns(cfg.chunk_ns()).await;
                        }
                        results.push(OpResult::Write);
                    }
                    Op::Cas {
                        addr,
                        expected,
                        new,
                    } => {
                        results.push(OpResult::Cas(node_rc.mem().cas_u64(*addr, *expected, *new)));
                    }
                    repair => {
                        // Anti-entropy summaries scan the registered table
                        // at a single instant, like a (large) read.
                        let r = repair
                            .apply_repair(node_rc.mem())
                            .expect("non-repair ops are handled above");
                        results.push(r);
                    }
                }
            }

            // Response departs once both the DMA application and the NIC
            // service slot have completed.
            if nic_done > sim2.now() {
                sim2.sleep_until(nic_done).await;
            }

            // A node that crashed while serving never answers; neither does
            // one that got partitioned (or whose response a drop window
            // eats) — the request's effects above stand regardless.
            if !node_rc.is_alive() || fabric.fault_silences(node) {
                fabric.inner.graveyard.borrow_mut().push(tx);
                return;
            }

            // 5. Downlink.
            let (_, ser_end) = fabric.inner.switch.reserve(cfg.link_ns(resp_bytes));
            let back =
                ser_end + cfg.wire.sample_rng(&fabric.inner.rng) + fabric.fault_extra_ns(node);
            sim2.sleep_until(back).await;
            tx.send(results);
        });
        rx
    }

    /// Convenience: single READ. `None` on a dropped reply — including a
    /// reply batch that came back empty or with the wrong result kind,
    /// which a faulted or misbehaving node could produce (treating it as
    /// anything but a drop would panic the client).
    pub async fn read(&self, node: NodeId, addr: u64, len: usize) -> Option<Vec<u8>> {
        let r = self.submit(node, vec![Op::Read { addr, len }]).await?;
        first_read(r)
    }

    /// Convenience: single WRITE. The payload is shared (`impl
    /// Into<Payload>` — a `Vec<u8>` moves in without a copy).
    pub async fn write(&self, node: NodeId, addr: u64, data: impl Into<Payload>) -> Option<()> {
        self.submit(
            node,
            vec![Op::Write {
                addr,
                data: data.into(),
            }],
        )
        .await?;
        Some(())
    }

    /// Convenience: single CAS; returns the previous value, or `None` on a
    /// dropped (or malformed — see [`Endpoint::read`]) reply.
    pub async fn cas(&self, node: NodeId, addr: u64, expected: u64, new: u64) -> Option<u64> {
        let r = self
            .submit(
                node,
                vec![Op::Cas {
                    addr,
                    expected,
                    new,
                }],
            )
            .await?;
        first_cas(r)
    }
}

/// Extracts the first result of a reply batch as read bytes; `None` for an
/// empty batch or a kind mismatch (the caller treats it as a dropped reply).
fn first_read(r: Vec<OpResult>) -> Option<Vec<u8>> {
    r.into_iter().next()?.read()
}

/// Extracts the first result of a reply batch as a CAS previous value;
/// `None` for an empty batch or a kind mismatch.
fn first_cas(r: Vec<OpResult>) -> Option<u64> {
    r.into_iter().next()?.cas()
}

struct QpClockRef {
    clock: Rc<RefCell<Vec<Nanos>>>,
    node: usize,
}

impl QpClockRef {
    fn get(&self) -> Nanos {
        self.clock.borrow()[self.node]
    }
    fn set(&self, v: Nanos) {
        self.clock.borrow_mut()[self.node] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;
    use crate::op::{RepairEntry, RepairSel, RepairTable};
    use swarm_sim::Sim;

    /// Regression (anti-entropy PR): a reply batch that comes back empty or
    /// with a mismatched result kind must read as a dropped reply, not a
    /// panic — a faulted node's garbage answer must never kill the client.
    #[test]
    fn malformed_reply_batches_are_dropped_not_panics() {
        assert_eq!(first_read(Vec::new()), None);
        assert_eq!(first_cas(Vec::new()), None);
        assert_eq!(first_read(vec![OpResult::Write]), None);
        assert_eq!(first_read(vec![OpResult::Cas(3)]), None);
        assert_eq!(first_cas(vec![OpResult::Write]), None);
        assert_eq!(first_cas(vec![OpResult::Read(vec![1, 2])]), None);
        // Well-formed batches still extract.
        assert_eq!(first_read(vec![OpResult::Read(vec![7])]), Some(vec![7]));
        assert_eq!(first_cas(vec![OpResult::Cas(9)]), Some(9));
    }

    #[test]
    fn read_write_cas_roundtrip() {
        let sim = Sim::new(1);
        let fabric = Fabric::new(&sim, FabricConfig::default(), 1);
        let addr = fabric.node(NodeId(0)).alloc(64, 8);
        let ep = fabric.endpoint();
        sim.block_on(async move {
            ep.write(NodeId(0), addr, vec![5u8; 16]).await.unwrap();
            assert_eq!(ep.read(NodeId(0), addr, 16).await.unwrap(), vec![5u8; 16]);
            let prev = ep.cas(NodeId(0), addr, u64::from_le_bytes([5; 8]), 0).await;
            assert_eq!(prev, Some(u64::from_le_bytes([5; 8])));
        });
    }

    /// Repair summaries travel the normal submission pipeline: FIFO with
    /// other ops, read-penalty latency, and response bytes proportional to
    /// the summary size.
    #[test]
    fn repair_ops_flow_through_the_pipeline() {
        let sim = Sim::new(2);
        let fabric = Fabric::new(&sim, FabricConfig::deterministic(), 1);
        let node = fabric.node(NodeId(0));
        let base = node.alloc(16, 8);
        node.mem().write_u64(base, 44 << 16);
        node.mem().write_u64(base + 8, 45 << 16);
        let table: RepairTable = Rc::new(vec![
            RepairEntry {
                id: 1,
                addr: base,
                words: 1,
            },
            RepairEntry {
                id: 2,
                addr: base + 8,
                words: 1,
            },
        ]);
        let ep = fabric.endpoint();
        let before = ep.stats();
        let stamps = sim.block_on(async move {
            ep.submit(
                NodeId(0),
                vec![Op::RepairStamps {
                    table,
                    sel: RepairSel::All,
                }],
            )
            .await
            .unwrap()
            .remove(0)
            .stamps()
            .unwrap()
        });
        assert_eq!(stamps, vec![44, 45]);
        let _ = before;
    }
}
