//! Client endpoints: submission pipeline for one-sided operation series.
//!
//! An [`Endpoint`] models one client thread's RDMA context: a CPU core that
//! serializes work-request submission, and one queue pair per memory node
//! that delivers messages in FIFO order. `submit` returns a receiver the
//! caller may await *or drop*: node-side effects of a submitted series happen
//! regardless, which is exactly the fire-and-forget semantics the protocols
//! rely on for background writes (e.g. Safe-Guess's `in bg: M.WRITE(..)`).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use swarm_sim::{oneshot, FifoResource, Nanos, OneshotReceiver};

use crate::fabric::Fabric;
use crate::node::NodeId;
use crate::op::{Op, OpResult, Payload};

/// Per-client traffic counters (drives per-client IO accounting, Table 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct EndpointStats {
    /// Message series submitted.
    pub series: u64,
    /// Request bytes sent.
    pub bytes_out: u64,
    /// Response bytes received (includes responses still in flight).
    pub bytes_in: u64,
}

/// A client-side fabric endpoint (one per client thread).
pub struct Endpoint {
    fabric: Fabric,
    id: usize,
    cpu: FifoResource,
    /// CPU time multiplier (models hyperthread sharing beyond 32 clients,
    /// §7.3).
    cpu_scale: Cell<f64>,
    /// Last scheduled arrival per destination node, enforcing QP FIFO.
    /// Shared (`Rc`) with in-flight message tasks.
    qp_clock: Rc<RefCell<Vec<Nanos>>>,
    stats: Cell<EndpointStats>,
}

impl Endpoint {
    pub(crate) fn new(fabric: Fabric, id: usize, cpu: FifoResource) -> Self {
        let n = fabric.num_nodes();
        Endpoint {
            fabric,
            id,
            cpu,
            cpu_scale: Cell::new(1.0),
            qp_clock: Rc::new(RefCell::new(vec![0; n])),
            stats: Cell::new(EndpointStats::default()),
        }
    }

    /// This endpoint's client id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The fabric this endpoint is attached to.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The CPU core submissions serialize on.
    pub fn cpu(&self) -> &FifoResource {
        &self.cpu
    }

    /// Sets the CPU slowdown factor (1.0 = dedicated physical core).
    pub fn set_cpu_scale(&self, scale: f64) {
        assert!(scale >= 1.0);
        self.cpu_scale.set(scale);
    }

    /// Per-endpoint traffic counters.
    pub fn stats(&self) -> EndpointStats {
        self.stats.get()
    }

    fn scaled(&self, ns: Nanos) -> Nanos {
        (ns as f64 * self.cpu_scale.get()).round() as Nanos
    }

    /// Occupies this endpoint's CPU core for `ns` nanoseconds of
    /// application-level work (workload generation, cache lookups,
    /// completion processing) and waits for it to elapse.
    pub async fn work(&self, ns: Nanos) {
        let (_, _, wait) = self.cpu.acquire(self.scaled(ns));
        wait.await;
    }

    /// Submits a pipelined series of operations to `node`.
    ///
    /// Returns a receiver for the per-op results. The receiver yields `None`
    /// only if the simulation ends the message's task early; a crashed node
    /// produces *silence* (the receiver never resolves), so callers bound
    /// waits with [`swarm_sim::timeout_at`].
    pub fn submit(&self, node: NodeId, ops: Vec<Op>) -> OneshotReceiver<Vec<OpResult>> {
        let (tx, rx) = oneshot();
        let cfg = self.fabric.config();
        let header = cfg.header_bytes;
        let req_bytes = header + ops.iter().map(Op::request_payload).sum::<usize>();
        let resp_bytes = header + ops.iter().map(Op::response_payload).sum::<usize>();
        let has_read = ops.iter().any(|o| matches!(o, Op::Read { .. }));

        // Reserve the submission slot *now*: concurrent submitters on the
        // same core serialize in call order, deterministically.
        let (_, submit_done, _) = self.cpu.acquire(self.scaled(cfg.issue_ns));

        let mut st = self.stats.get();
        st.series += 1;
        st.bytes_out += req_bytes as u64;
        st.bytes_in += resp_bytes as u64;
        self.stats.set(st);
        self.fabric.account(req_bytes + resp_bytes);

        let fabric = self.fabric.clone();
        let sim = fabric.sim().clone();
        let qp = QpClockRef {
            clock: Rc::clone(&self.qp_clock),
            node: node.0,
        };

        let sim2 = sim.clone();
        sim.spawn(async move {
            // Borrow the config from the moved-in fabric handle; the old
            // code cloned the whole `FabricConfig` per message.
            let cfg = fabric.config();
            // 1. Wait for the CPU to finish posting the work requests.
            sim2.sleep_until(submit_done).await;

            // 2. Uplink: serialize through the shared switch, then propagate
            // (an active delay spike on the destination stretches the wire).
            let (_, ser_end) = fabric.inner.switch.reserve(cfg.link_ns(req_bytes));
            let mut arrival =
                ser_end + cfg.wire.sample_rng(&fabric.inner.rng) + fabric.fault_extra_ns(node);
            // Enforce FIFO on this queue pair.
            arrival = arrival.max(qp.get() + 1);
            qp.set(arrival);
            sim2.sleep_until(arrival).await;

            // 3. Node receive. A crashed node — or an injected partition /
            // drop-window fault — swallows the request silently.
            let node_rc = fabric.node(node);
            if !node_rc.is_alive() || fabric.fault_silences(node) {
                fabric.inner.graveyard.borrow_mut().push(tx);
                return;
            }
            node_rc.account(req_bytes + resp_bytes);
            // The NIC reservation shapes response timing and captures
            // queuing under load; DMA application itself is cut-through and
            // proceeds in parallel across queue pairs (so reads from other
            // clients can observe a write mid-application).
            // Reads pay an extra DMA-fetch delay, but NICs pipeline it
            // across queue pairs: it adds latency, not NIC occupancy.
            let service = cfg.node_fixed_ns + cfg.link_ns(req_bytes);
            let (_, nic_done) = node_rc.nic().reserve(service);
            let nic_done = nic_done + if has_read { cfg.read_extra_ns } else { 0 };

            // 4. Apply the series in FIFO order.
            let mut results = Vec::with_capacity(ops.len());
            for op in &ops {
                match op {
                    Op::Read { addr, len } => {
                        // Snapshot at a single instant: a read overlapping a
                        // chunked write observes torn data.
                        results.push(OpResult::Read(node_rc.mem().read(*addr, *len)));
                    }
                    Op::Write { addr, data } => {
                        let chunk = cfg.chunk_bytes;
                        let mut off = 0;
                        while off < data.len() {
                            let end = (off + chunk).min(data.len());
                            node_rc.mem().write(addr + off as u64, &data[off..end]);
                            off = end;
                            sim2.sleep_ns(cfg.chunk_ns()).await;
                        }
                        results.push(OpResult::Write);
                    }
                    Op::Cas {
                        addr,
                        expected,
                        new,
                    } => {
                        results.push(OpResult::Cas(node_rc.mem().cas_u64(*addr, *expected, *new)));
                    }
                }
            }

            // Response departs once both the DMA application and the NIC
            // service slot have completed.
            if nic_done > sim2.now() {
                sim2.sleep_until(nic_done).await;
            }

            // A node that crashed while serving never answers; neither does
            // one that got partitioned (or whose response a drop window
            // eats) — the request's effects above stand regardless.
            if !node_rc.is_alive() || fabric.fault_silences(node) {
                fabric.inner.graveyard.borrow_mut().push(tx);
                return;
            }

            // 5. Downlink.
            let (_, ser_end) = fabric.inner.switch.reserve(cfg.link_ns(resp_bytes));
            let back =
                ser_end + cfg.wire.sample_rng(&fabric.inner.rng) + fabric.fault_extra_ns(node);
            sim2.sleep_until(back).await;
            tx.send(results);
        });
        rx
    }

    /// Convenience: single READ.
    pub async fn read(&self, node: NodeId, addr: u64, len: usize) -> Option<Vec<u8>> {
        let r = self.submit(node, vec![Op::Read { addr, len }]).await?;
        Some(r.into_iter().next().unwrap().into_read())
    }

    /// Convenience: single WRITE. The payload is shared (`impl
    /// Into<Payload>` — a `Vec<u8>` moves in without a copy).
    pub async fn write(&self, node: NodeId, addr: u64, data: impl Into<Payload>) -> Option<()> {
        self.submit(
            node,
            vec![Op::Write {
                addr,
                data: data.into(),
            }],
        )
        .await?;
        Some(())
    }

    /// Convenience: single CAS; returns the previous value.
    pub async fn cas(&self, node: NodeId, addr: u64, expected: u64, new: u64) -> Option<u64> {
        let r = self
            .submit(
                node,
                vec![Op::Cas {
                    addr,
                    expected,
                    new,
                }],
            )
            .await?;
        Some(r.into_iter().next().unwrap().into_cas())
    }
}

struct QpClockRef {
    clock: Rc<RefCell<Vec<Nanos>>>,
    node: usize,
}

impl QpClockRef {
    fn get(&self) -> Nanos {
        self.clock.borrow()[self.node]
    }
    fn set(&self, v: Nanos) {
        self.clock.borrow_mut()[self.node] = v;
    }
}
