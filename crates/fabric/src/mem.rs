//! Raw node memory: a flat byte space with a bump allocator.
//!
//! This module is purely functional with respect to virtual time — the timing
//! of chunked write application lives in the fabric pipeline; `NodeMemory`
//! only provides the byte-level primitives (copy ranges, 8 B atomic CAS) and
//! allocation accounting used for the paper's memory-consumption numbers
//! (Table 3).

use std::cell::RefCell;

/// Byte-addressable memory of one simulated node.
#[derive(Debug, Default)]
pub struct NodeMemory {
    bytes: RefCell<Vec<u8>>,
    next: RefCell<u64>,
}

impl NodeMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `len` bytes with the given power-of-two alignment and
    /// returns the base address. Memory is zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&self, len: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let mut next = self.next.borrow_mut();
        let base = (*next + align - 1) & !(align - 1);
        *next = base + len;
        let mut bytes = self.bytes.borrow_mut();
        if bytes.len() < *next as usize {
            bytes.resize(*next as usize, 0);
        }
        base
    }

    /// Total bytes allocated so far (disaggregated-memory consumption).
    pub fn allocated_bytes(&self) -> u64 {
        *self.next.borrow()
    }

    /// Copies `data` into memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access (always an allocator-client bug).
    pub fn write(&self, addr: u64, data: &[u8]) {
        let mut bytes = self.bytes.borrow_mut();
        let start = addr as usize;
        let end = start + data.len();
        assert!(
            end <= bytes.len(),
            "write out of bounds: {addr}+{}",
            data.len()
        );
        bytes[start..end].copy_from_slice(data);
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    pub fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        let bytes = self.bytes.borrow();
        let start = addr as usize;
        let end = start + len;
        assert!(end <= bytes.len(), "read out of bounds: {addr}+{len}");
        bytes[start..end].to_vec()
    }

    /// Reads the 8 B little-endian word at `addr` (must be 8-aligned).
    pub fn read_u64(&self, addr: u64) -> u64 {
        assert_eq!(addr % 8, 0, "unaligned 64-bit read");
        let b = self.read(addr, 8);
        u64::from_le_bytes(b.try_into().unwrap())
    }

    /// Writes the 8 B little-endian word at `addr` (must be 8-aligned).
    pub fn write_u64(&self, addr: u64, v: u64) {
        assert_eq!(addr % 8, 0, "unaligned 64-bit write");
        self.write(addr, &v.to_le_bytes());
    }

    /// Atomic 64-bit compare-and-swap; returns the previous value.
    ///
    /// This mirrors the only atomic the paper assumes of the disaggregated
    /// memory (§2.1). The swap happens at a single simulation instant, so it
    /// can never be observed torn.
    pub fn cas_u64(&self, addr: u64, expected: u64, new: u64) -> u64 {
        let prev = self.read_u64(addr);
        if prev == expected {
            self.write_u64(addr, new);
        }
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let m = NodeMemory::new();
        let a = m.alloc(3, 1);
        let b = m.alloc(8, 8);
        assert_eq!(a, 0);
        assert_eq!(b % 8, 0);
        assert!(b >= 3);
        assert_eq!(m.allocated_bytes(), b + 8);
    }

    #[test]
    fn memory_is_zero_initialized() {
        let m = NodeMemory::new();
        let a = m.alloc(16, 8);
        assert_eq!(m.read(a, 16), vec![0u8; 16]);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let m = NodeMemory::new();
        let a = m.alloc(32, 8);
        let data: Vec<u8> = (0..32).collect();
        m.write(a, &data);
        assert_eq!(m.read(a, 32), data);
        assert_eq!(m.read(a + 4, 4), vec![4, 5, 6, 7]);
    }

    #[test]
    fn u64_roundtrip_little_endian() {
        let m = NodeMemory::new();
        let a = m.alloc(8, 8);
        m.write_u64(a, 0x1122334455667788);
        assert_eq!(m.read_u64(a), 0x1122334455667788);
        assert_eq!(m.read(a, 1), vec![0x88]);
    }

    #[test]
    fn cas_succeeds_only_on_match() {
        let m = NodeMemory::new();
        let a = m.alloc(8, 8);
        m.write_u64(a, 10);
        assert_eq!(m.cas_u64(a, 10, 20), 10);
        assert_eq!(m.read_u64(a), 20);
        assert_eq!(m.cas_u64(a, 10, 30), 20); // fails, returns current
        assert_eq!(m.read_u64(a), 20);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let m = NodeMemory::new();
        let a = m.alloc(8, 8);
        let _ = m.read(a, 16);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_cas_panics() {
        let m = NodeMemory::new();
        m.alloc(16, 8);
        m.cas_u64(4, 0, 1);
    }
}
