//! A simulated memory node: raw memory + NIC service queue + liveness flag.

use std::cell::Cell;
use std::rc::Rc;

use swarm_sim::{FifoResource, Sim};

use crate::mem::NodeMemory;

/// Identifier of a memory node within a [`crate::Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mn{}", self.0)
    }
}

/// One memory node. Memory nodes have **no compute capability**: the only
/// things that happen here are DMA reads/writes, the 8 B CAS, and NIC
/// serialization — faithfully mirroring the paper's setting (§2.1).
pub struct Node {
    mem: NodeMemory,
    nic: FifoResource,
    alive: Cell<bool>,
    /// Messages served (for accounting).
    messages: Cell<u64>,
    /// Request + response bytes through this node's NIC.
    bytes: Cell<u64>,
}

impl Node {
    pub(crate) fn new(sim: &Sim) -> Rc<Self> {
        Rc::new(Node {
            mem: NodeMemory::new(),
            nic: FifoResource::new(sim),
            alive: Cell::new(true),
            messages: Cell::new(0),
            bytes: Cell::new(0),
        })
    }

    /// Direct access to the node's memory (control plane / test use — data
    /// path operations must go through an [`crate::Endpoint`]).
    pub fn mem(&self) -> &NodeMemory {
        &self.mem
    }

    /// Allocates zeroed memory on this node (control-plane operation; the
    /// paper's clients pre-allocate buffers out of band, §5.3.1).
    pub fn alloc(&self, len: u64, align: u64) -> u64 {
        self.mem.alloc(len, align)
    }

    /// NIC service queue for inbound messages.
    pub(crate) fn nic(&self) -> &FifoResource {
        &self.nic
    }

    /// True until the node is crashed.
    pub fn is_alive(&self) -> bool {
        self.alive.get()
    }

    /// Crashes the node: all requests arriving from now on vanish silently.
    pub fn crash(&self) {
        self.alive.set(false);
    }

    /// Restarts a crashed node (memory contents are retained; the paper's
    /// recovery rebuilds in-place data lazily, §7.7).
    pub fn restart(&self) {
        self.alive.set(true);
    }

    pub(crate) fn account(&self, bytes: usize) {
        self.messages.set(self.messages.get() + 1);
        self.bytes.set(self.bytes.get() + bytes as u64);
    }

    /// Messages served by this node so far.
    pub fn messages(&self) -> u64 {
        self.messages.get()
    }

    /// Total request+response bytes through this node.
    pub fn traffic_bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Bytes of disaggregated memory allocated on this node.
    pub fn allocated_bytes(&self) -> u64 {
        self.mem.allocated_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_and_restart_toggle_liveness() {
        let sim = Sim::new(1);
        let n = Node::new(&sim);
        assert!(n.is_alive());
        n.crash();
        assert!(!n.is_alive());
        n.restart();
        assert!(n.is_alive());
    }

    #[test]
    fn accounting_accumulates() {
        let sim = Sim::new(1);
        let n = Node::new(&sim);
        n.account(100);
        n.account(50);
        assert_eq!(n.messages(), 2);
        assert_eq!(n.traffic_bytes(), 150);
    }
}
