//! Simulated RDMA-style disaggregated-memory fabric.
//!
//! This crate replaces the paper's hardware testbed (4 client servers + 4
//! memory nodes, ConnectX NICs, one 100 Gbps switch — Table 1). It preserves
//! exactly the three properties SWARM requires of the disaggregation
//! technology (§2.1):
//!
//! 1. **Plain reads and writes that need not be atomic.** Large writes apply
//!    to node memory in cache-line-sized chunks over time, so a concurrent
//!    read can observe *torn* data and concurrent writes can clobber each
//!    other — the failure mode In-n-Out's hash validation exists to detect.
//! 2. **A 64-bit atomic compare-and-swap** applied at a single instant.
//! 3. **FIFO pipelining**: operations submitted in one batch over the same
//!    queue pair execute in order at the node and complete in one roundtrip.
//!
//! The latency model has four components, each calibrated against the paper's
//! RAW baseline (§7.1): client CPU issue cost per message series (~200 ns,
//! §7.2), wire/switch propagation with lognormal jitter, store-and-forward
//! serialization at 100 Gbps, and node-side service. Crash injection drops
//! requests silently (a crashed memory node never answers; clients fail over
//! by timeout, §7.7). [`FaultPlan`] generalizes crash injection into seeded,
//! virtual-time chaos schedules — restarts, switch partitions, delay spikes,
//! probabilistic drop windows — all sharing the same silence semantics.
//!
//! # Examples
//!
//! ```
//! use swarm_sim::Sim;
//! use swarm_fabric::{Fabric, FabricConfig};
//!
//! let sim = Sim::new(1);
//! let fabric = Fabric::new(&sim, FabricConfig::default(), 3);
//! let addr = fabric.node(0.into()).alloc(64, 8);
//! let ep = fabric.endpoint();
//! let sim2 = sim.clone();
//! sim.block_on(async move {
//!     ep.write(0.into(), addr, vec![7u8; 64]).await.unwrap();
//!     let data = ep.read(0.into(), addr, 64).await.unwrap();
//!     assert_eq!(data, vec![7u8; 64]);
//!     assert!(sim2.now() > 1_000); // a realistic roundtrip elapsed
//! });
//! ```

mod config;
mod endpoint;
mod fabric;
mod fault;
mod mem;
mod node;
mod op;

pub use config::FabricConfig;
pub use endpoint::{Endpoint, EndpointStats};
pub use fabric::{Fabric, TrafficStats};
pub use fault::{FaultAction, FaultPlan};
pub use mem::NodeMemory;
pub use node::{Node, NodeId};
pub use op::{
    bloom_has, bloom_set, repair_bucket, repair_entry_stamp, repair_mix, Op, OpResult, Payload,
    RepairEntry, RepairSel, RepairTable,
};
