//! Fabric latency-model configuration.

use swarm_sim::{Jitter, Nanos};

/// Tunable latency/bandwidth model of the simulated fabric.
///
/// Defaults are calibrated so the RAW (unreplicated) key-value baseline
/// reproduces the paper's measured medians — 1.9 µs gets and 1.6 µs updates
/// with 64 B values (§7.1) — on which every comparative claim is anchored.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// CPU cost for a client core to issue one message series (§7.2 reports
    /// 200+ ns per series of RDMA operations).
    pub issue_ns: Nanos,
    /// One-way propagation (NIC + switch hop) jitter distribution.
    pub wire: Jitter,
    /// Link/switch bandwidth in bytes per nanosecond (100 Gbps = 12.5 B/ns).
    pub link_bytes_per_ns: f64,
    /// Fixed node-side service cost per inbound message.
    pub node_fixed_ns: Nanos,
    /// Extra node-side cost for serving a READ (DMA fetch of the payload).
    pub read_extra_ns: Nanos,
    /// Memory-write application granularity: a write lands in chunks of this
    /// many bytes; concurrent readers can observe torn data in between.
    pub chunk_bytes: usize,
    /// Memory bandwidth while applying write chunks (bytes per nanosecond).
    pub mem_bytes_per_ns: f64,
    /// Request/response header bytes (RoCE/IB + transport overheads).
    pub header_bytes: usize,
    /// Capacity of the shared switch fabric in bytes per nanosecond. All
    /// traffic serializes through this resource; it is what saturates in the
    /// 64-client scalability experiment (§7.3).
    pub switch_bytes_per_ns: f64,
    /// RNG stream for this fabric's per-message draws (wire jitter, fault
    /// drop rolls). `None` (the default) uses the simulation's shared
    /// stream — the historical behavior. `Some(label)` forks a private
    /// stream from `(sim seed, label)` so this fabric's draws cannot
    /// perturb — and are unperturbed by — any other subsystem; sharded
    /// clusters give every shard its own label (see `swarm_sim::SimRng`).
    pub rng_label: Option<u64>,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            issue_ns: 250,
            wire: Jitter::fabric(640.0),
            link_bytes_per_ns: 12.5,
            node_fixed_ns: 60,
            read_extra_ns: 290,
            chunk_bytes: 256,
            mem_bytes_per_ns: 25.0,
            header_bytes: 30,
            switch_bytes_per_ns: 12.5,
            rng_label: None,
        }
    }
}

impl FabricConfig {
    /// A deterministic configuration with zero jitter, for protocol tests
    /// that assert exact roundtrip counts and timings.
    pub fn deterministic() -> Self {
        FabricConfig {
            wire: Jitter::fixed(640.0),
            ..Self::default()
        }
    }

    /// Nanoseconds to push `bytes` through one link.
    pub fn link_ns(&self, bytes: usize) -> Nanos {
        (bytes as f64 / self.link_bytes_per_ns).ceil() as Nanos
    }

    /// Nanoseconds to apply one write chunk to node memory.
    pub fn chunk_ns(&self) -> Nanos {
        (self.chunk_bytes as f64 / self.mem_bytes_per_ns).ceil() as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_100gbps() {
        let c = FabricConfig::default();
        assert!((c.link_bytes_per_ns - 12.5).abs() < 1e-9);
        assert_eq!(c.link_ns(125), 10);
    }

    #[test]
    fn chunk_time_positive() {
        let c = FabricConfig::default();
        assert!(c.chunk_ns() >= 1);
    }
}
