//! The fabric: memory nodes, the shared switch, and global traffic stats.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use swarm_sim::{FifoResource, OneshotSender, Sim};

use crate::config::FabricConfig;
use crate::endpoint::Endpoint;
use crate::node::{Node, NodeId};
use crate::op::OpResult;

/// Aggregate traffic counters (drives the paper's IO-bandwidth numbers,
/// Table 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Total messages that entered the fabric.
    pub messages: u64,
    /// Total request + response bytes.
    pub bytes: u64,
}

pub(crate) struct FabricInner {
    pub(crate) sim: Sim,
    pub(crate) cfg: FabricConfig,
    pub(crate) nodes: Vec<Rc<Node>>,
    pub(crate) switch: FifoResource,
    /// Response senders owned by crashed nodes: kept alive so the client
    /// side observes *silence* (failure detection is timeout-driven, §7.7),
    /// not an eager error.
    pub(crate) graveyard: RefCell<Vec<OneshotSender<Vec<OpResult>>>>,
    pub(crate) endpoints: Cell<usize>,
    pub(crate) stats: Cell<TrafficStats>,
}

/// Handle to the simulated disaggregated-memory fabric.
#[derive(Clone)]
pub struct Fabric {
    pub(crate) inner: Rc<FabricInner>,
}

impl Fabric {
    /// Creates a fabric with `num_nodes` memory nodes.
    pub fn new(sim: &Sim, cfg: FabricConfig, num_nodes: usize) -> Self {
        assert!(num_nodes >= 1, "fabric needs at least one memory node");
        Fabric {
            inner: Rc::new(FabricInner {
                sim: sim.clone(),
                cfg,
                nodes: (0..num_nodes).map(|_| Node::new(sim)).collect(),
                switch: FifoResource::new(sim),
                graveyard: RefCell::new(Vec::new()),
                endpoints: Cell::new(0),
                stats: Cell::new(TrafficStats::default()),
            }),
        }
    }

    /// The simulation this fabric runs in.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// The latency-model configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.inner.cfg
    }

    /// Number of memory nodes.
    pub fn num_nodes(&self) -> usize {
        self.inner.nodes.len()
    }

    /// Access to a memory node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> Rc<Node> {
        Rc::clone(&self.inner.nodes[id.0])
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.num_nodes()).map(NodeId).collect()
    }

    /// Crashes a node: requests arriving from now on are dropped silently.
    pub fn crash_node(&self, id: NodeId) {
        self.inner.nodes[id.0].crash();
    }

    /// Creates a client endpoint with its own dedicated CPU core.
    pub fn endpoint(&self) -> Endpoint {
        let cpu = FifoResource::new(&self.inner.sim);
        self.endpoint_with_cpu(cpu)
    }

    /// Creates a client endpoint sharing an existing CPU core (models two
    /// hyperthreads or co-located client threads).
    pub fn endpoint_with_cpu(&self, cpu: FifoResource) -> Endpoint {
        let id = self.inner.endpoints.get();
        self.inner.endpoints.set(id + 1);
        Endpoint::new(self.clone(), id, cpu)
    }

    /// Global traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.inner.stats.get()
    }

    /// Total disaggregated memory allocated across all nodes, in bytes.
    pub fn total_allocated_bytes(&self) -> u64 {
        self.inner.nodes.iter().map(|n| n.allocated_bytes()).sum()
    }

    pub(crate) fn account(&self, bytes: usize) {
        let mut s = self.inner.stats.get();
        s.messages += 1;
        s.bytes += bytes as u64;
        self.inner.stats.set(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_exposes_nodes() {
        let sim = Sim::new(1);
        let f = Fabric::new(&sim, FabricConfig::default(), 4);
        assert_eq!(f.num_nodes(), 4);
        assert_eq!(f.node_ids().len(), 4);
        f.crash_node(NodeId(2));
        assert!(!f.node(NodeId(2)).is_alive());
        assert!(f.node(NodeId(1)).is_alive());
    }

    #[test]
    fn endpoints_get_distinct_ids() {
        let sim = Sim::new(1);
        let f = Fabric::new(&sim, FabricConfig::default(), 1);
        let a = f.endpoint();
        let b = f.endpoint();
        assert_ne!(a.id(), b.id());
    }
}
