//! The fabric: memory nodes, the shared switch, and global traffic stats.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use swarm_sim::{FifoResource, Nanos, OneshotSender, Sim, SimRng};

use crate::config::FabricConfig;
use crate::endpoint::Endpoint;
use crate::fault::{FaultAction, FaultPlan};
use crate::node::{Node, NodeId};
use crate::op::OpResult;

/// Aggregate traffic counters (drives the paper's IO-bandwidth numbers,
/// Table 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Total messages that entered the fabric.
    pub messages: u64,
    /// Total request + response bytes.
    pub bytes: u64,
    /// Hedge requests issued (tail-latency mitigation): extra copies of a
    /// quorum request sent after the per-destination p99 delay elapsed.
    /// Always 0 with hedging disabled.
    pub hedges_fired: u64,
    /// Hedges whose response arrived in time to count toward completing the
    /// operation that fired them.
    pub hedges_won: u64,
    /// Hedges whose response was not needed (the original quorum completed
    /// first); their delivery is idempotently discarded.
    pub duplicates_discarded: u64,
}

impl std::ops::AddAssign for TrafficStats {
    // Field-exhaustive so aggregation (e.g. a sharded cluster summing its
    // per-shard fabrics) cannot silently drop a counter added later.
    fn add_assign(&mut self, rhs: TrafficStats) {
        let TrafficStats {
            messages,
            bytes,
            hedges_fired,
            hedges_won,
            duplicates_discarded,
        } = rhs;
        self.messages += messages;
        self.bytes += bytes;
        self.hedges_fired += hedges_fired;
        self.hedges_won += hedges_won;
        self.duplicates_discarded += duplicates_discarded;
    }
}

/// Per-node injected-fault state (see [`FaultPlan`]). Windows are stored as
/// absolute virtual-time horizons so queries are O(1) cell reads on the hot
/// path; a healthy fabric pays nothing but the branch.
struct FaultState {
    partitioned: Vec<bool>,
    delay_until: Vec<Nanos>,
    delay_extra: Vec<Nanos>,
    drop_until: Vec<Nanos>,
    drop_permille: Vec<u16>,
}

impl FaultState {
    fn new(n: usize) -> Self {
        FaultState {
            partitioned: vec![false; n],
            delay_until: vec![0; n],
            delay_extra: vec![0; n],
            drop_until: vec![0; n],
            drop_permille: vec![0; n],
        }
    }
}

pub(crate) struct FabricInner {
    pub(crate) sim: Sim,
    pub(crate) cfg: FabricConfig,
    pub(crate) nodes: Vec<Rc<Node>>,
    pub(crate) switch: FifoResource,
    /// Response senders owned by crashed nodes: kept alive so the client
    /// side observes *silence* (failure detection is timeout-driven, §7.7),
    /// not an eager error.
    pub(crate) graveyard: RefCell<Vec<OneshotSender<Vec<OpResult>>>>,
    pub(crate) endpoints: Cell<usize>,
    pub(crate) stats: Cell<TrafficStats>,
    /// Stream for per-message draws (wire jitter, drop rolls): the shared
    /// simulation stream, or a private fork per `FabricConfig::rng_label`.
    pub(crate) rng: SimRng,
    faults: RefCell<FaultState>,
}

/// Handle to the simulated disaggregated-memory fabric.
#[derive(Clone)]
pub struct Fabric {
    pub(crate) inner: Rc<FabricInner>,
}

impl Fabric {
    /// Creates a fabric with `num_nodes` memory nodes.
    pub fn new(sim: &Sim, cfg: FabricConfig, num_nodes: usize) -> Self {
        assert!(num_nodes >= 1, "fabric needs at least one memory node");
        let rng = match cfg.rng_label {
            Some(label) => sim.fork_rng(label),
            None => SimRng::shared(sim),
        };
        Fabric {
            inner: Rc::new(FabricInner {
                sim: sim.clone(),
                cfg,
                nodes: (0..num_nodes).map(|_| Node::new(sim)).collect(),
                switch: FifoResource::new(sim),
                graveyard: RefCell::new(Vec::new()),
                endpoints: Cell::new(0),
                stats: Cell::new(TrafficStats::default()),
                rng,
                faults: RefCell::new(FaultState::new(num_nodes)),
            }),
        }
    }

    /// The stream this fabric's per-message draws come from.
    pub fn rng(&self) -> &SimRng {
        &self.inner.rng
    }

    /// The simulation this fabric runs in.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// The latency-model configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.inner.cfg
    }

    /// Number of memory nodes.
    pub fn num_nodes(&self) -> usize {
        self.inner.nodes.len()
    }

    /// Access to a memory node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> Rc<Node> {
        Rc::clone(&self.inner.nodes[id.0])
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.num_nodes()).map(NodeId).collect()
    }

    /// Crashes a node: requests arriving from now on are dropped silently.
    pub fn crash_node(&self, id: NodeId) {
        self.inner.nodes[id.0].crash();
    }

    /// Restarts a crashed node (memory contents retained, §7.7).
    pub fn restart_node(&self, id: NodeId) {
        self.inner.nodes[id.0].restart();
    }

    /// Cuts the switch ports to `id`: messages to/from it vanish silently
    /// until [`Fabric::heal_node`]. The node itself stays alive, so —
    /// unlike a crash — lease-based membership keeps considering it healthy.
    pub fn partition_node(&self, id: NodeId) {
        self.inner.faults.borrow_mut().partitioned[id.0] = true;
    }

    /// Reconnects a partitioned node.
    pub fn heal_node(&self, id: NodeId) {
        self.inner.faults.borrow_mut().partitioned[id.0] = false;
    }

    /// True while `id` is cut off by a partition.
    pub fn is_partitioned(&self, id: NodeId) -> bool {
        self.inner.faults.borrow().partitioned[id.0]
    }

    /// Adds `extra_ns` one-way latency on messages to/from `id` until
    /// virtual time `until` (overwrites any previous spike on the node).
    pub fn delay_node(&self, id: NodeId, extra_ns: Nanos, until: Nanos) {
        let mut f = self.inner.faults.borrow_mut();
        f.delay_extra[id.0] = extra_ns;
        f.delay_until[id.0] = until;
    }

    /// Drops each message to/from `id` with probability `permille`/1000
    /// until virtual time `until` (overwrites any previous window). Drops
    /// draw from the simulation RNG, so a seed fixes which messages die.
    pub fn drop_node(&self, id: NodeId, permille: u16, until: Nanos) {
        assert!(permille <= 1000, "permille is out of 1000");
        let mut f = self.inner.faults.borrow_mut();
        f.drop_permille[id.0] = permille;
        f.drop_until[id.0] = until;
    }

    /// Schedules every event of `plan` onto the simulation. Windowed
    /// actions (delay spikes, drop windows) expire on their own; explicit
    /// pairs (crash/restart, partition/heal) last until their counterpart.
    pub fn apply_fault_plan(&self, plan: &FaultPlan) {
        for &(at, action) in plan.events() {
            // Fail fast at apply time: a bad plan panicking inside a
            // scheduled closure mid-simulation would not name the culprit.
            assert!(
                action.node().0 < self.num_nodes(),
                "fault plan targets {} but the fabric has {} nodes (action: {action})",
                action.node(),
                self.num_nodes()
            );
            let fabric = self.clone();
            self.inner.sim.schedule_at(at, move |sim| {
                let now = sim.now();
                match action {
                    FaultAction::Crash(n) => fabric.crash_node(n),
                    FaultAction::Restart(n) => fabric.restart_node(n),
                    FaultAction::Partition(n) => fabric.partition_node(n),
                    FaultAction::Heal(n) => fabric.heal_node(n),
                    FaultAction::DelaySpike {
                        node,
                        extra_ns,
                        duration_ns,
                    } => fabric.delay_node(node, extra_ns, now + duration_ns),
                    FaultAction::DropWindow {
                        node,
                        permille,
                        duration_ns,
                    } => fabric.drop_node(node, permille, now + duration_ns),
                }
            });
        }
    }

    /// Extra one-way latency currently injected on `node`'s links (0 when
    /// no delay spike is active).
    pub(crate) fn fault_extra_ns(&self, node: NodeId) -> Nanos {
        let f = self.inner.faults.borrow();
        if self.inner.sim.now() < f.delay_until[node.0] {
            f.delay_extra[node.0]
        } else {
            0
        }
    }

    /// Per-message silence check: true if the message must vanish because
    /// the node is partitioned or an active drop window's coin flip says
    /// so. Draws from this fabric's RNG stream *only* inside an active drop
    /// window, so healthy runs keep their RNG stream bit-identical.
    pub(crate) fn fault_silences(&self, node: NodeId) -> bool {
        let permille = {
            let f = self.inner.faults.borrow();
            if f.partitioned[node.0] {
                return true;
            }
            if self.inner.sim.now() < f.drop_until[node.0] {
                f.drop_permille[node.0]
            } else {
                return false;
            }
        };
        self.inner.rng.rand_range(0, 1000) < permille as u64
    }

    /// Creates a client endpoint with its own dedicated CPU core.
    pub fn endpoint(&self) -> Endpoint {
        let cpu = FifoResource::new(&self.inner.sim);
        self.endpoint_with_cpu(cpu)
    }

    /// Creates a client endpoint sharing an existing CPU core (models two
    /// hyperthreads or co-located client threads).
    pub fn endpoint_with_cpu(&self, cpu: FifoResource) -> Endpoint {
        let id = self.inner.endpoints.get();
        self.inner.endpoints.set(id + 1);
        Endpoint::new(self.clone(), id, cpu)
    }

    /// Global traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.inner.stats.get()
    }

    /// Total disaggregated memory allocated across all nodes, in bytes.
    pub fn total_allocated_bytes(&self) -> u64 {
        self.inner.nodes.iter().map(|n| n.allocated_bytes()).sum()
    }

    pub(crate) fn account(&self, bytes: usize) {
        let mut s = self.inner.stats.get();
        s.messages += 1;
        s.bytes += bytes as u64;
        self.inner.stats.set(s);
    }

    /// Records one hedge request fired (tail-latency layer).
    pub fn note_hedge_fired(&self) {
        let mut s = self.inner.stats.get();
        s.hedges_fired += 1;
        self.inner.stats.set(s);
    }

    /// Records a hedge whose response counted toward its operation.
    pub fn note_hedge_won(&self) {
        let mut s = self.inner.stats.get();
        s.hedges_won += 1;
        self.inner.stats.set(s);
    }

    /// Records a hedge whose response was superfluous and discarded.
    pub fn note_duplicate_discarded(&self) {
        let mut s = self.inner.stats.get();
        s.duplicates_discarded += 1;
        self.inner.stats.set(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_exposes_nodes() {
        let sim = Sim::new(1);
        let f = Fabric::new(&sim, FabricConfig::default(), 4);
        assert_eq!(f.num_nodes(), 4);
        assert_eq!(f.node_ids().len(), 4);
        f.crash_node(NodeId(2));
        assert!(!f.node(NodeId(2)).is_alive());
        assert!(f.node(NodeId(1)).is_alive());
    }

    #[test]
    fn hedge_counters_accumulate_and_merge_exhaustively() {
        let sim = Sim::new(1);
        let f = Fabric::new(&sim, FabricConfig::default(), 1);
        f.note_hedge_fired();
        f.note_hedge_fired();
        f.note_hedge_won();
        f.note_duplicate_discarded();
        let s = f.stats();
        assert_eq!(
            (s.hedges_fired, s.hedges_won, s.duplicates_discarded),
            (2, 1, 1)
        );
        // Every hedge either wins or is discarded.
        assert_eq!(s.hedges_won + s.duplicates_discarded, s.hedges_fired);

        // AddAssign (the shard aggregation path) carries the new counters.
        let mut total = TrafficStats::default();
        total += s;
        total += s;
        assert_eq!(total.hedges_fired, 4);
        assert_eq!(total.hedges_won, 2);
        assert_eq!(total.duplicates_discarded, 2);
    }

    #[test]
    fn endpoints_get_distinct_ids() {
        let sim = Sim::new(1);
        let f = Fabric::new(&sim, FabricConfig::default(), 1);
        let a = f.endpoint();
        let b = f.endpoint();
        assert_ne!(a.id(), b.id());
    }
}
