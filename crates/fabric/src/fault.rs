//! Deterministic fault injection: seeded, virtual-time schedules of crashes,
//! restarts, partitions, delay spikes, and message-drop windows.
//!
//! A [`FaultPlan`] is data — an ordered list of `(virtual time, action)`
//! pairs — applied to a fabric with [`crate::Fabric::apply_fault_plan`].
//! Because the plan is pure data and the simulator is deterministic, a seed
//! pins the *entire* failure schedule: a failing chaos run is reproduced by
//! re-running the same `(workload seed, plan)` pair.
//!
//! Every fault kind shares the fabric's crash semantics (§7.7): affected
//! messages vanish *silently* (the response sender parks in the graveyard),
//! never as an eager error — clients learn about failures only through
//! timeouts, exactly like a real one-sided RDMA deployment.

use swarm_sim::Nanos;

use crate::node::NodeId;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash a memory node: requests from now on vanish silently and the
    /// membership service may eventually declare it dead.
    Crash(NodeId),
    /// Restart a crashed node (memory contents retained, §7.7).
    Restart(NodeId),
    /// Cut the switch ports to a node: messages to/from it vanish silently,
    /// but the node stays *alive* — leases keep renewing, so unlike a crash
    /// the membership service never declares it dead.
    Partition(NodeId),
    /// Reconnect a partitioned node.
    Heal(NodeId),
    /// Add `extra_ns` of one-way latency on every message to/from `node`
    /// for the next `duration_ns` of virtual time (a congested or flapping
    /// link).
    DelaySpike {
        /// Affected node.
        node: NodeId,
        /// Extra one-way latency per message.
        extra_ns: Nanos,
        /// Window length from the moment the action fires.
        duration_ns: Nanos,
    },
    /// Drop each message to/from `node` with probability `permille`/1000
    /// for the next `duration_ns` of virtual time. Drops draw from the
    /// simulation RNG, so a seed fixes which messages die.
    DropWindow {
        /// Affected node.
        node: NodeId,
        /// Drop probability in 1/1000ths (1000 = drop everything).
        permille: u16,
        /// Window length from the moment the action fires.
        duration_ns: Nanos,
    },
}

impl FaultAction {
    /// The memory node this action targets.
    pub fn node(&self) -> NodeId {
        match *self {
            FaultAction::Crash(n)
            | FaultAction::Restart(n)
            | FaultAction::Partition(n)
            | FaultAction::Heal(n) => n,
            FaultAction::DelaySpike { node, .. } | FaultAction::DropWindow { node, .. } => node,
        }
    }
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAction::Crash(n) => write!(f, "crash {n}"),
            FaultAction::Restart(n) => write!(f, "restart {n}"),
            FaultAction::Partition(n) => write!(f, "partition {n}"),
            FaultAction::Heal(n) => write!(f, "heal {n}"),
            FaultAction::DelaySpike {
                node,
                extra_ns,
                duration_ns,
            } => write!(f, "delay {node} +{extra_ns}ns for {duration_ns}ns"),
            FaultAction::DropWindow {
                node,
                permille,
                duration_ns,
            } => write!(f, "drop {node} {permille}/1000 for {duration_ns}ns"),
        }
    }
}

/// A seeded, virtual-time schedule of fault events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<(Nanos, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan (healthy run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an action at virtual time `at`.
    pub fn at(mut self, at: Nanos, action: FaultAction) -> Self {
        self.events.push((at, action));
        self
    }

    /// Crash `node` at `at`.
    pub fn crash_at(self, at: Nanos, node: NodeId) -> Self {
        self.at(at, FaultAction::Crash(node))
    }

    /// Restart `node` at `at`.
    pub fn restart_at(self, at: Nanos, node: NodeId) -> Self {
        self.at(at, FaultAction::Restart(node))
    }

    /// Partition `node` from `at` until `until`.
    pub fn partition_between(self, at: Nanos, until: Nanos, node: NodeId) -> Self {
        assert!(until > at, "partition window must have positive length");
        self.at(at, FaultAction::Partition(node))
            .at(until, FaultAction::Heal(node))
    }

    /// Add `extra_ns` one-way latency to `node` during `[at, at + duration)`.
    pub fn delay_spike(self, at: Nanos, node: NodeId, extra_ns: Nanos, duration_ns: Nanos) -> Self {
        self.at(
            at,
            FaultAction::DelaySpike {
                node,
                extra_ns,
                duration_ns,
            },
        )
    }

    /// Drop messages to/from `node` with probability `permille`/1000 during
    /// `[at, at + duration)`.
    pub fn drop_window(self, at: Nanos, node: NodeId, permille: u16, duration_ns: Nanos) -> Self {
        assert!(permille <= 1000, "permille is out of 1000");
        self.at(
            at,
            FaultAction::DropWindow {
                node,
                permille,
                duration_ns,
            },
        )
    }

    /// The scheduled events, in insertion order (application order at equal
    /// times follows the simulator's deterministic tie-break).
    pub fn events(&self) -> &[(Nanos, FaultAction)] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a deterministic pseudo-random plan over `nodes` memory
    /// nodes within `[horizon/8, horizon)`: a mix of crash/restart pairs,
    /// partition windows, delay spikes, and drop windows. The same seed
    /// always yields the same plan.
    pub fn random(seed: u64, nodes: usize, horizon: Nanos) -> Self {
        assert!(nodes >= 1);
        assert!(horizon >= 8);
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        let mut next = move || splitmix64(&mut state);
        let mut rng = move |lo: u64, hi: u64| lo + next() % (hi - lo).max(1);
        let n_events = 2 + (rng(0, 3) as usize);
        let mut plan = FaultPlan::new();
        for _ in 0..n_events {
            let node = NodeId(rng(0, nodes as u64) as usize);
            let at = rng(horizon / 8, horizon / 2);
            // Clamped so tiny horizons still yield valid (positive-length)
            // windows.
            let dur = rng(horizon / 16, horizon / 4).max(1);
            plan = match rng(0, 4) {
                0 => plan.crash_at(at, node).restart_at(at + dur, node),
                1 => plan.partition_between(at, at + dur, node),
                2 => plan.delay_spike(at, node, rng(5_000, 25_000), dur),
                _ => plan.drop_window(at, node, rng(100, 700) as u16, dur),
            };
        }
        plan
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.events.is_empty() {
            return write!(f, "(no faults)");
        }
        for (i, (at, a)) in self.events.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "t={at}ns: {a}")?;
        }
        Ok(())
    }
}

/// SplitMix64: a tiny deterministic generator so plan *generation* does not
/// consume (and thus perturb) the simulation RNG stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events_in_order() {
        let p = FaultPlan::new()
            .crash_at(100, NodeId(1))
            .restart_at(300, NodeId(1))
            .partition_between(50, 80, NodeId(0));
        assert_eq!(p.len(), 4);
        assert_eq!(p.events()[0], (100, FaultAction::Crash(NodeId(1))));
        assert_eq!(p.events()[3], (80, FaultAction::Heal(NodeId(0))));
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(42, 4, 1_000_000);
        let b = FaultPlan::random(42, 4, 1_000_000);
        assert_eq!(a, b);
        let c = FaultPlan::random(43, 4, 1_000_000);
        assert_ne!(a, c, "different seeds should differ");
        assert!(!a.is_empty());
    }

    #[test]
    fn random_plan_handles_tiny_horizons() {
        // Durations are clamped to >= 1 ns, so even the minimum horizon
        // yields valid positive-length windows for every seed.
        for seed in 0..200 {
            let _ = FaultPlan::random(seed, 2, 8);
        }
    }

    #[test]
    fn random_plan_nodes_are_in_range() {
        for seed in 0..50 {
            for (_, a) in FaultPlan::random(seed, 3, 500_000).events() {
                assert!(a.node().0 < 3);
            }
        }
    }

    #[test]
    fn display_is_humane() {
        let p = FaultPlan::new().crash_at(10, NodeId(2));
        assert_eq!(format!("{p}"), "t=10ns: crash mn2");
        assert_eq!(format!("{}", FaultPlan::new()), "(no faults)");
    }
}
