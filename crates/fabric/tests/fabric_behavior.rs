//! Behavioral tests for the simulated fabric: the three properties SWARM
//! requires of the disaggregation technology (§2.1), plus failure semantics
//! and latency calibration.

use std::cell::RefCell;
use std::rc::Rc;

use swarm_fabric::{Fabric, FabricConfig, NodeId, Op};
use swarm_sim::{timeout_at, Nanos, Quorum, Sim, NANOS_PER_MICRO};

fn setup(seed: u64, cfg: FabricConfig, nodes: usize) -> (Sim, Fabric) {
    let sim = Sim::new(seed);
    let fabric = Fabric::new(&sim, cfg, nodes);
    (sim, fabric)
}

#[test]
fn write_then_read_roundtrips_through_the_wire() {
    let (sim, fabric) = setup(1, FabricConfig::deterministic(), 1);
    let addr = fabric.node(NodeId(0)).alloc(128, 8);
    let ep = fabric.endpoint();
    sim.block_on(async move {
        ep.write(
            NodeId(0),
            addr,
            (0..128u8).map(|i| i ^ 0x5a).collect::<Vec<u8>>(),
        )
        .await
        .unwrap();
        let got = ep.read(NodeId(0), addr, 128).await.unwrap();
        assert_eq!(got, (0..128u8).map(|i| i ^ 0x5a).collect::<Vec<_>>());
    });
}

#[test]
fn raw_roundtrip_latency_is_in_the_microsecond_range() {
    // Calibration guard: a small read should take 1.5–2.5 µs, matching the
    // RAW baseline the paper anchors on (§7.1).
    let (sim, fabric) = setup(2, FabricConfig::default(), 1);
    let addr = fabric.node(NodeId(0)).alloc(64, 8);
    let ep = fabric.endpoint();
    let sim2 = sim.clone();
    let rtt = sim.block_on(async move {
        let t0 = sim2.now();
        ep.read(NodeId(0), addr, 64).await.unwrap();
        sim2.now() - t0
    });
    assert!(
        (1_500..2_500).contains(&rtt),
        "unexpected RAW-like read RTT: {rtt} ns"
    );
}

#[test]
fn pipelined_series_applies_in_fifo_order_in_one_roundtrip() {
    // Write a buffer and CAS a metadata word in ONE series: if the CAS is
    // visible, the buffer write must be fully visible too (In-n-Out's
    // cornerstone, Algorithm 5).
    let (sim, fabric) = setup(3, FabricConfig::deterministic(), 1);
    let node = NodeId(0);
    let buf = fabric.node(node).alloc(1024, 8);
    let meta = fabric.node(node).alloc(8, 8);
    let ep = fabric.endpoint();
    let ep_reader = fabric.endpoint();
    let sim2 = sim.clone();

    // Reader polls metadata; as soon as it flips, the buffer must be complete.
    let observed = Rc::new(RefCell::new(Vec::new()));
    let obs = Rc::clone(&observed);
    sim.spawn(async move {
        loop {
            let r = ep_reader
                .submit(
                    node,
                    vec![
                        Op::Read { addr: meta, len: 8 },
                        Op::Read {
                            addr: buf,
                            len: 1024,
                        },
                    ],
                )
                .await
                .unwrap();
            let m = u64::from_le_bytes(r[0].clone().into_read().try_into().unwrap());
            if m == 1 {
                obs.borrow_mut().push(r[1].clone().into_read());
                return;
            }
        }
    });

    sim.block_on(async move {
        sim2.sleep_ns(500).await;
        ep.submit(
            node,
            vec![
                Op::Write {
                    addr: buf,
                    data: vec![0xAB; 1024].into(),
                },
                Op::Cas {
                    addr: meta,
                    expected: 0,
                    new: 1,
                },
            ],
        )
        .await
        .unwrap();
    });
    let seen = observed.borrow();
    assert_eq!(seen.len(), 1);
    assert_eq!(seen[0], vec![0xAB; 1024], "metadata visible before data");
}

#[test]
fn concurrent_large_write_can_tear_a_read() {
    // Start a large write; read the same region mid-flight from another
    // endpoint. With chunked application some reads must observe a mix of
    // old and new bytes.
    let (sim, fabric) = setup(4, FabricConfig::default(), 1);
    let node = NodeId(0);
    let len = 8192usize;
    let addr = fabric.node(node).alloc(len as u64, 8);
    let w = fabric.endpoint();

    let done = Rc::new(RefCell::new(false));
    let torn = Rc::new(RefCell::new(false));
    for _ in 0..4 {
        let r = fabric.endpoint();
        let torn2 = Rc::clone(&torn);
        let done2 = Rc::clone(&done);
        sim.spawn(async move {
            while !*done2.borrow() {
                let data = r.read(node, addr, len).await.unwrap();
                let first = data[0];
                if data.iter().any(|&b| b != first) {
                    *torn2.borrow_mut() = true;
                }
            }
        });
    }
    let done2 = Rc::clone(&done);
    sim.spawn(async move {
        for i in 0..200u32 {
            w.write(node, addr, vec![i as u8; len]).await.unwrap();
        }
        *done2.borrow_mut() = true;
    });
    sim.run();
    assert!(*torn.borrow(), "no torn read observed for an 8 KiB write");
}

#[test]
fn cas_is_atomic_under_contention() {
    // 8 endpoints CAS-increment the same word 32 times each; every increment
    // must be applied exactly once (no lost updates).
    let (sim, fabric) = setup(5, FabricConfig::default(), 1);
    let node = NodeId(0);
    let addr = fabric.node(node).alloc(8, 8);
    for _ in 0..8 {
        let ep = fabric.endpoint();
        sim.spawn(async move {
            for _ in 0..32 {
                loop {
                    let cur = ep.read(node, addr, 8).await.unwrap();
                    let cur = u64::from_le_bytes(cur.try_into().unwrap());
                    let prev = ep.cas(node, addr, cur, cur + 1).await.unwrap();
                    if prev == cur {
                        break;
                    }
                }
            }
        });
    }
    sim.run();
    assert_eq!(fabric.node(node).mem().read_u64(addr), 8 * 32);
}

#[test]
fn crashed_node_is_silent_not_erroring() {
    let (sim, fabric) = setup(6, FabricConfig::default(), 2);
    let addr = fabric.node(NodeId(0)).alloc(8, 8);
    fabric.node(NodeId(1)).alloc(8, 8);
    fabric.crash_node(NodeId(0));
    let ep = fabric.endpoint();
    let sim2 = sim.clone();
    sim.block_on(async move {
        let mut q = Quorum::new(1);
        q.push(async move { ep.read(NodeId(0), addr, 8).await });
        let r = timeout_at(&sim2, 50 * NANOS_PER_MICRO, &mut q).await;
        assert!(r.is_err(), "crashed node answered");
        assert_eq!(q.completed(), 0);
    });
}

#[test]
fn qp_delivery_is_fifo_per_node() {
    // Two back-to-back single-op series on the same QP must be applied in
    // submission order even with jitter.
    for seed in 0..20 {
        let (sim, fabric) = setup(100 + seed, FabricConfig::default(), 1);
        let node = NodeId(0);
        let addr = fabric.node(node).alloc(8, 8);
        let ep = fabric.endpoint();
        sim.spawn(async move {
            // Submit both without awaiting the first.
            let r1 = ep.submit(
                node,
                vec![Op::Write {
                    addr,
                    data: 1u64.to_le_bytes().to_vec().into(),
                }],
            );
            let r2 = ep.submit(
                node,
                vec![Op::Write {
                    addr,
                    data: 2u64.to_le_bytes().to_vec().into(),
                }],
            );
            let (a, b) = swarm_sim::join2(r1, r2).await;
            assert!(a.is_some() && b.is_some());
        });
        sim.run();
        assert_eq!(
            fabric.node(node).mem().read_u64(addr),
            2,
            "seed {seed}: QP order violated"
        );
    }
}

#[test]
fn dropped_receiver_still_applies_the_write() {
    // Fire-and-forget background writes must land.
    let (sim, fabric) = setup(7, FabricConfig::default(), 1);
    let node = NodeId(0);
    let addr = fabric.node(node).alloc(8, 8);
    let ep = fabric.endpoint();
    drop(ep.submit(
        node,
        vec![Op::Write {
            addr,
            data: 7u64.to_le_bytes().to_vec().into(),
        }],
    ));
    sim.run();
    assert_eq!(fabric.node(node).mem().read_u64(addr), 7);
}

#[test]
fn traffic_stats_accumulate() {
    let (sim, fabric) = setup(8, FabricConfig::default(), 1);
    let node = NodeId(0);
    let addr = fabric.node(node).alloc(64, 8);
    let ep = fabric.endpoint();
    sim.block_on(async move {
        ep.read(node, addr, 64).await.unwrap();
        ep.write(node, addr, vec![0; 64]).await.unwrap();
    });
    let s = fabric.stats();
    assert_eq!(s.messages, 2);
    assert!(s.bytes > 128);
    assert_eq!(fabric.node(node).messages(), 2);
}

#[test]
fn switch_saturation_adds_queuing_delay() {
    // Blast many large writes concurrently: per-op latency must exceed the
    // uncontended RTT because the shared switch serializes them.
    let uncontended = one_write_latency(1, 1);
    let contended = one_write_latency(64, 64);
    assert!(
        contended > uncontended * 3,
        "no queuing under load: {uncontended} vs {contended}"
    );
}

fn one_write_latency(writers: usize, measure_concurrency: usize) -> Nanos {
    let (sim, fabric) = setup(9, FabricConfig::deterministic(), 1);
    let node = NodeId(0);
    let total = Rc::new(RefCell::new(0u64));
    let count = Rc::new(RefCell::new(0u64));
    for _ in 0..writers.min(measure_concurrency) {
        let addr = fabric.node(node).alloc(8192, 8);
        let ep = fabric.endpoint();
        let total = Rc::clone(&total);
        let count = Rc::clone(&count);
        let sim2 = sim.clone();
        sim.spawn(async move {
            let t0 = sim2.now();
            ep.write(node, addr, vec![0xEE; 8192]).await.unwrap();
            *total.borrow_mut() += sim2.now() - t0;
            *count.borrow_mut() += 1;
        });
    }
    sim.run();
    let t = *total.borrow() / *count.borrow();
    t
}

// ---- injected faults (FaultPlan) ----

use swarm_fabric::{FaultAction, FaultPlan};

#[test]
fn partitioned_node_is_silent_until_healed() {
    let (sim, fabric) = setup(20, FabricConfig::default(), 2);
    let addr = fabric.node(NodeId(0)).alloc(8, 8);
    fabric.node(NodeId(0)).mem().write_u64(addr, 5);
    fabric.partition_node(NodeId(0));
    assert!(fabric.is_partitioned(NodeId(0)));
    assert!(
        fabric.node(NodeId(0)).is_alive(),
        "partition is not a crash"
    );
    let ep = fabric.endpoint();
    let sim2 = sim.clone();
    let f2 = fabric.clone();
    sim.block_on(async move {
        let mut q = Quorum::new(1);
        let ep2 = Rc::new(ep);
        let ep3 = Rc::clone(&ep2);
        q.push(async move { ep3.read(NodeId(0), addr, 8).await });
        let r = timeout_at(&sim2, 50 * NANOS_PER_MICRO, &mut q).await;
        assert!(r.is_err(), "partitioned node answered");
        f2.heal_node(NodeId(0));
        // After healing, fresh requests get through (memory intact).
        let got = ep2.read(NodeId(0), addr, 8).await.unwrap();
        assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), 5);
    });
}

#[test]
fn delay_spike_inflates_the_rtt_then_expires() {
    let rtt = |spiked: bool| {
        let (sim, fabric) = setup(21, FabricConfig::deterministic(), 1);
        let addr = fabric.node(NodeId(0)).alloc(8, 8);
        if spiked {
            fabric.delay_node(NodeId(0), 20_000, 1_000_000);
        }
        let ep = fabric.endpoint();
        let sim2 = sim.clone();
        sim.block_on(async move {
            let t0 = sim2.now();
            ep.read(NodeId(0), addr, 8).await.unwrap();
            sim2.now() - t0
        })
    };
    let base = rtt(false);
    let spiked = rtt(true);
    assert_eq!(
        spiked,
        base + 2 * 20_000,
        "a delay spike adds exactly the extra one-way latency per direction"
    );
    // An expired window costs nothing.
    let (sim, fabric) = setup(21, FabricConfig::deterministic(), 1);
    let addr = fabric.node(NodeId(0)).alloc(8, 8);
    fabric.delay_node(NodeId(0), 20_000, 10); // expires at t=10
    let ep = fabric.endpoint();
    let sim2 = sim.clone();
    let late = sim.block_on(async move {
        sim2.sleep_ns(1_000).await;
        let t0 = sim2.now();
        ep.read(NodeId(0), addr, 8).await.unwrap();
        sim2.now() - t0
    });
    assert_eq!(late, base);
}

#[test]
fn full_drop_window_swallows_messages_then_recovers() {
    let (sim, fabric) = setup(22, FabricConfig::default(), 1);
    let addr = fabric.node(NodeId(0)).alloc(8, 8);
    fabric.node(NodeId(0)).mem().write_u64(addr, 9);
    fabric.drop_node(NodeId(0), 1000, 200_000); // drop everything till 200µs
    let ep = Rc::new(fabric.endpoint());
    let sim2 = sim.clone();
    sim.block_on(async move {
        let ep2 = Rc::clone(&ep);
        let mut q = Quorum::new(1);
        q.push(async move { ep2.read(NodeId(0), addr, 8).await });
        let r = timeout_at(&sim2, 150_000, &mut q).await;
        assert!(r.is_err(), "message survived a 1000-permille drop window");
        sim2.sleep_until(210_000).await;
        let got = ep.read(NodeId(0), addr, 8).await.unwrap();
        assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), 9);
    });
}

#[test]
fn partial_drop_window_drops_some_messages_deterministically() {
    let survivors = |seed: u64| {
        let (sim, fabric) = setup(seed, FabricConfig::default(), 1);
        let addr = fabric.node(NodeId(0)).alloc(8, 8);
        fabric.drop_node(NodeId(0), 500, 10_000_000);
        let ok = Rc::new(RefCell::new(0u32));
        for _ in 0..32 {
            let ep = fabric.endpoint();
            let ok2 = Rc::clone(&ok);
            let sim2 = sim.clone();
            sim.spawn(async move {
                let mut q = Quorum::new(1);
                q.push(async move { ep.read(NodeId(0), addr, 8).await });
                if timeout_at(&sim2, 5_000_000, &mut q).await.is_ok() {
                    *ok2.borrow_mut() += 1;
                }
            });
        }
        sim.run();
        let n = *ok.borrow();
        n
    };
    let a = survivors(23);
    assert_eq!(a, survivors(23), "drop outcomes must be seed-deterministic");
    assert!(
        (1..32).contains(&a),
        "a 50% window should drop some but not all: {a}/32"
    );
}

#[test]
fn restart_revives_a_crashed_node_with_memory_intact() {
    let (sim, fabric) = setup(24, FabricConfig::default(), 1);
    let addr = fabric.node(NodeId(0)).alloc(8, 8);
    fabric.node(NodeId(0)).mem().write_u64(addr, 77);
    fabric.crash_node(NodeId(0));
    fabric.restart_node(NodeId(0));
    let ep = fabric.endpoint();
    let got = sim.block_on(async move { ep.read(NodeId(0), addr, 8).await.unwrap() });
    assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), 77);
}

#[test]
fn fault_plan_applies_on_schedule() {
    let (sim, fabric) = setup(25, FabricConfig::default(), 3);
    let plan = FaultPlan::new()
        .crash_at(100_000, NodeId(1))
        .restart_at(300_000, NodeId(1))
        .partition_between(150_000, 250_000, NodeId(2))
        .delay_spike(50_000, NodeId(0), 10_000, 100_000)
        .drop_window(50_000, NodeId(0), 250, 100_000);
    assert_eq!(plan.events()[0], (100_000, FaultAction::Crash(NodeId(1))));
    fabric.apply_fault_plan(&plan);
    sim.run_until(120_000);
    assert!(!fabric.node(NodeId(1)).is_alive());
    assert!(!fabric.is_partitioned(NodeId(2)));
    sim.run_until(200_000);
    assert!(fabric.is_partitioned(NodeId(2)));
    sim.run_until(400_000);
    assert!(fabric.node(NodeId(1)).is_alive(), "restart fired");
    assert!(!fabric.is_partitioned(NodeId(2)), "heal fired");
    println!("{plan}");
}

#[test]
fn fabric_delivery_schedules_no_boxed_closures() {
    // The whole message pipeline (CPU issue, switch, wire, node service,
    // chunked DMA, response) must ride the executor's closure-free timer
    // path: zero boxed `dyn FnOnce` events for any amount of traffic.
    let (sim, fabric) = setup(26, FabricConfig::default(), 2);
    let addr = fabric.node(NodeId(0)).alloc(4096, 8);
    let ep = fabric.endpoint();
    sim.block_on(async move {
        for i in 0..32u64 {
            ep.write(NodeId(0), addr, vec![i as u8; 4096])
                .await
                .unwrap();
            let got = ep.read(NodeId(0), addr, 4096).await.unwrap();
            assert_eq!(got[0], i as u8);
        }
    });
    let c = sim.counters();
    assert_eq!(
        c.boxed_events, 0,
        "fabric delivery must stay on the closure-free timer path"
    );
    assert!(c.timer_events > 64, "traffic must schedule timer events");
}

#[test]
fn write_payloads_are_shared_not_copied() {
    // An `Op::Write` payload is Rc-shared into the fabric: the caller's
    // buffer and the in-flight message reference the same allocation.
    let (sim, fabric) = setup(27, FabricConfig::deterministic(), 1);
    let addr = fabric.node(NodeId(0)).alloc(64, 8);
    let ep = fabric.endpoint();
    let payload: swarm_fabric::Payload = vec![0xAB; 64].into();
    let before = Rc::strong_count(&payload);
    let rx = ep.submit(
        NodeId(0),
        vec![Op::Write {
            addr,
            data: Rc::clone(&payload),
        }],
    );
    assert!(
        Rc::strong_count(&payload) > before,
        "the in-flight message must share, not copy, the payload"
    );
    sim.block_on(async move { rx.await.unwrap() });
    assert_eq!(fabric.node(NodeId(0)).mem().read(addr, 64), vec![0xAB; 64]);
    assert_eq!(
        Rc::strong_count(&payload),
        before,
        "delivery releases its ref"
    );
}
