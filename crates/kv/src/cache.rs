//! Client-side location cache with approximated-LFU replacement.
//!
//! Clients cache the location of a key's replicas (≈24 B per key; 32 B in
//! SWARM-KV since entries also carry In-n-Out's cached metadata word) so
//! repeat accesses bypass the index (§5.2). The 1M-key experiment (Figure 6)
//! limits this cache to 5 MiB and uses "an approximation of LFU" — we use
//! sampled-LFU eviction (pick the least-frequently-used among a small random
//! sample), the standard approximation.

use std::collections::HashMap;

use swarm_sim::SimRng;

/// How many occupied slots an eviction samples.
const SAMPLE: usize = 8;

/// A fixed-capacity key→value cache with sampled-LFU eviction.
pub struct LfuCache<V> {
    cap: usize,
    map: HashMap<u64, usize>,
    slots: Vec<Option<(u64, V, u32)>>,
    free: Vec<usize>,
    hits: u64,
    misses: u64,
}

impl<V> LfuCache<V> {
    /// Creates a cache holding at most `cap` entries (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1);
        LfuCache {
            cap,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks up `key`, bumping its frequency.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        match self.map.get(&key) {
            Some(&slot) => {
                self.hits += 1;
                let entry = self.slots[slot].as_mut().unwrap();
                entry.2 = entry.2.saturating_add(1);
                Some(&self.slots[slot].as_ref().unwrap().1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `key`, evicting a sampled-LFU victim if full. `rng` supplies
    /// the (deterministic) sampling randomness — the owning client's
    /// stream, so a bounded cache in one shard cannot perturb another's.
    pub fn insert(&mut self, rng: &SimRng, key: u64, value: V) {
        if let Some(&slot) = self.map.get(&key) {
            let e = self.slots[slot].as_mut().unwrap();
            e.1 = value;
            e.2 = e.2.saturating_add(1);
            return;
        }
        if self.map.len() >= self.cap {
            self.evict_one(rng);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Some((key, value, 1));
                s
            }
            None => {
                self.slots.push(Some((key, value, 1)));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
    }

    /// Removes `key` if present (cache flush after a delete, §5.3.3).
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let slot = self.map.remove(&key)?;
        let (_, v, _) = self.slots[slot].take().unwrap();
        self.free.push(slot);
        Some(v)
    }

    fn evict_one(&mut self, rng: &SimRng) {
        debug_assert!(!self.map.is_empty());
        let n = self.slots.len();
        let mut victim: Option<(usize, u32)> = None;
        let mut tried = 0;
        while tried < SAMPLE * 3 && victim.map(|_| tried < SAMPLE).unwrap_or(true) {
            let s = rng.rand_range(0, n as u64) as usize;
            tried += 1;
            if let Some((_, _, freq)) = &self.slots[s] {
                match victim {
                    Some((_, best)) if *freq >= best => {}
                    _ => victim = Some((s, *freq)),
                }
            }
        }
        let (slot, _) = victim.expect("non-empty cache must yield a victim");
        let (key, _, _) = self.slots[slot].take().unwrap();
        self.map.remove(&key);
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_sim::Sim;

    #[test]
    fn basic_get_insert_remove() {
        let rng = SimRng::shared(&Sim::new(1));
        let mut c: LfuCache<u32> = LfuCache::new(4);
        c.insert(&rng, 1, 10);
        assert_eq!(c.get(1), Some(&10));
        assert_eq!(c.get(2), None);
        assert_eq!(c.remove(1), Some(10));
        assert_eq!(c.get(1), None);
        assert_eq!(c.stats(), (1, 2));
    }

    #[test]
    fn capacity_is_enforced() {
        let rng = SimRng::shared(&Sim::new(2));
        let mut c: LfuCache<u32> = LfuCache::new(8);
        for k in 0..100 {
            c.insert(&rng, k, k as u32);
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn hot_entries_survive_eviction() {
        let rng = SimRng::shared(&Sim::new(3));
        let mut c: LfuCache<u32> = LfuCache::new(16);
        // Make keys 0..4 hot.
        for k in 0..4 {
            c.insert(&rng, k, 0);
        }
        for _ in 0..50 {
            for k in 0..4 {
                c.get(k);
            }
        }
        // Flood with cold keys.
        for k in 100..400 {
            c.insert(&rng, k, 0);
        }
        let survivors = (0..4).filter(|&k| c.get(k).is_some()).count();
        assert!(survivors >= 3, "hot keys evicted: {survivors}/4 left");
    }

    #[test]
    fn reinsert_updates_value() {
        let rng = SimRng::shared(&Sim::new(4));
        let mut c: LfuCache<u32> = LfuCache::new(2);
        c.insert(&rng, 1, 10);
        c.insert(&rng, 1, 20);
        assert_eq!(c.get(1), Some(&20));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn slot_reuse_after_remove() {
        let rng = SimRng::shared(&Sim::new(5));
        let mut c: LfuCache<u32> = LfuCache::new(2);
        c.insert(&rng, 1, 1);
        c.insert(&rng, 2, 2);
        c.remove(1);
        c.insert(&rng, 3, 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(3), Some(&3));
    }
}
