//! History recording for linearizability checking: wrap any [`KvStore`] in
//! a [`RecordingStore`] and every operation's invocation/response virtual
//! times and observed result are appended to a shared
//! [`KvHistory`](swarm_core::KvHistory).
//!
//! The wrapper implements [`KvStore`] itself, so it slots in anywhere a
//! store does — under the YCSB [`runner`](crate::run_workload), under the
//! batched [`KvStoreExt`](crate::KvStoreExt) multi-ops (each per-key
//! element of a batch is recorded as its own overlapping operation), or
//! under hand-written chaos workloads. Error returns are recorded with
//! their semantics: a `NotFound`-style rejection *observed absence*; a
//! [`KvError::Timeout`] leaves the operation's effect **ambiguous** (it may
//! still land via in-flight messages), which the checker treats as
//! apply-or-discard.

use std::cell::RefCell;
use std::rc::Rc;

use swarm_core::{xxh64, KvHistory, KvOpKind};
use swarm_fabric::Endpoint;
use swarm_sim::{Nanos, Sim};

use crate::store::{KvError, KvResult, KvStore, ScanItems};

/// Derives the checker's `u64` value tag from stored bytes: the first 8
/// bytes little-endian (values of 8+ bytes with distinct prefixes — e.g.
/// `Workload::value_for` payloads or tag-prefixed chaos values — map to
/// distinct tags), or an xxh64 for shorter payloads.
pub fn value_tag(value: &[u8]) -> u64 {
    if value.len() >= 8 {
        u64::from_le_bytes(value[..8].try_into().unwrap())
    } else {
        xxh64(value, 0x7A65)
    }
}

struct Inner {
    sim: Sim,
    history: RefCell<KvHistory>,
}

/// A shared history sink. Clone-cheap; one recorder typically spans every
/// client of a run so the history captures true cross-client concurrency.
#[derive(Clone)]
pub struct HistoryRecorder {
    inner: Rc<Inner>,
}

impl HistoryRecorder {
    /// Creates an empty recorder stamping times from `sim`.
    pub fn new(sim: &Sim) -> Self {
        HistoryRecorder {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                history: RefCell::new(KvHistory::new()),
            }),
        }
    }

    /// Declares `key` bulk-loaded with `value` before the recorded run
    /// starts (its tag seeds the checker's initial state).
    pub fn set_initial(&self, key: u64, value: &[u8]) {
        self.inner
            .history
            .borrow_mut()
            .set_initial(key, value_tag(value));
    }

    /// Wraps a store so its operations are recorded into this history.
    pub fn wrap<S: KvStore>(&self, store: Rc<S>) -> Rc<RecordingStore<S>> {
        Rc::new(RecordingStore {
            store,
            rec: self.clone(),
        })
    }

    /// Operations recorded so far.
    pub fn len(&self) -> usize {
        self.inner.history.borrow().len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.history.borrow().is_empty()
    }

    /// A snapshot of the history recorded so far.
    pub fn history(&self) -> KvHistory {
        self.inner.history.borrow().clone()
    }

    /// Takes the recorded history, leaving the recorder empty.
    pub fn take_history(&self) -> KvHistory {
        self.inner.history.replace(KvHistory::new())
    }

    /// Records a TTL lease expiry at virtual instant `at` (see
    /// [`KvHistory::expire`](swarm_core::KvHistory::expire)): an ambiguous
    /// delete the checker may linearize anywhere legal after the operations
    /// that completed before `at`, or discard. Feed it the pairs drained
    /// from `TtlStore::take_expired` before checking.
    pub fn note_expiry(&self, key: u64, at: u64) {
        self.inner.history.borrow_mut().expire(key, at);
    }

    fn record(&self, key: u64, invoke: u64, outcome: Outcome) {
        let now = self.inner.sim.now();
        let mut h = self.inner.history.borrow_mut();
        match outcome {
            Outcome::Definite(kind) => h.push(key, invoke, now, kind),
            Outcome::Ambiguous(kind) => h.push_ambiguous(key, invoke, kind),
        }
    }
}

enum Outcome {
    Definite(KvOpKind),
    Ambiguous(KvOpKind),
}

/// Maps a mutation result to its history semantics. `intended` is the
/// state change the mutation would apply if it succeeded.
fn mutation_outcome(r: &KvResult<()>, intended: KvOpKind) -> Outcome {
    match r {
        Ok(()) => Outcome::Definite(intended),
        // The effect may or may not have landed: client-crash semantics.
        Err(KvError::Timeout) => Outcome::Ambiguous(intended),
        // The store observed absence and applied nothing.
        Err(KvError::NotFound) | Err(KvError::NotIndexed) | Err(KvError::Deleted) => {
            Outcome::Definite(KvOpKind::FailAbsent)
        }
        // Capacity is a global resource, not per-key state: a refusal is
        // legal at any point and changes nothing.
        Err(KvError::IndexFull) => Outcome::Definite(KvOpKind::FailNoop),
        // Bounced before touching per-key state: the addressed group no
        // longer owned the key (routing-epoch mismatch, see
        // `crate::reshard`), so nothing was observed and nothing changed.
        Err(KvError::WrongShard { .. }) => Outcome::Definite(KvOpKind::FailNoop),
    }
}

/// A [`KvStore`] that records every operation into a shared
/// [`HistoryRecorder`]. Minted with [`HistoryRecorder::wrap`].
pub struct RecordingStore<S> {
    store: Rc<S>,
    rec: HistoryRecorder,
}

impl<S> RecordingStore<S> {
    /// The wrapped store.
    pub fn store(&self) -> &Rc<S> {
        &self.store
    }
}

impl<S: KvStore> KvStore for RecordingStore<S> {
    async fn get(&self, key: u64) -> KvResult<Option<Rc<Vec<u8>>>> {
        let invoke = self.rec.inner.sim.now();
        let r = self.store.get(key).await;
        let outcome = match &r {
            Ok(Some(v)) => Outcome::Definite(KvOpKind::Get(Some(value_tag(v)))),
            Ok(None) => Outcome::Definite(KvOpKind::Get(None)),
            // A failed read observed nothing and changed nothing.
            Err(_) => Outcome::Definite(KvOpKind::FailNoop),
        };
        self.rec.record(key, invoke, outcome);
        r
    }

    async fn update(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        let tag = value_tag(&value);
        let invoke = self.rec.inner.sim.now();
        let r = self.store.update(key, value).await;
        self.rec
            .record(key, invoke, mutation_outcome(&r, KvOpKind::Update(tag)));
        r
    }

    async fn insert(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        let tag = value_tag(&value);
        let invoke = self.rec.inner.sim.now();
        let r = self.store.insert(key, value).await;
        self.rec
            .record(key, invoke, mutation_outcome(&r, KvOpKind::Insert(tag)));
        r
    }

    async fn delete(&self, key: u64) -> KvResult<()> {
        let invoke = self.rec.inner.sim.now();
        let r = self.store.delete(key).await;
        self.rec
            .record(key, invoke, mutation_outcome(&r, KvOpKind::Delete));
        r
    }

    /// Records each `(key, value)` a scan returned as its own overlapping
    /// `Get(Some(tag))` spanning the whole scan. Keys the scan *omitted*
    /// are not recorded as absent: a shard-fanout scan cannot distinguish
    /// "never existed" from "vanished mid-flight", so only positive
    /// observations are claimed (conservative, still catches stale values).
    async fn scan(&self, start: u64, limit: usize) -> KvResult<ScanItems> {
        let invoke = self.rec.inner.sim.now();
        let r = self.store.scan(start, limit).await;
        if let Ok(items) = &r {
            for (key, value) in items {
                self.rec.record(
                    *key,
                    invoke,
                    Outcome::Definite(KvOpKind::Get(Some(value_tag(value)))),
                );
            }
        }
        r
    }

    /// Records a leased insert exactly like a plain insert (the tag is the
    /// unstamped payload's) and forwards the lease. The matching expiry
    /// event is pushed separately via [`HistoryRecorder::note_expiry`].
    async fn insert_ttl(&self, key: u64, value: Vec<u8>, ttl_ns: Option<Nanos>) -> KvResult<()> {
        let tag = value_tag(&value);
        let invoke = self.rec.inner.sim.now();
        let r = self.store.insert_ttl(key, value, ttl_ns).await;
        self.rec
            .record(key, invoke, mutation_outcome(&r, KvOpKind::Insert(tag)));
        r
    }

    fn rounds(&self) -> u64 {
        self.store.rounds()
    }

    fn endpoint(&self) -> Rc<Endpoint> {
        self.store.endpoint()
    }

    fn client_id(&self) -> usize {
        self.store.client_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KvStoreExt, Protocol, StoreBuilder};
    use swarm_core::KvOpKind;

    fn tagged(tag: u64) -> Vec<u8> {
        let mut v = vec![0u8; 64];
        v[..8].copy_from_slice(&tag.to_le_bytes());
        v
    }

    #[test]
    fn value_tag_is_prefix_or_hash() {
        assert_eq!(value_tag(&tagged(77)), 77);
        assert_eq!(value_tag(&[1, 2, 3]), value_tag(&[1, 2, 3]));
        assert_ne!(value_tag(&[1, 2, 3]), value_tag(&[1, 2, 4]));
    }

    #[test]
    fn recorded_run_produces_a_checkable_history() {
        let sim = Sim::new(11);
        let cluster = StoreBuilder::new(Protocol::SafeGuess).build_cluster(&sim);
        cluster.load_keys(4, |k| tagged(1_000 + k));
        let rec = HistoryRecorder::new(&sim);
        for k in 0..4 {
            rec.set_initial(k, &tagged(1_000 + k));
        }
        let client = rec.wrap(cluster.client(0));
        let rec2 = rec.clone();
        sim.block_on(async move {
            assert_eq!(value_tag(&client.get(2).await.unwrap().unwrap()), 1_002);
            client.update(2, tagged(5)).await.unwrap();
            client.delete(3).await.unwrap();
            assert_eq!(client.get(3).await.unwrap(), None);
            client.insert(9, tagged(6)).await.unwrap();
        });
        let h = rec2.take_history();
        assert_eq!(h.len(), 5);
        assert_eq!(h.definite_ops(), 5);
        h.check().expect("sequential run must linearize");
        assert!(rec2.is_empty(), "take_history drains");
    }

    #[test]
    fn batched_multi_ops_record_each_element() {
        let sim = Sim::new(12);
        let cluster = StoreBuilder::new(Protocol::SafeGuess).build_cluster(&sim);
        cluster.load_keys(8, |k| tagged(1_000 + k));
        let rec = HistoryRecorder::new(&sim);
        for k in 0..8 {
            rec.set_initial(k, &tagged(1_000 + k));
        }
        let client = rec.wrap(cluster.client(0));
        sim.block_on(async move {
            for r in client.multi_get(&[0, 1, 2, 3]).await {
                r.unwrap();
            }
        });
        let h = rec.history();
        assert_eq!(h.len(), 4, "one record per batch element");
        assert!(h.is_linearizable());
        // Batch elements overlap in time: all share the invoke instant.
        let invokes: Vec<u64> = h.ops().iter().map(|o| o.invoke).collect();
        assert!(invokes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn timeout_is_recorded_as_ambiguous() {
        let sim = Sim::new(13);
        let cluster = StoreBuilder::new(Protocol::Raw)
            .op_deadline_ns(200_000)
            .build_cluster(&sim);
        cluster.load_keys(2, |k| tagged(1_000 + k));
        let rec = HistoryRecorder::new(&sim);
        rec.set_initial(0, &tagged(1_000));
        rec.set_initial(1, &tagged(1_001));
        // Crash the node hosting key 0's single replica.
        let node = cluster.swarm().unwrap().replica_nodes_for(0)[0];
        cluster.crash_node(node);
        let client = rec.wrap(cluster.client(0));
        sim.block_on(async move {
            assert_eq!(
                client.update(0, tagged(9)).await,
                Err(crate::KvError::Timeout)
            );
        });
        let h = rec.history();
        assert_eq!(h.len(), 1);
        assert_eq!(h.definite_ops(), 0, "timeout must be ambiguous");
        assert_eq!(h.ops()[0].kind, KvOpKind::Update(9));
        assert!(h.is_linearizable());
    }
}
