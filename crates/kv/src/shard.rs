//! Keyspace sharding: many independent replica groups behind one store.
//!
//! The paper evaluates one replica group; production-scale keyspaces are
//! *partitioned*. A [`ShardedCluster`] stands up N completely independent
//! [`StoreCluster`]s — each with its own fabric, index, membership, and
//! replica groups, any [`Protocol`] — on one simulation, and a
//! [`ShardRouter`] client routes every operation to the shard that owns its
//! key via the stateless hash mapping in [`ShardSpec`].
//!
//! # Shard independence
//!
//! Shards share nothing but the simulation clock. Each shard's fabric,
//! index, clocks, and caches draw from *private* RNG streams forked from
//! `(simulation seed, shard label)` (see `swarm_sim::SimRng`), so what
//! happens on one shard — extra retries, a fault plan's message drops, a
//! crashed node — cannot perturb another shard's execution. Traffic that
//! touches only shard `s` replays bit-identically whatever fault plan is
//! applied to shard `t != s`; the chaos suite asserts exactly that.
//!
//! # Routing
//!
//! [`ShardSpec::shard_of`] hashes the key id (workload key ids are already
//! hash-scrambled, but routing re-hashes so the mapping is independent of
//! the workload's scramble) and reduces modulo the shard count. The mapping
//! is a pure function of `(key, shard count)`: stable across runs, seeds,
//! and processes. A [`ShardRouter`] holds one per-shard client minted with a
//! **shared CPU core**, so a router models one application thread that
//! happens to talk to many shards — not one thread per shard.
//!
//! Batched multi-key operations group keys by owning shard, fan one
//! pipelined multi-op per shard out through `join_boxed`, and reassemble
//! results into input order deterministically.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::rc::Rc;

use swarm_fabric::{Endpoint, TrafficStats};
use swarm_sim::{join_boxed, BoxFuture, FifoResource, Sim};

use crate::builder::{Protocol, StoreClient, StoreCluster};
use crate::cluster::derive_label;
use crate::reshard::ShardMap;
use crate::store::{KvError, KvResult, KvStore, KvStoreExt, ScanItems};

/// Base label the per-shard RNG streams are derived from (see
/// `ClusterConfig::rng_label`).
const SHARD_RNG_BASE: u64 = 0x5A4D_5348_4152_4421;

/// Seed of the key→shard routing hash. Changing it reshuffles every
/// sharded keyspace; tests pin the resulting mapping.
const SHARD_HASH_SEED: u64 = 0x0053_4841_5244;

/// [`KvError::WrongShard`] bounces a router absorbs per operation before
/// giving up. Each bounce refreshes the cached routing table from the
/// router's map source, so exhausting the cap means the authority kept
/// moving ownership between every refresh and retry — at that point the op
/// surfaces [`KvError::Timeout`] instead of spinning forever.
const MAX_WRONG_SHARD_RETRIES: usize = 8;

/// The keyspace partitioning: shard count plus the stateless hash-based
/// key→shard mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    shards: usize,
}

impl ShardSpec {
    /// A spec over `shards` shards (`shards >= 1`).
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a cluster has at least one shard");
        ShardSpec { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: a pure function of `(key, shard count)` —
    /// stable across runs, seeds, and thread counts.
    pub fn shard_of(&self, key: u64) -> usize {
        if self.shards == 1 {
            return 0;
        }
        (swarm_core::xxh64(&key.to_le_bytes(), SHARD_HASH_SEED) % self.shards as u64) as usize
    }

    /// The RNG label shard `s` (and everything built under it) forks its
    /// private streams from.
    pub(crate) fn rng_label(&self, s: usize) -> u64 {
        derive_label(SHARD_RNG_BASE, s as u64, self.shards as u64)
    }
}

/// N independent [`StoreCluster`]s (one per shard) on one simulation,
/// with the [`ShardSpec`] that partitions the keyspace across them.
/// Cheaply cloneable. Built by `StoreBuilder::shards(n)` +
/// `StoreBuilder::build_sharded`.
#[derive(Clone)]
pub struct ShardedCluster {
    sim: Sim,
    spec: ShardSpec,
    shards: Vec<StoreCluster>,
    protocol: Protocol,
}

impl ShardedCluster {
    pub(crate) fn from_shards(sim: &Sim, spec: ShardSpec, shards: Vec<StoreCluster>) -> Self {
        assert_eq!(spec.shards(), shards.len());
        let protocol = shards[0].protocol();
        ShardedCluster {
            sim: sim.clone(),
            spec,
            shards,
            protocol,
        }
    }

    /// The keyspace partitioning.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The protocol every shard runs.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.spec.shards()
    }

    /// Shard `s`'s cluster (its own fabric, index, membership): the handle
    /// for per-shard inspection and fault injection —
    /// `cluster.shard(s).fabric().apply_fault_plan(..)` faults one shard
    /// without touching the others.
    pub fn shard(&self, s: usize) -> &StoreCluster {
        &self.shards[s]
    }

    /// All shards, in shard order.
    pub fn shards(&self) -> &[StoreCluster] {
        &self.shards
    }

    /// The shard cluster owning `key`.
    pub fn shard_for(&self, key: u64) -> &StoreCluster {
        &self.shards[self.spec.shard_of(key)]
    }

    /// The simulation driving every shard.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Bulk-loads `key = value` into its owning shard (control plane).
    pub fn load_key(&self, key: u64, value: &[u8]) {
        self.shard_for(key).load_key(key, value);
    }

    /// Bulk-loads keys `0..n` with `make_value(key)` payloads, each into
    /// its owning shard.
    pub fn load_keys(&self, n: u64, mut make_value: impl FnMut(u64) -> Vec<u8>) {
        for key in 0..n {
            self.load_key(key, &make_value(key));
        }
    }

    /// Creates router `id`: one application thread with a client on every
    /// shard, all sharing a single CPU core.
    pub fn router(&self, id: usize) -> Rc<ShardRouter> {
        let cpu = FifoResource::new(&self.sim);
        let clients = self
            .shards
            .iter()
            .map(|c| c.client_with_cpu(id, cpu.clone()))
            .collect();
        Rc::new(ShardRouter {
            spec: self.spec,
            map: RefCell::new(ShardMap::base(self.spec)),
            map_source: RefCell::new(None),
            wrong_shard_bounces: Cell::new(0),
            clients,
            client_id: id,
            routed: vec![Cell::new(0); self.spec.shards()],
        })
    }

    /// Creates routers `0..n`.
    pub fn routers(&self, n: usize) -> Vec<Rc<ShardRouter>> {
        (0..n).map(|i| self.router(i)).collect()
    }

    /// Aggregate fabric traffic across all shards.
    pub fn stats(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for s in self.per_shard_stats() {
            total += s;
        }
        total
    }

    /// Per-shard fabric traffic, in shard order (the load-imbalance view).
    pub fn per_shard_stats(&self) -> Vec<TrafficStats> {
        self.shards.iter().map(|c| c.fabric().stats()).collect()
    }
}

/// One application thread of a sharded store: implements [`KvStore`] by
/// routing each operation to the shard that owns its key. Multi-key
/// batches are fanned out across shards concurrently (one pipelined
/// multi-op per shard) and reassembled in input order.
pub struct ShardRouter {
    spec: ShardSpec,
    /// The generation-stamped routing table (see `crate::reshard`). A
    /// static sharded cluster holds the epoch-0 base map, whose ownership
    /// is bit-for-bit [`ShardSpec::shard_of`]; elastic handoffs refine it.
    map: RefCell<ShardMap>,
    /// Where a [`KvError::WrongShard`] bounce refreshes the cached map
    /// from (`None` on a static cluster: nothing ever moves, so the map
    /// can only be refreshed to itself).
    map_source: RefCell<Option<Rc<dyn Fn() -> ShardMap>>>,
    /// [`KvError::WrongShard`] bounces absorbed (each one refreshed the
    /// map and retried).
    wrong_shard_bounces: Cell<u64>,
    /// One client per shard, all sharing this router's CPU core.
    clients: Vec<Rc<StoreClient>>,
    client_id: usize,
    /// Operations routed to each shard (the per-shard load counters the
    /// scale bench reports imbalance from).
    routed: Vec<Cell<u64>>,
}

impl ShardRouter {
    /// The keyspace partitioning this router routes by.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The routing table this router resolves owners against (epoch 0 for
    /// a static cluster).
    pub fn map(&self) -> ShardMap {
        self.map.borrow().clone()
    }

    /// Installs the authority a [`KvError::WrongShard`] bounce refreshes
    /// the cached routing table from (e.g. a control-plane lookup). Without
    /// one, bounces still count and retry, but against the same stale map.
    pub fn set_map_source(&self, source: Option<Rc<dyn Fn() -> ShardMap>>) {
        *self.map_source.borrow_mut() = source;
    }

    /// [`KvError::WrongShard`] bounces this router has absorbed.
    pub fn wrong_shard_bounces(&self) -> u64 {
        self.wrong_shard_bounces.get()
    }

    /// The per-shard client for shard `s` (escape hatch).
    pub fn shard_client(&self, s: usize) -> &Rc<StoreClient> {
        &self.clients[s]
    }

    /// Operations this router has routed to each shard, in shard order.
    pub fn routed_per_shard(&self) -> Vec<u64> {
        self.routed.iter().map(Cell::get).collect()
    }

    /// Aggregate location-cache `(hits, misses)` across the per-shard
    /// clients.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.clients.iter().fold((0, 0), |(h, m), c| {
            let (ch, cm) = c.cache_stats();
            (h + ch, m + cm)
        })
    }

    fn route(&self, key: u64) -> Rc<StoreClient> {
        let s = self.map.borrow().owner_of(key);
        self.routed[s].set(self.routed[s].get() + 1);
        Rc::clone(&self.clients[s])
    }

    /// One absorbed bounce: count it and refresh the cached map from the
    /// authority (when one is installed).
    fn bounce(&self) {
        self.wrong_shard_bounces
            .set(self.wrong_shard_bounces.get() + 1);
        if let Some(source) = self.map_source.borrow().clone() {
            *self.map.borrow_mut() = source();
        }
    }

    /// Runs `attempt` against `key`'s current owner, absorbing
    /// [`KvError::WrongShard`] bounces: each one refreshes the routing
    /// table and re-resolves, at most [`MAX_WRONG_SHARD_RETRIES`] times.
    /// Past the cap the op surfaces [`KvError::Timeout`] — a router must
    /// never spin unboundedly against an authority that keeps resealing.
    async fn bounded_wrong_shard<T, F, Fut>(&self, key: u64, mut attempt: F) -> KvResult<T>
    where
        F: FnMut(Rc<StoreClient>) -> Fut,
        Fut: Future<Output = KvResult<T>>,
    {
        for _ in 0..MAX_WRONG_SHARD_RETRIES {
            match attempt(self.route(key)).await {
                Err(KvError::WrongShard { .. }) => self.bounce(),
                r => return r,
            }
        }
        Err(KvError::Timeout)
    }

    /// Reads many keys in one batch: keys group by owning shard, one
    /// pipelined `multi_get` per shard runs concurrently, and results come
    /// back in input order.
    pub fn multi_get<'a>(
        &'a self,
        keys: &[u64],
    ) -> impl Future<Output = Vec<KvResult<Option<Rc<Vec<u8>>>>>> + 'a {
        let groups = self.group(keys.iter().copied());
        let total = keys.len();
        async move {
            let futs: Vec<BoxFuture<'a, _>> = groups
                .into_iter()
                .map(|(shard, positions, keys)| {
                    let client = Rc::clone(&self.clients[shard]);
                    Box::pin(async move { (positions, client.multi_get(&keys).await) })
                        as BoxFuture<'a, _>
                })
                .collect();
            reassemble(total, join_boxed(futs).await)
        }
    }

    /// Overwrites many keys in one batch (per-shard pipelined
    /// `multi_update`s, results in input order).
    pub fn multi_update<'a>(
        &'a self,
        ops: &[(u64, Vec<u8>)],
    ) -> impl Future<Output = Vec<KvResult<()>>> + 'a {
        self.multi_mutate(ops, MutateKind::Update)
    }

    /// Inserts many keys in one batch (per-shard pipelined `multi_insert`s,
    /// results in input order).
    pub fn multi_insert<'a>(
        &'a self,
        ops: &[(u64, Vec<u8>)],
    ) -> impl Future<Output = Vec<KvResult<()>>> + 'a {
        self.multi_mutate(ops, MutateKind::Insert)
    }

    fn multi_mutate<'a>(
        &'a self,
        ops: &[(u64, Vec<u8>)],
        kind: MutateKind,
    ) -> impl Future<Output = Vec<KvResult<()>>> + 'a {
        let groups = self.group(ops.iter().map(|(k, _)| *k));
        let total = ops.len();
        // Values are cloned out of the borrowed slice, one heap copy per
        // element (same contract as `KvStoreExt`).
        let values: Vec<Vec<Vec<u8>>> = groups
            .iter()
            .map(|(_, positions, _)| positions.iter().map(|&p| ops[p].1.clone()).collect())
            .collect();
        async move {
            let futs: Vec<BoxFuture<'a, _>> = groups
                .into_iter()
                .zip(values)
                .map(|((shard, positions, keys), values)| {
                    let client = Rc::clone(&self.clients[shard]);
                    let ops: Vec<(u64, Vec<u8>)> = keys.into_iter().zip(values).collect();
                    Box::pin(async move {
                        let r = match kind {
                            MutateKind::Update => client.multi_update(&ops).await,
                            MutateKind::Insert => client.multi_insert(&ops).await,
                        };
                        (positions, r)
                    }) as BoxFuture<'a, _>
                })
                .collect();
            reassemble(total, join_boxed(futs).await)
        }
    }

    /// Groups keys by owning shard: `(shard, input positions, keys)` per
    /// non-empty shard, in shard order (deterministic).
    fn group(&self, keys: impl Iterator<Item = u64>) -> Vec<(usize, Vec<usize>, Vec<u64>)> {
        let mut per: Vec<(Vec<usize>, Vec<u64>)> = vec![Default::default(); self.spec.shards()];
        let map = self.map.borrow();
        for (pos, key) in keys.enumerate() {
            let s = map.owner_of(key);
            self.routed[s].set(self.routed[s].get() + 1);
            per[s].0.push(pos);
            per[s].1.push(key);
        }
        per.into_iter()
            .enumerate()
            .filter(|(_, (positions, _))| !positions.is_empty())
            .map(|(s, (positions, keys))| (s, positions, keys))
            .collect()
    }
}

#[derive(Clone, Copy)]
enum MutateKind {
    Update,
    Insert,
}

/// Scatters per-shard result groups back into input order.
fn reassemble<T>(total: usize, groups: Vec<(Vec<usize>, Vec<T>)>) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..total).map(|_| None).collect();
    for (positions, results) in groups {
        debug_assert_eq!(positions.len(), results.len());
        for (pos, r) in positions.into_iter().zip(results) {
            out[pos] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every input position gets exactly one result"))
        .collect()
}

impl KvStore for ShardRouter {
    async fn get(&self, key: u64) -> KvResult<Option<Rc<Vec<u8>>>> {
        self.bounded_wrong_shard(key, |c| async move { c.get(key).await })
            .await
    }

    async fn update(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        self.bounded_wrong_shard(key, |c| {
            let value = value.clone();
            async move { c.update(key, value).await }
        })
        .await
    }

    async fn insert(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        self.bounded_wrong_shard(key, |c| {
            let value = value.clone();
            async move { c.insert(key, value).await }
        })
        .await
    }

    async fn delete(&self, key: u64) -> KvResult<()> {
        self.bounded_wrong_shard(key, |c| async move { c.delete(key).await })
            .await
    }

    /// Shard-fanout range read: every shard owns a hash-scattered slice of
    /// the keyspace, so a range `[start, start+limit)` can live anywhere —
    /// the router scans *all* shards concurrently (each shard's index walk
    /// is ordered), merges the per-shard results by key, and truncates to
    /// `limit`. Per-shard errors propagate; routing counters tick once per
    /// shard scanned.
    async fn scan(&self, start: u64, limit: usize) -> KvResult<ScanItems> {
        let futs: Vec<BoxFuture<'_, KvResult<ScanItems>>> = self
            .clients
            .iter()
            .enumerate()
            .map(|(s, client)| {
                self.routed[s].set(self.routed[s].get() + 1);
                let client = Rc::clone(client);
                Box::pin(async move { client.scan(start, limit).await }) as BoxFuture<'_, _>
            })
            .collect();
        let mut merged = Vec::new();
        for shard_result in join_boxed(futs).await {
            merged.extend(shard_result?);
        }
        merged.sort_unstable_by_key(|&(k, _)| k);
        merged.truncate(limit);
        Ok(merged)
    }

    fn rounds(&self) -> u64 {
        self.clients.iter().map(|c| c.rounds()).sum()
    }

    fn endpoint(&self) -> Rc<Endpoint> {
        // The shard-0 endpoint stands in for "this application thread":
        // every per-shard endpoint shares the router's one CPU core, so
        // charging client-side work here occupies the same core the
        // per-shard submissions serialize on.
        self.clients[0].endpoint()
    }

    fn client_id(&self) -> usize {
        self.client_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_mapping_is_total_and_stable() {
        let spec = ShardSpec::new(4);
        let spec2 = ShardSpec::new(4);
        let mut seen = [0u64; 4];
        for key in 0..4096 {
            let s = spec.shard_of(key);
            assert!(s < 4);
            assert_eq!(s, spec2.shard_of(key), "mapping must be stateless");
            seen[s] += 1;
        }
        // A hash split of 4096 keys over 4 shards is near-even.
        for (s, &n) in seen.iter().enumerate() {
            assert!((824..=1224).contains(&n), "shard {s} owns {n} of 4096 keys");
        }
    }

    #[test]
    fn shard_mapping_matches_pinned_goldens() {
        // The key→shard hash is part of the persistent layout contract: a
        // sharded deployment reloaded under a new binary must route every
        // key to the shard that owns its data. These values pin the
        // mapping; if this test fails, the routing hash changed and every
        // sharded keyspace would reshuffle.
        let spec4 = ShardSpec::new(4);
        let spec16 = ShardSpec::new(16);
        let golden4: Vec<usize> = (0..16).map(|k| spec4.shard_of(k)).collect();
        let golden16: Vec<usize> = (0..16).map(|k| spec16.shard_of(k)).collect();
        assert_eq!(
            golden4,
            vec![2, 1, 2, 1, 3, 2, 3, 0, 1, 2, 0, 0, 0, 3, 3, 0]
        );
        assert_eq!(
            golden16,
            vec![6, 5, 6, 9, 3, 10, 3, 12, 5, 10, 4, 12, 12, 15, 11, 0]
        );
        assert_eq!(spec4.shard_of(u64::MAX), 2);
        assert_eq!(spec16.shard_of(1 << 20), 11);
        // The epoch-0 routing table must reproduce the stateless mapping
        // bit for bit — upgrading routers from raw `shard_of` lookups to
        // `ShardMap::owner_of` reshuffles nothing on a static cluster.
        let map4 = ShardMap::base(spec4);
        let map16 = ShardMap::base(spec16);
        assert_eq!(map4.epoch(), 0);
        assert_eq!(map16.epoch(), 0);
        let map_golden4: Vec<usize> = (0..16).map(|k| map4.owner_of(k)).collect();
        let map_golden16: Vec<usize> = (0..16).map(|k| map16.owner_of(k)).collect();
        assert_eq!(map_golden4, golden4);
        assert_eq!(map_golden16, golden16);
        for key in (0..4096).chain([u64::MAX, 1 << 20, 0xDEAD_BEEF]) {
            assert_eq!(map4.owner_of(key), spec4.shard_of(key), "key {key}");
            assert_eq!(map16.owner_of(key), spec16.shard_of(key), "key {key}");
        }
    }

    #[test]
    fn single_shard_spec_maps_everything_to_zero() {
        let spec = ShardSpec::new(1);
        for key in [0, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(spec.shard_of(key), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        ShardSpec::new(0);
    }

    #[test]
    fn reassemble_restores_input_order() {
        let groups = vec![(vec![1, 3], vec!["b", "d"]), (vec![0, 2], vec!["a", "c"])];
        assert_eq!(reassemble(4, groups), vec!["a", "b", "c", "d"]);
    }

    fn test_router(sim: &Sim) -> Rc<ShardRouter> {
        crate::StoreBuilder::new(Protocol::SafeGuess)
            .value_size(64)
            .max_clients(1)
            .shards(2)
            .build_sharded(sim)
            .router(0)
    }

    #[test]
    fn wrong_shard_bounces_refresh_the_map_then_succeed() {
        let sim = Sim::new(31);
        let router = test_router(&sim);
        // An authority whose map moves once: after a refresh, attempts
        // against the "new" epoch succeed.
        let refreshed = Rc::new(Cell::new(0u64));
        let src = Rc::clone(&refreshed);
        router.set_map_source(Some(Rc::new(move || {
            src.set(src.get() + 1);
            let mut m = ShardMap::base(ShardSpec::new(2));
            m.assign(0, 0x8000, 0xFFFF, 1);
            m
        })));
        let r2 = Rc::clone(&router);
        let got = sim.block_on(async move {
            let mut failures = 3;
            r2.bounded_wrong_shard(7, |_| {
                let attempt_fails = failures > 0;
                failures -= 1;
                async move {
                    if attempt_fails {
                        Err(KvError::WrongShard { epoch: 1 })
                    } else {
                        Ok(42u64)
                    }
                }
            })
            .await
        });
        assert_eq!(got, Ok(42));
        assert_eq!(router.wrong_shard_bounces(), 3);
        assert_eq!(refreshed.get(), 3, "every bounce refreshes from the source");
        assert_eq!(
            router.map().epoch(),
            1,
            "the refreshed map is the cached one"
        );
    }

    #[test]
    fn wrong_shard_retries_are_bounded_and_surface_timeout() {
        let sim = Sim::new(32);
        let router = test_router(&sim);
        let attempts = Rc::new(Cell::new(0u64));
        let a2 = Rc::clone(&attempts);
        let r2 = Rc::clone(&router);
        // An authority that keeps moving ownership: every attempt bounces.
        // The router must give up instead of spinning forever.
        let got: KvResult<()> = sim.block_on(async move {
            r2.bounded_wrong_shard(7, |_| {
                a2.set(a2.get() + 1);
                async { Err(KvError::WrongShard { epoch: 9 }) }
            })
            .await
        });
        assert_eq!(got, Err(KvError::Timeout));
        assert_eq!(attempts.get(), MAX_WRONG_SHARD_RETRIES as u64);
        assert_eq!(router.wrong_shard_bounces(), MAX_WRONG_SHARD_RETRIES as u64);
    }

    #[test]
    fn non_bounce_errors_pass_through_without_retry() {
        let sim = Sim::new(33);
        let router = test_router(&sim);
        let attempts = Rc::new(Cell::new(0u64));
        let a2 = Rc::clone(&attempts);
        let r2 = Rc::clone(&router);
        let got: KvResult<()> = sim.block_on(async move {
            r2.bounded_wrong_shard(7, |_| {
                a2.set(a2.get() + 1);
                async { Err(KvError::NotFound) }
            })
            .await
        });
        assert_eq!(got, Err(KvError::NotFound));
        assert_eq!(attempts.get(), 1, "only WrongShard retries");
        assert_eq!(router.wrong_shard_bounces(), 0);
    }
}
