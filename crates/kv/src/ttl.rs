//! Lease-stamped TTL traffic: a [`TtlStore`] wrapper that makes expired
//! keys read as absent, with expiry modeled for the checker as a legal
//! linearization point.
//!
//! # How expiry stays linearizable
//!
//! A TTL is client-observable state with no dedicated delete message: the
//! key simply *becomes* absent when virtual time passes the lease. The
//! checker is taught this by pushing one **ambiguous delete** per expired
//! lease at the expiry instant (`KvHistory::expire`): an ambiguous op may
//! be applied at any legal point after everything that completed before
//! the expiry instant, or discarded entirely (e.g. when a later write
//! "resurrected" the key before anyone observed the expiry). Pre-expiry
//! reads of `Some` and post-expiry reads of `None` both linearize against
//! that single flexible event, and no checker search changes are needed —
//! delete is already legal in any state.
//!
//! # Wire format
//!
//! Every value stored through the wrapper carries an 8-byte little-endian
//! expiry prefix (`u64::MAX` = never expires). [`TtlStore::stamp_never`]
//! pre-stamps bulk-loaded values so the strip on read is uniform; history
//! recorders should sit *outside* the wrapper so they see unstamped
//! payloads (tags stay stable whether or not TTL is in play).

use std::cell::RefCell;
use std::rc::Rc;

use swarm_fabric::Endpoint;
use swarm_sim::{Nanos, Sim};

use crate::store::{KvResult, KvStore, ScanItems};

/// Expiry sentinel: the value never expires.
pub const TTL_NEVER: u64 = u64::MAX;

/// Prefixes `value` with an explicit expiry stamp (the [`TtlStore`] wire
/// format: 8 bytes little-endian expiry, then the payload).
pub fn ttl_stamp(value: &[u8], expiry_ns: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(8 + value.len());
    v.extend_from_slice(&expiry_ns.to_le_bytes());
    v.extend_from_slice(value);
    v
}

/// Prefixes `value` with the never-expires stamp — bulk loaders must
/// pre-stamp values this way when the run reads through a [`TtlStore`].
pub fn ttl_stamp_never(value: &[u8]) -> Vec<u8> {
    ttl_stamp(value, TTL_NEVER)
}

/// A [`KvStore`] wrapper adding TTL leases (see the module docs).
///
/// All values pass through stamped with an expiry prefix; reads and scans
/// strip the prefix and turn a passed lease into absence (`Ok(None)` /
/// omission from scan results). Leases granted through
/// [`KvStore::insert_ttl`] are tracked so a test harness can replay their
/// expiry instants into a history via [`TtlStore::take_expired`].
pub struct TtlStore<S> {
    inner: Rc<S>,
    sim: Sim,
    leases: RefCell<Vec<(u64, Nanos)>>,
}

impl<S: KvStore> TtlStore<S> {
    /// Wraps `inner`, stamping expiries from `sim`'s virtual clock.
    pub fn new(sim: &Sim, inner: Rc<S>) -> Rc<Self> {
        Rc::new(TtlStore {
            inner,
            sim: sim.clone(),
            leases: RefCell::new(Vec::new()),
        })
    }

    /// The wrapped store.
    pub fn store(&self) -> &Rc<S> {
        &self.inner
    }

    /// Leases granted via [`KvStore::insert_ttl`] whose expiry has passed,
    /// as `(key, expiry_ns)` pairs; drains them so each expiry is reported
    /// once. Feed these to `KvHistory::expire` (or
    /// `HistoryRecorder::note_expiry`) before checking a recorded history.
    pub fn take_expired(&self) -> Vec<(u64, Nanos)> {
        let now = self.sim.now();
        let mut leases = self.leases.borrow_mut();
        let (expired, live): (Vec<_>, Vec<_>) = leases.drain(..).partition(|&(_, at)| at <= now);
        *leases = live;
        expired
    }

    /// Strips the expiry prefix; `None` if the lease has passed.
    fn strip_live(&self, v: &[u8]) -> Option<Rc<Vec<u8>>> {
        let expiry = u64::from_le_bytes(
            v[..8]
                .try_into()
                .expect("TtlStore read a value without an expiry stamp"),
        );
        if self.sim.now() >= expiry {
            None
        } else {
            Some(Rc::new(v[8..].to_vec()))
        }
    }
}

impl<S: KvStore> KvStore for TtlStore<S> {
    /// Reads through the wrapper: an expired lease reads as `Ok(None)`
    /// (checked against virtual *response* time, like a server evaluating
    /// the lease when it serves the read).
    async fn get(&self, key: u64) -> KvResult<Option<Rc<Vec<u8>>>> {
        let r = self.inner.get(key).await?;
        Ok(r.and_then(|v| self.strip_live(&v)))
    }

    /// Overwrites with a never-expiring value — an update "resurrects" an
    /// expired-but-unreclaimed key, which is linearizable because the
    /// checker's expiry delete is ambiguous (discardable).
    async fn update(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        self.inner.update(key, ttl_stamp_never(&value)).await
    }

    /// Inserts a never-expiring value.
    async fn insert(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        self.inner.insert(key, ttl_stamp_never(&value)).await
    }

    async fn delete(&self, key: u64) -> KvResult<()> {
        self.inner.delete(key).await
    }

    /// Scans through the wrapper: expired entries are omitted, live ones
    /// have their stamps stripped.
    async fn scan(&self, start: u64, limit: usize) -> KvResult<ScanItems> {
        let items = self.inner.scan(start, limit).await?;
        Ok(items
            .into_iter()
            .filter_map(|(k, v)| self.strip_live(&v).map(|v| (k, v)))
            .collect())
    }

    /// Inserts with a lease: after `ttl_ns` the key reads as absent. The
    /// lease is recorded for [`TtlStore::take_expired`]. A successful
    /// insert is required for the lease to be tracked — a refused insert
    /// never becomes an expiry event.
    async fn insert_ttl(&self, key: u64, value: Vec<u8>, ttl_ns: Option<Nanos>) -> KvResult<()> {
        let Some(ttl) = ttl_ns else {
            return self.insert(key, value).await;
        };
        let expiry = self.sim.now() + ttl;
        let r = self.inner.insert(key, ttl_stamp(&value, expiry)).await;
        if r.is_ok() {
            self.leases.borrow_mut().push((key, expiry));
        }
        r
    }

    fn rounds(&self) -> u64 {
        self.inner.rounds()
    }

    fn endpoint(&self) -> Rc<Endpoint> {
        self.inner.endpoint()
    }

    fn client_id(&self) -> usize {
        self.inner.client_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistoryRecorder, Protocol, StoreBuilder};

    fn tagged(tag: u64) -> Vec<u8> {
        let mut v = vec![0u8; 64];
        v[..8].copy_from_slice(&tag.to_le_bytes());
        v
    }

    #[test]
    fn leases_expire_and_reads_turn_absent() {
        let sim = Sim::new(21);
        let cluster = StoreBuilder::new(Protocol::SafeGuess)
            .value_size(72)
            .build_cluster(&sim);
        cluster.load_keys(2, |k| ttl_stamp_never(&tagged(1_000 + k)));
        let ttl = TtlStore::new(&sim, cluster.client(0));
        let s = sim.clone();
        sim.block_on({
            let ttl = Rc::clone(&ttl);
            async move {
                // Bulk-loaded values read back unstamped.
                let v = ttl.get(0).await.unwrap().unwrap();
                assert_eq!(crate::value_tag(&v), 1_000);

                ttl.insert_ttl(9, tagged(7), Some(1_000_000)).await.unwrap();
                let v = ttl.get(9).await.unwrap().expect("lease still live");
                assert_eq!(crate::value_tag(&v), 7);

                s.sleep_ns(2_000_000).await;
                assert_eq!(ttl.get(9).await.unwrap(), None, "lease passed");
                // Unleased keys are unaffected.
                assert!(ttl.get(0).await.unwrap().is_some());
            }
        });
        let expired = ttl.take_expired();
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].0, 9);
        assert!(ttl.take_expired().is_empty(), "each expiry reports once");
    }

    #[test]
    fn update_resurrects_and_scan_filters() {
        let sim = Sim::new(22);
        let cluster = StoreBuilder::new(Protocol::SafeGuess)
            .value_size(72)
            .build_cluster(&sim);
        cluster.load_keys(4, |k| ttl_stamp_never(&tagged(1_000 + k)));
        let ttl = TtlStore::new(&sim, cluster.client(0));
        let s = sim.clone();
        sim.block_on(async move {
            ttl.insert_ttl(2, tagged(5), Some(1_000)).await.unwrap();
            s.sleep_ns(1_000_000).await;
            assert_eq!(ttl.get(2).await.unwrap(), None);
            // Scan omits the expired key but keeps its live neighbors.
            let items = ttl.scan(0, 16).await.unwrap();
            let keys: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
            assert_eq!(keys, vec![0, 1, 3]);
            // An update through the wrapper resurrects the key forever.
            ttl.update(2, tagged(6)).await.unwrap();
            let v = ttl.get(2).await.unwrap().expect("resurrected");
            assert_eq!(crate::value_tag(&v), 6);
        });
    }

    #[test]
    fn recorded_ttl_history_linearizes_with_expiry_events() {
        let sim = Sim::new(23);
        let cluster = StoreBuilder::new(Protocol::SafeGuess)
            .value_size(72)
            .build_cluster(&sim);
        cluster.load_keys(2, |k| ttl_stamp_never(&tagged(1_000 + k)));
        // Recorder OUTSIDE the wrapper: it sees unstamped payloads.
        let rec = HistoryRecorder::new(&sim);
        for k in 0..2 {
            rec.set_initial(k, &tagged(1_000 + k));
        }
        let ttl = TtlStore::new(&sim, cluster.client(0));
        let store = rec.wrap(Rc::clone(&ttl));
        let s = sim.clone();
        sim.block_on(async move {
            store.insert_ttl(5, tagged(9), Some(500_000)).await.unwrap();
            let v = store.get(5).await.unwrap().expect("pre-expiry read");
            assert_eq!(crate::value_tag(&v), 9);
            s.sleep_ns(1_000_000).await;
            assert_eq!(store.get(5).await.unwrap(), None, "post-expiry read");
        });
        for (key, at) in ttl.take_expired() {
            rec.note_expiry(key, at);
        }
        rec.history()
            .check()
            .expect("expiry must be a legal linearization point");
    }
}
