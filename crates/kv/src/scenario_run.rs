//! Scenario runner: drives a time-phased [`ScenarioSpec`] op stream —
//! including scans, read-modify-writes, and TTL-leased inserts — against
//! any [`KvStore`] and collects per-class latency statistics.
//!
//! # Determinism
//!
//! The whole operation stream is materialized up front from
//! `spec.ops(cfg.seed)` (pure in `(seed, spec)`) and dealt round-robin to
//! the client handles; each worker then executes its slice sequentially on
//! the shared deterministic `Sim`. Nothing in the runner draws from the
//! simulator RNG, so a scenario run is bit-identical given the same
//! `(seed, spec, store configuration)` — the property `bench_scenarios`
//! relies on for machine-diffable reports.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use swarm_sim::{Histogram, Nanos, Sim, NANOS_PER_SEC};
use swarm_workload::{scenario_value, ScenarioOp, ScenarioOpClass, ScenarioSpec};

use crate::store::KvStore;

/// Scenario run parameters.
#[derive(Debug, Clone)]
pub struct ScenarioRunConfig {
    /// Seed of the scenario op stream (`ScenarioSpec::ops(seed)`).
    pub seed: u64,
    /// Client-side CPU work per operation in nanoseconds (same role as
    /// `RunConfig::op_overhead_ns`).
    pub op_overhead_ns: Nanos,
    /// Register slot capacity every stored payload is padded to. In-n-Out
    /// registers (like FUSEE's blocks) are fixed-size slots, so a run's
    /// cluster is provisioned for the scenario's *largest* value
    /// (`ValueSizeDist::max_size`) and smaller logical payloads ship
    /// zero-padded — set the `StoreBuilder::value_size` to this (plus 8
    /// when the run goes through a `TtlStore`, for the expiry stamp).
    pub value_cap: usize,
}

impl Default for ScenarioRunConfig {
    fn default() -> Self {
        ScenarioRunConfig {
            seed: 1,
            op_overhead_ns: 1_000,
            value_cap: 64,
        }
    }
}

/// A mutation payload: the logical `scenario_value` zero-padded to the
/// provisioned slot capacity (the first-8-bytes tag is preserved).
fn payload(key: u64, version: u64, size: usize, cap: usize) -> Vec<u8> {
    assert!(
        size <= cap,
        "scenario value of {size} bytes exceeds the {cap}-byte slot capacity"
    );
    let mut v = scenario_value(key, version, size);
    v.resize(cap, 0);
    v
}

/// Collected scenario results.
#[derive(Debug, Default)]
pub struct ScenarioStats {
    /// Latency histogram per operation class.
    pub latency: HashMap<ScenarioOpClass, Histogram>,
    /// Operations completed (one RMW counts once).
    pub measured_ops: u64,
    /// Operations that returned failure/absence (a `Get`/`Rmw` of an
    /// absent key counts here, like the YCSB runner's `failed_ops`).
    pub failed_ops: u64,
    /// Total items returned across all scans.
    pub scanned_items: u64,
    /// First op start time.
    pub start_ns: Nanos,
    /// Last op completion time.
    pub end_ns: Nanos,
}

impl ScenarioStats {
    /// Overall measured throughput in operations per second.
    pub fn throughput_ops(&self) -> f64 {
        if self.end_ns <= self.start_ns {
            return 0.0;
        }
        self.measured_ops as f64 * NANOS_PER_SEC as f64 / (self.end_ns - self.start_ns) as f64
    }

    /// Latency histogram for one class (empty if none ran).
    pub fn lat(&self, class: ScenarioOpClass) -> Histogram {
        self.latency.get(&class).cloned().unwrap_or_default()
    }
}

/// Runs the scenario stream against the given store handles (the stream is
/// dealt round-robin across them; each handle executes its slice
/// sequentially) and returns the collected statistics. Drives the
/// simulation internally.
pub fn run_scenario<S: KvStore + 'static>(
    sim: &Sim,
    stores: &[Rc<S>],
    spec: &ScenarioSpec,
    cfg: &ScenarioRunConfig,
) -> ScenarioStats {
    assert!(
        !stores.is_empty(),
        "a scenario run needs at least one client"
    );
    let ops = spec.ops(cfg.seed);
    let shared = Rc::new(RefCell::new(Shared {
        stats: ScenarioStats::default(),
        active_workers: stores.len().min(ops.len().max(1)),
    }));

    let n_workers = shared.borrow().active_workers;
    let mut slices: Vec<Vec<ScenarioOp>> = vec![Vec::new(); n_workers];
    for (i, op) in ops.into_iter().enumerate() {
        slices[i % n_workers].push(op);
    }

    for (store, slice) in stores.iter().zip(slices) {
        let store = Rc::clone(store);
        let sim2 = sim.clone();
        let shared = Rc::clone(&shared);
        let cfg = cfg.clone();
        sim.spawn(async move {
            run_slice(&sim2, store, slice, &cfg, &shared).await;
            shared.borrow_mut().active_workers -= 1;
        });
    }

    loop {
        let horizon = sim.now() + 50 * swarm_sim::NANOS_PER_MILLI;
        sim.run_until(horizon);
        if shared.borrow().active_workers == 0 {
            break;
        }
        assert!(
            sim.live_tasks() > 0,
            "simulation drained with scenario workers still pending"
        );
    }

    let shared = Rc::try_unwrap(shared)
        .ok()
        .expect("workers still hold state");
    shared.into_inner().stats
}

struct Shared {
    stats: ScenarioStats,
    active_workers: usize,
}

async fn run_slice<S: KvStore>(
    sim: &Sim,
    store: Rc<S>,
    slice: Vec<ScenarioOp>,
    cfg: &ScenarioRunConfig,
    shared: &Rc<RefCell<Shared>>,
) {
    for op in slice {
        store.endpoint().work(cfg.op_overhead_ns).await;
        let t0 = sim.now();
        let mut scanned = 0u64;
        let ok = match op {
            ScenarioOp::Get { key } => matches!(store.get(key).await, Ok(Some(_))),
            ScenarioOp::Update { key, size, version } => store
                .update(key, payload(key, version, size, cfg.value_cap))
                .await
                .is_ok(),
            ScenarioOp::Insert {
                key,
                size,
                version,
                ttl_ns,
            } => store
                .insert_ttl(key, payload(key, version, size, cfg.value_cap), ttl_ns)
                .await
                .is_ok(),
            ScenarioOp::Delete { key } => store.delete(key).await.is_ok(),
            ScenarioOp::Scan { start, limit } => match store.scan(start, limit).await {
                Ok(items) => {
                    scanned = items.len() as u64;
                    true
                }
                Err(_) => false,
            },
            ScenarioOp::Rmw { key, size, version } => {
                // Read-modify-write: the read's observation feeds the
                // write in a real application; here only the latency of
                // the two dependent legs matters.
                match store.get(key).await {
                    Ok(Some(_)) => store
                        .update(key, payload(key, version, size, cfg.value_cap))
                        .await
                        .is_ok(),
                    _ => false,
                }
            }
        };
        let t1 = sim.now();

        let mut sh = shared.borrow_mut();
        let st = &mut sh.stats;
        if st.measured_ops == 0 {
            st.start_ns = t0;
        }
        st.measured_ops += 1;
        st.end_ns = st.end_ns.max(t1);
        st.scanned_items += scanned;
        if !ok {
            st.failed_ops += 1;
        }
        st.latency.entry(op.class()).or_default().record(t1 - t0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Protocol, StoreBuilder};
    use swarm_workload::{Phase, ScenarioMix, TtlSpec, ValueSizeDist};

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new("mixed", 64)
            .phase(Phase::new(150, ScenarioMix::E).theta(0.9))
            .phase(Phase::new(150, ScenarioMix::F).theta(0.99).rotate(32))
            .values(ValueSizeDist::Bimodal {
                small: 32,
                large: 64,
                large_pct: 10,
            })
    }

    #[test]
    fn scenario_run_covers_scans_and_rmws() {
        let sim = Sim::new(31);
        let cluster = StoreBuilder::new(Protocol::SafeGuess).build_cluster(&sim);
        cluster.load_keys(64, |k| vec![k as u8; 64]);
        let clients: Vec<_> = (0..2).map(|i| cluster.client(i)).collect();
        let stats = run_scenario(&sim, &clients, &spec(), &ScenarioRunConfig::default());
        assert_eq!(stats.measured_ops, 300);
        assert!(!stats.lat(ScenarioOpClass::Scan).is_empty(), "E ran scans");
        assert!(!stats.lat(ScenarioOpClass::Rmw).is_empty(), "F ran RMWs");
        assert!(stats.scanned_items > 0);
        assert!(stats.throughput_ops() > 0.0);
        // All 64 keys are loaded, so gets/scans/RMWs only fail when an
        // insert has not yet landed — bounded by the insert count.
        assert!(stats.failed_ops <= stats.lat(ScenarioOpClass::Insert).len() as u64);
    }

    #[test]
    fn scenario_run_is_deterministic() {
        let run = || {
            let sim = Sim::new(32);
            // TTL run: registers provisioned for payload + 8-byte stamp.
            let cluster = StoreBuilder::new(Protocol::Fusee)
                .value_size(72)
                .build_cluster(&sim);
            cluster.load_keys(64, |k| crate::ttl_stamp_never(&[k as u8; 64]));
            let clients: Vec<_> = (0..2)
                .map(|i| crate::TtlStore::new(&sim, cluster.client(i)))
                .collect();
            let spec = spec().ttl(TtlSpec {
                insert_pct: 50,
                ttl_ns: 500_000,
                ttl_keys: 16,
            });
            let stats = run_scenario(&sim, &clients, &spec, &ScenarioRunConfig::default());
            (
                stats.measured_ops,
                stats.failed_ops,
                stats.scanned_items,
                stats.end_ns,
                stats.lat(ScenarioOpClass::Scan).median(),
            )
        };
        assert_eq!(run(), run(), "same seed+spec+store must replay identically");
    }
}
