//! Elastic resharding: online shard split/merge with linearizable
//! ownership handoff.
//!
//! The paper's deployment model (and [`crate::ShardSpec`]) freezes the
//! keyspace layout at build time. This module is the live-reconfiguration
//! subsystem on top of it: a generation-stamped routing table
//! ([`ShardMap`]) plus an online migration protocol that moves a key range
//! from the replica group that owns it onto a freshly built one — while
//! concurrent clients keep getting linearizable answers.
//!
//! # The routing table
//!
//! A [`ShardMap`] refines the stateless `hash % N` mapping: each of the N
//! *classes* (the `ShardSpec::shard_of` image, fixed forever so static
//! deployments never reshuffle) owns a 16-bit *split space*, keys land in
//! it via a second, independent hash ([`split_point`]), and contiguous
//! segments of that space map to replica *groups*. An epoch-0 map assigns
//! every class's full range to its own group — bit-for-bit the classic
//! layout, pinned by golden tests. Every ownership transfer bumps the
//! map's `epoch`; a client holding a stale map has its request bounced
//! with [`KvError::WrongShard`]`{ epoch }` and re-resolves.
//!
//! # The migration protocol (copy, double-write, seal)
//!
//! An [`ElasticShard`] family wraps one class's base group and runs
//! migrations as simulation tasks:
//!
//! 1. **Window open.** A fresh destination group is built mid-run from the
//!    family's `StoreBuilder` with an RNG label derived from `(base label,
//!    RESHARD role, group ordinal)` — the same private-stream convention as
//!    `build_one_shard`, so the new group's randomness is isolated by
//!    construction. The moving range `[lo, hi]` enters a *double-write
//!    window*: every mutation of a covered key applies to the source and,
//!    if the source applied (or timed out ambiguously), mirrors to the
//!    destination — both under that key's FIFO lock.
//! 2. **Paced copy.** The copy driver walks the live keys of the range in
//!    sorted order (one key per `pace_ns`, default from the
//!    `SWARM_RESHARD_RATE` knob), and under each key's lock overwrites the
//!    destination with the source's current value (or deletes a key the
//!    source no longer has — merges fold onto a group holding stale
//!    pre-split state). Mutations serialize with the copy through the same
//!    locks, so source order ≡ destination order per key.
//! 3. **Drain + seal.** After the walk, the driver waits until no mutation
//!    is inside the window (an `inflight` count, incremented in the same
//!    synchronous region as the under-lock ownership re-check), then
//!    *synchronously* bumps the epoch and assigns the range to the
//!    destination. Any mirror failure poisons the window instead: the
//!    migration aborts, the source keeps ownership, and nothing the
//!    destination holds was ever readable.
//!
//! Reads never lock: a read resolves its group against the authoritative
//! map at invocation, and a straggler source read racing the seal overlaps
//! the ownership transfer in real time, so linearizing it before the seal
//! is always legal. Timed-out (ambiguous) mutations are mirrored too —
//! the checker's apply-or-discard semantics cover both the copy driver
//! preserving and overwriting their effect.
//!
//! The same machinery rebuilds a replica group after a permanent crash
//! ([`ElasticShard::rebuild`]): once the membership service declares a
//! node dead, the group's whole span migrates onto a spare built fresh.
//!
//! Everything here is deterministic: labeled RNG streams only, sorted key
//! walks, FIFO locks, constant pacing — a migration replays bit-identically
//! across `ShardMode::{SingleSim, Sequential, Threads}` (the
//! `reshard_chaos` suite pins it).

use std::cell::{Cell, RefCell};
use std::collections::{hash_map::Entry, BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

use swarm_fabric::{Endpoint, FaultPlan, TrafficStats};
use swarm_sim::{oneshot, FifoResource, Nanos, OneshotSender, Sim};

use crate::builder::{Protocol, StoreBuilder, StoreClient, StoreCluster};
use crate::cluster::{derive_label, ROLE_RESHARD};
use crate::envknob::reshard_pace_ns;
use crate::repair::RepairStats;
use crate::shard::ShardSpec;
use crate::store::{KvError, KvResult, KvStore};

/// Seed of the intra-class split hash. Independent of the key→class hash
/// (`ShardSpec::shard_of`) so a split cuts each class's keys afresh.
const SPLIT_HASH_SEED: u64 = 0x0052_4553_4841;

/// Size of the per-class split space (16-bit points).
const SPLIT_SPACE: u32 = 1 << 16;

/// Bounces a client retries before surfacing [`KvError::WrongShard`].
/// Each bounce refreshes the cached map, so more than one per op needs a
/// seal racing every refresh — in practice the error never escapes.
const MAX_BOUNCES: usize = 16;

/// Modeled cost of one bounced request (the wasted half-roundtrip before
/// the client re-resolves with a fresh map).
const BOUNCE_NS: Nanos = 500;

/// Poll period of the window-drain and window-wait loops.
const DRAIN_POLL_NS: Nanos = 200;

/// Poll period while a rebuild waits for the membership verdict.
const DEAD_POLL_NS: Nanos = 100_000;

/// Pause between copy-driver retries of a timed-out source read or
/// destination write.
const COPY_RETRY_NS: Nanos = 5_000;

/// Copy-driver attempts per key before the window is poisoned.
const COPY_RETRIES: usize = 8;

/// The point a key occupies in its class's 16-bit split space: a pure
/// function of the key, independent of the routing hash, stable across
/// runs and processes (golden-pinned alongside `ShardSpec::shard_of`).
pub fn split_point(key: u64) -> u16 {
    (swarm_core::xxh64(&key.to_le_bytes(), SPLIT_HASH_SEED) & 0xFFFF) as u16
}

/// One contiguous run of a class's split space mapped to a replica group
/// (inclusive bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First split point of the run.
    pub start: u16,
    /// Last split point of the run (inclusive).
    pub end: u16,
    /// Owning replica group.
    pub group: usize,
}

/// The generation-stamped routing table: per-class segment ownership plus
/// the epoch that every handoff bumps.
///
/// `ShardMap::base(spec)` (epoch 0) reproduces the stateless
/// `ShardSpec::shard_of` assignment bit for bit: class `s` owns its whole
/// split space and maps to group `s`. Static sharded clusters never leave
/// epoch 0, so upgrading to map-based routing reshuffles nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    spec: ShardSpec,
    epoch: u64,
    /// `classes[c]` = class `c`'s segments, sorted by `start`, covering
    /// the whole split space with no gaps or overlaps.
    classes: Vec<Vec<Segment>>,
}

impl ShardMap {
    /// The epoch-0 map of `spec`: every class's full range on its own
    /// group, `owner_of == spec.shard_of`.
    pub fn base(spec: ShardSpec) -> Self {
        let classes = (0..spec.shards())
            .map(|s| {
                vec![Segment {
                    start: 0,
                    end: u16::MAX,
                    group: s,
                }]
            })
            .collect();
        ShardMap {
            spec,
            epoch: 0,
            classes,
        }
    }

    /// The underlying (immutable) key→class partitioning.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Current generation; bumped by every [`ShardMap::assign`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// One past the highest group id any segment maps to.
    pub fn groups(&self) -> usize {
        self.classes
            .iter()
            .flatten()
            .map(|seg| seg.group + 1)
            .max()
            .expect("a map has at least one class")
    }

    /// The replica group owning `key` under this map.
    pub fn owner_of(&self, key: u64) -> usize {
        self.owner_in_class(self.spec.shard_of(key), split_point(key))
    }

    /// The group owning split point `p` of class `class`.
    pub fn owner_in_class(&self, class: usize, p: u16) -> usize {
        self.classes[class]
            .iter()
            .find(|seg| seg.start <= p && p <= seg.end)
            .expect("segments cover the split space")
            .group
    }

    /// Class `class`'s segments, sorted by start (tests / diagnostics).
    pub fn segments(&self, class: usize) -> &[Segment] {
        &self.classes[class]
    }

    /// Reassigns `[lo, hi]` of class `class` to `group` and bumps the
    /// epoch: the seal of an ownership handoff. Adjacent same-group
    /// segments coalesce, so a merge restores the pre-split map shape.
    pub fn assign(&mut self, class: usize, lo: u16, hi: u16, group: usize) {
        assert!(lo <= hi, "segment bounds out of order");
        let old = std::mem::take(&mut self.classes[class]);
        let mut segs: Vec<Segment> = Vec::with_capacity(old.len() + 2);
        for seg in old {
            // `lo > 0` / `hi < MAX` are implied by the guards, so the ±1
            // arithmetic cannot wrap.
            if seg.start < lo {
                segs.push(Segment {
                    start: seg.start,
                    end: seg.end.min(lo - 1),
                    group: seg.group,
                });
            }
            if seg.end > hi {
                segs.push(Segment {
                    start: seg.start.max(hi + 1),
                    end: seg.end,
                    group: seg.group,
                });
            }
        }
        segs.push(Segment {
            start: lo,
            end: hi,
            group,
        });
        segs.sort_unstable_by_key(|s| s.start);
        let mut merged: Vec<Segment> = Vec::with_capacity(segs.len());
        for seg in segs {
            match merged.last_mut() {
                Some(last)
                    if last.group == seg.group && last.end as u32 + 1 == seg.start as u32 =>
                {
                    last.end = seg.end;
                }
                _ => merged.push(seg),
            }
        }
        self.classes[class] = merged;
        self.epoch += 1;
    }
}

/// A scheduled resharding action, carried by
/// [`ShardRunOptions::reshards`](crate::ShardRunOptions::reshards): at
/// `at_ns` on shard `shard`'s family, run `action`.
#[derive(Debug, Clone)]
pub struct ReshardEvent {
    /// The (static) shard whose family runs the action.
    pub shard: usize,
    /// Virtual time the action fires.
    pub at_ns: Nanos,
    /// What to do.
    pub action: ReshardAction,
    /// Per-key copy pacing override (`None` = the `SWARM_RESHARD_RATE`
    /// knob / default).
    pub pace_ns: Option<Nanos>,
    /// A fault plan applied to the freshly built destination group's
    /// fabric the instant it exists — the mid-migration chaos hook.
    pub dest_faults: Option<FaultPlan>,
}

impl ReshardEvent {
    /// A split of `permille`/1000 of shard `shard`'s range at `at_ns`.
    pub fn split(shard: usize, at_ns: Nanos, permille: u32) -> Self {
        ReshardEvent {
            shard,
            at_ns,
            action: ReshardAction::Split { permille },
            pace_ns: None,
            dest_faults: None,
        }
    }

    /// A merge of `group` back into the base group at `at_ns`.
    pub fn merge(shard: usize, at_ns: Nanos, group: usize) -> Self {
        ReshardEvent {
            shard,
            at_ns,
            action: ReshardAction::Merge { group },
            pace_ns: None,
            dest_faults: None,
        }
    }

    /// A membership-driven rebuild of `group` (waiting on `dead_node`'s
    /// death verdict) at `at_ns`.
    pub fn rebuild(shard: usize, at_ns: Nanos, group: usize, dead_node: usize) -> Self {
        ReshardEvent {
            shard,
            at_ns,
            action: ReshardAction::Rebuild { group, dead_node },
            pace_ns: None,
            dest_faults: None,
        }
    }

    /// Overrides the copy pacing.
    pub fn pace_ns(mut self, ns: Nanos) -> Self {
        self.pace_ns = Some(ns);
        self
    }

    /// Faults the destination group from birth.
    pub fn dest_faults(mut self, plan: FaultPlan) -> Self {
        self.dest_faults = Some(plan);
        self
    }
}

/// The three reconfigurations the migration machinery implements.
#[derive(Debug, Clone)]
pub enum ReshardAction {
    /// Split the top `permille`/1000 of the family's split space onto a
    /// freshly built group.
    Split {
        /// Fraction of the space to move, in thousandths (1..=999).
        permille: u32,
    },
    /// Fold `group`'s span back onto the family's base group.
    Merge {
        /// The group to retire (must currently own exactly one segment).
        group: usize,
    },
    /// Once the membership service declares `dead_node` dead, move
    /// `group`'s whole span onto a spare group built fresh — replica
    /// replacement after a permanent crash.
    Rebuild {
        /// The group with the dead node.
        group: usize,
        /// Node index the verdict is awaited for.
        dead_node: usize,
    },
}

/// `Send` snapshot of a family's migration counters (a bit-parity witness
/// alongside histories and traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReshardStats {
    /// Final routing-table epoch.
    pub epoch: u64,
    /// Replica groups built over the family's lifetime (incl. base).
    pub groups: usize,
    /// Migrations sealed (ownership actually moved).
    pub sealed: u64,
    /// Migrations aborted by a poisoned window.
    pub aborted: u64,
    /// Requests bounced with a stale epoch.
    pub bounces: u64,
    /// Keys walked by copy drivers.
    pub keys_copied: u64,
    /// Mutations double-written during windows.
    pub mirrored: u64,
    /// Virtual time of the last seal.
    pub last_seal_ns: Option<Nanos>,
}

/// An active double-write window: `[lo, hi]` of the family's split space
/// is moving from `source` to `dest`.
struct Window {
    source: usize,
    dest: usize,
    lo: u16,
    hi: u16,
    /// A mirror failed: abort instead of sealing.
    poisoned: Cell<bool>,
    /// Mutations currently between the under-lock window check and the
    /// end of their mirror: the seal waits for zero.
    inflight: Cell<usize>,
}

/// Per-key FIFO locks serializing window mutations with the copy driver.
/// An entry in the table means "locked"; its queue holds the waiters in
/// arrival order.
#[derive(Default)]
struct KeyLocks {
    queues: RefCell<HashMap<u64, VecDeque<OneshotSender<()>>>>,
}

impl KeyLocks {
    async fn lock(self: &Rc<Self>, key: u64) -> KeyGuard {
        let waiter = {
            let mut queues = self.queues.borrow_mut();
            match queues.entry(key) {
                Entry::Occupied(mut held) => {
                    let (tx, rx) = oneshot::<()>();
                    held.get_mut().push_back(tx);
                    Some(rx)
                }
                Entry::Vacant(free) => {
                    free.insert(VecDeque::new());
                    None
                }
            }
        };
        if let Some(rx) = waiter {
            rx.await;
        }
        KeyGuard {
            locks: Rc::clone(self),
            key,
        }
    }
}

/// Releases its key on drop, handing the lock to the next waiter FIFO.
struct KeyGuard {
    locks: Rc<KeyLocks>,
    key: u64,
}

impl Drop for KeyGuard {
    fn drop(&mut self) {
        let mut queues = self.locks.queues.borrow_mut();
        let Entry::Occupied(mut held) = queues.entry(self.key) else {
            unreachable!("dropping a guard for an unlocked key");
        };
        match held.get_mut().pop_front() {
            Some(next) => next.send(()),
            None => {
                held.remove();
            }
        }
    }
}

/// One elastic shard family: a base replica group plus every group built
/// by splits/rebuilds, the authoritative [`ShardMap`] over them, and the
/// migration machinery. Clients are [`ElasticClient`]s minted with
/// [`ElasticShard::client`].
///
/// A family always spans exactly one *class* (one static shard): its map
/// is `ShardMap::base(ShardSpec::new(1))` refined by handoffs. The class's
/// clusters must carry labeled RNG streams (`build_one_shard` /
/// `build_labeled` set them), which is what keeps a family's execution
/// bit-identical however many other families run beside it.
pub struct ElasticShard {
    sim: Sim,
    builder: StoreBuilder,
    base_label: u64,
    map: RefCell<ShardMap>,
    groups: RefCell<Vec<StoreCluster>>,
    locks: Rc<KeyLocks>,
    /// `Rc` so repair defer predicates can watch the active window
    /// without holding the family alive (`new_group` takes `&self`).
    window: Rc<RefCell<Option<Window>>>,
    /// Reserved client id for migration drivers (top of `max_clients`).
    mig_id: usize,
    /// Deadline [`ElasticShard::arm_repair`] armed the family's repair
    /// agents until; fresh destination groups arm themselves against it.
    repair_until: Cell<Option<Nanos>>,
    bounces: Cell<u64>,
    keys_copied: Cell<u64>,
    mirrored: Cell<u64>,
    sealed: Cell<u64>,
    aborted: Cell<u64>,
    last_seal_ns: Cell<Option<Nanos>>,
}

impl ElasticShard {
    /// Wraps `base` — already built from `builder`'s configuration with
    /// RNG label `base_label` — as a family's group 0.
    ///
    /// # Panics
    ///
    /// Panics for FUSEE (no index enumeration or membership service to
    /// drive migrations) and when `builder` reserves fewer than 2 client
    /// ids (the top id belongs to the migration driver).
    pub fn new(sim: &Sim, builder: &StoreBuilder, base: StoreCluster, base_label: u64) -> Rc<Self> {
        assert!(
            builder.protocol() != Protocol::Fusee,
            "elastic resharding runs on the Cluster substrate (RAW / SWARM-KV / DM-ABD)"
        );
        let mig_id = builder.max_client_count().checked_sub(1).unwrap();
        assert!(
            mig_id >= 1,
            "elastic resharding reserves the top client id for the migration \
             driver: configure StoreBuilder::max_clients(workers + 1)"
        );
        Rc::new(ElasticShard {
            sim: sim.clone(),
            builder: builder.clone(),
            base_label,
            map: RefCell::new(ShardMap::base(ShardSpec::new(1))),
            groups: RefCell::new(vec![base]),
            locks: Rc::new(KeyLocks::default()),
            window: Rc::new(RefCell::new(None)),
            mig_id,
            repair_until: Cell::new(None),
            bounces: Cell::new(0),
            keys_copied: Cell::new(0),
            mirrored: Cell::new(0),
            sealed: Cell::new(0),
            aborted: Cell::new(0),
            last_seal_ns: Cell::new(None),
        })
    }

    /// Builds the base group itself (label-forked via
    /// `StoreBuilder::build_labeled`) and wraps it.
    pub fn build(sim: &Sim, builder: &StoreBuilder, base_label: u64) -> Rc<Self> {
        let base = builder.build_labeled(sim, base_label);
        Self::new(sim, builder, base, base_label)
    }

    /// Snapshot of the authoritative routing table.
    pub fn map(&self) -> ShardMap {
        self.map.borrow().clone()
    }

    /// Current routing epoch.
    pub fn epoch(&self) -> u64 {
        self.map.borrow().epoch()
    }

    /// Number of replica groups built so far (including retired ones).
    pub fn num_groups(&self) -> usize {
        self.groups.borrow().len()
    }

    /// Group `g`'s cluster (inspection / fault injection).
    pub fn group(&self, g: usize) -> StoreCluster {
        self.groups.borrow()[g].clone()
    }

    /// Mints client `id` (one per application thread, `id < max_clients -
    /// 1`): per-group store clients are created lazily, all sharing one
    /// CPU core, exactly like a [`crate::ShardRouter`]'s thread model.
    pub fn client(self: &Rc<Self>, id: usize) -> Rc<ElasticClient> {
        assert!(
            id < self.mig_id,
            "client id {id} collides with the reserved migration driver id {}",
            self.mig_id
        );
        Rc::new(ElasticClient {
            shard: Rc::clone(self),
            id,
            cpu: FifoResource::new(&self.sim),
            cached: RefCell::new(self.map.borrow().clone()),
            clients: RefCell::new(Vec::new()),
        })
    }

    /// Bulk-loads `key = value` into its owning group (control plane).
    pub fn load_key(&self, key: u64, value: &[u8]) {
        let g = self.map.borrow().owner_of(key);
        self.groups.borrow()[g].load_key(key, value);
    }

    /// Aggregate fabric traffic, summed in group order.
    pub fn traffic(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for cluster in self.groups.borrow().iter() {
            total += cluster.fabric().stats();
        }
        total
    }

    /// Migration counters (a parity witness; `Send`).
    pub fn stats(&self) -> ReshardStats {
        ReshardStats {
            epoch: self.epoch(),
            groups: self.num_groups(),
            sealed: self.sealed.get(),
            aborted: self.aborted.get(),
            bounces: self.bounces.get(),
            keys_copied: self.keys_copied.get(),
            mirrored: self.mirrored.get(),
            last_seal_ns: self.last_seal_ns.get(),
        }
    }

    /// Arms anti-entropy repair on every group of the family until
    /// `deadline` (no-op unless the family's `StoreBuilder` configured
    /// [`crate::RepairConfig`]). Each group's agent defers keys inside an
    /// active double-write window to the migration machinery: the window
    /// already mirrors every covered mutation, and the seal (or abort)
    /// decides ownership — repair reconciling mid-handoff state would
    /// only duplicate that work against a moving target. Groups built
    /// after this call (split/rebuild destinations) arm themselves
    /// against the same deadline the moment they exist.
    pub fn arm_repair(&self, deadline: Nanos) {
        self.repair_until.set(Some(deadline));
        for cluster in self.groups.borrow().iter() {
            self.arm_group_repair(cluster, deadline);
        }
    }

    fn arm_group_repair(&self, cluster: &StoreCluster, deadline: Nanos) {
        let Some(agent) = cluster.repair() else {
            return;
        };
        let window = Rc::clone(&self.window);
        agent.set_defer(Some(Rc::new(move |key| {
            window.borrow().as_ref().is_some_and(|w| {
                let p = split_point(key);
                w.lo <= p && p <= w.hi
            })
        })));
        agent.arm_until(deadline);
    }

    /// Anti-entropy counters summed over every group's repair agent;
    /// `None` when the family was built without repair.
    pub fn repair_stats(&self) -> Option<RepairStats> {
        let groups = self.groups.borrow();
        let mut agents = groups.iter().filter_map(|c| c.repair()).peekable();
        agents.peek()?;
        let mut total = RepairStats::default();
        for agent in agents {
            total += agent.stats();
        }
        Some(total)
    }

    /// Spawns `ev` as a simulation task: sleep to `ev.at_ns`, then run the
    /// action (waiting out any migration already in flight).
    pub fn run_event(self: &Rc<Self>, ev: &ReshardEvent) {
        let this = Rc::clone(self);
        let ev = ev.clone();
        self.sim.clone().spawn(async move {
            this.sim.sleep_until(ev.at_ns).await;
            let pace = ev.pace_ns.unwrap_or_else(reshard_pace_ns);
            match ev.action {
                ReshardAction::Split { permille } => {
                    this.split(permille, pace, ev.dest_faults.as_ref()).await;
                }
                ReshardAction::Merge { group } => {
                    this.merge(group, pace).await;
                }
                ReshardAction::Rebuild { group, dead_node } => {
                    this.rebuild(group, dead_node, pace, ev.dest_faults.as_ref())
                        .await;
                }
            }
        });
    }

    /// Splits the top `permille`/1000 of the split space onto a fresh
    /// group. Returns whether the handoff sealed (an aborted window leaves
    /// ownership unchanged).
    pub async fn split(
        &self,
        permille: u32,
        pace_ns: Nanos,
        dest_faults: Option<&FaultPlan>,
    ) -> bool {
        assert!(
            (1..=999).contains(&permille),
            "split permille must be within 1..=999"
        );
        self.wait_no_window().await;
        let span = (SPLIT_SPACE * permille / 1000).max(1);
        let lo = (SPLIT_SPACE - span) as u16;
        let hi = u16::MAX;
        // Synchronous from ownership check to window activation: no other
        // migration can slip in between.
        let source = {
            let map = self.map.borrow();
            let owner = map.owner_in_class(0, lo);
            assert_eq!(
                owner,
                map.owner_in_class(0, hi),
                "split range must be wholly owned by one group"
            );
            owner
        };
        let dest = self.new_group(dest_faults);
        self.activate(source, dest, lo, hi);
        self.move_range(source, dest, lo, hi, pace_ns).await
    }

    /// Folds `group`'s span back onto the base group (group 0). The group
    /// must own exactly one segment (what a split produced).
    pub async fn merge(&self, group: usize, pace_ns: Nanos) -> bool {
        assert!(group != 0, "the base group cannot merge into itself");
        self.wait_no_window().await;
        let (lo, hi) = {
            let map = self.map.borrow();
            let owned: Vec<Segment> = map
                .segments(0)
                .iter()
                .copied()
                .filter(|seg| seg.group == group)
                .collect();
            assert_eq!(
                owned.len(),
                1,
                "merge expects the retiring group to own exactly one segment"
            );
            (owned[0].start, owned[0].end)
        };
        self.activate(group, 0, lo, hi);
        self.move_range(group, 0, lo, hi, pace_ns).await
    }

    /// Replica replacement: waits for `group`'s membership service to
    /// declare `dead_node` dead, then moves the group's whole span onto a
    /// spare group built fresh.
    pub async fn rebuild(
        &self,
        group: usize,
        dead_node: usize,
        pace_ns: Nanos,
        dest_faults: Option<&FaultPlan>,
    ) -> bool {
        loop {
            let dead = self.groups.borrow()[group]
                .membership()
                .expect("rebuild is membership-driven (Cluster substrate only)")
                .is_declared_dead(dead_node);
            if dead {
                break;
            }
            self.sim.sleep_ns(DEAD_POLL_NS).await;
        }
        self.wait_no_window().await;
        let (lo, hi) = {
            let map = self.map.borrow();
            let owned: Vec<Segment> = map
                .segments(0)
                .iter()
                .copied()
                .filter(|seg| seg.group == group)
                .collect();
            assert_eq!(
                owned.len(),
                1,
                "rebuild expects the crashed group to own exactly one segment"
            );
            (owned[0].start, owned[0].end)
        };
        let dest = self.new_group(dest_faults);
        self.activate(group, dest, lo, hi);
        self.move_range(group, dest, lo, hi, pace_ns).await
    }

    /// Builds the next destination group with a label derived from the
    /// family base — private streams by construction (synchronous).
    fn new_group(&self, faults: Option<&FaultPlan>) -> usize {
        let ordinal = self.groups.borrow().len();
        let label = derive_label(self.base_label, ROLE_RESHARD, ordinal as u64);
        let cluster = self.builder.build_labeled(&self.sim, label);
        if let Some(plan) = faults {
            cluster.fabric().apply_fault_plan(plan);
        }
        if let Some(deadline) = self.repair_until.get() {
            self.arm_group_repair(&cluster, deadline);
        }
        self.groups.borrow_mut().push(cluster);
        ordinal
    }

    fn activate(&self, source: usize, dest: usize, lo: u16, hi: u16) {
        let prev = self.window.replace(Some(Window {
            source,
            dest,
            lo,
            hi,
            poisoned: Cell::new(false),
            inflight: Cell::new(0),
        }));
        assert!(prev.is_none(), "one migration at a time per family");
    }

    async fn wait_no_window(&self) {
        while self.window.borrow().is_some() {
            self.sim.sleep_ns(DRAIN_POLL_NS).await;
        }
    }

    /// The copy driver: paced sorted walk, per-key lock, overwrite-or-
    /// delete on the destination, then drain and seal (or abort).
    async fn move_range(
        &self,
        source: usize,
        dest: usize,
        lo: u16,
        hi: u16,
        pace_ns: Nanos,
    ) -> bool {
        let keys = self.range_keys(source, dest, lo, hi);
        let (src, dst) = {
            let groups = self.groups.borrow();
            (
                groups[source].client(self.mig_id),
                groups[dest].client(self.mig_id),
            )
        };
        for key in keys {
            self.sim.sleep_ns(pace_ns).await;
            let guard = self.locks.lock(key).await;
            self.copy_one(&src, &dst, key).await;
            drop(guard);
            self.keys_copied.set(self.keys_copied.get() + 1);
            if self.window_poisoned() {
                break;
            }
        }
        // Drain the double-write window. The final zero check and the
        // seal below share one synchronous region, so a mutation either
        // held `inflight` here or re-checks ownership after the seal and
        // bounces to the destination.
        loop {
            let inflight = self
                .window
                .borrow()
                .as_ref()
                .expect("window active through its own migration")
                .inflight
                .get();
            if inflight == 0 {
                break;
            }
            self.sim.sleep_ns(DRAIN_POLL_NS).await;
        }
        let window = self
            .window
            .borrow_mut()
            .take()
            .expect("window active through its own migration");
        if window.poisoned.get() {
            self.aborted.set(self.aborted.get() + 1);
            false
        } else {
            self.map
                .borrow_mut()
                .assign(0, window.lo, window.hi, window.dest);
            self.sealed.set(self.sealed.get() + 1);
            self.last_seal_ns.set(Some(self.sim.now()));
            true
        }
    }

    /// Synchronizes one key from source to destination under its lock:
    /// destination ends holding exactly the source's current state.
    async fn copy_one(&self, src: &Rc<StoreClient>, dst: &Rc<StoreClient>, key: u64) {
        let mut value = None;
        let mut ok = false;
        for _ in 0..COPY_RETRIES {
            match src.get(key).await {
                Ok(v) => {
                    value = v;
                    ok = true;
                    break;
                }
                Err(KvError::Timeout) => self.sim.sleep_ns(COPY_RETRY_NS).await,
                Err(_) => break,
            }
        }
        if !ok {
            self.poison();
            return;
        }
        for _ in 0..COPY_RETRIES {
            let r = match &value {
                Some(v) => src_to_dest(dst.insert(key, (**v).clone()).await),
                None => match dst.delete(key).await {
                    // Absent on the destination too: nothing to undo.
                    Err(KvError::NotFound) | Err(KvError::Deleted) => CopyStep::Done,
                    r => src_to_dest(r),
                },
            };
            match r {
                CopyStep::Done => return,
                CopyStep::Retry => self.sim.sleep_ns(COPY_RETRY_NS).await,
                CopyStep::Fail => break,
            }
        }
        self.poison();
    }

    /// The sorted union of live keys on source and destination within
    /// `[lo, hi]` (control-plane snapshot): the copy walk. The destination
    /// side matters for merges, where the base group still holds stale
    /// pre-split state that must be overwritten or deleted.
    fn range_keys(&self, source: usize, dest: usize, lo: u16, hi: u16) -> Vec<u64> {
        let groups = self.groups.borrow();
        let index_keys = |g: usize| {
            groups[g]
                .swarm()
                .expect("elastic resharding runs on the Cluster substrate")
                .index()
                .keys_sorted()
        };
        let mut union: BTreeSet<u64> = index_keys(source).into_iter().collect();
        union.extend(index_keys(dest));
        union
            .into_iter()
            .filter(|&k| {
                let p = split_point(k);
                lo <= p && p <= hi
            })
            .collect()
    }

    fn window_poisoned(&self) -> bool {
        self.window
            .borrow()
            .as_ref()
            .is_some_and(|w| w.poisoned.get())
    }

    fn poison(&self) {
        if let Some(w) = self.window.borrow().as_ref() {
            w.poisoned.set(true);
        }
    }

    /// The group a request for `key` addressed to `group` should really go
    /// to: `Ok` when `group` owns it, the bounce error otherwise.
    fn dispatch_check(&self, key: u64, group: usize) -> KvResult<()> {
        let map = self.map.borrow();
        if map.owner_of(key) == group {
            Ok(())
        } else {
            self.bounces.set(self.bounces.get() + 1);
            Err(KvError::WrongShard { epoch: map.epoch() })
        }
    }

    /// `Some(dest)` when `key` on `group` is inside the active double-
    /// write window.
    fn mirror_dest(&self, key: u64, group: usize) -> Option<usize> {
        let window = self.window.borrow();
        let w = window.as_ref()?;
        let p = split_point(key);
        (w.source == group && w.lo <= p && p <= w.hi).then_some(w.dest)
    }

    fn window_enter(&self) {
        let window = self.window.borrow();
        let w = window.as_ref().expect("window checked in the same region");
        w.inflight.set(w.inflight.get() + 1);
    }

    fn window_exit(&self) {
        let window = self.window.borrow();
        let w = window.as_ref().expect("the drain waits for inflight zero");
        w.inflight.set(w.inflight.get() - 1);
    }
}

enum CopyStep {
    Done,
    Retry,
    Fail,
}

fn src_to_dest(r: KvResult<()>) -> CopyStep {
    match r {
        Ok(()) => CopyStep::Done,
        Err(KvError::Timeout) => CopyStep::Retry,
        Err(_) => CopyStep::Fail,
    }
}

/// One application thread of an elastic shard family: implements
/// [`KvStore`] by resolving each key's owning group against a cached
/// [`ShardMap`], refreshing on [`KvError::WrongShard`] bounces, and
/// double-writing mutations inside migration windows.
pub struct ElasticClient {
    shard: Rc<ElasticShard>,
    id: usize,
    /// One CPU core shared by every per-group client (one app thread).
    cpu: FifoResource,
    cached: RefCell<ShardMap>,
    /// Per-group store clients, minted on first use.
    clients: RefCell<Vec<Option<Rc<StoreClient>>>>,
}

/// The three mutations, payload owned (mirroring needs it twice).
enum MutOp {
    Update(Vec<u8>),
    Insert(Vec<u8>),
    Delete,
}

impl ElasticClient {
    /// The family this client routes into.
    pub fn family(&self) -> &Rc<ElasticShard> {
        &self.shard
    }

    fn client_for(&self, g: usize) -> Rc<StoreClient> {
        let mut clients = self.clients.borrow_mut();
        if clients.len() <= g {
            clients.resize(g + 1, None);
        }
        clients[g]
            .get_or_insert_with(|| {
                self.shard.groups.borrow()[g].client_with_cpu(self.id, self.cpu.clone())
            })
            .clone()
    }

    fn refresh(&self) {
        *self.cached.borrow_mut() = self.shard.map.borrow().clone();
    }

    /// Resolves `key`'s group: route by the cached map, let the
    /// authoritative side bounce stale epochs, pay the bounce and retry
    /// with a refreshed map.
    async fn resolve(&self, key: u64) -> KvResult<usize> {
        let mut last = KvError::WrongShard { epoch: 0 };
        for _ in 0..MAX_BOUNCES {
            let g = self.cached.borrow().owner_of(key);
            match self.shard.dispatch_check(key, g) {
                Ok(()) => return Ok(g),
                Err(e) => {
                    last = e;
                    self.shard.sim.sleep_ns(BOUNCE_NS).await;
                    self.refresh();
                }
            }
        }
        Err(last)
    }

    async fn mutate(&self, key: u64, op: MutOp) -> KvResult<()> {
        let mut bounces = 0;
        loop {
            let g = self.resolve(key).await?;
            let guard = self.shard.locks.lock(key).await;
            // Re-check under the lock — a seal may have landed while we
            // waited. From here to `window_enter` is synchronous, so the
            // seal's drain either saw our inflight increment or we see
            // its epoch bump.
            if let Err(e) = self.shard.dispatch_check(key, g) {
                drop(guard);
                bounces += 1;
                if bounces >= MAX_BOUNCES {
                    return Err(e);
                }
                self.refresh();
                continue;
            }
            let mut mirror = self.shard.mirror_dest(key, g);
            if mirror.is_some() {
                self.shard.window_enter();
            }
            let r = self.apply(g, key, &op).await;
            if mirror.is_none() {
                // A window may have opened while the op was in flight. Its
                // copy snapshot was taken before our effect landed, so an
                // insert racing the activation would reach neither the
                // walk nor the double-write: re-check and mirror late.
                mirror = self.shard.mirror_dest(key, g);
                if mirror.is_some() {
                    self.shard.window_enter();
                }
            }
            if let Some(dest) = mirror {
                // Mirror what applied — and what *may* have applied: a
                // timed-out mutation's messages can still land on the
                // source, so the destination must assume they did.
                if matches!(r, Ok(()) | Err(KvError::Timeout)) {
                    self.mirror(dest, key, &op).await;
                }
                self.shard.window_exit();
            }
            drop(guard);
            return r;
        }
    }

    async fn apply(&self, g: usize, key: u64, op: &MutOp) -> KvResult<()> {
        let client = self.client_for(g);
        match op {
            MutOp::Update(v) => client.update(key, v.clone()).await,
            MutOp::Insert(v) => client.insert(key, v.clone()).await,
            MutOp::Delete => client.delete(key).await,
        }
    }

    /// Applies `op`'s effect to the destination group. Upserts stand in
    /// for updates (the destination may not hold the key yet); an absent
    /// delete is success. Any other failure poisons the window, which
    /// aborts the seal — the destination never becomes authoritative
    /// while missing a completed write.
    async fn mirror(&self, dest: usize, key: u64, op: &MutOp) {
        let client = self.client_for(dest);
        let r = match op {
            MutOp::Update(v) | MutOp::Insert(v) => client.insert(key, v.clone()).await,
            MutOp::Delete => match client.delete(key).await {
                Err(KvError::NotFound) | Err(KvError::Deleted) => Ok(()),
                r => r,
            },
        };
        match r {
            Ok(()) => self.shard.mirrored.set(self.shard.mirrored.get() + 1),
            Err(_) => self.shard.poison(),
        }
    }
}

impl KvStore for ElasticClient {
    async fn get(&self, key: u64) -> KvResult<Option<Rc<Vec<u8>>>> {
        // Reads never lock: the resolved group is authoritative at
        // invocation, and a read racing a seal overlaps it in real time,
        // so linearizing before the handoff is always legal (the source
        // is frozen once sealed — no writer touches it again).
        let g = self.resolve(key).await?;
        self.client_for(g).get(key).await
    }

    async fn update(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        self.mutate(key, MutOp::Update(value)).await
    }

    async fn insert(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        self.mutate(key, MutOp::Insert(value)).await
    }

    async fn delete(&self, key: u64) -> KvResult<()> {
        self.mutate(key, MutOp::Delete).await
    }

    fn rounds(&self) -> u64 {
        self.clients
            .borrow()
            .iter()
            .flatten()
            .map(|c| c.rounds())
            .sum()
    }

    fn endpoint(&self) -> Rc<Endpoint> {
        // The base-group endpoint stands in for this application thread;
        // every per-group client shares its CPU core (cf. ShardRouter).
        self.client_for(0).endpoint()
    }

    fn client_id(&self) -> usize {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::HistoryRecorder;
    use swarm_sim::NANOS_PER_MILLI;

    fn tagged(tag: u64) -> Vec<u8> {
        let mut v = vec![0u8; 64];
        v[..8].copy_from_slice(&tag.to_le_bytes());
        v
    }

    fn builder() -> StoreBuilder {
        StoreBuilder::new(Protocol::SafeGuess)
            .value_size(64)
            .max_clients(3)
            .op_deadline_ns(2 * NANOS_PER_MILLI)
    }

    #[test]
    fn base_map_matches_shard_spec_everywhere() {
        for shards in [1usize, 4, 16] {
            let spec = ShardSpec::new(shards);
            let map = ShardMap::base(spec);
            assert_eq!(map.epoch(), 0);
            assert_eq!(map.groups(), shards);
            for key in (0..4096).chain([u64::MAX, 1 << 40]) {
                assert_eq!(map.owner_of(key), spec.shard_of(key), "key {key}");
            }
        }
    }

    #[test]
    fn assign_trims_merges_and_bumps_the_epoch() {
        let mut map = ShardMap::base(ShardSpec::new(1));
        map.assign(0, 0x8000, 0xFFFF, 1);
        assert_eq!(map.epoch(), 1);
        assert_eq!(
            map.segments(0),
            &[
                Segment {
                    start: 0,
                    end: 0x7FFF,
                    group: 0
                },
                Segment {
                    start: 0x8000,
                    end: 0xFFFF,
                    group: 1
                },
            ]
        );
        assert_eq!(map.owner_in_class(0, 0x7FFF), 0);
        assert_eq!(map.owner_in_class(0, 0x8000), 1);
        // Splitting the split: carve the middle out of group 1's span.
        map.assign(0, 0xA000, 0xBFFF, 2);
        assert_eq!(map.epoch(), 2);
        assert_eq!(map.segments(0).len(), 4);
        assert_eq!(map.owner_in_class(0, 0xA500), 2);
        assert_eq!(map.owner_in_class(0, 0xC000), 1);
        // Merging back coalesces to the original single segment.
        map.assign(0, 0xA000, 0xBFFF, 1);
        map.assign(0, 0x8000, 0xFFFF, 0);
        assert_eq!(
            map.segments(0),
            &[Segment {
                start: 0,
                end: 0xFFFF,
                group: 0
            }]
        );
        assert_eq!(map.epoch(), 4);
    }

    #[test]
    fn split_points_are_pinned() {
        // The split hash is part of the persistent layout contract, like
        // ShardSpec::shard_of: these goldens pin it.
        let golden: Vec<u16> = (0..8).map(split_point).collect();
        assert_eq!(
            golden,
            vec![29433, 33090, 38295, 38672, 2063, 17788, 28566, 28637]
        );
        assert_eq!(split_point(u64::MAX), 21492);
    }

    #[test]
    fn stale_map_bounces_then_resolves() {
        let sim = Sim::new(21);
        let family = ElasticShard::build(&sim, &builder(), 0xE1A5_0001);
        for k in 0..64u64 {
            family.load_key(k, &tagged(100 + k));
        }
        let client = family.client(0);
        // Pick a key the split will move, then seal a split directly so
        // the client's cached epoch-0 map goes stale.
        let moved = (0..64u64)
            .find(|&k| split_point(k) >= 0x8000)
            .expect("some preloaded key lands in the top half");
        let f2 = Rc::clone(&family);
        let sealed = sim.block_on(async move { f2.split(500, 100, None).await });
        assert!(sealed, "unfaulted split must seal");
        assert_eq!(family.epoch(), 1);
        let f3 = Rc::clone(&family);
        let got = sim.block_on(async move { client.get(moved).await });
        assert_eq!(value_of(&got), 100 + moved);
        assert!(
            f3.stats().bounces >= 1,
            "the stale epoch-0 map must bounce at least once"
        );
    }

    fn value_of(r: &KvResult<Option<Rc<Vec<u8>>>>) -> u64 {
        crate::recorder::value_tag(r.as_ref().unwrap().as_ref().unwrap())
    }

    #[test]
    fn wrong_shard_error_carries_the_epoch() {
        let sim = Sim::new(22);
        let family = ElasticShard::build(&sim, &builder(), 0xE1A5_0002);
        family.load_key(7, &tagged(7));
        let f2 = Rc::clone(&family);
        sim.block_on(async move {
            f2.split(250, 50, None).await;
        });
        let moved = (0..u64::MAX).find(|&k| split_point(k) >= 0xC000).unwrap();
        // Address the wrong group directly: the dispatch check bounces
        // with the current epoch.
        let wrong = family.map().owner_of(moved) ^ 1;
        assert_eq!(
            family.dispatch_check(moved, wrong),
            Err(KvError::WrongShard { epoch: 1 })
        );
    }

    #[test]
    fn concurrent_writes_during_split_linearize_and_land_on_the_destination() {
        let sim = Sim::new(23);
        let b = builder();
        let family = ElasticShard::build(&sim, &b, 0xE1A5_0003);
        let n_keys = 96u64;
        let rec = HistoryRecorder::new(&sim);
        for k in 0..n_keys {
            family.load_key(k, &tagged(1_000 + k));
            rec.set_initial(k, &tagged(1_000 + k));
        }
        let client = rec.wrap(family.client(0));
        let writer = rec.wrap(family.client(1));

        // A writer hammers every key while the split runs underneath.
        let s2 = sim.clone();
        sim.spawn(async move {
            for round in 0u64..4 {
                for k in 0..n_keys {
                    let _ = writer.update(k, tagged(2_000 + round * n_keys + k)).await;
                    s2.sleep_ns(500).await;
                }
            }
        });
        let f2 = Rc::clone(&family);
        let sealed = Rc::new(Cell::new(false));
        let sealed2 = Rc::clone(&sealed);
        sim.spawn(async move {
            sealed2.set(f2.split(500, 1_000, None).await);
        });
        sim.run();
        assert!(sealed.get(), "unfaulted split must seal");
        let stats = family.stats();
        assert!(stats.mirrored > 0, "the window must double-write");
        assert!(stats.keys_copied > 0);

        // Post-seal reads come from the destination and must observe the
        // final writes; the whole history must linearize per key.
        let final_reads = sim.block_on({
            let client = Rc::clone(&client);
            async move {
                let mut tags = Vec::new();
                for k in 0..n_keys {
                    tags.push(value_of(&client.get(k).await));
                }
                tags
            }
        });
        for (k, tag) in final_reads.iter().enumerate() {
            assert_eq!(*tag, 2_000 + 3 * n_keys + k as u64, "key {k}");
        }
        rec.history().check().expect("split run must linearize");
    }

    #[test]
    fn merge_restores_base_ownership_and_deletes_stale_state() {
        let sim = Sim::new(24);
        let family = ElasticShard::build(&sim, &builder(), 0xE1A5_0004);
        for k in 0..64u64 {
            family.load_key(k, &tagged(500 + k));
        }
        let f2 = Rc::clone(&family);
        let client = family.client(0);
        sim.block_on(async move {
            assert!(f2.split(500, 100, None).await);
            // Mutate moved keys on the new owner, delete one: the base
            // group still holds its stale pre-split copies.
            let moved: Vec<u64> = (0..64).filter(|&k| split_point(k) >= 0x8000).collect();
            assert!(!moved.is_empty());
            for &k in &moved {
                client.update(k, tagged(9_000 + k)).await.unwrap();
            }
            client.delete(moved[0]).await.unwrap();
            assert!(f2.merge(1, 100).await);
            // Back on the base group: fresh values, and the deleted key
            // stays deleted (no resurrection from stale state).
            assert_eq!(f2.map().segments(0).len(), 1);
            assert_eq!(client.get(moved[0]).await.unwrap(), None);
            for &k in &moved[1..] {
                assert_eq!(value_of(&client.get(k).await), 9_000 + k);
            }
        });
        assert_eq!(family.epoch(), 2);
    }

    #[test]
    fn crashed_destination_poisons_the_window_and_aborts() {
        let sim = Sim::new(25);
        let family = ElasticShard::build(&sim, &builder(), 0xE1A5_0005);
        for k in 0..64u64 {
            family.load_key(k, &tagged(300 + k));
        }
        // Kill every destination node from birth: the copy driver cannot
        // land a single key, poisons the window, and the abort leaves the
        // base group owning everything.
        let faults = (0..4).fold(FaultPlan::new(), |p, n| {
            p.crash_at(1, swarm_fabric::NodeId(n))
        });
        let f2 = Rc::clone(&family);
        let sealed = sim.block_on(async move { f2.split(500, 100, Some(&faults)).await });
        assert!(!sealed, "a dead destination must abort the handoff");
        let stats = family.stats();
        assert_eq!(stats.aborted, 1);
        assert_eq!(stats.sealed, 0);
        assert_eq!(family.epoch(), 0, "an aborted window never bumps the epoch");
        // The family still serves everything from the base group.
        let client = family.client(0);
        let tag = sim.block_on(async move { value_of(&client.get(5).await) });
        assert_eq!(tag, 305);
    }

    #[test]
    fn rebuild_replaces_a_group_after_membership_declares_death() {
        let sim = Sim::new(26);
        let b = builder();
        let family = ElasticShard::build(&sim, &b, 0xE1A5_0006);
        for k in 0..64u64 {
            family.load_key(k, &tagged(700 + k));
        }
        let base = family.group(0);
        base.membership()
            .expect("SWARM-KV has a membership service")
            .watch_until(20 * NANOS_PER_MILLI);
        // Crash a base-group node permanently at 1 ms; the rebuild event
        // waits for the verdict, then migrates the whole span to a spare.
        base.fabric()
            .apply_fault_plan(&FaultPlan::new().crash_at(NANOS_PER_MILLI, swarm_fabric::NodeId(1)));
        family.run_event(&ReshardEvent::rebuild(0, NANOS_PER_MILLI, 0, 1).pace_ns(1_000));
        sim.run();
        let stats = family.stats();
        assert_eq!(stats.sealed, 1, "the rebuild must seal");
        assert_eq!(family.epoch(), 1);
        assert_eq!(family.num_groups(), 2);
        // Everything now serves from the spare group.
        assert_eq!(
            family.map().segments(0),
            &[Segment {
                start: 0,
                end: 0xFFFF,
                group: 1
            }]
        );
        let client = family.client(0);
        let tag = sim.block_on(async move { value_of(&client.get(9).await) });
        assert_eq!(tag, 709);
    }

    #[test]
    fn family_repair_heals_divergence_and_arms_fresh_groups() {
        use crate::repair::{divergent_stamp_pairs, RepairConfig};
        let sim = Sim::new(28);
        let b = builder().repair(RepairConfig::default());
        let family = ElasticShard::build(&sim, &b, 0xE1A5_0007);
        for k in 0..64u64 {
            family.load_key(k, &tagged(800 + k));
        }
        // Wipe one replica behind the store's back — only anti-entropy
        // heals silent divergence (no client ever touches the key again).
        let base = family.group(0);
        let c = base
            .swarm()
            .expect("SWARM-KV runs on the Cluster substrate")
            .clone();
        let info = c.key_info(3).expect("loaded");
        let l = &info.layouts[1];
        for j in 0..l.meta_bufs as u64 {
            c.fabric()
                .node(l.node)
                .mem()
                .write_u64(l.meta_addr + 8 * j, 0);
        }
        assert_eq!(divergent_stamp_pairs(&c), 1);
        family.arm_repair(2 * NANOS_PER_MILLI);
        // A split mid-run: the fresh destination group must arm its own
        // agent against the same deadline, and window keys defer to the
        // migration until the seal.
        family.run_event(&ReshardEvent::split(0, 500_000, 500).pace_ns(1_000));
        sim.run();
        assert_eq!(family.num_groups(), 2);
        assert!(family.stats().sealed == 1, "unfaulted split must seal");
        assert_eq!(
            divergent_stamp_pairs(&c),
            0,
            "repair must heal the wiped replica after the window closes"
        );
        let stats = family.repair_stats().expect("repair configured");
        assert!(stats.rounds > 0, "both groups' agents must run rounds");
        assert!(
            stats.deltas_applied >= 1,
            "the wipe needs at least one delta"
        );
    }

    #[test]
    fn repair_stats_is_none_without_repair_config() {
        let sim = Sim::new(29);
        let family = ElasticShard::build(&sim, &builder(), 0xE1A5_0008);
        assert_eq!(family.repair_stats(), None);
    }

    #[test]
    fn key_locks_are_fifo_and_exclusive() {
        let sim = Sim::new(27);
        let locks = Rc::new(KeyLocks::default());
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let locks = Rc::clone(&locks);
            let order = Rc::clone(&order);
            let s = sim.clone();
            sim.spawn(async move {
                // Stagger arrivals so the queue order is deterministic.
                s.sleep_ns(10 * i as u64).await;
                let guard = locks.lock(42).await;
                order.borrow_mut().push((i, "in"));
                s.sleep_ns(1_000).await;
                order.borrow_mut().push((i, "out"));
                drop(guard);
            });
        }
        sim.run();
        assert_eq!(
            *order.borrow(),
            vec![
                (0, "in"),
                (0, "out"),
                (1, "in"),
                (1, "out"),
                (2, "in"),
                (2, "out")
            ]
        );
        assert!(locks.queues.borrow().is_empty(), "all locks released");
    }
}
