//! YCSB workload runner: drives clients against a store and collects the
//! statistics the paper's figures report (latency histograms/CDFs,
//! throughput, per-op roundtrips, time series around failures).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use swarm_sim::{Histogram, Nanos, Sim, TimeSeries, NANOS_PER_SEC};
use swarm_workload::{OpType, Workload};

use crate::store::KvStore;

/// Run parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Unmeasured warm-up operations (total across clients).
    pub warmup_ops: u64,
    /// Measured operations (total across clients).
    pub measure_ops: u64,
    /// Concurrent operations per client (§7.2: 1–8).
    pub concurrency: usize,
    /// Client-side CPU work per operation (workload generation, cache
    /// lookup, completion processing) in nanoseconds.
    pub op_overhead_ns: Nanos,
    /// Record a time series with this bucket width (Figure 11).
    pub bucket_ns: Option<Nanos>,
    /// Stop issuing operations after this virtual time (Figure 11 runs for
    /// a fixed duration instead of an op count).
    pub deadline_ns: Option<Nanos>,
    /// Record per-op roundtrip counts (only meaningful at concurrency 1).
    pub record_rtts: bool,
    /// Open-loop pacing: issue one op per worker every this many
    /// nanoseconds (Table 3 fixes clients at 200 kops each).
    pub pace_ns: Option<Nanos>,
    /// Touch every key in `0..n` once per client before the warm-up
    /// (steady-state location caches, as after the paper's 1M-op warm-up).
    pub prewarm_keys: Option<u64>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup_ops: 10_000,
            measure_ops: 50_000,
            concurrency: 1,
            op_overhead_ns: 1_000,
            bucket_ns: None,
            deadline_ns: None,
            record_rtts: false,
            pace_ns: None,
            prewarm_keys: None,
        }
    }
}

impl RunConfig {
    /// Applies `SWARM_BENCH_OPS_SCALE` (a float, e.g. `0.01`) to every
    /// volume knob: op counts, prewarm keys, and the virtual-time deadline.
    /// The bench smoke test sets it so every figure binary exercises its
    /// full pipeline in a fraction of the quick-mode volume.
    fn env_scaled(&self) -> RunConfig {
        let Some(scale) = std::env::var("SWARM_BENCH_OPS_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
        else {
            return self.clone();
        };
        let scaled = |n: u64| ((n as f64 * scale) as u64).max(1);
        RunConfig {
            warmup_ops: if self.warmup_ops > 0 {
                scaled(self.warmup_ops)
            } else {
                0
            },
            measure_ops: scaled(self.measure_ops),
            // Same floor as the bench harness's scaled keyspace (64 keys),
            // so prewarming still covers the keyspace it is meant to warm.
            prewarm_keys: self
                .prewarm_keys
                .map(|n| ((n as f64 * scale) as u64).clamp(64.min(n), n)),
            deadline_ns: self.deadline_ns.map(scaled),
            ..self.clone()
        }
    }
}

/// Collected results.
#[derive(Debug, Default)]
pub struct RunStats {
    /// Latency histogram per op type.
    pub latency: HashMap<OpType, Histogram>,
    /// Roundtrip-count histogram per op type (`rtts -> ops`).
    pub rtts: HashMap<OpType, HashMap<u64, u64>>,
    /// Per-bucket throughput/latency over time.
    pub series: Option<TimeSeries>,
    /// Measured operations completed.
    pub measured_ops: u64,
    /// Operations that returned failure/absence.
    pub failed_ops: u64,
    /// First measured-op start time.
    pub start_ns: Nanos,
    /// Last measured-op completion time.
    pub end_ns: Nanos,
}

impl RunStats {
    /// Overall measured throughput in operations per second.
    pub fn throughput_ops(&self) -> f64 {
        if self.end_ns <= self.start_ns {
            return 0.0;
        }
        self.measured_ops as f64 * NANOS_PER_SEC as f64 / (self.end_ns - self.start_ns) as f64
    }

    /// Latency histogram for one op type (empty histogram if none ran).
    pub fn lat(&self, op: OpType) -> Histogram {
        self.latency.get(&op).cloned().unwrap_or_default()
    }

    /// Fraction of `op` operations that used exactly `r` roundtrips.
    pub fn rtt_fraction(&self, op: OpType, r: u64) -> f64 {
        let Some(m) = self.rtts.get(&op) else {
            return 0.0;
        };
        let total: u64 = m.values().sum();
        if total == 0 {
            return 0.0;
        }
        *m.get(&r).unwrap_or(&0) as f64 / total as f64
    }

    /// The roundtrip count at percentile `p` for `op`.
    pub fn rtt_percentile(&self, op: OpType, p: f64) -> u64 {
        let Some(m) = self.rtts.get(&op) else {
            return 0;
        };
        let total: u64 = m.values().sum();
        if total == 0 {
            return 0;
        }
        let target = (p / 100.0 * total as f64).ceil() as u64;
        let mut keys: Vec<_> = m.keys().copied().collect();
        keys.sort_unstable();
        let mut acc = 0;
        for k in keys {
            acc += m[&k];
            if acc >= target {
                return k;
            }
        }
        0
    }
}

struct Shared {
    warmup_left: u64,
    measure_left: u64,
    stats: RunStats,
    version: u64,
    active_workers: usize,
}

/// Runs `workload` against the given store handles (one per client) and
/// returns the collected statistics. Drives the simulation internally.
pub fn run_workload<S: KvStore + 'static>(
    sim: &Sim,
    stores: &[Rc<S>],
    workload: &Workload,
    cfg: &RunConfig,
) -> RunStats {
    let cfg = &cfg.env_scaled();
    let shared = Rc::new(RefCell::new(Shared {
        warmup_left: cfg.warmup_ops,
        measure_left: cfg.measure_ops,
        stats: RunStats {
            series: cfg.bucket_ns.map(TimeSeries::new),
            ..Default::default()
        },
        version: 0,
        active_workers: stores.len() * cfg.concurrency,
    }));

    for store in stores {
        for _ in 0..cfg.concurrency {
            let store = Rc::clone(store);
            let sim2 = sim.clone();
            let shared = Rc::clone(&shared);
            let workload = workload.clone();
            let cfg = cfg.clone();
            sim.spawn(async move {
                if let Some(n) = cfg.prewarm_keys {
                    for key in 0..n {
                        store.get(key).await;
                    }
                }
                run_worker(&sim2, store, &workload, &cfg, &shared).await;
                shared.borrow_mut().active_workers -= 1;
            });
        }
    }

    // Drive until every worker finished (background tasks may continue; the
    // stats below are already final).
    loop {
        let horizon = sim.now() + 50 * swarm_sim::NANOS_PER_MILLI;
        sim.run_until(horizon);
        if shared.borrow().active_workers == 0 {
            break;
        }
        assert!(
            sim.live_tasks() > 0,
            "simulation drained with workers still pending"
        );
    }

    let shared = Rc::try_unwrap(shared)
        .ok()
        .expect("workers still hold state");
    shared.into_inner().stats
}

async fn run_worker<S: KvStore>(
    sim: &Sim,
    store: Rc<S>,
    workload: &Workload,
    cfg: &RunConfig,
    shared: &Rc<RefCell<Shared>>,
) {
    let mut next_at = sim.now();
    loop {
        if let Some(pace) = cfg.pace_ns {
            sim.sleep_until(next_at).await;
            next_at += pace;
        }
        // Claim an operation slot.
        let measuring = {
            let mut sh = shared.borrow_mut();
            if sh.warmup_left > 0 {
                sh.warmup_left -= 1;
                false
            } else if sh.measure_left > 0 {
                sh.measure_left -= 1;
                true
            } else {
                return;
            }
        };
        if let Some(deadline) = cfg.deadline_ns {
            if sim.now() >= deadline {
                return;
            }
        }

        // Client-side per-op CPU work (keeps per-core throughput honest,
        // §7.2).
        store.endpoint().work(cfg.op_overhead_ns).await;

        let (op, key) = workload.next_op(sim.rand_u64(), sim.rand_f64());
        let version = {
            let mut sh = shared.borrow_mut();
            sh.version += 1;
            sh.version
        };
        let value = workload.value_for(key, version);

        let r0 = store.rounds();
        let t0 = sim.now();
        let ok = match op {
            OpType::Get => store.get(key).await.is_some(),
            OpType::Update => store.update(key, value).await,
            OpType::Insert => store.insert(key, value).await,
            OpType::Delete => store.delete(key).await,
        };
        let t1 = sim.now();

        if measuring {
            let mut sh = shared.borrow_mut();
            let st = &mut sh.stats;
            if st.measured_ops == 0 {
                st.start_ns = t0;
            }
            st.measured_ops += 1;
            st.end_ns = st.end_ns.max(t1);
            if !ok {
                st.failed_ops += 1;
            }
            st.latency.entry(op).or_default().record(t1 - t0);
            if let Some(series) = &mut st.series {
                series.record(t1, t1 - t0);
            }
            if cfg.record_rtts {
                let used = store.rounds() - r0;
                *st.rtts.entry(op).or_default().entry(used).or_insert(0) += 1;
            }
        }
    }
}
