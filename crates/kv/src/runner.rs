//! YCSB workload runner: drives clients against a store and collects the
//! statistics the paper's figures report (latency histograms/CDFs,
//! throughput, per-op roundtrips, time series around failures).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use swarm_sim::{join2, Histogram, Nanos, Sim, TimeSeries, NANOS_PER_SEC};
use swarm_workload::{OpType, Workload};

use crate::envknob::env_knob;
use crate::store::{KvStore, KvStoreExt};

/// The volume scale requested via `SWARM_BENCH_OPS_SCALE` (a positive float,
/// e.g. `0.01`), or `None` if the variable is unset or unparsable. An
/// unparsable value is ignored with a one-time warning on stderr (the
/// shared [`env_knob`] convention).
pub fn ops_scale() -> Option<f64> {
    env_knob(
        "SWARM_BENCH_OPS_SCALE",
        "a positive float like 0.01",
        |s: &f64| s.is_finite() && *s > 0.0,
    )
}

#[cfg(test)]
fn parse_ops_scale(raw: Option<&str>) -> Option<f64> {
    crate::envknob::parse_knob(
        "SWARM_BENCH_OPS_SCALE",
        raw,
        "a positive float like 0.01",
        |s: &f64| s.is_finite() && *s > 0.0,
    )
}

/// Run parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Unmeasured warm-up operations (total across clients).
    pub warmup_ops: u64,
    /// Measured operations (total across clients).
    pub measure_ops: u64,
    /// Concurrent operations per client (§7.2: 1–8).
    pub concurrency: usize,
    /// Client-side CPU work per operation (workload generation, cache
    /// lookup, completion processing) in nanoseconds.
    pub op_overhead_ns: Nanos,
    /// Record a time series with this bucket width (Figure 11).
    pub bucket_ns: Option<Nanos>,
    /// Stop issuing operations after this virtual time (Figure 11 runs for
    /// a fixed duration instead of an op count).
    pub deadline_ns: Option<Nanos>,
    /// Record per-op roundtrip counts (only meaningful at concurrency 1 and
    /// batch 1: with several ops in flight per worker there is no per-op
    /// roundtrip delta to attribute, and the batched worker skips it).
    pub record_rtts: bool,
    /// Open-loop pacing: issue one op per worker every this many
    /// nanoseconds (Table 3 fixes clients at 200 kops each).
    pub pace_ns: Option<Nanos>,
    /// Touch every key in `0..n` once per client before the warm-up
    /// (steady-state location caches, as after the paper's 1M-op warm-up).
    pub prewarm_keys: Option<u64>,
    /// Operations per pipelined batch: each worker claims up to this many
    /// ops at once and issues them through [`KvStoreExt`]'s multi-ops, so a
    /// batch of independent keys costs ~1 quorum roundtrip. `1` (the
    /// default) is the classic sequential per-op loop.
    pub batch: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup_ops: 10_000,
            measure_ops: 50_000,
            concurrency: 1,
            op_overhead_ns: 1_000,
            bucket_ns: None,
            deadline_ns: None,
            record_rtts: false,
            pace_ns: None,
            prewarm_keys: None,
            batch: 1,
        }
    }
}

impl RunConfig {
    /// Applies `SWARM_BENCH_OPS_SCALE` (a float, e.g. `0.01`) to every
    /// volume knob: op counts, prewarm keys, and the virtual-time deadline.
    /// The bench smoke test sets it so every figure binary exercises its
    /// full pipeline in a fraction of the quick-mode volume.
    pub(crate) fn env_scaled(&self) -> RunConfig {
        self.scaled_by(ops_scale())
    }

    /// [`RunConfig::env_scaled`] with the scale passed explicitly
    /// (unit-testable without touching the process environment).
    fn scaled_by(&self, scale: Option<f64>) -> RunConfig {
        let Some(scale) = scale else {
            return self.clone();
        };
        let scaled = |n: u64| ((n as f64 * scale) as u64).max(1);
        RunConfig {
            warmup_ops: if self.warmup_ops > 0 {
                scaled(self.warmup_ops)
            } else {
                0
            },
            measure_ops: scaled(self.measure_ops),
            // Same floor as the bench harness's scaled keyspace (64 keys),
            // so prewarming still covers the keyspace it is meant to warm.
            prewarm_keys: self
                .prewarm_keys
                .map(|n| ((n as f64 * scale) as u64).clamp(64.min(n), n)),
            deadline_ns: self.deadline_ns.map(scaled),
            ..self.clone()
        }
    }
}

/// Collected results.
#[derive(Debug, Default)]
pub struct RunStats {
    /// Latency histogram per op type.
    pub latency: HashMap<OpType, Histogram>,
    /// Roundtrip-count histogram per op type (`rtts -> ops`).
    pub rtts: HashMap<OpType, HashMap<u64, u64>>,
    /// Per-bucket throughput/latency over time.
    pub series: Option<TimeSeries>,
    /// Measured operations completed.
    pub measured_ops: u64,
    /// Operations that returned failure/absence.
    pub failed_ops: u64,
    /// First measured-op start time.
    pub start_ns: Nanos,
    /// Last measured-op completion time.
    pub end_ns: Nanos,
}

impl RunStats {
    /// Overall measured throughput in operations per second.
    pub fn throughput_ops(&self) -> f64 {
        if self.end_ns <= self.start_ns {
            return 0.0;
        }
        self.measured_ops as f64 * NANOS_PER_SEC as f64 / (self.end_ns - self.start_ns) as f64
    }

    /// Latency histogram for one op type (empty histogram if none ran).
    pub fn lat(&self, op: OpType) -> Histogram {
        self.latency.get(&op).cloned().unwrap_or_default()
    }

    /// Fraction of `op` operations that used exactly `r` roundtrips.
    pub fn rtt_fraction(&self, op: OpType, r: u64) -> f64 {
        let Some(m) = self.rtts.get(&op) else {
            return 0.0;
        };
        let total: u64 = m.values().sum();
        if total == 0 {
            return 0.0;
        }
        *m.get(&r).unwrap_or(&0) as f64 / total as f64
    }

    /// The roundtrip count at percentile `p` for `op`.
    pub fn rtt_percentile(&self, op: OpType, p: f64) -> u64 {
        let Some(m) = self.rtts.get(&op) else {
            return 0;
        };
        let total: u64 = m.values().sum();
        if total == 0 {
            return 0;
        }
        let target = (p / 100.0 * total as f64).ceil() as u64;
        let mut keys: Vec<_> = m.keys().copied().collect();
        keys.sort_unstable();
        let mut acc = 0;
        for k in keys {
            acc += m[&k];
            if acc >= target {
                return k;
            }
        }
        0
    }
}

struct Shared {
    warmup_left: u64,
    measure_left: u64,
    stats: RunStats,
    version: u64,
    active_workers: usize,
}

/// Runs `workload` against the given store handles (one per client) and
/// returns the collected statistics. Drives the simulation internally.
pub fn run_workload<S: KvStore + 'static>(
    sim: &Sim,
    stores: &[Rc<S>],
    workload: &Workload,
    cfg: &RunConfig,
) -> RunStats {
    let cfg = &cfg.env_scaled();
    let shared = Rc::new(RefCell::new(Shared {
        warmup_left: cfg.warmup_ops,
        measure_left: cfg.measure_ops,
        stats: RunStats {
            series: cfg.bucket_ns.map(TimeSeries::new),
            ..Default::default()
        },
        version: 0,
        active_workers: stores.len() * cfg.concurrency,
    }));

    for store in stores {
        for _ in 0..cfg.concurrency {
            let store = Rc::clone(store);
            let sim2 = sim.clone();
            let shared = Rc::clone(&shared);
            let workload = workload.clone();
            let cfg = cfg.clone();
            sim.spawn(async move {
                if let Some(n) = cfg.prewarm_keys {
                    for key in 0..n {
                        let _ = store.get(key).await;
                    }
                }
                if cfg.batch > 1 {
                    run_worker_batched(&sim2, store, &workload, &cfg, &shared).await;
                } else {
                    run_worker(&sim2, store, &workload, &cfg, &shared).await;
                }
                shared.borrow_mut().active_workers -= 1;
            });
        }
    }

    // Drive until every worker finished (background tasks may continue; the
    // stats below are already final).
    loop {
        let horizon = sim.now() + 50 * swarm_sim::NANOS_PER_MILLI;
        sim.run_until(horizon);
        if shared.borrow().active_workers == 0 {
            break;
        }
        assert!(
            sim.live_tasks() > 0,
            "simulation drained with workers still pending"
        );
    }

    let shared = Rc::try_unwrap(shared)
        .ok()
        .expect("workers still hold state");
    shared.into_inner().stats
}

async fn run_worker<S: KvStore>(
    sim: &Sim,
    store: Rc<S>,
    workload: &Workload,
    cfg: &RunConfig,
    shared: &Rc<RefCell<Shared>>,
) {
    let mut next_at = sim.now();
    loop {
        if let Some(pace) = cfg.pace_ns {
            sim.sleep_until(next_at).await;
            next_at += pace;
        }
        // Claim an operation slot.
        let measuring = {
            let mut sh = shared.borrow_mut();
            if sh.warmup_left > 0 {
                sh.warmup_left -= 1;
                false
            } else if sh.measure_left > 0 {
                sh.measure_left -= 1;
                true
            } else {
                return;
            }
        };
        if let Some(deadline) = cfg.deadline_ns {
            if sim.now() >= deadline {
                return;
            }
        }

        // Client-side per-op CPU work (keeps per-core throughput honest,
        // §7.2).
        store.endpoint().work(cfg.op_overhead_ns).await;

        let (op, key) = workload.next_op(sim.rand_u64(), sim.rand_f64());
        let version = {
            let mut sh = shared.borrow_mut();
            sh.version += 1;
            sh.version
        };

        let r0 = store.rounds();
        let t0 = sim.now();
        // The payload is built only for mutating ops (it is pure in
        // (key, version), so laziness cannot perturb the execution).
        let ok = match op {
            OpType::Get => matches!(store.get(key).await, Ok(Some(_))),
            OpType::Update => store
                .update(key, workload.value_for(key, version))
                .await
                .is_ok(),
            OpType::Insert => store
                .insert(key, workload.value_for(key, version))
                .await
                .is_ok(),
            OpType::Delete => store.delete(key).await.is_ok(),
        };
        let t1 = sim.now();

        if measuring {
            let mut sh = shared.borrow_mut();
            let st = &mut sh.stats;
            if st.measured_ops == 0 {
                st.start_ns = t0;
            }
            st.measured_ops += 1;
            st.end_ns = st.end_ns.max(t1);
            if !ok {
                st.failed_ops += 1;
            }
            st.latency.entry(op).or_default().record(t1 - t0);
            if let Some(series) = &mut st.series {
                series.record(t1, t1 - t0);
            }
            if cfg.record_rtts {
                let used = store.rounds() - r0;
                *st.rtts.entry(op).or_default().entry(used).or_insert(0) += 1;
            }
        }
    }
}

/// The batched worker loop (`cfg.batch > 1`): claims up to `batch` op slots
/// at a time and issues them as one pipelined multi-op round through
/// [`KvStoreExt`]. Per-element latency is the whole batch's latency — the
/// price an individual op pays for riding in a batch.
async fn run_worker_batched<S: KvStore>(
    sim: &Sim,
    store: Rc<S>,
    workload: &Workload,
    cfg: &RunConfig,
    shared: &Rc<RefCell<Shared>>,
) {
    let mut next_at = sim.now();
    loop {
        if cfg.pace_ns.is_some() {
            sim.sleep_until(next_at).await;
        }
        // Claim up to `batch` operation slots from the current phase.
        let (count, measuring) = {
            let mut sh = shared.borrow_mut();
            if sh.warmup_left > 0 {
                let n = sh.warmup_left.min(cfg.batch as u64);
                sh.warmup_left -= n;
                (n, false)
            } else if sh.measure_left > 0 {
                let n = sh.measure_left.min(cfg.batch as u64);
                sh.measure_left -= n;
                (n, true)
            } else {
                return;
            }
        };
        if let Some(pace) = cfg.pace_ns {
            // Open-loop pacing is per *op*: a batch of N ops advances the
            // schedule by N paces, keeping the configured average rate.
            next_at += pace * count;
        }
        if let Some(deadline) = cfg.deadline_ns {
            if sim.now() >= deadline {
                return;
            }
        }

        // Per-op client CPU work is paid per element, batched or not.
        store.endpoint().work(cfg.op_overhead_ns * count).await;

        let mut gets = Vec::new();
        let mut updates = Vec::new();
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for _ in 0..count {
            let (op, key) = workload.next_op(sim.rand_u64(), sim.rand_f64());
            let version = {
                let mut sh = shared.borrow_mut();
                sh.version += 1;
                sh.version
            };
            match op {
                OpType::Get => gets.push(key),
                OpType::Update => updates.push((key, workload.value_for(key, version))),
                OpType::Insert => inserts.push((key, workload.value_for(key, version))),
                OpType::Delete => deletes.push(key),
            }
        }

        let t0 = sim.now();
        let (got, (updated, inserted)) = join2(
            store.multi_get(&gets),
            join2(store.multi_update(&updates), store.multi_insert(&inserts)),
        )
        .await;
        // Deletes are rare in the YCSB mixes; run them after the batch.
        let mut deleted = Vec::with_capacity(deletes.len());
        for &key in &deletes {
            deleted.push(store.delete(key).await.is_ok());
        }
        let t1 = sim.now();

        if measuring {
            let mut sh = shared.borrow_mut();
            let st = &mut sh.stats;
            if st.measured_ops == 0 {
                st.start_ns = t0;
            }
            st.measured_ops += count;
            st.end_ns = st.end_ns.max(t1);
            let lat = t1 - t0;
            let mut record = |op: OpType, n: usize, failed: usize| {
                if n == 0 {
                    return;
                }
                st.failed_ops += failed as u64;
                let hist = st.latency.entry(op).or_default();
                for _ in 0..n {
                    hist.record(lat);
                }
                if let Some(series) = &mut st.series {
                    for _ in 0..n {
                        series.record(t1, lat);
                    }
                }
            };
            let failed_gets = got.iter().filter(|r| !matches!(r, Ok(Some(_)))).count();
            record(OpType::Get, got.len(), failed_gets);
            let failed = |rs: &[crate::KvResult<()>]| rs.iter().filter(|r| r.is_err()).count();
            record(OpType::Update, updated.len(), failed(&updated));
            record(OpType::Insert, inserted.len(), failed(&inserted));
            record(
                OpType::Delete,
                deleted.len(),
                deleted.iter().filter(|ok| !**ok).count(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterConfig, KvClient, KvClientConfig, Proto};
    use swarm_workload::WorkloadSpec;

    #[test]
    fn unparsable_ops_scale_is_ignored_with_warning() {
        // The parse-failure path: the config must come back unchanged.
        assert_eq!(parse_ops_scale(Some("banana")), None);
        assert_eq!(parse_ops_scale(Some("")), None);
        assert_eq!(parse_ops_scale(Some("-0.5")), None, "negative scales");
        assert_eq!(parse_ops_scale(Some("inf")), None, "non-finite scales");
        let cfg = RunConfig {
            warmup_ops: 123,
            measure_ops: 456,
            ..Default::default()
        };
        let scaled = cfg.scaled_by(parse_ops_scale(Some("banana")));
        assert_eq!(scaled.warmup_ops, 123);
        assert_eq!(scaled.measure_ops, 456);
    }

    #[test]
    fn valid_ops_scale_shrinks_volume_knobs() {
        assert_eq!(parse_ops_scale(Some("0.5")), Some(0.5));
        assert_eq!(parse_ops_scale(None), None);
        let cfg = RunConfig {
            warmup_ops: 100,
            measure_ops: 1_000,
            ..Default::default()
        };
        let scaled = cfg.scaled_by(Some(0.1));
        assert_eq!(scaled.warmup_ops, 10);
        assert_eq!(scaled.measure_ops, 100);
    }

    #[test]
    fn batched_pacing_is_per_op_not_per_batch() {
        // Open-loop pacing must yield the same average op rate whatever the
        // batch size: a batch of N advances the schedule by N paces.
        let tput = |batch: usize| {
            let sim = Sim::new(22);
            let cluster = Cluster::new(&sim, ClusterConfig::default());
            cluster.load_keys(256, |k| vec![k as u8; 64]);
            let clients: Vec<_> = (0..2)
                .map(|i| KvClient::new(&cluster, Proto::SafeGuess, i, KvClientConfig::default()))
                .collect();
            run_workload(
                &sim,
                &clients,
                &Workload::ycsb(WorkloadSpec::B, 256, 64),
                &RunConfig {
                    warmup_ops: 0,
                    measure_ops: 2_000,
                    pace_ns: Some(20_000), // 50 kops per worker, far above op cost
                    batch,
                    ..Default::default()
                },
            )
            .throughput_ops()
        };
        let sequential = tput(1);
        let batched = tput(4);
        let ratio = batched / sequential;
        assert!(
            (0.8..1.25).contains(&ratio),
            "batch=4 must keep the paced rate: {batched} vs {sequential} ops/s"
        );
    }

    #[test]
    fn batched_mode_completes_the_requested_volume() {
        let run = |batch: usize| {
            let sim = Sim::new(21);
            let cluster = Cluster::new(&sim, ClusterConfig::default());
            cluster.load_keys(256, |k| vec![k as u8; 64]);
            let clients: Vec<_> = (0..2)
                .map(|i| KvClient::new(&cluster, Proto::SafeGuess, i, KvClientConfig::default()))
                .collect();
            run_workload(
                &sim,
                &clients,
                &Workload::ycsb(WorkloadSpec::B, 256, 64),
                &RunConfig {
                    warmup_ops: 100,
                    measure_ops: 2_000,
                    batch,
                    // Small per-op CPU cost so roundtrip latency (what
                    // batching pipelines away) dominates the comparison.
                    op_overhead_ns: 100,
                    ..Default::default()
                },
            )
        };
        let sequential = run(1);
        let batched = run(8);
        assert_eq!(batched.measured_ops, 2_000);
        assert_eq!(batched.failed_ops, 0);
        // Batching must raise throughput: 8 independent keys cost ~1 quorum
        // roundtrip instead of 8 sequential ones (work-request submission
        // still serializes on the client CPU, so the gain is below 8x).
        assert!(
            batched.throughput_ops() > 2.5 * sequential.throughput_ops(),
            "batch=8 should beat sequential: {} vs {}",
            batched.throughput_ops(),
            sequential.throughput_ops()
        );
    }
}
