//! Background anti-entropy: digest-based delta sync between replica pairs.
//!
//! SWARM's protocols keep replicas convergent only through client writes —
//! every write touches a full quorum, so under the paper's failure model a
//! missed replica is caught by the next write (or the next read's
//! write-back). After PR 3's fault windows that is no longer enough: a
//! replica behind a drop window can hold stale In-n-Out max-register state
//! *indefinitely* if no later write happens to land on that key — a
//! read-repair-only world, ROADMAP item 2.
//!
//! This module closes the gap with a deterministic background repair agent
//! per replica group. Each round it reconciles every replica pair against
//! the group's designated replica using one of three digest strategies
//! (modeled on the delta-state sync harness in `mbrdg/xp`):
//!
//! * [`RepairStrategy::Full`] — baseline: exchange every key's stamp.
//! * [`RepairStrategy::Buckets`] — hash-bucketed digests over the keyspace;
//!   only mismatched buckets haul stamps.
//! * [`RepairStrategy::BloomBuckets`] — a bloom-filter pre-pass flags
//!   definitely-differing keys cheaply; a same-salt digest pass afterwards
//!   catches the filter's false positives (counted as `false_matches`), so
//!   convergence never depends on bloom luck.
//!
//! Mismatched entries are repaired through the existing max-register merge:
//! read the winner replica's current maximum, CAS-MAX it into the loser.
//! Repair can therefore never regress a committed write — it is exactly one
//! more writer applying `MAX`, idempotent and commutative with foreground
//! traffic. Keys inside a live reshard double-write window are *deferred*
//! (the migration driver owns them; see `ElasticShard::arm_repair`), and
//! every round is bounded by a deadline so crashed-node silence cannot wedge
//! the agent.
//!
//! Determinism: the agent draws salts from a private stream forked from
//! `(sim seed, cluster label, ROLE_REPAIR)` and submits through its *own*
//! endpoint — with repair disabled nothing is minted and nothing draws, so
//! all existing goldens stay bit-identical.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use swarm_core::{InnOutReplica, MVal, ReplicaClient, Rounds};
use swarm_fabric::{repair_bucket, Endpoint, NodeId, Op, RepairEntry, RepairSel, RepairTable};
use swarm_sim::{timeout_at, Nanos, SimRng, TimedOut, NANOS_PER_MILLI};

use crate::cluster::{derive_label, Cluster, KeyInfo, ROLE_REPAIR};
use crate::envknob;

/// Base RNG label for repair agents on clusters built without an explicit
/// `rng_label` (hand-built test clusters); labeled clusters derive from
/// their own label so shards stay mutually independent.
const REPAIR_RNG_BASE: u64 = 0x5245_5041_4952_4121; // "REPAIR A!"

/// Digest strategy of one anti-entropy agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// Exchange every key's stamp (the baseline full state exchange).
    Full,
    /// Exchange per-bucket digests; haul stamps only for mismatched buckets.
    Buckets,
    /// Bloom-filter pre-pass over `(key, stamp)` pairs, then bucket digests
    /// verify (and mop up the filter's false positives).
    BloomBuckets,
}

impl RepairStrategy {
    /// Stable lowercase name (bench CSV column).
    pub fn name(self) -> &'static str {
        match self {
            RepairStrategy::Full => "full",
            RepairStrategy::Buckets => "buckets",
            RepairStrategy::BloomBuckets => "bloom-buckets",
        }
    }

    /// All strategies, in baseline-to-cheapest order.
    pub fn all() -> [RepairStrategy; 3] {
        [
            RepairStrategy::Full,
            RepairStrategy::Buckets,
            RepairStrategy::BloomBuckets,
        ]
    }
}

/// Anti-entropy agent configuration.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Digest strategy.
    pub strategy: RepairStrategy,
    /// Virtual time between background rounds (`SWARM_REPAIR_PERIOD_US`).
    pub period_ns: Nanos,
    /// Digest bucket count for the bucketed strategies
    /// (`SWARM_REPAIR_BUCKETS`).
    pub buckets: u32,
    /// Bloom filter sizing: bits per table entry (floor 64 bits total).
    pub bloom_bits_per_key: u32,
    /// Bloom double-hashing probe count.
    pub bloom_hashes: u32,
    /// Deadline for one reconciliation round; a round that cannot finish
    /// (crashed replicas answer with silence) is abandoned and retried next
    /// period.
    pub round_deadline_ns: Nanos,
    /// Round budget for [`RepairHandle::converge`].
    pub max_rounds: u32,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            strategy: RepairStrategy::BloomBuckets,
            period_ns: envknob::repair_period_ns(),
            buckets: envknob::repair_buckets(),
            bloom_bits_per_key: 10,
            bloom_hashes: 4,
            round_deadline_ns: 2 * NANOS_PER_MILLI,
            max_rounds: 16,
        }
    }
}

impl RepairConfig {
    /// [`Default`] with the given strategy.
    pub fn with_strategy(strategy: RepairStrategy) -> Self {
        RepairConfig {
            strategy,
            ..Default::default()
        }
    }
}

/// Counters of one repair agent — part of the bit-parity witness set, like
/// `ReshardStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Reconciliation rounds started.
    pub rounds: u64,
    /// Message series the agent submitted (its endpoint's series count).
    pub round_trips: u64,
    /// Request + response bytes the agent moved (digests, stamps, filters,
    /// and the delta reads/writes themselves).
    pub bytes_exchanged: u64,
    /// Digest buckets that compared unequal across all rounds.
    pub buckets_mismatched: u64,
    /// Entries hauled by a digest/bloom selection that turned out equal
    /// (bucket-granularity collateral) plus bloom false positives caught by
    /// the verification digest pass.
    pub false_matches: u64,
    /// Max-register deltas written into a stale replica.
    pub deltas_applied: u64,
    /// Key visits skipped because the key sat in a reshard double-write
    /// window (the migration driver owns it).
    pub deferred: u64,
    /// Rounds abandoned at their deadline (unreachable replicas).
    pub timeouts: u64,
}

impl std::ops::AddAssign for RepairStats {
    fn add_assign(&mut self, rhs: RepairStats) {
        // Field-exhaustive destructuring: adding a counter without summing
        // it here becomes a compile error.
        let RepairStats {
            rounds,
            round_trips,
            bytes_exchanged,
            buckets_mismatched,
            false_matches,
            deltas_applied,
            deferred,
            timeouts,
        } = rhs;
        self.rounds += rounds;
        self.round_trips += round_trips;
        self.bytes_exchanged += bytes_exchanged;
        self.buckets_mismatched += buckets_mismatched;
        self.false_matches += false_matches;
        self.deltas_applied += deltas_applied;
        self.deferred += deferred;
        self.timeouts += timeouts;
    }
}

/// One replica pair of one replica group: the designated replica (index 0)
/// against replica `b_replica`, over the same keys in the same table order.
struct RepairPair {
    node_a: NodeId,
    node_b: NodeId,
    b_replica: usize,
    a_table: RepairTable,
    b_table: RepairTable,
    infos: Vec<Rc<KeyInfo>>,
}

/// A repair defer predicate: keys answering `true` are skipped this round
/// (mid-migration ranges; see `ElasticShard`).
pub type DeferFn = Rc<dyn Fn(u64) -> bool>;

struct RepairInner {
    cluster: Cluster,
    cfg: RepairConfig,
    /// The agent's own endpoint: repair traffic lands in `TrafficStats`
    /// like any client's, and its series/bytes are the agent's
    /// `round_trips`/`bytes_exchanged`.
    ep: Rc<Endpoint>,
    /// Writer id for delta writes (the reserved top client id, shared with
    /// the migration driver — never concurrently, thanks to window
    /// deferral).
    writer: usize,
    inplace: bool,
    rounds: Rounds,
    rng: SimRng,
    stats: RefCell<RepairStats>,
    /// Keys for which `defer(key)` is true are skipped this round
    /// (mid-migration ranges; see `ElasticShard`).
    defer: RefCell<Option<DeferFn>>,
    armed: Cell<bool>,
}

/// Handle to one cluster's anti-entropy agent (cheaply cloneable).
#[derive(Clone)]
pub struct RepairHandle {
    inner: Rc<RepairInner>,
}

impl RepairHandle {
    /// Creates an (un-armed) agent for `cluster`. Mints a dedicated
    /// endpoint and forks a private RNG stream; building a handle has no
    /// effect on the simulation until a round runs.
    pub fn new(cluster: &Cluster, cfg: RepairConfig) -> RepairHandle {
        let cc = cluster.config();
        let base = cc.rng_label.unwrap_or(REPAIR_RNG_BASE);
        let rng = cluster.sim().fork_rng(derive_label(base, ROLE_REPAIR, 0));
        RepairHandle {
            inner: Rc::new(RepairInner {
                ep: Rc::new(cluster.fabric().endpoint()),
                writer: cc.max_clients - 1,
                inplace: cc.inplace,
                cluster: cluster.clone(),
                cfg,
                rounds: Rounds::new(),
                rng,
                stats: RefCell::new(RepairStats::default()),
                defer: RefCell::new(None),
                armed: Cell::new(false),
            }),
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &RepairConfig {
        &self.inner.cfg
    }

    /// Current counters. `round_trips`/`bytes_exchanged` are read off the
    /// agent's endpoint, so they count *everything* it moved — summaries
    /// and deltas alike.
    pub fn stats(&self) -> RepairStats {
        let mut s = *self.inner.stats.borrow();
        let ep = self.inner.ep.stats();
        s.round_trips = ep.series;
        s.bytes_exchanged = ep.bytes_out + ep.bytes_in;
        s
    }

    /// Installs (or clears) the defer predicate: keys answering `true` are
    /// skipped, counted in [`RepairStats::deferred`].
    pub fn set_defer(&self, defer: Option<DeferFn>) {
        *self.inner.defer.borrow_mut() = defer;
    }

    /// Replica pairs with unequal stamps right now (control-plane scan).
    pub fn divergent_pairs(&self) -> u64 {
        divergent_stamp_pairs(&self.inner.cluster)
    }

    /// Submits one op and unwraps its (kind-checked) result; `None` means
    /// the reply was dropped or malformed — the round retries later.
    async fn op(&self, node: NodeId, op: Op) -> Option<swarm_fabric::OpResult> {
        self.inner.rounds.bump();
        self.inner
            .ep
            .submit(node, vec![op])
            .await?
            .into_iter()
            .next()
    }

    /// The round's work list: live keys (minus deferred ones) grouped by
    /// replica-node vector, one pair per non-designated replica. Everything
    /// is enumerated in sorted key / node order, so the plan is identical
    /// across `ShardMode`s.
    fn pair_plan(&self) -> Vec<RepairPair> {
        let cluster = &self.inner.cluster;
        let defer = self.inner.defer.borrow().clone();
        let mut deferred = 0u64;
        let mut groups: BTreeMap<Vec<usize>, Vec<Rc<KeyInfo>>> = BTreeMap::new();
        for key in cluster.index().keys_sorted() {
            let Some(info) = cluster.key_info(key) else {
                continue;
            };
            if defer.as_ref().is_some_and(|d| d(key)) {
                deferred += 1;
                continue;
            }
            groups
                .entry(info.replica_nodes.iter().map(|n| n.0).collect())
                .or_default()
                .push(info);
        }
        self.inner.stats.borrow_mut().deferred += deferred;
        let entry = |info: &Rc<KeyInfo>, r: usize| RepairEntry {
            id: info.key,
            addr: info.layouts[r].meta_addr,
            words: info.layouts[r].meta_bufs as u32,
        };
        let mut pairs = Vec::new();
        for (nodes, infos) in groups {
            for b_replica in 1..nodes.len() {
                pairs.push(RepairPair {
                    node_a: NodeId(nodes[0]),
                    node_b: NodeId(nodes[b_replica]),
                    b_replica,
                    a_table: Rc::new(infos.iter().map(|i| entry(i, 0)).collect()),
                    b_table: Rc::new(infos.iter().map(|i| entry(i, b_replica)).collect()),
                    infos: infos.clone(),
                });
            }
        }
        pairs
    }

    /// Reconciles one pair; returns the number of deltas it applied, or
    /// `None` if a reply was lost (retry next round).
    async fn sync_pair(&self, p: &RepairPair) -> Option<usize> {
        if p.infos.is_empty() {
            return Some(0);
        }
        match self.inner.cfg.strategy {
            RepairStrategy::Full => self.sync_full(p).await,
            RepairStrategy::Buckets => self.sync_buckets(p).await,
            RepairStrategy::BloomBuckets => self.sync_bloom(p).await,
        }
    }

    /// Baseline: both sides report every stamp; repair index-wise.
    async fn sync_full(&self, p: &RepairPair) -> Option<usize> {
        let sa = self
            .op(
                p.node_a,
                Op::RepairStamps {
                    table: Rc::clone(&p.a_table),
                    sel: RepairSel::All,
                },
            )
            .await?
            .stamps()?;
        let sb = self
            .op(
                p.node_b,
                Op::RepairStamps {
                    table: Rc::clone(&p.b_table),
                    sel: RepairSel::All,
                },
            )
            .await?
            .stamps()?;
        let mut diffs = 0;
        for i in 0..p.infos.len() {
            if sa[i] != sb[i] {
                self.repair_one(p, i, sa[i], sb[i]).await?;
                diffs += 1;
            }
        }
        Some(diffs)
    }

    /// Bucketed digests: haul stamps only for buckets whose order-
    /// independent digest sums disagree.
    async fn sync_buckets(&self, p: &RepairPair) -> Option<usize> {
        let salt = self.inner.rng.rand_u64();
        let ids = self.mismatched_buckets(p, salt).await?;
        self.inner.stats.borrow_mut().buckets_mismatched += ids.len() as u64;
        if ids.is_empty() {
            return Some(0);
        }
        let sel = RepairSel::Buckets {
            ids: Rc::new(ids),
            buckets: self.inner.cfg.buckets,
            salt,
        };
        self.sync_selected(p, &sel).await
    }

    /// Bloom pre-pass, then a same-salt digest verification. The filter has
    /// no false negatives, so every flagged entry is a real difference; a
    /// stale entry it *missed* (a false positive of the membership check)
    /// shows up in the verification digests and is repaired through the
    /// bucket path — convergence never depends on bloom luck.
    async fn sync_bloom(&self, p: &RepairPair) -> Option<usize> {
        let cfg = &self.inner.cfg;
        let salt = self.inner.rng.rand_u64();
        let n = p.infos.len();
        // Byte-aligned: the check side recovers `bits` as `filter.len() * 8`,
        // so a ragged bit count would shift every probe position.
        let bits = (n as u32)
            .saturating_mul(cfg.bloom_bits_per_key)
            .max(64)
            .next_multiple_of(8);
        let bloom = |table: &RepairTable| Op::RepairBloom {
            table: Rc::clone(table),
            bits,
            hashes: cfg.bloom_hashes,
            salt,
        };
        let fa = self.op(p.node_a, bloom(&p.a_table)).await?.bits()?;
        let fb = self.op(p.node_b, bloom(&p.b_table)).await?.bits()?;
        let check = |table: &RepairTable, filter: Vec<u8>| Op::RepairCheck {
            table: Rc::clone(table),
            filter: Rc::new(filter),
            hashes: cfg.bloom_hashes,
            salt,
        };
        // Each side checks its own (id, stamp) pairs against the peer's
        // filter; bit i set = entry i definitely differs.
        let ca = self.op(p.node_a, check(&p.a_table, fb)).await?.bits()?;
        let cb = self.op(p.node_b, check(&p.b_table, fa)).await?.bits()?;
        let flagged = |bm: &[u8], i: usize| bm[i / 8] & (1 << (i % 8)) != 0;
        let mut candidates: Vec<u32> = (0..n)
            .filter(|&i| flagged(&ca, i) || flagged(&cb, i))
            .map(|i| repair_bucket(p.a_table[i].id, cfg.buckets, salt))
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        let mut diffs = 0;
        if !candidates.is_empty() {
            let sel = RepairSel::Buckets {
                ids: Rc::new(candidates),
                buckets: cfg.buckets,
                salt,
            };
            diffs += self.sync_selected(p, &sel).await?;
        }
        // Verification pass under the same salt: residual mismatches are
        // exactly the bloom check's false positives.
        let residual = self.mismatched_buckets(p, salt).await?;
        if !residual.is_empty() {
            {
                let mut st = self.inner.stats.borrow_mut();
                st.false_matches += residual.len() as u64;
                st.buckets_mismatched += residual.len() as u64;
            }
            let sel = RepairSel::Buckets {
                ids: Rc::new(residual),
                buckets: cfg.buckets,
                salt,
            };
            diffs += self.sync_selected(p, &sel).await?;
        }
        Some(diffs)
    }

    /// Sorted bucket ids whose digests disagree between the pair's sides.
    async fn mismatched_buckets(&self, p: &RepairPair, salt: u64) -> Option<Vec<u32>> {
        let buckets = self.inner.cfg.buckets;
        let digest = |table: &RepairTable| Op::RepairDigest {
            table: Rc::clone(table),
            buckets,
            salt,
        };
        let da = self.op(p.node_a, digest(&p.a_table)).await?.digests()?;
        let db = self.op(p.node_b, digest(&p.b_table)).await?.digests()?;
        Some(
            (0..buckets)
                .filter(|&b| da[b as usize] != db[b as usize])
                .collect(),
        )
    }

    /// Hauls the selected entries' stamps from both sides and repairs the
    /// unequal ones. Hauled-but-equal entries are the selection's
    /// collateral, counted as `false_matches`.
    async fn sync_selected(&self, p: &RepairPair, sel: &RepairSel) -> Option<usize> {
        let sa = self
            .op(
                p.node_a,
                Op::RepairStamps {
                    table: Rc::clone(&p.a_table),
                    sel: sel.clone(),
                },
            )
            .await?
            .stamps()?;
        let sb = self
            .op(
                p.node_b,
                Op::RepairStamps {
                    table: Rc::clone(&p.b_table),
                    sel: sel.clone(),
                },
            )
            .await?
            .stamps()?;
        // The selection predicate is pure, so both sides report the same
        // entries in table order; recompute the index mapping locally.
        let selected: Vec<usize> = (0..p.infos.len())
            .filter(|&i| sel.selects(&p.a_table[i]))
            .collect();
        debug_assert_eq!(selected.len(), sa.len());
        let mut diffs = 0;
        let mut hauled_equal = 0u64;
        for (j, &i) in selected.iter().enumerate() {
            if sa[j] != sb[j] {
                self.repair_one(p, i, sa[j], sb[j]).await?;
                diffs += 1;
            } else {
                hauled_equal += 1;
            }
        }
        self.inner.stats.borrow_mut().false_matches += hauled_equal;
        Some(diffs)
    }

    /// Repairs one entry: read the winner replica's current maximum, MAX it
    /// into the loser. A plain max-register write — idempotent, commutative
    /// with foreground writes, never a regression.
    async fn repair_one(&self, p: &RepairPair, i: usize, sa: u64, sb: u64) -> Option<()> {
        let info = &p.infos[i];
        let (winner, loser) = if sa >= sb {
            (0, p.b_replica)
        } else {
            (p.b_replica, 0)
        };
        let replica = |r: usize| {
            InnOutReplica::new(
                Rc::clone(&self.inner.ep),
                info.layouts[r].clone(),
                self.inner.writer,
                self.inner.inplace && r == 0,
                self.inner.rounds.clone(),
            )
        };
        let snap = replica(winner).read().await;
        let val = match snap.value {
            Some(v) => MVal::new(snap.stamp, v),
            None => replica(winner).fetch(snap.token).await,
        };
        if val.is_initial() {
            return Some(());
        }
        replica(loser).write(val).await;
        self.inner.cluster.note_repaired(info.key);
        self.inner.stats.borrow_mut().deltas_applied += 1;
        Some(())
    }

    /// Runs one reconciliation round over every pair; returns the number of
    /// deltas applied (0 = the keyspace digested clean).
    pub async fn run_round(&self) -> usize {
        self.inner.stats.borrow_mut().rounds += 1;
        let mut diffs = 0;
        for p in self.pair_plan() {
            // A lost reply counts as residual divergence: never report a
            // round that couldn't verify as clean.
            diffs += self.sync_pair(&p).await.unwrap_or(1);
        }
        diffs
    }

    /// [`run_round`](Self::run_round) bounded by `deadline`: an abandoned
    /// round (crashed replicas answer with silence) counts a timeout and
    /// reports residual divergence.
    pub async fn run_round_until(&self, deadline: Nanos) -> usize {
        let sim = self.inner.cluster.sim().clone();
        match timeout_at(&sim, deadline, &mut Box::pin(self.run_round())).await {
            Ok(diffs) => diffs,
            Err(TimedOut) => {
                self.inner.stats.borrow_mut().timeouts += 1;
                1
            }
        }
    }

    /// Runs bounded rounds until one digests clean; returns `(rounds,
    /// converged)`.
    pub async fn converge(&self) -> (u32, bool) {
        let cfg = &self.inner.cfg;
        for r in 1..=cfg.max_rounds {
            let deadline = self.inner.cluster.sim().now() + cfg.round_deadline_ns;
            if self.run_round_until(deadline).await == 0 {
                return (r, true);
            }
        }
        (cfg.max_rounds, false)
    }

    /// Arms the background loop: one bounded round every `period_ns` until
    /// `deadline`. Idempotent (the first arm wins); the loop is *bounded*
    /// so `Sim::run`'s drain-the-queue semantics still terminate.
    pub fn arm_until(&self, deadline: Nanos) {
        if self.inner.armed.replace(true) {
            return;
        }
        let h = self.clone();
        let sim = self.inner.cluster.sim().clone();
        let period = self.inner.cfg.period_ns.max(1);
        let round_deadline_ns = self.inner.cfg.round_deadline_ns;
        self.inner.cluster.sim().spawn(async move {
            while sim.now() + period <= deadline {
                sim.sleep_ns(period).await;
                let round_deadline = (sim.now() + round_deadline_ns).min(deadline);
                h.run_round_until(round_deadline).await;
            }
        });
    }
}

/// Control-plane divergence metric (no simulated network cost): the number
/// of (key, replica) pairs whose max stamp differs from the key's
/// designated replica. Usable with repair disabled — it is the bench's
/// "how bad did the fault window hurt" and "did repair finish" probe.
pub fn divergent_stamp_pairs(cluster: &Cluster) -> u64 {
    let fabric = cluster.fabric();
    let mut divergent = 0;
    for key in cluster.index().keys_sorted() {
        let Some(info) = cluster.key_info(key) else {
            continue;
        };
        let stamp_of = |r: usize| {
            let l = &info.layouts[r];
            let node = fabric.node(l.node);
            (0..l.meta_bufs as u64)
                .map(|j| node.mem().read_u64(l.meta_addr + 8 * j))
                .max()
                .unwrap_or(0)
                >> 16
        };
        let designated = stamp_of(0);
        for r in 1..info.layouts.len() {
            if stamp_of(r) != designated {
                divergent += 1;
            }
        }
    }
    divergent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{KvClientConfig, Proto};
    use crate::cluster::ClusterConfig;
    use crate::store::KvStore;
    use crate::KvClient;
    use swarm_core::{innout_hash, Stamp};
    use swarm_sim::Sim;

    const N_KEYS: u64 = 16;

    fn cluster(seed: u64) -> (Sim, Cluster) {
        let sim = Sim::new(seed);
        let c = Cluster::new(&sim, ClusterConfig::default());
        c.load_keys(N_KEYS, |k| vec![k as u8; 64]);
        (sim, c)
    }

    /// Wipes replica `r` of `key` back to its allocated (all-zero) state,
    /// as if the loader's write never reached it.
    fn wipe_replica(c: &Cluster, key: u64, r: usize) {
        let info = c.key_info(key).expect("loaded");
        let l = &info.layouts[r];
        for j in 0..l.meta_bufs as u64 {
            c.fabric()
                .node(l.node)
                .mem()
                .write_u64(l.meta_addr + 8 * j, 0);
        }
    }

    /// Pokes replica `r` of `key` into the state a completed VERIFIED write
    /// of `value` at stamp `seq` would leave (what a write that reached
    /// only this replica before a fault window looks like).
    fn poke_newer(c: &Cluster, key: u64, r: usize, seq: u64, value: &[u8]) {
        let info = c.key_info(key).expect("loaded");
        let l = &info.layouts[r];
        let node = c.fabric().node(l.node);
        let stamp = Stamp::verified(seq, crate::LOADER_TID);
        let word = (stamp.pack48() << 16) | info.loader_slot as u64;
        let slot_addr = l.oop_addr + info.loader_slot as u64 * (16 + value.len()) as u64;
        node.mem().write_u64(slot_addr, word);
        node.mem()
            .write_u64(slot_addr + 8, innout_hash(word, value));
        node.mem().write(slot_addr + 16, value);
        node.mem().write_u64(l.meta_addr, word);
    }

    #[test]
    fn full_repair_converges_a_wiped_replica() {
        let (sim, c) = cluster(21);
        wipe_replica(&c, 3, 1);
        assert_eq!(divergent_stamp_pairs(&c), 1);
        let h = RepairHandle::new(&c, RepairConfig::with_strategy(RepairStrategy::Full));
        let (hc, cc) = (h.clone(), c.clone());
        sim.block_on(async move {
            let (rounds, converged) = hc.converge().await;
            assert!(converged, "full repair must converge");
            assert!(rounds <= 3, "one repair + one clean round, got {rounds}");
            assert_eq!(divergent_stamp_pairs(&cc), 0);
        });
        let s = h.stats();
        assert!(s.deltas_applied >= 1);
        assert!(s.round_trips > 0 && s.bytes_exchanged > 0);
        assert_eq!(s.timeouts, 0);
        assert!(c.repair_mark(3) > 0, "repair must bump the key's mark");
    }

    /// Divergence where the *non-designated* replica holds the newer stamp:
    /// repair must flow the newer value toward the designated replica —
    /// never regress it — and a client read afterwards sees the new value.
    #[test]
    fn repair_flows_toward_the_higher_stamp() {
        let (sim, c) = cluster(22);
        let newer = vec![0xABu8; 64];
        poke_newer(&c, 5, 1, 2, &newer);
        assert_eq!(divergent_stamp_pairs(&c), 1);
        for strategy in RepairStrategy::all() {
            // Re-diverging an already-converged cluster is a no-op for the
            // later strategies; the first converge does the real work and
            // the rest pin idempotence.
            let h = RepairHandle::new(&c, RepairConfig::with_strategy(strategy));
            let hc = h.clone();
            sim.block_on(async move {
                let (_, converged) = hc.converge().await;
                assert!(converged, "{} must converge", strategy.name());
            });
        }
        assert_eq!(divergent_stamp_pairs(&c), 0);
        let client = KvClient::new(&c, Proto::SafeGuess, 0, KvClientConfig::default());
        sim.block_on(async move {
            let got = client.get(5).await.expect("no timeout").expect("present");
            assert_eq!(*got, newer, "repair replicated the newer value");
        });
    }

    /// The digest strategies converge on the same divergence while moving
    /// strictly fewer bytes than the full state exchange.
    #[test]
    fn bucketed_strategies_exchange_fewer_bytes_than_full() {
        let keys = 256u64;
        let mut bytes = Vec::new();
        for strategy in RepairStrategy::all() {
            let sim = Sim::new(33);
            let c = Cluster::new(&sim, ClusterConfig::default());
            c.load_keys(keys, |k| vec![k as u8; 64]);
            for &k in &[3, 77, 130] {
                wipe_replica(&c, k, 1);
            }
            assert_eq!(divergent_stamp_pairs(&c), 3);
            // Replica placement splits 256 keys into ~64-key groups; the
            // digest pass only wins while buckets < group size.
            let cfg = RepairConfig {
                buckets: 16,
                ..RepairConfig::with_strategy(strategy)
            };
            let h = RepairHandle::new(&c, cfg);
            let (hc, cc) = (h.clone(), c.clone());
            sim.block_on(async move {
                let (_, converged) = hc.converge().await;
                assert!(converged, "{} must converge", strategy.name());
                assert_eq!(divergent_stamp_pairs(&cc), 0);
            });
            bytes.push((strategy, h.stats().bytes_exchanged));
        }
        let full = bytes[0].1;
        for &(strategy, b) in &bytes[1..] {
            assert!(
                b < full,
                "{} moved {b} B, full moved {full} B",
                strategy.name()
            );
        }
    }

    /// Keys inside a migration window are the driver's business: the defer
    /// predicate leaves them divergent and counts them, and clearing it
    /// lets repair finish the job.
    #[test]
    fn deferred_keys_are_left_to_the_migration() {
        let (sim, c) = cluster(44);
        wipe_replica(&c, 7, 2);
        let h = RepairHandle::new(&c, RepairConfig::with_strategy(RepairStrategy::Buckets));
        h.set_defer(Some(Rc::new(|key| key == 7)));
        let (hc, cc) = (h.clone(), c.clone());
        sim.block_on(async move {
            let (_, converged) = hc.converge().await;
            assert!(converged, "the non-deferred keyspace digests clean");
            assert_eq!(
                divergent_stamp_pairs(&cc),
                1,
                "the deferred key must stay untouched"
            );
            hc.set_defer(None);
            let (_, converged) = hc.converge().await;
            assert!(converged);
            assert_eq!(divergent_stamp_pairs(&cc), 0);
        });
        assert!(h.stats().deferred > 0);
    }

    /// Repairing and re-running is a no-op: a second converge on a clean
    /// cluster applies zero deltas (idempotence of MAX-merge repair).
    #[test]
    fn repair_is_idempotent() {
        let (sim, c) = cluster(55);
        wipe_replica(&c, 9, 1);
        let h = RepairHandle::new(
            &c,
            RepairConfig::with_strategy(RepairStrategy::BloomBuckets),
        );
        let hc = h.clone();
        sim.block_on(async move {
            hc.converge().await;
            let before = hc.stats().deltas_applied;
            let (rounds, converged) = hc.converge().await;
            assert!(converged && rounds == 1, "clean cluster: one clean round");
            assert_eq!(hc.stats().deltas_applied, before, "no new deltas");
        });
    }
}
