//! Cluster setup: memory-node layout allocation and bulk loading.
//!
//! A [`Cluster`] owns the fabric, the index, and the control-plane registry
//! of per-key allocations ([`KeyInfo`]). Allocation itself is a
//! control-plane action — the paper's clients pre-allocate cleared buffers
//! so inserts complete in one roundtrip (§5.3.1) — and bulk loading (the
//! YCSB load phase, which the paper does not measure) pokes node memory
//! directly.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use swarm_core::{innout_hash, InnOutLayout, QuorumConfig, Stamp};
use swarm_fabric::{Fabric, FabricConfig, NodeId};
use swarm_sim::Sim;

use crate::index::Index;
use crate::membership::Membership;

/// Thread id reserved for the control-plane loader (must never collide with
/// a client tid; clients are numbered from 0).
pub const LOADER_TID: u8 = 254;

/// Cluster shape and protocol parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Memory nodes (the paper's testbed has 4).
    pub nodes: usize,
    /// Replicas per key (3 by default; 5/7 in Figure 10).
    pub replicas: usize,
    /// Fixed value size in bytes.
    pub value_size: usize,
    /// Maximum client count (sizes metadata arrays, lock words, slot rings).
    pub max_clients: usize,
    /// In-n-Out metadata words per key (§4.4; the paper recommends one per
    /// client, Figure 13).
    pub meta_bufs: usize,
    /// Whether VERIFIED writes lazily store in-place data at the designated
    /// replica (`false` = the "Out-P." variant of Figure 9).
    pub inplace: bool,
    /// Out-of-place slots per writer per key (ring-recycled).
    pub oop_slots_per_writer: usize,
    /// Fabric latency model.
    pub fabric: FabricConfig,
    /// Quorum timing.
    pub quorum: QuorumConfig,
    /// Client clock skew bound in nanoseconds (guess quality, §6).
    pub clock_skew_ns: i64,
    /// Client clock drift in ppm.
    pub clock_drift_ppm: f64,
    /// Maximum live index mappings (`None` = unbounded); inserts beyond it
    /// fail with `KvError::IndexFull`.
    pub index_capacity: Option<usize>,
    /// RNG-stream label for everything this cluster builds (fabric jitter,
    /// index jitter, client clocks and caches). `None` (the default) draws
    /// from the simulation's shared stream — the historical behavior.
    /// `Some(label)` forks private per-role streams from `(sim seed,
    /// label)`, so nothing that happens in this cluster can perturb — or be
    /// perturbed by — any other cluster on the same `Sim`. Sharded clusters
    /// set one label per shard (see `swarm_kv::ShardedCluster`).
    pub rng_label: Option<u64>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            replicas: 3,
            value_size: 64,
            max_clients: 4,
            meta_bufs: 4,
            inplace: true,
            oop_slots_per_writer: 2,
            fabric: FabricConfig::default(),
            quorum: QuorumConfig::default(),
            clock_skew_ns: 400,
            clock_drift_ppm: 5.0,
            index_capacity: None,
            rng_label: None,
        }
    }
}

/// Derives a sub-stream label from a cluster label, a role tag, and an
/// instance id (splitmix-style mixing; collisions across distinct inputs
/// are no worse than random).
pub(crate) fn derive_label(base: u64, role: u64, id: u64) -> u64 {
    let mut z = base
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(role)
        .wrapping_mul(0xBF58476D1CE4E5B9)
        .wrapping_add(id);
    z ^= z >> 29;
    z.wrapping_mul(0x94D049BB133111EB)
}

/// Role tags for [`derive_label`].
pub(crate) const ROLE_FABRIC: u64 = 1;
pub(crate) const ROLE_INDEX: u64 = 2;
pub(crate) const ROLE_CLOCK: u64 = 3;
pub(crate) const ROLE_CACHE: u64 = 4;
pub(crate) const ROLE_RESHARD: u64 = 5;
pub(crate) const ROLE_REPAIR: u64 = 6;

/// Control-plane record of one key's replica allocation.
#[derive(Debug, Clone)]
pub struct KeyInfo {
    /// The key.
    pub key: u64,
    /// Replica memory nodes; index 0 is the in-place-designated replica.
    pub replica_nodes: Vec<NodeId>,
    /// One In-n-Out layout per replica.
    pub layouts: Vec<InnOutLayout>,
    /// Per replica: base address of `max_clients` timestamp-lock words.
    pub tsl_base: Vec<u64>,
    /// Out-of-place slot reserved for the bulk loader.
    pub loader_slot: u16,
    /// Allocation generation (re-inserts after delete get fresh buffers).
    pub generation: u64,
}

struct Inner {
    sim: Sim,
    fabric: Fabric,
    cfg: ClusterConfig,
    index: Index<Rc<KeyInfo>>,
    membership: Membership,
    keys: RefCell<HashMap<u64, Rc<KeyInfo>>>,
    generation: std::cell::Cell<u64>,
    /// Per-key repair marks: bumped every time anti-entropy overwrites a
    /// replica of the key, so cached client handles can detect that their
    /// view predates a repair (see `KvClient::handle_for`).
    repair_marks: RefCell<HashMap<u64, u64>>,
    repair_counter: std::cell::Cell<u64>,
}

/// Handle to a cluster (cheaply cloneable).
#[derive(Clone)]
pub struct Cluster {
    inner: Rc<Inner>,
}

impl Cluster {
    /// Creates a cluster: fabric + index + membership.
    pub fn new(sim: &Sim, cfg: ClusterConfig) -> Self {
        assert!(cfg.replicas >= 1);
        assert!(cfg.max_clients >= 1 && cfg.max_clients <= 200);
        assert!(cfg.meta_bufs >= 1);
        let mut fabric_cfg = cfg.fabric.clone();
        if fabric_cfg.rng_label.is_none() {
            fabric_cfg.rng_label = cfg.rng_label.map(|l| derive_label(l, ROLE_FABRIC, 0));
        }
        let index_rng = match cfg.rng_label {
            Some(l) => sim.fork_rng(derive_label(l, ROLE_INDEX, 0)),
            None => swarm_sim::SimRng::shared(sim),
        };
        let fabric = Fabric::new(sim, fabric_cfg, cfg.nodes);
        let membership = Membership::with_default_detection(sim, &fabric);
        Cluster {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                fabric,
                index: Index::with_capacity_rng(sim, cfg.index_capacity, index_rng),
                cfg,
                membership,
                keys: RefCell::new(HashMap::new()),
                generation: std::cell::Cell::new(0),
                repair_marks: RefCell::new(HashMap::new()),
                repair_counter: std::cell::Cell::new(0),
            }),
        }
    }

    /// The simulation.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// The fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.inner.cfg
    }

    /// The index service.
    pub fn index(&self) -> &Index<Rc<KeyInfo>> {
        &self.inner.index
    }

    /// The membership service.
    pub fn membership(&self) -> &Membership {
        &self.inner.membership
    }

    /// Replica node ids for `key`: `replicas` consecutive nodes starting at
    /// a key-hashed offset (spreads load; with 4 nodes and 5+ replicas some
    /// nodes host 2 replicas, as in §7.5).
    pub fn replica_nodes_for(&self, key: u64) -> Vec<NodeId> {
        let cfg = &self.inner.cfg;
        let start = (swarm_core::xxh64(&key.to_le_bytes(), 0xC0FFEE) % cfg.nodes as u64) as usize;
        (0..cfg.replicas)
            .map(|i| NodeId((start + i) % cfg.nodes))
            .collect()
    }

    /// Allocates buffers for one key on its replica nodes (control plane:
    /// clients draw from pre-allocated pools, §5.3.1).
    pub fn alloc_key(&self, key: u64) -> Rc<KeyInfo> {
        let cfg = &self.inner.cfg;
        let nodes = self.replica_nodes_for(key);
        let oop_slots = cfg.max_clients * cfg.oop_slots_per_writer + 1;
        let loader_slot = (oop_slots - 1) as u16;
        let mut layouts = Vec::with_capacity(nodes.len());
        let mut tsl_base = Vec::with_capacity(nodes.len());
        for &n in &nodes {
            layouts.push(InnOutLayout::allocate(
                &self.inner.fabric,
                n,
                cfg.meta_bufs,
                cfg.value_size,
                oop_slots,
                cfg.max_clients,
            ));
            tsl_base.push(
                self.inner
                    .fabric
                    .node(n)
                    .alloc(8 * cfg.max_clients as u64, 8),
            );
        }
        let generation = self.inner.generation.get();
        self.inner.generation.set(generation + 1);
        let info = Rc::new(KeyInfo {
            key,
            replica_nodes: nodes,
            layouts,
            tsl_base,
            loader_slot,
            generation,
        });
        self.inner.keys.borrow_mut().insert(key, Rc::clone(&info));
        info
    }

    /// Bulk-loads `key = value` (control plane, no network cost): allocates
    /// buffers, pokes replica memory into the state a completed `VERIFIED`
    /// write would leave, and registers the index mapping.
    pub fn load_key(&self, key: u64, value: &[u8]) -> Rc<KeyInfo> {
        let cfg = &self.inner.cfg;
        assert_eq!(value.len(), cfg.value_size, "fixed-size values");
        let info = self.alloc_key(key);
        let stamp = Stamp::verified(1, LOADER_TID);
        for (i, layout) in info.layouts.iter().enumerate() {
            let node = self.inner.fabric.node(layout.node);
            let word = (stamp.pack48() << 16) | info.loader_slot as u64;
            // Out-of-place slot: [meta | hash | value].
            let slot_addr =
                layout.oop_addr + info.loader_slot as u64 * (16 + cfg.value_size) as u64;
            node.mem().write_u64(slot_addr, word);
            node.mem()
                .write_u64(slot_addr + 8, innout_hash(word, value));
            node.mem().write(slot_addr + 16, value);
            // Metadata word 0 points at it.
            node.mem().write_u64(layout.meta_addr, word);
            // In-place copy at the designated replica.
            if cfg.inplace && i == 0 {
                let inplace = layout.meta_addr + (layout.meta_bufs * 8) as u64;
                node.mem().write(inplace, value);
                node.mem()
                    .write_u64(inplace + cfg.value_size as u64, innout_hash(word, value));
            }
        }
        self.inner.index.load(key, Rc::clone(&info));
        info
    }

    /// Bulk-loads keys `0..n` with `make_value(key)` payloads.
    pub fn load_keys(&self, n: u64, mut make_value: impl FnMut(u64) -> Vec<u8>) {
        for key in 0..n {
            self.load_key(key, &make_value(key));
        }
    }

    /// Control-plane lookup of a key's allocation.
    pub fn key_info(&self, key: u64) -> Option<Rc<KeyInfo>> {
        self.inner.keys.borrow().get(&key).cloned()
    }

    /// Records that anti-entropy overwrote a replica of `key`. Each call
    /// bumps a cluster-wide counter so two repairs of the same key yield
    /// distinct marks.
    pub fn note_repaired(&self, key: u64) {
        let n = self.inner.repair_counter.get() + 1;
        self.inner.repair_counter.set(n);
        self.inner.repair_marks.borrow_mut().insert(key, n);
    }

    /// The latest repair mark for `key` (0 = never repaired). Cached client
    /// handles compare this against the mark they were built under.
    pub fn repair_mark(&self, key: u64) -> u64 {
        self.inner
            .repair_marks
            .borrow()
            .get(&key)
            .copied()
            .unwrap_or(0)
    }

    /// Crashes a memory node (Figure 11).
    pub fn crash_node(&self, node: NodeId) {
        self.inner.fabric.crash_node(node);
    }

    /// *Modeled* per-key disaggregated-memory footprint in bytes, counting
    /// live data once (slot rings are recycled storage): per replica one
    /// out-of-place value + slot header + metadata array (+ lock words for
    /// Safe-Guess), plus the in-place copy at the designated replica.
    /// This is the accounting behind Table 3.
    pub fn modeled_bytes_per_key(&self, with_tslocks: bool) -> u64 {
        let cfg = &self.inner.cfg;
        let per_replica = (16 + cfg.value_size) as u64
            + 8 * cfg.meta_bufs as u64
            + if with_tslocks {
                8 * cfg.max_clients as u64
            } else {
                0
            };
        let inplace = if cfg.inplace {
            (cfg.value_size + 8) as u64
        } else {
            0
        };
        cfg.replicas as u64 * per_replica + inplace + 24 // key record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_placement_is_deterministic_and_spread() {
        let sim = Sim::new(1);
        let c = Cluster::new(&sim, ClusterConfig::default());
        let a = c.replica_nodes_for(1);
        let b = c.replica_nodes_for(1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // Different keys should land on different starting nodes sometimes.
        let starts: std::collections::HashSet<_> =
            (0..32).map(|k| c.replica_nodes_for(k)[0]).collect();
        assert!(starts.len() > 1);
    }

    #[test]
    fn seven_replicas_on_four_nodes_reuse_nodes() {
        let sim = Sim::new(2);
        let c = Cluster::new(
            &sim,
            ClusterConfig {
                replicas: 7,
                ..Default::default()
            },
        );
        let nodes = c.replica_nodes_for(3);
        assert_eq!(nodes.len(), 7);
        let distinct: std::collections::HashSet<_> = nodes.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn load_key_registers_index_and_memory() {
        let sim = Sim::new(3);
        let c = Cluster::new(&sim, ClusterConfig::default());
        let v = vec![7u8; 64];
        let info = c.load_key(9, &v);
        assert!(c.index().peek(9).is_some());
        assert_eq!(info.layouts.len(), 3);
        // The designated replica holds a valid in-place copy.
        let l = &info.layouts[0];
        let node = c.fabric().node(l.node);
        let word = node.mem().read_u64(l.meta_addr);
        assert_ne!(word, 0);
        let inplace = l.meta_addr + (l.meta_bufs * 8) as u64;
        assert_eq!(node.mem().read(inplace, 64), v);
    }

    #[test]
    fn modeled_bytes_match_table3_shape() {
        // 1 KiB values, 4 clients, 3 replicas: SWARM ~4.1 KiB/key,
        // DM-ABD-like (no inplace, 1 buf, no locks) ~3.1 KiB/key.
        let sim = Sim::new(4);
        let swarm = Cluster::new(
            &sim,
            ClusterConfig {
                value_size: 1024,
                ..Default::default()
            },
        );
        let abd = Cluster::new(
            &sim,
            ClusterConfig {
                value_size: 1024,
                meta_bufs: 1,
                inplace: false,
                ..Default::default()
            },
        );
        let s = swarm.modeled_bytes_per_key(true);
        let a = abd.modeled_bytes_per_key(false);
        assert!(s > a);
        let ratio = s as f64 / a as f64;
        assert!((1.2..1.5).contains(&ratio), "SWARM/DM-ABD ratio {ratio}");
    }
}
