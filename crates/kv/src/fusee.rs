//! FUSEE-like baseline (FAST '23): a synchronously replicated disaggregated
//! KV modeled at the roundtrip level the paper measures.
//!
//! FUSEE is a closed comparator here, so this is a *model*, faithful to the
//! behavior SWARM's evaluation reports (§7.1, Table 2, Table 3):
//!
//! * **updates** take 4 sequential roundtrips — write the new out-of-place
//!   block to ALL replicas, CAS the primary index pointer, propagate to the
//!   backup pointer, and a read-back/validation round; conflicting updates
//!   on hot keys pay a 5th roundtrip for the pointer-CAS retry.
//! * **gets** run in 1 roundtrip when the client's cached pointer is still
//!   current, and 2 roundtrips otherwise (index lookup then data read); a
//!   stale cached pointer additionally *wastes* one data-read's bandwidth
//!   (§7.6 reports 13% wasted optimistic gets). Staleness detection stands
//!   in for FUSEE's self-verifying reads: the model consults the key's
//!   committed version, exactly what FUSEE's embedded checks reveal.
//! * **replication factor**: synchronous replication tolerates 1 failure
//!   with only 2 replicas (Table 3).
//! * **failures**: recovery requires detecting the crash and running a
//!   multi-phase ownership transfer; the paper cites tens of milliseconds of
//!   unavailability (§7.7), which [`FuseeKv::recovery_downtime_ns`] exposes
//!   for the availability comparison.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use swarm_core::{Hedger, Rounds};
use swarm_fabric::{Endpoint, Fabric, FabricConfig, NodeId, Op, OpResult};
use swarm_sim::{join_all, timeout_at, FifoResource, Nanos, Quorum, Sim, SimRng, NANOS_PER_MILLI};

use crate::cache::LfuCache;
use crate::client::{CacheCapacity, KvClientConfig};
use crate::cluster::{derive_label, ROLE_CACHE, ROLE_FABRIC, ROLE_INDEX};
use crate::index::Index;
use crate::store::{with_deadline, KvError, KvResult, KvStore, KvStoreExt, ScanItems};

/// FUSEE model parameters.
#[derive(Debug, Clone)]
pub struct FuseeConfig {
    /// Memory nodes.
    pub nodes: usize,
    /// Replicas per key (2 suffices for 1 failure under synchronous
    /// replication).
    pub replicas: usize,
    /// Value size in bytes.
    pub value_size: usize,
    /// Out-of-place block ring per key per replica.
    pub ring: usize,
    /// Fabric latency model.
    pub fabric: FabricConfig,
    /// Crash-recovery unavailability (tens of ms per §7.7; FUSEE's paper
    /// reports ~40 ms).
    pub recovery_ns: Nanos,
    /// Client-side work per get (self-verifying reconstruction + checksum):
    /// FUSEE's 1-RTT gets measure 2.9 µs vs RAW's 1.9 µs (§7.1).
    pub get_overhead_ns: Nanos,
    /// Client-side work per update (CRC + multi-WQE preparation per phase).
    pub update_overhead_ns: Nanos,
    /// Maximum live index mappings (`None` = unbounded); inserts beyond it
    /// fail with `KvError::IndexFull`.
    pub index_capacity: Option<usize>,
    /// RNG-stream label, same semantics as `ClusterConfig::rng_label`:
    /// `None` = shared stream, `Some(label)` = private per-role forks (set
    /// per shard by sharded clusters).
    pub rng_label: Option<u64>,
}

impl Default for FuseeConfig {
    fn default() -> Self {
        FuseeConfig {
            nodes: 4,
            replicas: 2,
            value_size: 64,
            ring: 4,
            fabric: FabricConfig::default(),
            recovery_ns: 40 * NANOS_PER_MILLI,
            get_overhead_ns: 800,
            update_overhead_ns: 1_300,
            index_capacity: None,
            rng_label: None,
        }
    }
}

/// Per-key state: replica block rings + the two pointer words.
pub struct FuseeKeyInfo {
    /// The key.
    pub key: u64,
    /// Replica nodes.
    pub replica_nodes: Vec<NodeId>,
    /// Base address of the block ring on each replica.
    pub ring_base: Vec<u64>,
    /// `(node, addr)` of the primary index-pointer word.
    pub ptr_primary: (NodeId, u64),
    /// `(node, addr)` of the backup pointer word.
    pub ptr_backup: (NodeId, u64),
    /// Committed version (the model's stand-in for FUSEE's self-verifying
    /// pointer checks).
    pub version: Cell<u64>,
}

struct ClusterInner {
    sim: Sim,
    fabric: Fabric,
    cfg: FuseeConfig,
    index: Index<Rc<FuseeKeyInfo>>,
    keys: RefCell<HashMap<u64, Rc<FuseeKeyInfo>>>,
}

/// A FUSEE cluster (own fabric + index).
#[derive(Clone)]
pub struct FuseeCluster {
    inner: Rc<ClusterInner>,
}

impl FuseeCluster {
    /// Creates the cluster.
    pub fn new(sim: &Sim, cfg: FuseeConfig) -> Self {
        let mut fabric_cfg = cfg.fabric.clone();
        if fabric_cfg.rng_label.is_none() {
            fabric_cfg.rng_label = cfg.rng_label.map(|l| derive_label(l, ROLE_FABRIC, 0));
        }
        let index_rng = match cfg.rng_label {
            Some(l) => sim.fork_rng(derive_label(l, ROLE_INDEX, 0)),
            None => SimRng::shared(sim),
        };
        let fabric = Fabric::new(sim, fabric_cfg, cfg.nodes);
        FuseeCluster {
            inner: Rc::new(ClusterInner {
                sim: sim.clone(),
                fabric,
                index: Index::with_capacity_rng(sim, cfg.index_capacity, index_rng),
                cfg,
                keys: RefCell::new(HashMap::new()),
            }),
        }
    }

    /// The fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    /// The simulation.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// The model configuration.
    pub fn config(&self) -> &FuseeConfig {
        &self.inner.cfg
    }

    fn block_len(&self) -> u64 {
        // [version 8 | value].
        8 + self.inner.cfg.value_size as u64
    }

    /// Allocates per-key state (control plane).
    pub fn alloc_key(&self, key: u64) -> Rc<FuseeKeyInfo> {
        let cfg = &self.inner.cfg;
        let start = (swarm_core::xxh64(&key.to_le_bytes(), 0xFACE) % cfg.nodes as u64) as usize;
        let replica_nodes: Vec<NodeId> = (0..cfg.replicas)
            .map(|i| NodeId((start + i) % cfg.nodes))
            .collect();
        let ring_base: Vec<u64> = replica_nodes
            .iter()
            .map(|&n| {
                self.inner
                    .fabric
                    .node(n)
                    .alloc(cfg.ring as u64 * self.block_len(), 8)
            })
            .collect();
        let ptr_primary = (
            replica_nodes[0],
            self.inner.fabric.node(replica_nodes[0]).alloc(8, 8),
        );
        let backup_node = replica_nodes[1 % replica_nodes.len()];
        let ptr_backup = (backup_node, self.inner.fabric.node(backup_node).alloc(8, 8));
        let info = Rc::new(FuseeKeyInfo {
            key,
            replica_nodes,
            ring_base,
            ptr_primary,
            ptr_backup,
            version: Cell::new(0),
        });
        self.inner.keys.borrow_mut().insert(key, Rc::clone(&info));
        info
    }

    /// Bulk-loads a key (control plane, version 1).
    pub fn load_key(&self, key: u64, value: &[u8]) -> Rc<FuseeKeyInfo> {
        let cfg = &self.inner.cfg;
        assert_eq!(value.len(), cfg.value_size);
        let info = self.alloc_key(key);
        let version = 1u64;
        let slot = version % cfg.ring as u64;
        for (i, &n) in info.replica_nodes.iter().enumerate() {
            let node = self.inner.fabric.node(n);
            let addr = info.ring_base[i] + slot * self.block_len();
            node.mem().write_u64(addr, version);
            node.mem().write(addr + 8, value);
        }
        let ptr = (version << 16) | slot;
        self.inner
            .fabric
            .node(info.ptr_primary.0)
            .mem()
            .write_u64(info.ptr_primary.1, ptr);
        self.inner
            .fabric
            .node(info.ptr_backup.0)
            .mem()
            .write_u64(info.ptr_backup.1, ptr);
        info.version.set(version);
        self.inner.index.load(key, Rc::clone(&info));
        info
    }

    /// Bulk-loads keys `0..n`.
    pub fn load_keys(&self, n: u64, mut make_value: impl FnMut(u64) -> Vec<u8>) {
        for key in 0..n {
            self.load_key(key, &make_value(key));
        }
    }

    /// Modeled per-key memory (Table 3): one live block per replica + the
    /// pointer words + key record.
    pub fn modeled_bytes_per_key(&self) -> u64 {
        let cfg = &self.inner.cfg;
        cfg.replicas as u64 * self.block_len() + 16 + 24
    }
}

struct CacheEntry {
    info: Rc<FuseeKeyInfo>,
    /// Version this client last observed committed.
    version: u64,
}

/// One FUSEE client thread.
pub struct FuseeKv {
    cluster: FuseeCluster,
    client_id: usize,
    ep: Rc<Endpoint>,
    rounds: Rounds,
    cache: RefCell<LfuCache<Rc<CacheEntry>>>,
    /// Stream for cache-eviction sampling (shared unless the cluster has an
    /// rng label).
    rng: SimRng,
    op_deadline_ns: Option<Nanos>,
    /// Gets that had to re-fetch due to a stale cached pointer.
    stale_gets: Cell<u64>,
    /// Gets served fully from the cached pointer.
    fresh_gets: Cell<u64>,
    /// Tail-latency hedger (`None` by default — bit-identical to the
    /// pre-hedging code). FUSEE hedges its latency-bearing data reads to the
    /// backup replica (synchronous replication guarantees an identical copy)
    /// and its block fan-out with same-replica duplicates; the pointer CAS
    /// is never hedged (a duplicate CAS is not idempotent: its second copy
    /// could observe and clobber a concurrent writer's pointer).
    hedger: Option<Hedger>,
}

impl FuseeKv {
    /// Creates client `client_id` with the given location-cache capacity.
    pub fn new(cluster: &FuseeCluster, client_id: usize, cache: CacheCapacity) -> Rc<Self> {
        Self::with_config(
            cluster,
            client_id,
            KvClientConfig {
                cache,
                ..Default::default()
            },
        )
    }

    /// Creates client `client_id` with the full per-client configuration
    /// (cache capacity + optional per-operation deadline).
    pub fn with_config(cluster: &FuseeCluster, client_id: usize, cfg: KvClientConfig) -> Rc<Self> {
        Self::with_cpu(cluster, client_id, cfg, None)
    }

    /// [`FuseeKv::with_config`], optionally sharing an existing CPU core
    /// (see `KvClient::with_cpu` — one application thread per cross-shard
    /// router).
    pub fn with_cpu(
        cluster: &FuseeCluster,
        client_id: usize,
        cfg: KvClientConfig,
        cpu: Option<FifoResource>,
    ) -> Rc<Self> {
        let sim = cluster.sim();
        let rng = match cluster.config().rng_label {
            Some(l) => sim.fork_rng(derive_label(l, ROLE_CACHE, client_id as u64)),
            None => SimRng::shared(sim),
        };
        Rc::new(FuseeKv {
            cluster: cluster.clone(),
            client_id,
            ep: Rc::new(match cpu {
                Some(cpu) => cluster.fabric().endpoint_with_cpu(cpu),
                None => cluster.fabric().endpoint(),
            }),
            rounds: Rounds::new(),
            cache: RefCell::new(LfuCache::new(cfg.cache.entry_limit())),
            rng,
            op_deadline_ns: cfg.op_deadline_ns,
            stale_gets: Cell::new(0),
            fresh_gets: Cell::new(0),
            hedger: Hedger::new(
                cfg.hedge,
                cluster.config().nodes,
                Some(cluster.fabric().clone()),
            ),
        })
    }

    /// `(fresh, stale)` cached-pointer get counts (§7.1's bimodality).
    pub fn get_stats(&self) -> (u64, u64) {
        (self.fresh_gets.get(), self.stale_gets.get())
    }

    /// Cache hit/miss statistics.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.borrow().stats()
    }

    fn block_len(&self) -> u64 {
        8 + self.cluster.config().value_size as u64
    }

    /// Reads one replica block. `Ok(None)` if the block was recycled by a
    /// newer update; `Err(Timeout)` if the node stopped answering.
    async fn read_block(&self, info: &FuseeKeyInfo, version: u64) -> KvResult<Option<Vec<u8>>> {
        self.rounds.bump();
        match &self.hedger {
            None => self.read_block_quiet(info, version).await,
            Some(h) => self.read_block_hedged(&h.clone(), info, version).await,
        }
    }

    /// Pushes the block read at replica `i` onto `q`, wrapping it to feed
    /// the hedger's per-node RTT tracker.
    fn push_block_read(
        &self,
        q: &mut Quorum<Option<Vec<u8>>>,
        h: &Hedger,
        info: &FuseeKeyInfo,
        i: usize,
        slot: u64,
    ) {
        let node = info.replica_nodes[i];
        let addr = info.ring_base[i] + slot * self.block_len();
        let fut = self.ep.submit(
            node,
            vec![Op::Read {
                addr,
                len: self.block_len() as usize,
            }],
        );
        let h = h.clone();
        let sim = self.cluster.sim().clone();
        let t0 = sim.now();
        q.push(async move {
            let r = fut.await;
            h.observe(node.0, sim.now() - t0);
            r.and_then(|ops| ops.into_iter().next().and_then(OpResult::read))
        });
    }

    /// [`FuseeKv::read_block_quiet`] with a hedge stage: if the primary's
    /// tracked p99 elapses with no response, the same slot is read from the
    /// backup replica — synchronous replication wrote the committed block to
    /// *every* replica before the pointer CAS, and the embedded version
    /// check rejects recycled slots, so either copy is authoritative.
    async fn read_block_hedged(
        &self,
        h: &Hedger,
        info: &FuseeKeyInfo,
        version: u64,
    ) -> KvResult<Option<Vec<u8>>> {
        let slot = version % self.cluster.config().ring as u64;
        let sim = self.cluster.sim().clone();
        let t0 = sim.now();
        let mut q: Quorum<Option<Vec<u8>>> = Quorum::new(1);
        self.push_block_read(&mut q, h, info, 0, slot);
        let mut hedge = None;
        if info.replica_nodes.len() > 1 {
            if let Some(d) = h.delay_for(std::iter::once(info.replica_nodes[0].0)) {
                if timeout_at(&sim, t0 + d, &mut q).await.is_err() {
                    if let Some(ticket) = h.try_fire() {
                        hedge = Some(ticket);
                        self.push_block_read(&mut q, h, info, 1, slot);
                    }
                }
            }
        }
        (&mut q).await;
        if let Some(t) = hedge {
            t.settle(q.results()[1].is_some());
        }
        let bytes = q
            .take_results()
            .into_iter()
            .flatten()
            .next()
            .expect("completed quorum has a result")
            .ok_or(KvError::Timeout)?;
        let v = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        if v == version {
            Ok(Some(bytes[8..].to_vec()))
        } else {
            Ok(None) // Block was recycled by a newer update.
        }
    }

    /// A read whose latency overlaps another phase (the wasted optimistic
    /// read of a stale get): costs bandwidth, not a latency roundtrip.
    async fn read_block_quiet(
        &self,
        info: &FuseeKeyInfo,
        version: u64,
    ) -> KvResult<Option<Vec<u8>>> {
        let slot = version % self.cluster.config().ring as u64;
        let addr = info.ring_base[0] + slot * self.block_len();
        let bytes = self
            .ep
            .read(info.replica_nodes[0], addr, self.block_len() as usize)
            .await
            .ok_or(KvError::Timeout)?;
        let v = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        if v == version {
            Ok(Some(bytes[8..].to_vec()))
        } else {
            Ok(None) // Block was recycled by a newer update.
        }
    }

    /// One replica's block write (update RTT 1) with a hedge stage: after
    /// the node's tracked p99 with no ack, a duplicate of the same write
    /// (same bytes, same address — idempotent) races the straggler; the
    /// first ack wins.
    async fn hedged_replica_write(
        ep: Rc<Endpoint>,
        sim: Sim,
        h: Hedger,
        node: NodeId,
        addr: u64,
        data: swarm_fabric::Payload,
    ) {
        let t0 = sim.now();
        let mut q: Quorum<()> = Quorum::new(1);
        let push = |q: &mut Quorum<()>, since: Nanos| {
            let fut = ep.submit(
                node,
                vec![Op::Write {
                    addr,
                    data: Rc::clone(&data),
                }],
            );
            let h = h.clone();
            let sim = sim.clone();
            q.push(async move {
                fut.await;
                h.observe(node.0, sim.now() - since);
            });
        };
        push(&mut q, t0);
        let mut hedge = None;
        if let Some(d) = h.delay_for(std::iter::once(node.0)) {
            if timeout_at(&sim, t0 + d, &mut q).await.is_err() {
                if let Some(ticket) = h.try_fire() {
                    hedge = Some(ticket);
                    push(&mut q, sim.now());
                }
            }
        }
        (&mut q).await;
        if let Some(t) = hedge {
            t.settle(q.results()[1].is_some());
        }
    }

    async fn lookup(&self, key: u64) -> Option<Rc<CacheEntry>> {
        if let Some(e) = self.cache.borrow_mut().get(key) {
            return Some(Rc::clone(e));
        }
        self.rounds.bump();
        let info = self.cluster.inner.index.get(key).await?;
        let e = Rc::new(CacheEntry {
            version: info.version.get(),
            info,
        });
        self.cache
            .borrow_mut()
            .insert(&self.rng, key, Rc::clone(&e));
        Some(e)
    }
}

impl FuseeKv {
    async fn get_inner(&self, key: u64) -> KvResult<Option<Rc<Vec<u8>>>> {
        self.ep.work(self.cluster.config().get_overhead_ns).await;
        let cached = self.cache.borrow_mut().get(key).map(Rc::clone);
        match cached {
            Some(e) if e.version == e.info.version.get() => {
                // Fresh cached pointer: 1 roundtrip.
                self.fresh_gets.set(self.fresh_gets.get() + 1);
                Ok(self.read_block(&e.info, e.version).await?.map(Rc::new))
            }
            Some(e) => {
                // Stale pointer (§7.1): the optimistic read is wasted; the
                // index is consulted and the new block read — 2 roundtrips
                // of latency, 3 messages of bandwidth.
                self.stale_gets.set(self.stale_gets.get() + 1);
                let wasted = self.read_block_quiet(&e.info, e.version);
                let index_lookup = async {
                    self.rounds.bump();
                    self.cluster.inner.index.get(key).await
                };
                let (_, info) = swarm_sim::join2(wasted, index_lookup).await;
                let Some(info) = info else {
                    return Ok(None);
                };
                let version = info.version.get();
                let v = self.read_block(&info, version).await?;
                self.cache.borrow_mut().insert(
                    &self.rng,
                    key,
                    Rc::new(CacheEntry { version, info }),
                );
                Ok(v.map(Rc::new))
            }
            None => {
                // Cache miss: index then data — 2 roundtrips.
                let Some(e) = self.lookup(key).await else {
                    return Ok(None);
                };
                Ok(self.read_block(&e.info, e.version).await?.map(Rc::new))
            }
        }
    }

    async fn update_inner(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        self.ep.work(self.cluster.config().update_overhead_ns).await;
        let Some(e) = self.lookup(key).await else {
            return Err(KvError::NotIndexed);
        };
        let info = &e.info;
        let cfg = self.cluster.config();

        // RTT 1: write the new block to ALL replicas (synchronous
        // replication needs every replica).
        let new_version = info.version.get() + 1;
        let slot = new_version % cfg.ring as u64;
        self.rounds.bump();
        let mut block = Vec::with_capacity(self.block_len() as usize);
        block.extend_from_slice(&new_version.to_le_bytes());
        block.extend_from_slice(&value);
        // One block buffer, Rc-shared across the replica fan-out (the old
        // code deep-copied it once per replica).
        let block: swarm_fabric::Payload = block.into();
        match &self.hedger {
            None => {
                let writes: Vec<_> = info
                    .replica_nodes
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| {
                        self.ep.submit(
                            n,
                            vec![Op::Write {
                                addr: info.ring_base[i] + slot * self.block_len(),
                                data: Rc::clone(&block),
                            }],
                        )
                    })
                    .collect();
                join_all(writes).await;
            }
            Some(h) => {
                // Synchronous replication must ack *every* replica, so the
                // hedge is per replica: a duplicate of the same write to the
                // same address (idempotent), racing the straggling ack.
                let h = h.clone();
                let mut writes = Vec::with_capacity(info.replica_nodes.len());
                for (i, &n) in info.replica_nodes.iter().enumerate() {
                    writes.push(Self::hedged_replica_write(
                        Rc::clone(&self.ep),
                        self.cluster.sim().clone(),
                        h.clone(),
                        n,
                        info.ring_base[i] + slot * self.block_len(),
                        Rc::clone(&block),
                    ));
                }
                join_all(writes).await;
            }
        }

        // RTT 2: CAS the primary pointer; a concurrent update forces a
        // retry (hot keys take 5 roundtrips, Table 2).
        let mut expected = (e.version << 16) | (e.version % cfg.ring as u64);
        let new_ptr = (new_version << 16) | slot;
        loop {
            self.rounds.bump();
            let prev = self
                .ep
                .cas(info.ptr_primary.0, info.ptr_primary.1, expected, new_ptr)
                .await
                .ok_or(KvError::Timeout)?;
            if prev == expected {
                break;
            }
            if prev >= new_ptr {
                // Lost to a pointer at or past our version; FUSEE
                // serializes via the index — our value is superseded, treat
                // as applied. The committed version must catch up to the
                // pointer we just observed: a writer that crashed or timed
                // out after its pointer CAS landed leaves the in-memory
                // pointer ahead of the model's committed version, and this
                // observation is exactly FUSEE's self-verifying resolution
                // of such orphaned updates (§7.7).
                if info.version.get() < prev >> 16 {
                    info.version.set(prev >> 16);
                }
                return Ok(());
            }
            expected = prev;
        }
        if info.version.get() < new_version {
            info.version.set(new_version);
        }

        // RTT 3: propagate to the backup pointer.
        self.rounds.bump();
        self.ep
            .write(
                info.ptr_backup.0,
                info.ptr_backup.1,
                new_ptr.to_le_bytes().to_vec(),
            )
            .await;

        // RTT 4: read-back validation.
        self.rounds.bump();
        let _ = self
            .ep
            .read(info.ptr_primary.0, info.ptr_primary.1, 8)
            .await;

        self.cache.borrow_mut().insert(
            &self.rng,
            key,
            Rc::new(CacheEntry {
                version: new_version,
                info: Rc::clone(info),
            }),
        );
        Ok(())
    }

    async fn insert_inner(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        let info = self.cluster.alloc_key(key);
        self.rounds.bump();
        // The capacity check rides the set roundtrip atomically, so
        // concurrent inserts (e.g. a multi_insert batch) cannot race past
        // the cap.
        if !self
            .cluster
            .inner
            .index
            .set_within_capacity(key, Rc::clone(&info))
            .await
        {
            return Err(KvError::IndexFull);
        }
        self.update_inner(key, value).await
    }

    async fn delete_inner(&self, key: u64) -> KvResult<()> {
        if self.lookup(key).await.is_none() {
            return Err(KvError::NotFound);
        }
        self.rounds.bump();
        self.cluster.inner.index.remove(key).await;
        self.cache.borrow_mut().remove(key);
        Ok(())
    }
}

impl KvStore for FuseeKv {
    async fn get(&self, key: u64) -> KvResult<Option<Rc<Vec<u8>>>> {
        with_deadline(self.cluster.sim(), self.op_deadline_ns, self.get_inner(key)).await
    }

    async fn update(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        with_deadline(
            self.cluster.sim(),
            self.op_deadline_ns,
            self.update_inner(key, value),
        )
        .await
    }

    async fn insert(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        with_deadline(
            self.cluster.sim(),
            self.op_deadline_ns,
            self.insert_inner(key, value),
        )
        .await
    }

    async fn delete(&self, key: u64) -> KvResult<()> {
        with_deadline(
            self.cluster.sim(),
            self.op_deadline_ns,
            self.delete_inner(key),
        )
        .await
    }

    /// Ordered range read over FUSEE's index: one roundtrip enumerates the
    /// keys, then values come back as a pipelined multi-get batch. Same
    /// best-effort-per-key semantics as the SWARM client's scan.
    async fn scan(&self, start: u64, limit: usize) -> KvResult<ScanItems> {
        with_deadline(self.cluster.sim(), self.op_deadline_ns, async move {
            self.rounds.bump();
            let keys = self.cluster.inner.index.range_keys(start, limit).await;
            let values = self.multi_get(&keys).await;
            Ok(keys
                .into_iter()
                .zip(values)
                .filter_map(|(k, v)| match v {
                    Ok(Some(v)) => Some((k, v)),
                    _ => None,
                })
                .collect())
        })
        .await
    }

    fn rounds(&self) -> u64 {
        self.rounds.get()
    }

    fn endpoint(&self) -> Rc<Endpoint> {
        Rc::clone(&self.ep)
    }

    fn client_id(&self) -> usize {
        self.client_id
    }
}

impl FuseeKv {
    /// Unavailability after a memory-node crash (§7.7): detection plus
    /// multi-phase recovery (log scan, state transfer, role change).
    pub fn recovery_downtime_ns(&self) -> Nanos {
        self.cluster.config().recovery_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(seed: u64) -> (Sim, FuseeCluster) {
        let sim = Sim::new(seed);
        let cluster = FuseeCluster::new(&sim, FuseeConfig::default());
        cluster.load_keys(16, |k| vec![k as u8; 64]);
        (sim, cluster)
    }

    const CACHE: CacheCapacity = CacheCapacity::Entries(1024);

    #[test]
    fn get_after_load_returns_value() {
        let (sim, cluster) = setup(1);
        let c = FuseeKv::new(&cluster, 0, CACHE);
        let v = sim.block_on(async move { c.get(3).await });
        assert_eq!(*v.unwrap().unwrap(), vec![3u8; 64]);
    }

    #[test]
    fn update_takes_four_rounds_and_get_one_when_fresh() {
        let (sim, cluster) = setup(2);
        let c = FuseeKv::new(&cluster, 0, CACHE);
        let c2 = Rc::clone(&c);
        sim.block_on(async move {
            c2.get(1).await.unwrap(); // warm the cache (2 rtts)
            let r0 = c2.rounds();
            c2.update(1, vec![9u8; 64]).await.unwrap();
            assert_eq!(c2.rounds() - r0, 4, "update rtts");
            let r0 = c2.rounds();
            assert_eq!(*c2.get(1).await.unwrap().unwrap(), vec![9u8; 64]);
            assert_eq!(c2.rounds() - r0, 1, "fresh get rtts");
        });
    }

    #[test]
    fn stale_cached_pointer_costs_two_rounds() {
        let (sim, cluster) = setup(3);
        let a = FuseeKv::new(&cluster, 0, CACHE);
        let b = FuseeKv::new(&cluster, 1, CACHE);
        sim.block_on(async move {
            a.get(1).await.unwrap(); // A caches v1
            b.update(1, vec![7u8; 64]).await.unwrap(); // B moves to v2
            let r0 = a.rounds();
            assert_eq!(*a.get(1).await.unwrap().unwrap(), vec![7u8; 64]);
            assert_eq!(a.rounds() - r0, 2, "stale get rtts");
            assert_eq!(a.get_stats().1, 1);
        });
    }

    #[test]
    fn index_capacity_rejects_fresh_inserts() {
        let sim = Sim::new(9);
        let cluster = FuseeCluster::new(
            &sim,
            FuseeConfig {
                index_capacity: Some(4),
                ..Default::default()
            },
        );
        cluster.load_keys(4, |k| vec![k as u8; 64]);
        let c = FuseeKv::new(&cluster, 0, CACHE);
        sim.block_on(async move {
            assert_eq!(
                c.insert(100, vec![1u8; 64]).await,
                Err(KvError::IndexFull),
                "fresh insert beyond capacity"
            );
            // Overwriting an existing key is not a fresh mapping.
            c.insert(2, vec![2u8; 64]).await.unwrap();
        });
    }

    #[test]
    fn concurrent_inserts_cannot_race_past_the_capacity() {
        use crate::store::KvStoreExt;

        let sim = Sim::new(10);
        let cluster = FuseeCluster::new(
            &sim,
            FuseeConfig {
                index_capacity: Some(6),
                ..Default::default()
            },
        );
        cluster.load_keys(4, |k| vec![k as u8; 64]);
        let c = FuseeKv::new(&cluster, 0, CACHE);
        let index_len = {
            let cl = cluster.clone();
            move || cl.inner.index.len()
        };
        sim.block_on(async move {
            // 4 concurrent fresh inserts with only 2 free slots: exactly 2
            // must land; the capacity check rides the set roundtrip, so the
            // in-flight batch cannot all pass a stale pre-check.
            let fresh: Vec<(u64, Vec<u8>)> =
                (100..104u64).map(|k| (k, vec![k as u8; 64])).collect();
            let results = c.multi_insert(&fresh).await;
            let ok = results.iter().filter(|r| r.is_ok()).count();
            let full = results
                .iter()
                .filter(|r| **r == Err(KvError::IndexFull))
                .count();
            assert_eq!((ok, full), (2, 2), "{results:?}");
        });
        assert_eq!(index_len(), 6, "index must not exceed its capacity");
    }

    #[test]
    fn hedged_client_keeps_roundtrip_accounting() {
        // Hedge duplicates ride inside existing phases: the pinned RTT
        // counts (update = 4, fresh get = 1) must not move when hedging is
        // enabled.
        let (sim, cluster) = setup(5);
        let cfg = KvClientConfig {
            cache: CACHE,
            hedge: swarm_core::HedgeConfig::on(),
            ..Default::default()
        };
        let c = FuseeKv::with_config(&cluster, 0, cfg);
        sim.block_on(async move {
            c.get(1).await.unwrap(); // warm the cache
            let r0 = c.rounds();
            c.update(1, vec![9u8; 64]).await.unwrap();
            assert_eq!(c.rounds() - r0, 4, "hedged update rtts");
            let r0 = c.rounds();
            assert_eq!(*c.get(1).await.unwrap().unwrap(), vec![9u8; 64]);
            assert_eq!(c.rounds() - r0, 1, "hedged fresh get rtts");
        });
    }

    #[test]
    fn memory_model_is_two_replicas() {
        let sim = Sim::new(4);
        let cluster = FuseeCluster::new(
            &sim,
            FuseeConfig {
                value_size: 1024,
                ..Default::default()
            },
        );
        let per_key = cluster.modeled_bytes_per_key();
        assert!((2 * 1024..2 * 1024 + 128).contains(&(per_key as usize)));
    }
}
