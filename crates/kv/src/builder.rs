//! Unified construction of all four evaluated stores.
//!
//! [`StoreBuilder`] is the one entry point for standing up a store:
//! pick a [`Protocol`], tweak cluster/client knobs fluently, then
//! [`StoreBuilder::build_cluster`] and hand out per-thread clients with
//! [`StoreCluster::client`]. SWARM-KV, DM-ABD and RAW share the [`Cluster`]
//! substrate; FUSEE brings its own — the builder hides the difference behind
//! [`StoreClient`], which implements the typed [`KvStore`] trait for all
//! four.

use std::rc::Rc;

use swarm_fabric::{Endpoint, Fabric, NodeId};
use swarm_sim::Sim;

use crate::client::{KvClient, KvClientConfig, Proto};
use crate::cluster::{Cluster, ClusterConfig};
use crate::fusee::{FuseeCluster, FuseeConfig, FuseeKv};
use crate::membership::Membership;
use crate::repair::{RepairConfig, RepairHandle};
use crate::shard::{ShardSpec, ShardedCluster};
use crate::store::{KvResult, KvStore, ScanItems};
use crate::CacheCapacity;

/// The four systems of the paper's evaluation (§7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// RAW: unreplicated direct reads/writes — the latency lower bound.
    Raw,
    /// SWARM-KV: Safe-Guess + In-n-Out, single-roundtrip replication.
    SafeGuess,
    /// DM-ABD: classic ABD over the same substrate.
    Abd,
    /// FUSEE (FAST '23): synchronously replicated baseline.
    Fusee,
}

impl Protocol {
    /// All four systems, in the order the paper's tables list them.
    pub fn all() -> [Protocol; 4] {
        [
            Protocol::Raw,
            Protocol::SafeGuess,
            Protocol::Abd,
            Protocol::Fusee,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Raw => "RAW",
            Protocol::SafeGuess => "SWARM-KV",
            Protocol::Abd => "DM-ABD",
            Protocol::Fusee => "FUSEE",
        }
    }

    /// The [`KvClient`] protocol selector, for the three [`Cluster`]-based
    /// systems.
    fn proto(&self) -> Option<Proto> {
        match self {
            Protocol::Raw => Some(Proto::Raw),
            Protocol::SafeGuess => Some(Proto::SafeGuess),
            Protocol::Abd => Some(Proto::Abd),
            Protocol::Fusee => None,
        }
    }
}

/// Fluent construction of any of the four stores: protocol × cluster config
/// × client config.
///
/// Protocol invariants are pinned at build time, so a builder sweep over
/// [`Protocol::all`] with shared knobs yields exactly the paper's setups:
/// RAW is always unreplicated with one metadata word, and DM-ABD always
/// runs without in-place data on a single shared metadata word (§7's
/// configurations).
///
/// ```
/// use swarm_kv::{KvStore, Protocol, StoreBuilder};
/// use swarm_sim::Sim;
///
/// let sim = Sim::new(1);
/// let cluster = StoreBuilder::new(Protocol::SafeGuess)
///     .value_size(64)
///     .max_clients(2)
///     .build_cluster(&sim);
/// cluster.load_keys(8, |k| vec![k as u8; 64]);
/// let client = cluster.client(0);
/// let value = sim.block_on(async move { client.get(3).await });
/// assert_eq!(*value.unwrap().unwrap(), vec![3u8; 64]);
/// ```
#[derive(Debug, Clone)]
pub struct StoreBuilder {
    protocol: Protocol,
    cluster: ClusterConfig,
    fusee: FuseeConfig,
    client: KvClientConfig,
    shards: usize,
    repair: Option<RepairConfig>,
}

impl StoreBuilder {
    /// Starts a builder for `protocol` with the paper's default
    /// configuration.
    pub fn new(protocol: Protocol) -> Self {
        StoreBuilder {
            protocol,
            cluster: ClusterConfig::default(),
            fusee: FuseeConfig::default(),
            client: KvClientConfig::default(),
            shards: 1,
            repair: None,
        }
    }

    /// The protocol this builder constructs.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Fixed value size in bytes (applies to every protocol).
    pub fn value_size(mut self, bytes: usize) -> Self {
        self.cluster.value_size = bytes;
        self.fusee.value_size = bytes;
        self
    }

    /// Replicas per key for the [`Cluster`]-based protocols (FUSEE keeps its
    /// own 2-replica synchronous scheme; see [`StoreBuilder::fusee_config`]).
    /// Ignored by RAW, which is unreplicated by definition.
    pub fn replicas(mut self, n: usize) -> Self {
        self.cluster.replicas = n;
        self
    }

    /// Maximum client count (sizes metadata arrays, lock words, slot rings).
    pub fn max_clients(mut self, n: usize) -> Self {
        self.cluster.max_clients = n;
        self
    }

    /// In-n-Out metadata words per key (§4.4). Pinned to 1 for RAW and
    /// DM-ABD at build time.
    pub fn meta_bufs(mut self, n: usize) -> Self {
        self.cluster.meta_bufs = n;
        self
    }

    /// Whether VERIFIED writes lazily store in-place data (`false` = the
    /// "Out-P." variant of Figure 9). Pinned off for DM-ABD at build time.
    pub fn inplace(mut self, yes: bool) -> Self {
        self.cluster.inplace = yes;
        self
    }

    /// Caps the index at this many live mappings; inserts beyond it fail
    /// with [`crate::KvError::IndexFull`] (applies to every protocol).
    pub fn index_capacity(mut self, cap: usize) -> Self {
        self.cluster.index_capacity = Some(cap);
        self.fusee.index_capacity = Some(cap);
        self
    }

    /// Per-client location-cache capacity (Figure 6 bounds it).
    pub fn cache(mut self, cache: CacheCapacity) -> Self {
        self.client.cache = cache;
        self
    }

    /// Per-operation deadline for every minted client: an operation that
    /// cannot finish in time (e.g. its quorum is unreachable) returns
    /// [`crate::KvError::Timeout`] instead of blocking forever. The chaos
    /// harness sets this so workloads stay live under arbitrary fault
    /// plans; the default (`None`) waits indefinitely.
    pub fn op_deadline_ns(mut self, ns: swarm_sim::Nanos) -> Self {
        self.client.op_deadline_ns = Some(ns);
        self
    }

    /// Partitions the keyspace over `n` independent shards (default 1).
    /// Build with [`StoreBuilder::build_sharded`]; every shard gets its own
    /// fabric, index, membership and replica groups with this builder's
    /// configuration, and clients route through
    /// [`crate::ShardRouter`]s minted by [`crate::ShardedCluster::router`].
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "a cluster has at least one shard");
        self.shards = n;
        self
    }

    /// Equips every built [`Cluster`]-based shard with a background
    /// anti-entropy agent (see [`crate::RepairHandle`]). Off by default —
    /// with no repair config nothing is minted, nothing draws RNG, and all
    /// existing executions replay bit-identically. The agent is created
    /// un-armed; arm it per run with [`crate::RepairHandle::arm_until`] or
    /// `ShardRunOptions::repair_until_ns`. FUSEE brings its own recovery
    /// and ignores this.
    pub fn repair(mut self, cfg: RepairConfig) -> Self {
        self.repair = Some(cfg);
        self
    }

    /// Tail-latency hedging for every minted client (see
    /// [`swarm_core::HedgeConfig`]). Off by default — with
    /// `HedgeConfig::disabled()` (or this setter never called) no hedger is
    /// minted, no extra timers are scheduled, no RNG is drawn, and all
    /// existing executions replay bit-identically. Applies to the
    /// [`Cluster`]-based protocols *and* FUSEE (which hedges its data reads
    /// and block fan-out).
    pub fn hedge(mut self, cfg: swarm_core::HedgeConfig) -> Self {
        self.client.hedge = cfg;
        self
    }

    /// Per-key adaptive protocol routing for every minted client (see
    /// [`crate::AdaptiveConfig`]). Off by default — when disabled no
    /// contention statistics are tracked and all existing executions replay
    /// bit-identically. Only Safe-Guess clients route; the other protocols
    /// ignore it.
    pub fn adaptive(mut self, cfg: crate::AdaptiveConfig) -> Self {
        self.client.adaptive = cfg;
        self
    }

    /// Replaces the whole cluster configuration (the escape hatch for knobs
    /// without a fluent setter, e.g. fabric latency or clock skew).
    pub fn cluster_config(mut self, cfg: ClusterConfig) -> Self {
        self.cluster = cfg;
        self
    }

    /// Replaces the whole FUSEE model configuration.
    pub fn fusee_config(mut self, cfg: FuseeConfig) -> Self {
        self.fusee = cfg;
        self
    }

    /// Replaces the whole client configuration.
    pub fn client_config(mut self, cfg: KvClientConfig) -> Self {
        self.client = cfg;
        self
    }

    /// The cluster configuration with the protocol's invariants pinned.
    fn effective_cluster_config(&self) -> ClusterConfig {
        let mut cfg = self.cluster.clone();
        match self.protocol {
            Protocol::Raw => {
                cfg.replicas = 1;
                cfg.meta_bufs = 1;
            }
            Protocol::Abd => {
                cfg.inplace = false;
                cfg.meta_bufs = 1;
            }
            Protocol::SafeGuess | Protocol::Fusee => {}
        }
        cfg
    }

    /// Builds the cluster-side state (fabric, index, membership, key
    /// allocator). Clients are then minted with [`StoreCluster::client`].
    ///
    /// # Panics
    ///
    /// Panics if [`StoreBuilder::shards`] was set above 1 — a multi-shard
    /// builder must go through [`StoreBuilder::build_sharded`], which
    /// builds one cluster per shard.
    pub fn build_cluster(&self, sim: &Sim) -> StoreCluster {
        assert_eq!(
            self.shards, 1,
            "multi-shard builders build with build_sharded"
        );
        let kind = match self.protocol {
            Protocol::Fusee => ClusterKind::Fusee(FuseeCluster::new(sim, self.fusee.clone())),
            _ => ClusterKind::Swarm(Cluster::new(sim, self.effective_cluster_config())),
        };
        let repair = match (&kind, &self.repair) {
            (ClusterKind::Swarm(c), Some(cfg)) => Some(RepairHandle::new(c, cfg.clone())),
            _ => None,
        };
        StoreCluster {
            kind,
            protocol: self.protocol,
            client_cfg: self.client.clone(),
            repair,
        }
    }

    /// The number of keyspace shards this builder is configured for.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Builds one independent [`StoreCluster`] per configured shard on the
    /// shared simulation. Each shard carries this builder's full
    /// configuration but draws from its own private RNG streams, so no
    /// shard's execution can perturb another's (see [`crate::ShardSpec`]).
    pub fn build_sharded(&self, sim: &Sim) -> ShardedCluster {
        let spec = ShardSpec::new(self.shards);
        let shards = (0..self.shards)
            .map(|s| self.build_one_shard(sim, s))
            .collect();
        ShardedCluster::from_shards(sim, spec, shards)
    }

    /// Builds shard `s` of the configured sharded keyspace *alone* on
    /// `sim`, with exactly the per-shard RNG labels
    /// [`StoreBuilder::build_sharded`] would give it.
    ///
    /// Because every random draw a shard makes comes from streams forked
    /// from `(simulation seed, shard label)` — never from the shared
    /// stream — shard `s` built solo on `Sim::new(seed)` replays the same
    /// execution it would have had on a shared simulation with the same
    /// seed, bit for bit. This is the footing for both the one-`Sim`-per-
    /// shard parallel driver (see [`crate::run_sharded_plan`]) and the
    /// replay workflow in TESTING.md (re-running one shard of a sweep cell
    /// single-threaded under a debugger).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not below the configured shard count.
    pub fn build_one_shard(&self, sim: &Sim, s: usize) -> StoreCluster {
        assert!(
            s < self.shards,
            "shard {s} out of range: builder has {} shard(s)",
            self.shards
        );
        let spec = ShardSpec::new(self.shards);
        let mut b = self.clone();
        b.shards = 1;
        b.cluster.rng_label = Some(spec_rng_label(&spec, s, self.cluster.rng_label));
        b.fusee.rng_label = Some(spec_rng_label(&spec, s, self.fusee.rng_label));
        b.build_cluster(sim)
    }

    /// The RNG label shard `s` draws its private streams from under
    /// [`StoreBuilder::build_sharded`] / [`StoreBuilder::build_one_shard`] —
    /// the anchor an elastic shard family derives its destination-group
    /// labels from (see `crate::reshard`).
    pub(crate) fn shard_label(&self, s: usize) -> u64 {
        let spec = ShardSpec::new(self.shards);
        spec_rng_label(&spec, s, self.cluster.rng_label)
    }

    /// Builds a single replica group whose streams fork from exactly
    /// `label`, regardless of the configured shard count: how resharding
    /// stands up a fresh destination group mid-run with streams that are
    /// private by construction (the same discipline as
    /// [`StoreBuilder::build_one_shard`], one level more general).
    pub(crate) fn build_labeled(&self, sim: &Sim, label: u64) -> StoreCluster {
        let mut b = self.clone();
        b.shards = 1;
        b.cluster.rng_label = Some(label);
        b.fusee.rng_label = Some(label);
        b.build_cluster(sim)
    }

    /// The configured maximum client count (the migration driver reserves
    /// the top client id, see `crate::reshard`).
    pub(crate) fn max_client_count(&self) -> usize {
        self.cluster.max_clients
    }
}

/// The per-shard RNG label: derived from the spec (and any label the user
/// pinned on the builder, so two sharded clusters on one sim can be told
/// apart by labeling one).
fn spec_rng_label(spec: &ShardSpec, shard: usize, user: Option<u64>) -> u64 {
    match user {
        Some(base) => crate::cluster::derive_label(base, shard as u64, spec.shards() as u64),
        None => spec.rng_label(shard),
    }
}

enum ClusterKind {
    Swarm(Cluster),
    Fusee(FuseeCluster),
}

impl Clone for ClusterKind {
    fn clone(&self) -> Self {
        match self {
            ClusterKind::Swarm(c) => ClusterKind::Swarm(c.clone()),
            ClusterKind::Fusee(c) => ClusterKind::Fusee(c.clone()),
        }
    }
}

/// A built store cluster: the protocol-appropriate substrate plus the client
/// configuration to mint [`StoreClient`]s from. Cheaply cloneable.
#[derive(Clone)]
pub struct StoreCluster {
    kind: ClusterKind,
    protocol: Protocol,
    client_cfg: KvClientConfig,
    repair: Option<RepairHandle>,
}

impl StoreCluster {
    /// The protocol this cluster runs.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Creates client `id` (one per application thread).
    pub fn client(&self, id: usize) -> Rc<StoreClient> {
        self.client_on(id, None)
    }

    /// Creates client `id` sharing an existing CPU core. Cross-shard
    /// routers mint their per-shard clients this way so the whole set
    /// models one application thread.
    pub fn client_with_cpu(&self, id: usize, cpu: swarm_sim::FifoResource) -> Rc<StoreClient> {
        self.client_on(id, Some(cpu))
    }

    fn client_on(&self, id: usize, cpu: Option<swarm_sim::FifoResource>) -> Rc<StoreClient> {
        Rc::new(match &self.kind {
            ClusterKind::Swarm(c) => StoreClient::Swarm(KvClient::with_cpu(
                c,
                self.protocol.proto().expect("swarm substrate"),
                id,
                self.client_cfg.clone(),
                cpu,
            )),
            ClusterKind::Fusee(c) => {
                StoreClient::Fusee(FuseeKv::with_cpu(c, id, self.client_cfg.clone(), cpu))
            }
        })
    }

    /// Creates clients `0..n`.
    pub fn clients(&self, n: usize) -> Vec<Rc<StoreClient>> {
        (0..n).map(|i| self.client(i)).collect()
    }

    /// Bulk-loads `key = value` (control plane, the unmeasured YCSB load
    /// phase).
    pub fn load_key(&self, key: u64, value: &[u8]) {
        match &self.kind {
            ClusterKind::Swarm(c) => {
                c.load_key(key, value);
            }
            ClusterKind::Fusee(c) => {
                c.load_key(key, value);
            }
        }
    }

    /// Bulk-loads keys `0..n` with `make_value(key)` payloads.
    pub fn load_keys(&self, n: u64, mut make_value: impl FnMut(u64) -> Vec<u8>) {
        for key in 0..n {
            self.load_key(key, &make_value(key));
        }
    }

    /// The simulation driving this cluster.
    pub fn sim(&self) -> &Sim {
        match &self.kind {
            ClusterKind::Swarm(c) => c.sim(),
            ClusterKind::Fusee(c) => c.sim(),
        }
    }

    /// The fabric (traffic statistics, node access).
    pub fn fabric(&self) -> &Fabric {
        match &self.kind {
            ClusterKind::Swarm(c) => c.fabric(),
            ClusterKind::Fusee(c) => c.fabric(),
        }
    }

    /// Crashes a memory node (Figure 11).
    pub fn crash_node(&self, node: NodeId) {
        self.fabric().crash_node(node);
    }

    /// The lease-based membership service — only the [`Cluster`]-based
    /// protocols have one; FUSEE recovers through its own multi-phase
    /// ownership transfer instead.
    pub fn membership(&self) -> Option<&Membership> {
        match &self.kind {
            ClusterKind::Swarm(c) => Some(c.membership()),
            ClusterKind::Fusee(_) => None,
        }
    }

    /// *Modeled* per-key disaggregated-memory footprint in bytes (the
    /// Table 3 accounting, protocol-appropriate).
    pub fn modeled_bytes_per_key(&self) -> u64 {
        match (&self.kind, self.protocol) {
            // Unreplicated: one value + key record.
            (ClusterKind::Swarm(c), Protocol::Raw) => (c.config().value_size + 24) as u64,
            // Safe-Guess carries per-writer timestamp-lock words.
            (ClusterKind::Swarm(c), Protocol::SafeGuess) => c.modeled_bytes_per_key(true),
            (ClusterKind::Swarm(c), _) => c.modeled_bytes_per_key(false),
            (ClusterKind::Fusee(c), _) => c.modeled_bytes_per_key(),
        }
    }

    /// Index traffic in bytes, where the substrate accounts it separately
    /// from the fabric (FUSEE's model folds index cost into its roundtrip
    /// counts instead).
    pub fn index_bytes(&self) -> u64 {
        match &self.kind {
            ClusterKind::Swarm(c) => c.index().traffic().1,
            ClusterKind::Fusee(_) => 0,
        }
    }

    /// The underlying [`Cluster`] for RAW / SWARM-KV / DM-ABD (escape
    /// hatch).
    pub fn swarm(&self) -> Option<&Cluster> {
        match &self.kind {
            ClusterKind::Swarm(c) => Some(c),
            ClusterKind::Fusee(_) => None,
        }
    }

    /// The cluster's anti-entropy agent, if the builder configured one
    /// ([`StoreBuilder::repair`]); `None` for FUSEE and unconfigured
    /// clusters.
    pub fn repair(&self) -> Option<&RepairHandle> {
        self.repair.as_ref()
    }

    /// The underlying [`FuseeCluster`] (escape hatch).
    pub fn fusee(&self) -> Option<&FuseeCluster> {
        match &self.kind {
            ClusterKind::Swarm(_) => None,
            ClusterKind::Fusee(c) => Some(c),
        }
    }
}

/// A per-thread client of any of the four stores, implementing the typed
/// [`KvStore`] trait by delegation.
pub enum StoreClient {
    /// RAW / SWARM-KV / DM-ABD client.
    Swarm(Rc<KvClient>),
    /// FUSEE client.
    Fusee(Rc<FuseeKv>),
}

impl StoreClient {
    /// Location-cache `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        match self {
            StoreClient::Swarm(c) => c.cache_stats(),
            StoreClient::Fusee(c) => c.cache_stats(),
        }
    }
}

impl KvStore for StoreClient {
    async fn get(&self, key: u64) -> KvResult<Option<Rc<Vec<u8>>>> {
        match self {
            StoreClient::Swarm(c) => c.get(key).await,
            StoreClient::Fusee(c) => c.get(key).await,
        }
    }

    async fn update(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        match self {
            StoreClient::Swarm(c) => c.update(key, value).await,
            StoreClient::Fusee(c) => c.update(key, value).await,
        }
    }

    async fn insert(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        match self {
            StoreClient::Swarm(c) => c.insert(key, value).await,
            StoreClient::Fusee(c) => c.insert(key, value).await,
        }
    }

    async fn delete(&self, key: u64) -> KvResult<()> {
        match self {
            StoreClient::Swarm(c) => c.delete(key).await,
            StoreClient::Fusee(c) => c.delete(key).await,
        }
    }

    async fn scan(&self, start: u64, limit: usize) -> KvResult<ScanItems> {
        match self {
            StoreClient::Swarm(c) => c.scan(start, limit).await,
            StoreClient::Fusee(c) => c.scan(start, limit).await,
        }
    }

    fn rounds(&self) -> u64 {
        match self {
            StoreClient::Swarm(c) => c.rounds(),
            StoreClient::Fusee(c) => c.rounds(),
        }
    }

    fn endpoint(&self) -> Rc<Endpoint> {
        match self {
            StoreClient::Swarm(c) => c.endpoint(),
            StoreClient::Fusee(c) => c.endpoint(),
        }
    }

    fn client_id(&self) -> usize {
        match self {
            StoreClient::Swarm(c) => c.client_id(),
            StoreClient::Fusee(c) => c.client_id(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_invariants_are_pinned_at_build() {
        // Sweeping knobs over all protocols must not un-pin the paper's
        // per-system configuration.
        let b = StoreBuilder::new(Protocol::Raw).replicas(5).meta_bufs(8);
        let cfg = b.effective_cluster_config();
        assert_eq!(cfg.replicas, 1, "RAW is unreplicated");
        assert_eq!(cfg.meta_bufs, 1);

        let b = StoreBuilder::new(Protocol::Abd).inplace(true).meta_bufs(8);
        let cfg = b.effective_cluster_config();
        assert!(!cfg.inplace, "DM-ABD has no in-place data");
        assert_eq!(cfg.meta_bufs, 1);

        let b = StoreBuilder::new(Protocol::SafeGuess)
            .replicas(5)
            .meta_bufs(8);
        let cfg = b.effective_cluster_config();
        assert_eq!((cfg.replicas, cfg.meta_bufs), (5, 8));
    }

    #[test]
    #[should_panic(expected = "build_sharded")]
    fn multi_shard_builder_refuses_unsharded_build() {
        // A builder carrying shards > 1 must never silently produce one
        // replica group (e.g. a bench feeding a sharded ExpParams into the
        // unsharded build path).
        let sim = Sim::new(1);
        let _ = StoreBuilder::new(Protocol::SafeGuess)
            .shards(4)
            .build_cluster(&sim);
    }

    #[test]
    fn fusee_keeps_its_own_replication_factor() {
        let b = StoreBuilder::new(Protocol::Fusee)
            .value_size(128)
            .replicas(7);
        assert_eq!(b.fusee.value_size, 128, "value size crosses substrates");
        assert_eq!(b.fusee.replicas, 2, "FUSEE replicates synchronously x2");
    }
}
