//! The store interface shared by SWARM-KV, DM-ABD, RAW and FUSEE.

use std::future::Future;
use std::rc::Rc;

use swarm_fabric::Endpoint;

/// A key-value store client, one per application thread.
///
/// All methods take `&self`; handles use interior mutability so a client can
/// drive several concurrent operations (§7.2's 1–8 ops in flight).
pub trait KvStore {
    /// Reads a key; `None` if absent or deleted.
    fn get(&self, key: u64) -> impl Future<Output = Option<Rc<Vec<u8>>>> + '_;

    /// Overwrites a key; `false` if the key is not indexed or was deleted
    /// (§5.3.3).
    fn update(&self, key: u64, value: Vec<u8>) -> impl Future<Output = bool> + '_;

    /// Inserts a key (turns into an update if a live mapping exists,
    /// §5.3.1); `false` only on failure.
    fn insert(&self, key: u64, value: Vec<u8>) -> impl Future<Output = bool> + '_;

    /// Deletes a key; `false` if it was not present.
    fn delete(&self, key: u64) -> impl Future<Output = bool> + '_;

    /// Cumulative foreground roundtrips performed by this client (the
    /// runner differences this around sequential ops for Table 2).
    fn rounds(&self) -> u64;

    /// This client's fabric endpoint (CPU + traffic accounting).
    fn endpoint(&self) -> Rc<Endpoint>;

    /// Client id (0-based).
    fn client_id(&self) -> usize;
}
