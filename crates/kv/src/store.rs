//! The store interface shared by SWARM-KV, DM-ABD, RAW and FUSEE: typed
//! results ([`KvError`]) and pipelined batch operations ([`KvStoreExt`]).

use std::future::Future;
use std::rc::Rc;

use swarm_fabric::Endpoint;
use swarm_sim::{join_boxed, timeout_at, BoxFuture, Nanos, Sim, TimedOut};

/// Why a store operation could not be applied.
///
/// Absence observed by a *read* is not an error — [`KvStore::get`] returns
/// `Ok(None)` for a key that is unindexed or deleted, since "absent" is a
/// perfectly linearizable answer. Errors are reserved for *mutations* the
/// store refused and for operational faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KvError {
    /// The key has no index mapping (e.g. `delete` of an absent key).
    NotFound,
    /// The key's replicas hold a tombstone: it was deleted and not yet
    /// re-inserted, and §5.3.3 rejects writes through tombstones.
    Deleted,
    /// The index refused a new mapping because it is at capacity
    /// (see `ClusterConfig::index_capacity`).
    IndexFull,
    /// A required memory node stopped answering. Only unreplicated paths
    /// (RAW, FUSEE's fixed replica sets) surface this; the replicated
    /// protocols widen their quorums past dead nodes instead (§7.7).
    Timeout,
    /// `update` addressed a key that was never inserted: updates require an
    /// existing mapping (§5.3.3) — use `insert` for fresh keys.
    NotIndexed,
    /// The addressed shard group no longer owns the key: an elastic
    /// resharding handoff (see `crate::reshard`) moved its range to another
    /// group and bumped the routing epoch. The carried epoch is the
    /// authoritative [`crate::ShardMap`] epoch at bounce time; a router
    /// refreshes its map and re-resolves.
    WrongShard {
        /// The authoritative routing-table epoch when the op was bounced.
        epoch: u64,
    },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::NotFound => f.write_str("key not found"),
            KvError::Deleted => f.write_str("key is deleted (tombstone)"),
            KvError::IndexFull => f.write_str("index at capacity"),
            KvError::Timeout => f.write_str("memory node stopped answering"),
            KvError::NotIndexed => f.write_str("key has no index mapping"),
            KvError::WrongShard { epoch } => {
                write!(f, "key re-owned by another shard group (map epoch {epoch})")
            }
        }
    }
}

impl std::error::Error for KvError {}

/// Result of a store operation.
pub type KvResult<T> = Result<T, KvError>;

/// What a [`KvStore::scan`] returns: `(key, value)` pairs ascending by key.
pub type ScanItems = Vec<(u64, Rc<Vec<u8>>)>;

/// Runs `fut` under an optional per-operation deadline: on expiry the
/// operation is abandoned — already-submitted messages still take effect,
/// like a client crash mid-operation (§7.7) — and [`KvError::Timeout`] is
/// returned. `None` waits indefinitely. Shared by every store client.
pub(crate) async fn with_deadline<T, F>(
    sim: &Sim,
    deadline_ns: Option<Nanos>,
    fut: F,
) -> KvResult<T>
where
    F: Future<Output = KvResult<T>>,
{
    let Some(d) = deadline_ns else {
        return fut.await;
    };
    let mut fut = Box::pin(fut);
    match timeout_at(sim, sim.now() + d, &mut fut).await {
        Ok(r) => r,
        Err(TimedOut) => Err(KvError::Timeout),
    }
}

/// A key-value store client, one per application thread.
///
/// All methods take `&self`; handles use interior mutability so a client can
/// drive several concurrent operations (§7.2's 1–8 ops in flight) — which is
/// exactly what [`KvStoreExt`]'s batch operations exploit.
pub trait KvStore {
    /// Reads a key. `Ok(None)` if absent (unindexed or deleted).
    fn get(&self, key: u64) -> impl Future<Output = KvResult<Option<Rc<Vec<u8>>>>> + '_;

    /// Overwrites a key. Errors with [`KvError::NotIndexed`] if the key was
    /// never inserted and [`KvError::Deleted`] through a tombstone (§5.3.3).
    fn update(&self, key: u64, value: Vec<u8>) -> impl Future<Output = KvResult<()>> + '_;

    /// Inserts a key (turns into an update if a live mapping exists,
    /// §5.3.1). Errors with [`KvError::IndexFull`] if the index is at
    /// capacity.
    fn insert(&self, key: u64, value: Vec<u8>) -> impl Future<Output = KvResult<()>> + '_;

    /// Deletes a key. Errors with [`KvError::NotFound`] if it was absent.
    fn delete(&self, key: u64) -> impl Future<Output = KvResult<()>> + '_;

    /// Ordered range read (YCSB E): up to `limit` live `(key, value)` pairs
    /// with `key >= start`, ascending by key. Best-effort per key: a key
    /// that disappears between the index walk and the value fetch is simply
    /// absent from the result (a scan is not a snapshot). The default
    /// implementation panics — index-backed clients override it; raw
    /// replica handles have no key enumeration to scan.
    fn scan(&self, start: u64, limit: usize) -> impl Future<Output = KvResult<ScanItems>> + '_ {
        let _ = (start, limit);
        async move { panic!("scan is not supported by this store") }
    }

    /// Inserts a key with an optional TTL lease: after `ttl_ns` virtual
    /// nanoseconds the key reads as absent (`Ok(None)`). The default
    /// implementation drops the lease and performs a plain insert — only
    /// lease-aware wrappers (see `crate::TtlStore`) honor it.
    fn insert_ttl(
        &self,
        key: u64,
        value: Vec<u8>,
        ttl_ns: Option<Nanos>,
    ) -> impl Future<Output = KvResult<()>> + '_ {
        let _ = ttl_ns;
        self.insert(key, value)
    }

    /// Cumulative foreground roundtrips performed by this client (the
    /// runner differences this around sequential ops for Table 2).
    fn rounds(&self) -> u64;

    /// This client's fabric endpoint (CPU + traffic accounting).
    fn endpoint(&self) -> Rc<Endpoint>;

    /// Client id (0-based).
    fn client_id(&self) -> usize;
}

/// Pipelined multi-key operations, blanket-implemented for every
/// [`KvStore`].
///
/// Each batch issues all of its per-key operations concurrently through the
/// client's intra-operation concurrency machinery (the §7.2 "1–8 ops in
/// flight" path), so a batch of N independent cached keys costs roughly one
/// quorum roundtrip — not N. Results come back in input order; each element
/// succeeds or fails independently.
pub trait KvStoreExt: KvStore {
    /// Reads many keys in one pipelined batch.
    fn multi_get<'a>(
        &'a self,
        keys: &[u64],
    ) -> impl Future<Output = Vec<KvResult<Option<Rc<Vec<u8>>>>>> + 'a {
        join_boxed(
            keys.iter()
                .map(|&k| Box::pin(self.get(k)) as BoxFuture<'a, _>)
                .collect(),
        )
    }

    /// Overwrites many keys in one pipelined batch. Values are cloned out
    /// of the borrowed slice, one heap copy per element.
    fn multi_update<'a>(
        &'a self,
        ops: &[(u64, Vec<u8>)],
    ) -> impl Future<Output = Vec<KvResult<()>>> + 'a {
        join_boxed(
            ops.iter()
                .map(|(k, v)| Box::pin(self.update(*k, v.clone())) as BoxFuture<'a, _>)
                .collect(),
        )
    }

    /// Inserts many keys in one pipelined batch.
    fn multi_insert<'a>(
        &'a self,
        ops: &[(u64, Vec<u8>)],
    ) -> impl Future<Output = Vec<KvResult<()>>> + 'a {
        join_boxed(
            ops.iter()
                .map(|(k, v)| Box::pin(self.insert(*k, v.clone())) as BoxFuture<'a, _>)
                .collect(),
        )
    }
}

impl<S: KvStore + ?Sized> KvStoreExt for S {}
