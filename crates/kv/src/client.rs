//! The key-value client: SWARM-KV, DM-ABD and RAW behind one type.
//!
//! A [`KvClient`] is one application thread. It resolves key locations
//! through its LFU cache or the index (§5.2), builds per-key register
//! handles over the cluster's In-n-Out replicas, and executes the §5.3
//! protocols. The [`Proto`] selects the replication machinery:
//!
//! * [`Proto::SafeGuess`] — SWARM-KV: Safe-Guess + timestamp locks.
//! * [`Proto::Abd`] — DM-ABD: classic ABD over the same substrate (run it on
//!   a cluster configured with `inplace = false, meta_bufs = 1`).
//! * [`Proto::Raw`] — RAW: unreplicated direct reads/writes, no concurrency
//!   control (the latency lower bound; "not useful in practice", §7).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use swarm_core::{
    Abd, HedgeConfig, Hedger, InnOutReplica, NodeHealth, ReadPath, ReliableMaxReg, Rounds,
    SafeGuess, TsGuesser, TsLock, TsLockSet, WritePath,
};
use swarm_fabric::Endpoint;
use swarm_sim::{join2, FifoResource, GuessClock, Nanos, SimRng};

use crate::cache::LfuCache;
use crate::cluster::{derive_label, Cluster, KeyInfo, ROLE_CACHE, ROLE_CLOCK};
use crate::index::InsertOutcome;
use crate::store::{with_deadline, KvError, KvResult, KvStore, KvStoreExt, ScanItems};

/// Replication protocol driven by a [`KvClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// SWARM-KV (Safe-Guess + In-n-Out).
    SafeGuess,
    /// DM-ABD baseline.
    Abd,
    /// RAW unreplicated baseline.
    Raw,
}

/// Capacity of the client-side location cache (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheCapacity {
    /// No eviction: every key location seen stays cached (the default).
    Unbounded,
    /// At most this many entries, with sampled-LFU eviction (Figure 6
    /// limits it to 5 MiB worth of entries).
    Entries(usize),
}

impl CacheCapacity {
    /// The entry bound handed to the LFU cache.
    pub(crate) fn entry_limit(self) -> usize {
        match self {
            // Large enough to never evict, small enough that arithmetic on
            // it cannot overflow.
            CacheCapacity::Unbounded => usize::MAX / 2,
            CacheCapacity::Entries(n) => n,
        }
    }
}

/// Per-key adaptive protocol routing knobs.
///
/// Off by default: with `enabled = false` no contention statistics are
/// tracked and every operation takes the pre-adaptive code path, so existing
/// executions replay bit-identically. When enabled (Safe-Guess clients
/// only), each cached key tracks a decaying guess-miss rate; a persistently
/// contended key's *writes* are routed to the verified two-phase path
/// ([`SafeGuess::write_verified`], ABD's write discipline over the same
/// register), which degrades gracefully under contention instead of paying
/// re-execution storms. Reads always stay full Safe-Guess reads, so the
/// mixed history remains linearizable no matter what other clients do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Master switch; `false` is bit-identical to the pre-adaptive code.
    pub enabled: bool,
    /// Miss-rate EWMA at or above which a key routes to verified writes;
    /// it routes back once the EWMA decays to half this.
    pub threshold: f64,
    /// Operations observed on a key before routing decisions are made.
    pub min_ops: u32,
    /// EWMA gain per observation.
    pub gain: f64,
}

impl AdaptiveConfig {
    /// Adaptive routing off — the default, bit-identical to pre-adaptive
    /// executions.
    pub fn disabled() -> Self {
        AdaptiveConfig {
            enabled: false,
            ..Self::on()
        }
    }

    /// Adaptive routing on with the default tuning.
    pub fn on() -> Self {
        AdaptiveConfig {
            enabled: true,
            threshold: 0.5,
            min_ops: 8,
            gain: 0.125,
        }
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Per-key contention statistics, piggybacked on the LFU cache entry (the
/// detector costs nothing for keys that fall out of the cache; rebuilt
/// handles restart cold, which a persistently hot key re-warms within
/// [`AdaptiveConfig::min_ops`] operations).
#[derive(Debug, Default)]
pub(crate) struct ContentionState {
    /// Decaying guess-miss rate (writes that re-executed or were linearized
    /// by a reader's lock; reads that left the fast path).
    miss_ewma: Cell<f64>,
    /// Operations observed through this handle.
    ops: Cell<u32>,
    /// Currently routed to verified (two-phase) writes.
    verified_mode: Cell<bool>,
}

/// Per-client knobs.
#[derive(Debug, Clone)]
pub struct KvClientConfig {
    /// Location-cache capacity.
    pub cache: CacheCapacity,
    /// Overall per-operation deadline. `None` (the default) lets an
    /// operation wait indefinitely — the replicated protocols are live as
    /// long as a majority is reachable, so under the paper's failure model
    /// no bound is needed. With a bound, an operation that cannot finish in
    /// time (e.g. its quorum is unreachable) returns
    /// [`crate::KvError::Timeout`] instead of blocking forever; its effect
    /// on the store is then *ambiguous* — in-flight messages may still
    /// land, exactly like a client crash mid-operation (§7.7).
    pub op_deadline_ns: Option<Nanos>,
    /// Tail-latency hedging (off by default; see [`HedgeConfig`]).
    pub hedge: HedgeConfig,
    /// Per-key adaptive protocol routing (off by default).
    pub adaptive: AdaptiveConfig,
}

impl Default for KvClientConfig {
    fn default() -> Self {
        KvClientConfig {
            cache: CacheCapacity::Unbounded,
            op_deadline_ns: None,
            hedge: HedgeConfig::disabled(),
            adaptive: AdaptiveConfig::disabled(),
        }
    }
}

type SgReg = SafeGuess<ReliableMaxReg<InnOutReplica>>;
type AbdReg = Abd<ReliableMaxReg<InnOutReplica>>;

enum HandleKind {
    Sg(SgReg),
    Abd(AbdReg),
    Raw {
        node: swarm_fabric::NodeId,
        addr: u64,
        len: usize,
    },
}

/// A cached per-key access handle (the 24–32 B location record of §5.2,
/// including In-n-Out's cached metadata word for SWARM-KV).
pub struct KeyHandle {
    kind: HandleKind,
    /// Allocation generation of the replicas behind this handle; index
    /// cleanups are conditioned on it so a stale handle can never unmap a
    /// re-inserted key's fresh mapping.
    generation: u64,
    /// Cluster repair mark at build time. A handle built before an
    /// anti-entropy pass rewrote this key's replicas may cache metadata
    /// (e.g. In-n-Out's cached word) older than the repaired state; the
    /// cache hit path drops such handles instead of serving them.
    repair_mark: u64,
    /// Adaptive-routing contention detector (see [`ContentionState`]).
    contention: ContentionState,
}

/// One client thread of a key-value store.
pub struct KvClient {
    cluster: Cluster,
    proto: Proto,
    client_id: usize,
    ep: Rc<Endpoint>,
    health: Rc<NodeHealth>,
    rounds: Rounds,
    guesser: Rc<TsGuesser>,
    cache: RefCell<LfuCache<Rc<KeyHandle>>>,
    /// Stream for this client's own draws (cache-eviction sampling); the
    /// clock draws from its own sibling stream.
    rng: SimRng,
    version: Cell<u64>,
    op_deadline_ns: Option<Nanos>,
    /// Tail-latency hedger shared by all of this client's registers;
    /// `None` (the default) is bit-identical to the pre-hedging code.
    hedger: Option<Hedger>,
    adaptive: AdaptiveConfig,
}

impl KvClient {
    /// Creates client `client_id` (must be `< cluster.config().max_clients`
    /// for replicated protocols) on a dedicated CPU core.
    pub fn new(cluster: &Cluster, proto: Proto, client_id: usize, cfg: KvClientConfig) -> Rc<Self> {
        Self::with_cpu(cluster, proto, client_id, cfg, None)
    }

    /// [`KvClient::new`], optionally sharing an existing CPU core. A
    /// cross-shard router passes the same core to its per-shard clients so
    /// that the set models *one* application thread, not one per shard.
    pub fn with_cpu(
        cluster: &Cluster,
        proto: Proto,
        client_id: usize,
        cfg: KvClientConfig,
        cpu: Option<FifoResource>,
    ) -> Rc<Self> {
        let cc = cluster.config();
        if proto != Proto::Raw {
            assert!(
                client_id < cc.max_clients,
                "client id beyond configured max_clients"
            );
        }
        let sim = cluster.sim().clone();
        let ep = Rc::new(match cpu {
            Some(cpu) => cluster.fabric().endpoint_with_cpu(cpu),
            None => cluster.fabric().endpoint(),
        });
        let health = NodeHealth::new(cc.nodes);
        cluster.membership().subscribe(Rc::clone(&health));
        // With a cluster rng label, the clock and the cache draw from
        // private per-client streams; otherwise from the shared one (the
        // historical, bit-compatible behavior).
        let fork = |role: u64| match cc.rng_label {
            Some(l) => sim.fork_rng(derive_label(l, role, client_id as u64)),
            None => SimRng::shared(&sim),
        };
        let clock = Rc::new(GuessClock::with_rng(
            &sim,
            fork(ROLE_CLOCK),
            cc.clock_skew_ns,
            cc.clock_drift_ppm,
            (cc.clock_skew_ns / 2).max(1),
        ));
        let guesser = Rc::new(TsGuesser::new(clock, client_id as u8));
        Rc::new(KvClient {
            cluster: cluster.clone(),
            proto,
            client_id,
            ep,
            health,
            rounds: Rounds::new(),
            guesser,
            cache: RefCell::new(LfuCache::new(cfg.cache.entry_limit())),
            rng: fork(ROLE_CACHE),
            version: Cell::new(0),
            op_deadline_ns: cfg.op_deadline_ns,
            hedger: Hedger::new(cfg.hedge, cc.nodes, Some(cluster.fabric().clone())),
            adaptive: cfg.adaptive,
        })
    }

    /// The protocol this client drives.
    pub fn proto(&self) -> Proto {
        self.proto
    }

    /// Cache hit/miss statistics.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.borrow().stats()
    }

    /// Entries currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    fn build_handle(&self, info: &Rc<KeyInfo>) -> Rc<KeyHandle> {
        let cc = self.cluster.config();
        let sim = self.cluster.sim();
        let kind = match self.proto {
            Proto::Raw => {
                let l = &info.layouts[0];
                HandleKind::Raw {
                    node: l.node,
                    addr: l.meta_addr + (l.meta_bufs * 8) as u64,
                    len: cc.value_size,
                }
            }
            Proto::SafeGuess | Proto::Abd => {
                let replicas: Vec<InnOutReplica> = info
                    .layouts
                    .iter()
                    .enumerate()
                    .map(|(i, l)| {
                        InnOutReplica::new(
                            Rc::clone(&self.ep),
                            l.clone(),
                            self.client_id,
                            cc.inplace && i == 0,
                            self.rounds.clone(),
                        )
                    })
                    .collect();
                let m = ReliableMaxReg::with_hedger(
                    sim,
                    replicas,
                    info.replica_nodes.iter().map(|n| n.0).collect(),
                    0,
                    Rc::clone(&self.health),
                    cc.quorum,
                    self.rounds.clone(),
                    self.hedger.clone(),
                );
                match self.proto {
                    Proto::Abd => HandleKind::Abd(Abd::new(m, self.client_id as u8)),
                    _ => {
                        // Lazy per-writer locks: a cache miss stores only
                        // this recipe; `TsLock`s materialize on the slow
                        // paths that actually touch them (building
                        // `max_clients` locks eagerly dominated miss cost
                        // at 64 clients).
                        let quorum = cc.quorum;
                        let sim = sim.clone();
                        let ep = Rc::clone(&self.ep);
                        let health = Rc::clone(&self.health);
                        let rounds = self.rounds.clone();
                        let info = Rc::clone(info);
                        let tsl = TsLockSet::new(cc.max_clients, move |w| {
                            let words: Vec<(swarm_fabric::NodeId, u64)> = info
                                .replica_nodes
                                .iter()
                                .zip(&info.tsl_base)
                                .map(|(&n, &base)| (n, base + 8 * w as u64))
                                .collect();
                            TsLock::new(
                                &sim,
                                Rc::clone(&ep),
                                words,
                                Rc::clone(&health),
                                quorum,
                                rounds.clone(),
                            )
                        });
                        HandleKind::Sg(SafeGuess::new(
                            m,
                            Rc::new(tsl),
                            Rc::clone(&self.guesser),
                            self.rounds.clone(),
                        ))
                    }
                }
            }
        };
        Rc::new(KeyHandle {
            kind,
            generation: info.generation,
            repair_mark: self.cluster.repair_mark(info.key),
            contention: ContentionState::default(),
        })
    }

    /// True when this client runs the contention detector (adaptive routing
    /// is meaningful only for Safe-Guess: ABD already pays the verified
    /// two-phase write, RAW has no concurrency control to adapt).
    fn adaptive_on(&self) -> bool {
        self.adaptive.enabled && self.proto == Proto::SafeGuess
    }

    /// Routing decision for one write: re-evaluates the key's mode from the
    /// decayed miss rate (hysteresis: enter at `threshold`, leave at half),
    /// then reports the mode.
    fn route_verified(&self, c: &ContentionState) -> bool {
        if !self.adaptive_on() {
            return false;
        }
        if c.ops.get() >= self.adaptive.min_ops {
            if c.miss_ewma.get() >= self.adaptive.threshold {
                c.verified_mode.set(true);
            } else if c.miss_ewma.get() <= self.adaptive.threshold / 2.0 {
                c.verified_mode.set(false);
            }
        }
        c.verified_mode.get()
    }

    /// Feeds one guess outcome (`miss = true`: the op left the fast path)
    /// into the key's contention EWMA.
    fn feed_signal(&self, c: &ContentionState, miss: bool) {
        if !self.adaptive_on() {
            return;
        }
        c.ops.set(c.ops.get().saturating_add(1));
        let e = c.miss_ewma.get();
        c.miss_ewma
            .set(e + self.adaptive.gain * ((miss as u8) as f64 - e));
    }

    /// A verified-mode write carries no guess outcome; decay the EWMA toward
    /// zero instead so the router periodically re-probes the fast path after
    /// contention subsides.
    fn decay_signal(&self, c: &ContentionState) {
        if !self.adaptive_on() {
            return;
        }
        c.ops.set(c.ops.get().saturating_add(1));
        c.miss_ewma
            .set(c.miss_ewma.get() * (1.0 - self.adaptive.gain));
    }

    /// Resolves the handle for `key`: cache hit is free; a miss costs one
    /// index roundtrip (§7.1). `force_index` bypasses the cache (used after
    /// observing a tombstone through possibly-stale cached replicas,
    /// §5.3.3).
    async fn handle_for(&self, key: u64, force_index: bool) -> Option<Rc<KeyHandle>> {
        if !force_index {
            let mark = self.cluster.repair_mark(key);
            let mut cache = self.cache.borrow_mut();
            if let Some(h) = cache.get(key) {
                if h.repair_mark == mark {
                    return Some(Rc::clone(h));
                }
                // Repair rewrote this key's replicas after the handle was
                // built: its cached metadata may predate the repaired
                // state, so drop it and re-resolve through the index.
                cache.remove(key);
            }
        }
        self.rounds.bump();
        let info = self.cluster.index().get(key).await?;
        let h = self.build_handle(&info);
        self.cache
            .borrow_mut()
            .insert(&self.rng, key, Rc::clone(&h));
        Some(h)
    }

    fn uncache(&self, key: u64) {
        self.cache.borrow_mut().remove(key);
    }

    /// Writes through a handle. `Err(Deleted)` if a tombstone rejected the
    /// write; `Err(Timeout)` if the unreplicated RAW node stopped answering.
    /// The payload arrives `Rc`-shared: retries and replica fan-out bump a
    /// refcount instead of deep-copying the value.
    async fn write_via(&self, h: &KeyHandle, value: Rc<Vec<u8>>) -> KvResult<()> {
        match &h.kind {
            HandleKind::Raw { node, addr, .. } => {
                self.rounds.bump();
                self.ep
                    .write(*node, *addr, value)
                    .await
                    .ok_or(KvError::Timeout)
            }
            HandleKind::Sg(reg) => {
                let path = if self.route_verified(&h.contention) {
                    let path = reg.write_verified(value).await;
                    self.decay_signal(&h.contention);
                    path
                } else {
                    let path = reg.write(value).await;
                    if path != WritePath::Deleted {
                        self.feed_signal(&h.contention, path != WritePath::Fast);
                    }
                    path
                };
                match path {
                    WritePath::Deleted => Err(KvError::Deleted),
                    _ => Ok(()),
                }
            }
            HandleKind::Abd(reg) => {
                if reg.write(value).await {
                    Ok(())
                } else {
                    Err(KvError::Deleted)
                }
            }
        }
    }

    async fn read_via(&self, h: &KeyHandle) -> KvResult<ReadResult> {
        match &h.kind {
            HandleKind::Raw { node, addr, len } => {
                self.rounds.bump();
                match self.ep.read(*node, *addr, *len).await {
                    Some(bytes) => Ok(ReadResult::Value(Rc::new(bytes))),
                    None => Err(KvError::Timeout),
                }
            }
            HandleKind::Sg(reg) => {
                let out = reg.read().await;
                self.feed_signal(
                    &h.contention,
                    out.path != ReadPath::FastVerified || out.iterations > 1,
                );
                Ok(if out.value.is_tombstone() {
                    ReadResult::Deleted
                } else if out.value.is_initial() {
                    ReadResult::Missing
                } else {
                    ReadResult::Value(out.value.value)
                })
            }
            HandleKind::Abd(reg) => {
                let v = reg.read().await;
                Ok(if v.is_tombstone() {
                    ReadResult::Deleted
                } else if v.is_initial() {
                    ReadResult::Missing
                } else {
                    ReadResult::Value(v.value)
                })
            }
        }
    }

    /// Monotonic per-client version counter (value payload generator).
    pub fn next_version(&self) -> u64 {
        let v = self.version.get() + 1;
        self.version.set(v);
        v
    }
}

enum ReadResult {
    Value(Rc<Vec<u8>>),
    Deleted,
    Missing,
}

impl KvClient {
    /// `get` (§5.3.4): locate replicas (cache or index), SWARM read. A
    /// tombstone through a cached handle flushes the cache and retries once
    /// through the index (the key may have been re-inserted elsewhere).
    async fn get_inner(&self, key: u64) -> KvResult<Option<Rc<Vec<u8>>>> {
        for attempt in 0..2 {
            let Some(h) = self.handle_for(key, attempt > 0).await else {
                return Ok(None);
            };
            match self.read_via(&h).await? {
                ReadResult::Value(v) => return Ok(Some(v)),
                ReadResult::Missing => return Ok(None),
                ReadResult::Deleted => {
                    self.uncache(key);
                    if attempt > 0 {
                        return Ok(None);
                    }
                }
            }
        }
        Ok(None)
    }

    /// `update` (§5.3.3): SWARM write to the located replicas; a write
    /// rejected by a tombstone flushes the cache, cleans the index mapping
    /// and retries once.
    async fn update_inner(&self, key: u64, value: Rc<Vec<u8>>) -> KvResult<()> {
        for attempt in 0..2 {
            let Some(h) = self.handle_for(key, attempt > 0).await else {
                return Err(KvError::NotIndexed);
            };
            match self.write_via(&h, value.clone()).await {
                Ok(()) => return Ok(()),
                Err(KvError::Deleted) => {
                    self.uncache(key);
                    if attempt > 0 {
                        // Still tombstoned through fresh state: clean up the
                        // stale mapping in the background (the deleter may
                        // have failed) — but only the generation we saw
                        // tombstoned, never a re-inserter's fresh mapping.
                        let index = self.cluster.index().clone();
                        let generation = h.generation;
                        self.cluster.sim().spawn(async move {
                            index
                                .remove_if(key, |cur| cur.generation == generation)
                                .await;
                        });
                        return Err(KvError::Deleted);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("second attempt returns")
    }

    /// `insert` (§5.3.1): allocate fresh replicas from the client's pool and
    /// replicate the value *in parallel* with the index insertion — one
    /// roundtrip in the common case. If a live mapping exists, the insert
    /// turns into an update on the existing replicas.
    async fn insert_inner(&self, key: u64, value: Rc<Vec<u8>>) -> KvResult<()> {
        // Fast path: known key -> plain update.
        if self.cache.borrow_mut().get(key).is_some()
            && self.update_inner(key, value.clone()).await.is_ok()
        {
            return Ok(());
        }
        let info = self.cluster.alloc_key(key);
        let h = self.build_handle(&info);
        let index = self.cluster.index().clone();
        let ins = index.try_insert(key, Rc::clone(&info));
        let write = self.write_via(&h, value.clone());
        let ((outcome, existing), _wrote) = join2(ins, write).await;
        match outcome {
            InsertOutcome::Inserted => {
                self.cache.borrow_mut().insert(&self.rng, key, h);
                Ok(())
            }
            InsertOutcome::Full => Err(KvError::IndexFull),
            InsertOutcome::Exists => {
                // Someone holds a mapping: write through it instead (our
                // fresh buffers stay unindexed and are recycled).
                let existing = existing.expect("Exists implies a mapping");
                let h2 = self.build_handle(&existing);
                match self.write_via(&h2, value.clone()).await {
                    Ok(()) => {
                        self.cache.borrow_mut().insert(&self.rng, key, h2);
                        Ok(())
                    }
                    Err(KvError::Deleted) => {
                        // The existing mapping is tombstoned: overwrite it
                        // with our fresh replicas (§5.3.1 "a mapping to
                        // replicas marked for deletion is overwritten").
                        self.rounds.bump();
                        index.set(key, Rc::clone(&info)).await;
                        self.cache.borrow_mut().insert(&self.rng, key, h);
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }

    /// `delete` (§5.3.2): a SWARM write of the maximum timestamp, then an
    /// asynchronous index unmap.
    async fn delete_inner(&self, key: u64) -> KvResult<()> {
        // Deletes resolve through the *index*, never the location cache: a
        // stale cached handle would tombstone a superseded replica
        // generation while the unmap below removed the current one —
        // leaving live, never-tombstoned replicas unreachable through the
        // index but writable through other clients' caches (an anomaly the
        // chaos suite caught at seed 3299909641).
        self.rounds.bump();
        let Some(info) = self.cluster.index().get(key).await else {
            self.uncache(key);
            return Err(KvError::NotFound);
        };
        let h = self.build_handle(&info);
        match &h.kind {
            HandleKind::Raw { .. } => {
                self.rounds.bump();
            }
            HandleKind::Sg(reg) => reg.write_tombstone().await,
            HandleKind::Abd(reg) => reg.write_tombstone().await,
        }
        self.uncache(key);
        // Unmap exactly the generation that was tombstoned; a concurrent
        // re-insert's fresh mapping must survive this delete.
        let index = self.cluster.index().clone();
        let generation = info.generation;
        self.cluster.sim().spawn(async move {
            index
                .remove_if(key, |cur| cur.generation == generation)
                .await;
        });
        Ok(())
    }
}

impl KvStore for KvClient {
    /// `get` (§5.3.4), bounded by the configured per-op deadline.
    async fn get(&self, key: u64) -> KvResult<Option<Rc<Vec<u8>>>> {
        with_deadline(self.cluster.sim(), self.op_deadline_ns, self.get_inner(key)).await
    }

    /// `update` (§5.3.3), bounded by the configured per-op deadline.
    async fn update(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        with_deadline(
            self.cluster.sim(),
            self.op_deadline_ns,
            self.update_inner(key, Rc::new(value)),
        )
        .await
    }

    /// `insert` (§5.3.1), bounded by the configured per-op deadline.
    async fn insert(&self, key: u64, value: Vec<u8>) -> KvResult<()> {
        with_deadline(
            self.cluster.sim(),
            self.op_deadline_ns,
            self.insert_inner(key, Rc::new(value)),
        )
        .await
    }

    /// `delete` (§5.3.2), bounded by the configured per-op deadline.
    async fn delete(&self, key: u64) -> KvResult<()> {
        with_deadline(
            self.cluster.sim(),
            self.op_deadline_ns,
            self.delete_inner(key),
        )
        .await
    }

    /// Ordered range read: one index roundtrip enumerates up to `limit`
    /// live keys `>= start`, then their values are fetched as one pipelined
    /// [`KvStoreExt::multi_get`] batch (so N cached keys cost roughly one
    /// quorum roundtrip, not N). Keys that vanish or fault mid-scan are
    /// dropped — a scan is best-effort per key, not a snapshot.
    async fn scan(&self, start: u64, limit: usize) -> KvResult<ScanItems> {
        with_deadline(self.cluster.sim(), self.op_deadline_ns, async move {
            self.rounds.bump();
            let keys = self.cluster.index().range_keys(start, limit).await;
            let values = self.multi_get(&keys).await;
            Ok(keys
                .into_iter()
                .zip(values)
                .filter_map(|(k, v)| match v {
                    Ok(Some(v)) => Some((k, v)),
                    _ => None,
                })
                .collect())
        })
        .await
    }

    fn rounds(&self) -> u64 {
        self.rounds.get()
    }

    fn endpoint(&self) -> Rc<Endpoint> {
        Rc::clone(&self.ep)
    }

    fn client_id(&self) -> usize {
        self.client_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use swarm_sim::Sim;

    /// Satellite bugfix pin: a cached [`KeyHandle`] built before a repair
    /// pass must not be served after one — its cached metadata could be
    /// older than what repair replicated. The cache hit path version-checks
    /// the cluster repair mark and rebuilds the handle on mismatch.
    #[test]
    fn repair_invalidates_cached_handles() {
        let sim = Sim::new(11);
        let cluster = Cluster::new(&sim, ClusterConfig::default());
        cluster.load_keys(4, |k| vec![k as u8; 64]);
        let client = KvClient::new(&cluster, Proto::SafeGuess, 0, KvClientConfig::default());
        sim.block_on(async move {
            let h1 = client.handle_for(3, false).await.expect("key 3 loaded");
            let h2 = client.handle_for(3, false).await.expect("key 3 cached");
            assert!(Rc::ptr_eq(&h1, &h2), "cache hit returns the same handle");

            // Anti-entropy rewrites key 3's replicas: the next resolve must
            // rebuild the handle instead of serving the stale one.
            client.cluster.note_repaired(3);
            let h3 = client.handle_for(3, false).await.expect("key 3 indexed");
            assert!(
                !Rc::ptr_eq(&h2, &h3),
                "a handle built before repair must not survive one"
            );

            // The rebuilt handle carries the new mark and is cached again.
            let h4 = client.handle_for(3, false).await.expect("key 3 cached");
            assert!(Rc::ptr_eq(&h3, &h4), "post-repair handle caches normally");

            // Other keys' handles are untouched by key 3's repair.
            let o1 = client.handle_for(1, false).await.expect("key 1 loaded");
            client.cluster.note_repaired(3);
            let h5 = client.handle_for(3, false).await.expect("key 3 indexed");
            assert!(!Rc::ptr_eq(&h4, &h5), "every repair bumps the mark");
            let o2 = client.handle_for(1, false).await.expect("key 1 cached");
            assert!(Rc::ptr_eq(&o1, &o2), "unrepaired keys keep their handle");
        });
    }

    #[test]
    fn adaptive_router_needs_sustained_misses_and_decays_back() {
        let sim = Sim::new(21);
        let cluster = Cluster::new(&sim, ClusterConfig::default());
        cluster.load_keys(2, |k| vec![k as u8; 64]);
        let cfg = KvClientConfig {
            adaptive: AdaptiveConfig::on(),
            ..Default::default()
        };
        let client = KvClient::new(&cluster, Proto::SafeGuess, 0, cfg);
        sim.block_on(async move {
            let h = client.handle_for(1, false).await.expect("key 1 loaded");
            assert!(!client.route_verified(&h.contention), "cold key stays fast");
            // Sustained misses push the EWMA over the threshold…
            for _ in 0..32 {
                client.feed_signal(&h.contention, true);
            }
            assert!(
                client.route_verified(&h.contention),
                "contended key routes to verified writes"
            );
            // …and verified-mode decay re-probes the fast path once
            // contention subsides.
            for _ in 0..64 {
                client.decay_signal(&h.contention);
            }
            assert!(
                !client.route_verified(&h.contention),
                "cooled key routes back"
            );
        });
    }

    #[test]
    fn verified_routed_writes_still_read_back() {
        let sim = Sim::new(22);
        let cluster = Cluster::new(&sim, ClusterConfig::default());
        cluster.load_keys(2, |k| vec![k as u8; 64]);
        let cfg = KvClientConfig {
            adaptive: AdaptiveConfig::on(),
            ..Default::default()
        };
        let client = KvClient::new(&cluster, Proto::SafeGuess, 0, cfg);
        sim.block_on(async move {
            let h = client.handle_for(1, false).await.expect("key 1 loaded");
            for _ in 0..32 {
                client.feed_signal(&h.contention, true);
            }
            client.update(1, vec![9u8; 64]).await.expect("update ok");
            assert!(
                h.contention.verified_mode.get(),
                "the update should have flipped the key to verified mode"
            );
            let v = client.get(1).await.expect("get ok").expect("key present");
            assert_eq!(*v, vec![9u8; 64]);
        });
    }

    #[test]
    fn adaptive_disabled_tracks_nothing() {
        let sim = Sim::new(23);
        let cluster = Cluster::new(&sim, ClusterConfig::default());
        cluster.load_keys(2, |k| vec![k as u8; 64]);
        let client = KvClient::new(&cluster, Proto::SafeGuess, 0, KvClientConfig::default());
        sim.block_on(async move {
            let h = client.handle_for(1, false).await.expect("key 1 loaded");
            client.update(1, vec![5u8; 64]).await.expect("update ok");
            client.get(1).await.expect("get ok");
            assert_eq!(h.contention.ops.get(), 0, "detector must stay untouched");
            assert!(!client.route_verified(&h.contention));
        });
    }
}
