//! Lease-based membership service (the uKharon substitute, §5.4).
//!
//! The paper uses uKharon to monitor client/node health so that freed memory
//! is never accessed by stale clients and crashed memory nodes are excluded.
//! We model the part SWARM-KV depends on: nodes hold leases; a crashed
//! node's lease expires after a configurable detection delay, at which point
//! the service notifies subscribed clients (their
//! [`swarm_core::NodeHealth`] marks the node suspected).
//!
//! The watcher is armed explicitly for a bounded virtual-time horizon
//! ([`Membership::watch_until`]) so simulations terminate deterministically.

use std::cell::RefCell;
use std::rc::Rc;

use swarm_core::NodeHealth;
use swarm_fabric::{Fabric, NodeId};
use swarm_sim::{Nanos, Sim, NANOS_PER_MILLI};

struct Inner {
    fabric: Fabric,
    detection_ns: Nanos,
    subscribers: RefCell<Vec<Rc<NodeHealth>>>,
    dead: RefCell<Vec<bool>>,
}

/// The membership service handle.
#[derive(Clone)]
pub struct Membership {
    sim: Sim,
    inner: Rc<Inner>,
}

impl Membership {
    /// Creates a membership service watching `fabric`'s nodes with the given
    /// failure-detection delay (uKharon detects in ~50 µs; coarser lease
    /// services take milliseconds). The watcher is idle until
    /// [`Membership::watch_until`] arms it.
    pub fn new(sim: &Sim, fabric: &Fabric, detection_ns: Nanos) -> Self {
        Membership {
            sim: sim.clone(),
            inner: Rc::new(Inner {
                fabric: fabric.clone(),
                detection_ns,
                subscribers: RefCell::new(Vec::new()),
                dead: RefCell::new(vec![false; fabric.num_nodes()]),
            }),
        }
    }

    /// Default: 1 ms detection (a conservative lease).
    pub fn with_default_detection(sim: &Sim, fabric: &Fabric) -> Self {
        Self::new(sim, fabric, NANOS_PER_MILLI)
    }

    /// Arms lease monitoring until virtual time `deadline`.
    pub fn watch_until(&self, deadline: Nanos) {
        let inner = Rc::clone(&self.inner);
        let sim = self.sim.clone();
        let period = self.inner.detection_ns.max(1);
        self.sim.spawn(async move {
            while sim.now() + period <= deadline {
                sim.sleep_ns(period).await;
                Self::poll(&inner);
            }
        });
    }

    fn poll(inner: &Inner) {
        for i in 0..inner.fabric.num_nodes() {
            let alive = inner.fabric.node(NodeId(i)).is_alive();
            let mut dead = inner.dead.borrow_mut();
            if !alive && !dead[i] {
                dead[i] = true;
                for sub in inner.subscribers.borrow().iter() {
                    sub.suspect(i);
                }
            } else if alive && dead[i] {
                dead[i] = false;
                for sub in inner.subscribers.borrow().iter() {
                    sub.clear(i);
                }
            }
        }
    }

    /// Subscribes a client's health view to membership notifications.
    pub fn subscribe(&self, health: Rc<NodeHealth>) {
        self.inner.subscribers.borrow_mut().push(health);
    }

    /// True once the service has declared node `i` failed.
    pub fn is_declared_dead(&self, i: usize) -> bool {
        self.inner.dead.borrow()[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_fabric::FabricConfig;

    #[test]
    fn crash_is_detected_within_the_lease() {
        let sim = Sim::new(1);
        let fabric = Fabric::new(&sim, FabricConfig::default(), 3);
        let m = Membership::new(&sim, &fabric, 100_000); // 100 µs lease
        m.watch_until(500_000);
        let health = NodeHealth::new(3);
        m.subscribe(Rc::clone(&health));
        let f2 = fabric.clone();
        sim.schedule_after(50_000, move |_| f2.crash_node(NodeId(1)));
        sim.run();
        assert!(m.is_declared_dead(1));
        assert!(health.is_suspected(1));
        assert!(!health.is_suspected(0));
    }

    #[test]
    fn recovery_clears_suspicion() {
        let sim = Sim::new(2);
        let fabric = Fabric::new(&sim, FabricConfig::default(), 2);
        let m = Membership::new(&sim, &fabric, 50_000);
        m.watch_until(600_000);
        let health = NodeHealth::new(2);
        m.subscribe(Rc::clone(&health));
        let f2 = fabric.clone();
        sim.schedule_after(10_000, move |_| f2.crash_node(NodeId(0)));
        let f3 = fabric.clone();
        sim.schedule_after(200_000, move |_| f3.node(NodeId(0)).restart());
        sim.run();
        assert!(!m.is_declared_dead(0));
        assert!(!health.is_suspected(0));
    }

    #[test]
    fn unarmed_watcher_does_not_block_simulation() {
        let sim = Sim::new(3);
        let fabric = Fabric::new(&sim, FabricConfig::default(), 2);
        let _m = Membership::with_default_detection(&sim, &fabric);
        let end = sim.run();
        assert_eq!(end, 0, "idle membership scheduled events");
    }

    #[test]
    fn crash_exactly_at_lease_expiry_is_detected_within_one_period() {
        // The edge: the node dies at the very instant a lease poll fires.
        // Whether that poll or the next one observes it, detection must
        // complete within one further period, not be lost.
        let sim = Sim::new(4);
        let fabric = Fabric::new(&sim, FabricConfig::default(), 2);
        let lease = 100_000;
        let m = Membership::new(&sim, &fabric, lease);
        m.watch_until(10 * lease);
        let f2 = fabric.clone();
        sim.schedule_at(lease, move |_| f2.crash_node(NodeId(0)));
        sim.run_until(2 * lease);
        assert!(
            m.is_declared_dead(0),
            "crash at the expiry instant must be detected by the next poll"
        );
    }

    #[test]
    fn crash_after_watch_horizon_goes_undetected() {
        // The watcher is armed for a bounded horizon (deterministic
        // termination): a crash after the horizon is nobody's business.
        let sim = Sim::new(5);
        let fabric = Fabric::new(&sim, FabricConfig::default(), 2);
        let m = Membership::new(&sim, &fabric, 50_000);
        m.watch_until(200_000);
        let health = NodeHealth::new(2);
        m.subscribe(Rc::clone(&health));
        let f2 = fabric.clone();
        sim.schedule_at(300_000, move |_| f2.crash_node(NodeId(1)));
        sim.run();
        assert!(!fabric.node(NodeId(1)).is_alive());
        assert!(!m.is_declared_dead(1), "watcher horizon expired");
        assert!(!health.is_suspected(1));
    }

    #[test]
    fn double_crash_of_the_same_node_resuspects_after_recovery() {
        let sim = Sim::new(6);
        let fabric = Fabric::new(&sim, FabricConfig::default(), 2);
        let m = Membership::new(&sim, &fabric, 50_000);
        m.watch_until(1_000_000);
        let health = NodeHealth::new(2);
        m.subscribe(Rc::clone(&health));
        for (at, alive) in [(60_000, false), (300_000, true), (600_000, false)] {
            let f = fabric.clone();
            sim.schedule_at(at, move |_| {
                if alive {
                    f.restart_node(NodeId(0));
                } else {
                    f.crash_node(NodeId(0));
                }
            });
        }
        sim.run_until(250_000);
        assert!(m.is_declared_dead(0), "first crash detected");
        sim.run_until(550_000);
        assert!(!m.is_declared_dead(0), "restart clears the declaration");
        assert!(!health.is_suspected(0));
        sim.run_until(1_000_000);
        assert!(m.is_declared_dead(0), "second crash re-detected");
        assert!(health.is_suspected(0));
    }

    #[test]
    fn crashing_an_already_crashed_node_is_idempotent() {
        let sim = Sim::new(7);
        let fabric = Fabric::new(&sim, FabricConfig::default(), 2);
        let m = Membership::new(&sim, &fabric, 50_000);
        m.watch_until(400_000);
        let f2 = fabric.clone();
        sim.schedule_at(10_000, move |_| f2.crash_node(NodeId(1)));
        let f3 = fabric.clone();
        sim.schedule_at(20_000, move |_| f3.crash_node(NodeId(1)));
        sim.run();
        assert!(m.is_declared_dead(1));
    }
}
