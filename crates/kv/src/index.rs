//! The reliable index service (§5.2).
//!
//! SWARM-KV "is oblivious to the choice of index, as long as it is reliable
//! and allows clients to set and get the replicas associated to a key in a
//! single roundtrip in the common case". The paper uses FUSEE's index
//! modified for strong consistency; we model it as a fault-tolerant keyed
//! service running on traditional servers: every operation costs one
//! roundtrip of the same wire model as the fabric plus a small service time,
//! serialized through the index server's CPU.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use swarm_sim::{oneshot, FifoResource, Jitter, Nanos, Sim, SimRng};

/// Outcome of [`Index::try_insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The mapping was created.
    Inserted,
    /// A live mapping already exists (caller should fall back to update,
    /// §5.3.1).
    Exists,
    /// The index is at capacity and refused the new mapping.
    Full,
}

struct Inner<L> {
    sim: Sim,
    rng: SimRng,
    map: RefCell<HashMap<u64, L>>,
    capacity: Option<usize>,
    cpu: FifoResource,
    wire: Jitter,
    service_ns: Nanos,
    ops: Cell<u64>,
    bytes: Cell<u64>,
}

/// A strongly consistent, always-available index mapping keys to replica
/// locations `L`.
pub struct Index<L> {
    inner: Rc<Inner<L>>,
}

impl<L> Clone for Index<L> {
    fn clone(&self) -> Self {
        Index {
            inner: Rc::clone(&self.inner),
        }
    }
}

/// Modeled wire size of one index request+response (key + location record).
pub const INDEX_MSG_BYTES: u64 = 24 + 24 + 60;

impl<L: Clone + 'static> Index<L> {
    /// Creates an index with the default latency model (one fabric-like
    /// roundtrip per operation) and no capacity bound.
    pub fn new(sim: &Sim) -> Self {
        Self::with_capacity(sim, None)
    }

    /// Creates an index that [`Index::try_insert`] caps at `capacity` live
    /// mappings (`None` = unbounded). Control-plane [`Index::load`] ignores
    /// the cap: bulk loading models a pre-provisioned keyspace.
    pub fn with_capacity(sim: &Sim, capacity: Option<usize>) -> Self {
        Self::with_capacity_rng(sim, capacity, SimRng::shared(sim))
    }

    /// [`Index::with_capacity`] with an explicit latency-jitter stream: a
    /// sharded cluster gives each shard's index a private fork so its
    /// draws cannot perturb other shards (see `Sim::fork_rng`).
    pub fn with_capacity_rng(sim: &Sim, capacity: Option<usize>, rng: SimRng) -> Self {
        Index {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                rng,
                map: RefCell::new(HashMap::new()),
                capacity,
                cpu: FifoResource::new(sim),
                wire: Jitter::fabric(640.0),
                service_ns: 150,
                ops: Cell::new(0),
                bytes: Cell::new(0),
            }),
        }
    }

    /// True if a *new* mapping would exceed the configured capacity.
    pub fn at_capacity(&self) -> bool {
        self.inner
            .capacity
            .is_some_and(|cap| self.inner.map.borrow().len() >= cap)
    }

    async fn roundtrip(&self) {
        let inner = &self.inner;
        inner.ops.set(inner.ops.get() + 1);
        inner.bytes.set(inner.bytes.get() + INDEX_MSG_BYTES);
        let out = inner.wire.sample_rng(&inner.rng);
        let (tx, rx) = oneshot::<()>();
        let this = Rc::clone(inner);
        let sim = inner.sim.clone();
        sim.clone().schedule_after(out, move |s| {
            // Server-side service, then the reply flies back.
            let (_, done) = this.cpu.reserve(this.service_ns);
            let back = this.wire.sample_rng(&this.rng);
            s.schedule_at(done + back, move |_| tx.send(()));
        });
        rx.await;
    }

    /// Looks up a key (1 RTT).
    pub async fn get(&self, key: u64) -> Option<L> {
        self.roundtrip().await;
        self.inner.map.borrow().get(&key).cloned()
    }

    /// Inserts a mapping unless one exists (1 RTT). On `Exists`, the caller
    /// receives the existing mapping via [`Index::get`]'s cache-equivalent
    /// return. On `Full` the mapping count is at the configured capacity and
    /// nothing was inserted.
    pub async fn try_insert(&self, key: u64, loc: L) -> (InsertOutcome, Option<L>) {
        self.roundtrip().await;
        let mut map = self.inner.map.borrow_mut();
        match map.get(&key) {
            Some(existing) => (InsertOutcome::Exists, Some(existing.clone())),
            None if self.inner.capacity.is_some_and(|cap| map.len() >= cap) => {
                (InsertOutcome::Full, None)
            }
            None => {
                map.insert(key, loc);
                (InsertOutcome::Inserted, None)
            }
        }
    }

    /// Overwrites a mapping unconditionally (1 RTT).
    pub async fn set(&self, key: u64, loc: L) {
        self.roundtrip().await;
        self.inner.map.borrow_mut().insert(key, loc);
    }

    /// Like [`Index::set`], but refuses a *new* mapping when the index is at
    /// capacity (1 RTT). The capacity check happens atomically with the
    /// insertion — after the roundtrip — so concurrent inserts cannot race
    /// past the cap. Returns whether the mapping was stored.
    pub async fn set_within_capacity(&self, key: u64, loc: L) -> bool {
        self.roundtrip().await;
        let mut map = self.inner.map.borrow_mut();
        if !map.contains_key(&key) && self.inner.capacity.is_some_and(|cap| map.len() >= cap) {
            return false;
        }
        map.insert(key, loc);
        true
    }

    /// Removes a mapping (1 RTT).
    pub async fn remove(&self, key: u64) {
        self.roundtrip().await;
        self.inner.map.borrow_mut().remove(&key);
    }

    /// Removes a mapping only if `pred` accepts the current one (1 RTT,
    /// check atomic with the removal). A deleter uses this to unmap exactly
    /// the generation it tombstoned: unconditional removal would let a
    /// delete racing a re-insert unmap the re-inserter's *fresh* — never
    /// tombstoned — replicas. Returns whether a mapping was removed.
    pub async fn remove_if(&self, key: u64, pred: impl FnOnce(&L) -> bool) -> bool {
        self.roundtrip().await;
        let mut map = self.inner.map.borrow_mut();
        if map.get(&key).is_some_and(pred) {
            map.remove(&key);
            true
        } else {
            false
        }
    }

    /// Ordered range lookup: up to `limit` live keys `>= start`, ascending,
    /// in one roundtrip (1 RTT). This is the index-side half of a scan
    /// (YCSB E): the index server walks its mapping in key order and
    /// returns the matching keys; the client then fetches the values
    /// through its normal read path. Each returned key adds its wire cost
    /// to the traffic counters on top of the base request size.
    pub async fn range_keys(&self, start: u64, limit: usize) -> Vec<u64> {
        self.roundtrip().await;
        let mut keys: Vec<u64> = self
            .inner
            .map
            .borrow()
            .keys()
            .copied()
            .filter(|&k| k >= start)
            .collect();
        keys.sort_unstable();
        keys.truncate(limit);
        // 8 bytes per returned key on the reply wire.
        self.inner
            .bytes
            .set(self.inner.bytes.get() + 8 * keys.len() as u64);
        keys
    }

    /// Control-plane bulk insert: no network cost (used by experiment
    /// loaders, which the paper does not measure).
    pub fn load(&self, key: u64, loc: L) {
        self.inner.map.borrow_mut().insert(key, loc);
    }

    /// Control-plane lookup without network cost (tests / recycling scans).
    pub fn peek(&self, key: u64) -> Option<L> {
        self.inner.map.borrow().get(&key).cloned()
    }

    /// Control-plane enumeration of the live keys, ascending (no network
    /// cost). The migration copy driver walks a shard's keyspace with it;
    /// sorting makes the walk order independent of hash-map internals, so
    /// a migration replays bit-identically.
    pub fn keys_sorted(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.inner.map.borrow().keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.inner.map.borrow().len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(operations served, bytes transferred)`.
    pub fn traffic(&self) -> (u64, u64) {
        (self.inner.ops.get(), self.inner.bytes.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_remove_roundtrip() {
        let sim = Sim::new(1);
        let idx: Index<u32> = Index::new(&sim);
        let i2 = idx.clone();
        sim.block_on(async move {
            assert_eq!(i2.get(5).await, None);
            i2.set(5, 99).await;
            assert_eq!(i2.get(5).await, Some(99));
            i2.remove(5).await;
            assert_eq!(i2.get(5).await, None);
        });
        assert_eq!(idx.traffic().0, 5);
    }

    #[test]
    fn lookup_costs_one_roundtrip() {
        let sim = Sim::new(2);
        let idx: Index<u32> = Index::new(&sim);
        let s = sim.clone();
        let rtt = sim.block_on(async move {
            let t0 = s.now();
            idx.get(1).await;
            s.now() - t0
        });
        assert!((1_000..3_000).contains(&rtt), "index RTT {rtt}");
    }

    #[test]
    fn try_insert_detects_existing() {
        let sim = Sim::new(3);
        let idx: Index<u32> = Index::new(&sim);
        sim.block_on(async move {
            let (o1, _) = idx.try_insert(7, 1).await;
            assert_eq!(o1, InsertOutcome::Inserted);
            let (o2, existing) = idx.try_insert(7, 2).await;
            assert_eq!(o2, InsertOutcome::Exists);
            assert_eq!(existing, Some(1));
            assert_eq!(idx.get(7).await, Some(1));
        });
    }

    #[test]
    fn capacity_bounds_try_insert_but_not_load() {
        let sim = Sim::new(5);
        let idx: Index<u32> = Index::with_capacity(&sim, Some(2));
        sim.block_on({
            let idx = idx.clone();
            async move {
                assert_eq!(idx.try_insert(1, 1).await.0, InsertOutcome::Inserted);
                assert_eq!(idx.try_insert(2, 2).await.0, InsertOutcome::Inserted);
                assert_eq!(idx.try_insert(3, 3).await.0, InsertOutcome::Full);
                // Existing keys are still found, not rejected.
                assert_eq!(idx.try_insert(1, 9).await.0, InsertOutcome::Exists);
                // Removal frees a slot.
                idx.remove(1).await;
                assert_eq!(idx.try_insert(3, 3).await.0, InsertOutcome::Inserted);
            }
        });
        assert!(idx.at_capacity());
        // Control-plane loading is exempt (pre-provisioned keyspace).
        idx.load(99, 0);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn load_and_peek_are_free() {
        let sim = Sim::new(4);
        let idx: Index<u32> = Index::new(&sim);
        idx.load(1, 10);
        assert_eq!(idx.peek(1), Some(10));
        assert_eq!(idx.traffic(), (0, 0));
        assert_eq!(idx.len(), 1);
    }
}
