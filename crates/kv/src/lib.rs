//! SWARM-KV (§5): a low-latency, strongly consistent, highly available
//! disaggregated key-value store — plus the paper's three baselines.
//!
//! * [`KvClient`] with [`Proto::SafeGuess`] is **SWARM-KV**: clients access
//!   key-value pairs replicated over memory nodes directly, with
//!   single-roundtrip `insert`/`update`/`get`/`delete` in the common case.
//! * [`Proto::Abd`] is **DM-ABD**: the same substrate driven by classic ABD
//!   with pure out-of-place updates (no in-place data, one shared metadata
//!   word) — the "good engineering solution using known techniques" (§7).
//! * [`Proto::Raw`] is **RAW**: unreplicated, no concurrency control; the
//!   latency lower bound.
//! * [`FuseeKv`] models **FUSEE** (FAST '23), the state-of-the-art
//!   synchronously replicated disaggregated KV the paper compares against.
//!
//! Supporting services: a reliable [`Index`] (§5.2), an approximated-LFU
//! location [`cache`](LfuCache) (§7.1), and a lease-based [`Membership`]
//! service standing in for uKharon (§5.4). [`runner`] drives YCSB workloads
//! against any store and produces the statistics the paper's figures report.

mod cache;
mod client;
mod cluster;
mod fusee;
mod index;
mod membership;
mod runner;
mod store;

pub use cache::LfuCache;
pub use client::{KvClient, KvClientConfig, Proto};
pub use cluster::{Cluster, ClusterConfig, KeyInfo, LOADER_TID};
pub use fusee::{FuseeCluster, FuseeConfig, FuseeKv};
pub use index::{Index, InsertOutcome, INDEX_MSG_BYTES};
pub use membership::Membership;
pub use runner::{run_workload, RunConfig, RunStats};
pub use store::KvStore;
