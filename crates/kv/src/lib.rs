//! SWARM-KV (§5): a low-latency, strongly consistent, highly available
//! disaggregated key-value store — plus the paper's three baselines, behind
//! one typed, batch-capable store API.
//!
//! # The store API
//!
//! * [`StoreBuilder`] constructs any of the four evaluated systems
//!   ([`Protocol::SafeGuess`] = SWARM-KV, [`Protocol::Abd`] = DM-ABD,
//!   [`Protocol::Raw`], [`Protocol::Fusee`]) through one fluent interface:
//!   `build_cluster()` then `client(id)` per application thread.
//! * [`KvStore`] is the typed operation trait: `get` returns
//!   `Ok(Some(value))` / `Ok(None)`, mutations return `Result<(), KvError>`
//!   where [`KvError`] distinguishes `NotFound`, `Deleted`, `IndexFull`,
//!   `Timeout` and `NotIndexed`.
//! * [`KvStoreExt`] (blanket-implemented) adds pipelined batches:
//!   `multi_get` / `multi_update` / `multi_insert` issue all per-key
//!   operations concurrently, so a batch of N independent cached keys costs
//!   about one quorum roundtrip instead of N (§7.2's ops-in-flight path).
//! * Past one replica group, `StoreBuilder::shards(n)` + `build_sharded`
//!   partition the keyspace over independent shard clusters behind
//!   [`ShardRouter`] clients ([`ShardSpec`] is the stateless key→shard
//!   hash; each shard draws from private RNG streams so faults on one
//!   shard cannot perturb another — see [`ShardedCluster`]).
//! * The static layout can be reconfigured online: [`ElasticShard`] runs
//!   the elastic-resharding subsystem ([`reshard`](crate::ShardMap)) —
//!   a generation-stamped routing table plus a copy/double-write/seal
//!   migration protocol that splits, merges, or rebuilds replica groups
//!   mid-run while every concurrent client stays linearizable. Stale
//!   routes bounce with [`KvError::WrongShard`].
//!
//! ```
//! use swarm_kv::{CacheCapacity, KvStore, KvStoreExt, Protocol, StoreBuilder};
//! use swarm_sim::Sim;
//!
//! let sim = Sim::new(7);
//! let cluster = StoreBuilder::new(Protocol::SafeGuess)
//!     .value_size(64)
//!     .max_clients(2)
//!     .cache(CacheCapacity::Entries(1024))
//!     .build_cluster(&sim);
//! cluster.load_keys(8, |k| vec![k as u8; 64]);
//! let client = cluster.client(0);
//! sim.block_on(async move {
//!     client.update(3, vec![9u8; 64]).await.expect("key 3 is indexed");
//!     // One pipelined batch: ~1 quorum roundtrip for all four keys.
//!     let values = client.multi_get(&[0, 1, 2, 3]).await;
//!     let v3 = values[3].as_ref().unwrap().as_ref().unwrap();
//!     assert_eq!(**v3, vec![9u8; 64]);
//! });
//! ```
//!
//! ### Migrating from the pre-builder API
//!
//! | old | new |
//! |---|---|
//! | `KvClient::new(&cluster, Proto::SafeGuess, id, cfg)` | `StoreBuilder::new(Protocol::SafeGuess).build_cluster(&sim).client(id)` |
//! | `FuseeKv::new(&cluster, id, entries)` | `StoreBuilder::new(Protocol::Fusee).cache(CacheCapacity::Entries(entries))…` |
//! | `get(k) -> Option<Rc<Vec<u8>>>` | `get(k) -> Result<Option<Rc<Vec<u8>>>, KvError>` |
//! | `update/insert/delete(..) -> bool` | `update/insert/delete(..) -> Result<(), KvError>` |
//! | `KvClientConfig { cache_entries: usize::MAX / 2 }` | `KvClientConfig { cache: CacheCapacity::Unbounded }` |
//! | N sequential `get`s | `multi_get(&keys)` (~1 roundtrip for cached keys) |
//!
//! `KvClient::new` / `FuseeKv::new` remain available for tests that need a
//! hand-built substrate; the builder is the supported front door.
//!
//! # Inside
//!
//! * [`KvClient`] with [`Proto::SafeGuess`] is **SWARM-KV**: clients access
//!   key-value pairs replicated over memory nodes directly, with
//!   single-roundtrip `insert`/`update`/`get`/`delete` in the common case.
//! * [`Proto::Abd`] is **DM-ABD**: the same substrate driven by classic ABD
//!   with pure out-of-place updates (no in-place data, one shared metadata
//!   word) — the "good engineering solution using known techniques" (§7).
//! * [`Proto::Raw`] is **RAW**: unreplicated, no concurrency control; the
//!   latency lower bound.
//! * [`FuseeKv`] models **FUSEE** (FAST '23), the state-of-the-art
//!   synchronously replicated disaggregated KV the paper compares against.
//!
//! Supporting services: a reliable [`Index`] (§5.2), an approximated-LFU
//! location [`cache`](LfuCache) (§7.1), and a lease-based [`Membership`]
//! service standing in for uKharon (§5.4). [`runner`](run_workload) drives
//! YCSB workloads against any store — sequentially or in pipelined batches
//! (`RunConfig::batch`) — and produces the statistics the paper's figures
//! report. For correctness testing, [`HistoryRecorder`] wraps any store so
//! every operation lands in a multi-key history checkable with
//! `swarm_core::KvHistory` — the machinery behind the chaos suite (see
//! `TESTING.md`).
//!
//! For true multi-core sharded runs, [`plan_workload`] +
//! [`run_sharded_plan`] pre-partition a workload into per-shard op streams
//! and drive each shard on its *own* seeded `Sim` — sequentially, on
//! `SWARM_SHARD_THREADS` OS threads ([`ShardMode`]), or on one shared
//! simulation as a cross-check — with bit-identical per-shard outcomes in
//! every mode (see `parallel.rs`'s module docs for the argument).

#![warn(missing_docs)]

mod builder;
mod cache;
mod client;
mod cluster;
mod envknob;
mod fusee;
mod index;
mod membership;
mod parallel;
mod recorder;
mod repair;
mod reshard;
mod runner;
mod scenario_run;
mod shard;
mod store;
mod ttl;

pub use builder::{Protocol, StoreBuilder, StoreClient, StoreCluster};
pub use cache::LfuCache;
pub use client::{AdaptiveConfig, CacheCapacity, KvClient, KvClientConfig, Proto};
pub use cluster::{Cluster, ClusterConfig, KeyInfo, LOADER_TID};
pub use envknob::{
    env_knob, hedge_config, hedge_delay_pct, hedge_max_inflight, parse_knob, repair_buckets,
    repair_period_ns,
};
pub use fusee::{FuseeCluster, FuseeConfig, FuseeKv};
pub use index::{Index, InsertOutcome, INDEX_MSG_BYTES};
pub use membership::Membership;
pub use parallel::{
    plan_workload, run_sharded_plan, run_sharded_workload, shard_threads, OpOutcome, PlannedOp,
    ShardMode, ShardOutcome, ShardRunOptions, ShardedRun, WorkloadPlan,
};
pub use recorder::{value_tag, HistoryRecorder, RecordingStore};
pub use repair::{
    divergent_stamp_pairs, DeferFn, RepairConfig, RepairHandle, RepairStats, RepairStrategy,
};
pub use reshard::{
    split_point, ElasticClient, ElasticShard, ReshardAction, ReshardEvent, ReshardStats, Segment,
    ShardMap,
};
pub use runner::{ops_scale, run_workload, RunConfig, RunStats};
pub use scenario_run::{run_scenario, ScenarioRunConfig, ScenarioStats};
pub use shard::{ShardRouter, ShardSpec, ShardedCluster};
pub use store::{KvError, KvResult, KvStore, KvStoreExt, ScanItems};
pub use swarm_core::HedgeConfig;
pub use ttl::{ttl_stamp, ttl_stamp_never, TtlStore, TTL_NEVER};
