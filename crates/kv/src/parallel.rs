//! One-`Sim`-per-shard parallel execution of sharded workloads.
//!
//! [`ShardedCluster`](crate::ShardedCluster) builds every shard on a single
//! event loop: correct, provably independent per shard (see
//! [`crate::ShardSpec`]), and serialized onto one core. This module is the
//! multi-core driver: the workload is **planned up front** into per-shard op
//! streams, then every shard runs on its *own* `Sim::new(seed)` — solo on
//! the calling thread, or one shard per OS thread — and the per-shard
//! outcomes merge in deterministic shard order.
//!
//! # Why the executions line up bit for bit
//!
//! Three facts make the modes interchangeable:
//!
//! 1. Every random draw a shard makes comes from a private stream forked
//!    from `(simulation seed, shard label)` — never from the shared stream
//!    ([`StoreBuilder::build_one_shard`] sets the same labels
//!    `build_sharded` would).
//! 2. The op streams are **pre-planned** from per-router forked streams
//!    ([`swarm_sim::SimRng::from_seed`]), so no runtime draw depends on
//!    cross-shard scheduling.
//! 3. The simulator orders events by `(time, sequence)` and sequence
//!    numbers respect creation order, so a shard's events keep their
//!    relative order whether or not another shard's events interleave.
//!
//! Therefore `Threads(n)` ≡ `Sequential` ≡ `SingleSim`, per shard, bit for
//! bit — histories, traffic counters, latencies. The test suite's
//! `shard_parallel` asserts exactly this across seeds, thread counts, and
//! per-shard fault plans.
//!
//! Note the planned driver is a *different* client model from
//! [`run_workload`](crate::run_workload) over routers: there, op generation
//! draws from the shared stream at runtime and a router's per-shard clients
//! share one CPU core. Cross-shard CPU sharing cannot exist once shards
//! live on different OS threads, so here each `(router, shard)` pair is its
//! own client and a router's cross-shard batch runs as per-shard slices.
//! Numbers from the two drivers are each deterministic but not comparable
//! to one another.
//!
//! # Thread confinement
//!
//! A `Sim` is `!Send` (Rc-based wakers); each worker thread *constructs*
//! its shard's `Sim` + [`StoreCluster`] locally and only the `Send`
//! [`ShardOutcome`] crosses threads — the same discipline as
//! `swarm_bench::sweep`, one level down.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use swarm_core::KvHistory;
use swarm_fabric::{FaultPlan, TrafficStats};
use swarm_sim::{join2, Nanos, Sim, SimRng};
use swarm_workload::{OpType, Workload};

use crate::builder::{StoreBuilder, StoreCluster};
use crate::cluster::derive_label;
use crate::envknob::env_knob;
#[cfg(test)]
use crate::envknob::parse_knob;
use crate::recorder::HistoryRecorder;
use crate::repair::RepairStats;
use crate::reshard::{ElasticShard, ReshardEvent, ReshardStats};
use crate::runner::{RunConfig, RunStats};
use crate::shard::ShardSpec;
use crate::store::{KvError, KvStore, KvStoreExt};

/// Base label the per-router planning streams fork from. Distinct from the
/// shard labels (`SHARD_RNG_BASE`) and the chaos-worker labels, so planned
/// op streams never collide with substrate streams.
const PLAN_RNG_BASE: u64 = 0x504C_414E_0050_4C4E;

/// The shard-thread count: `SWARM_SHARD_THREADS` if set (a positive
/// integer), otherwise the number of available cores. Follows the shared
/// warn-once [`env_knob`] convention (`SWARM_BENCH_THREADS`,
/// `SWARM_BENCH_OPS_SCALE`, ...): garbage is ignored with a one-time
/// stderr warning, never a panic.
pub fn shard_threads() -> usize {
    env_knob("SWARM_SHARD_THREADS", "a positive integer like 4", |n| {
        *n >= 1
    })
    .unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

#[cfg(test)]
fn parse_shard_threads(raw: Option<&str>) -> Option<usize> {
    parse_knob(
        "SWARM_SHARD_THREADS",
        raw,
        "a positive integer like 4",
        |n| *n >= 1,
    )
}

/// How to drive the per-shard simulations of a planned run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// All shards on one shared `Sim` (the classic `ShardedCluster`
    /// shape): the cross-check that per-shard solo executions replay the
    /// shared-simulation ones.
    SingleSim,
    /// One solo `Sim` per shard, driven to completion one after another on
    /// the calling thread.
    Sequential,
    /// One solo `Sim` per shard, shards claimed work-stealing by this many
    /// OS threads. `Threads(1)` behaves exactly like `Sequential`.
    Threads(usize),
}

impl ShardMode {
    /// `Threads(n)` with `n` from `SWARM_SHARD_THREADS` (default: all
    /// cores).
    pub fn from_env() -> ShardMode {
        ShardMode::Threads(shard_threads())
    }
}

/// One pre-planned operation: what to do, against which key, carrying the
/// globally unique version its payload is derived from
/// (`Workload::value_for(key, version)` is pure, so payloads need not be
/// materialized until execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedOp {
    /// The router (logical application thread) this op belongs to.
    pub router: usize,
    /// Position in that router's op stream (reassembly index).
    pub pos: usize,
    /// Operation kind.
    pub op: OpType,
    /// Target key.
    pub key: u64,
    /// Globally unique payload version (assigned in planning order).
    pub version: u64,
}

/// One shard's slice of one router batch: the ops of a single router batch
/// owned by one shard, issued together (pipelined when the plan's batch
/// size exceeds 1).
#[derive(Debug, Clone)]
struct Slice {
    measured: bool,
    ops: Vec<PlannedOp>,
}

/// A workload partitioned up front into per-shard, per-router op streams:
/// [`crate::ShardRouter`]'s stateless grouping, applied before execution
/// instead of per call. Built by [`plan_workload`]; executed by
/// [`run_sharded_plan`].
pub struct WorkloadPlan {
    spec: ShardSpec,
    routers: usize,
    /// The effective (env-scaled) run configuration the plan was cut to.
    cfg: RunConfig,
    /// Ops per router (warm-up + measured), for result reassembly.
    per_router_ops: Vec<usize>,
    /// `slices[shard][router]` = that router's slices on that shard, in
    /// stream order.
    slices: Vec<Vec<Vec<Slice>>>,
}

impl WorkloadPlan {
    /// The keyspace partitioning the plan routed by.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Number of router streams.
    pub fn routers(&self) -> usize {
        self.routers
    }

    /// Total planned ops (warm-up + measured) across all routers.
    pub fn ops_total(&self) -> u64 {
        self.per_router_ops.iter().map(|&n| n as u64).sum()
    }

    /// Planned ops per shard, in shard order (warm-up + measured): the
    /// routed-load view, deterministic before anything runs — what the
    /// scale bench reports imbalance from.
    pub fn per_shard_op_counts(&self) -> Vec<u64> {
        self.slices
            .iter()
            .map(|routers| {
                routers
                    .iter()
                    .flat_map(|slices| slices.iter().map(|sl| sl.ops.len() as u64))
                    .sum()
            })
            .collect()
    }

    /// The effective run configuration (after `SWARM_BENCH_OPS_SCALE`).
    pub fn effective_config(&self) -> &RunConfig {
        &self.cfg
    }
}

/// Plans `cfg.warmup_ops + cfg.measure_ops` operations of `workload`
/// across `routers` logical application threads, pre-routed onto the
/// shards of `spec`.
///
/// Each router draws its `(op, key)` stream from a private fork of
/// `(seed, router label)` — the same fork-label scheme the shards
/// themselves use — so the plan depends only on `(seed, spec, workload,
/// cfg, routers)`, never on execution interleaving. Versions are assigned
/// globally in planning order, so every mutation payload is unique, as
/// under [`run_workload`](crate::run_workload).
///
/// Ops are chunked into router batches of `cfg.batch` (warm-up and
/// measured phases never share a batch), and every batch is split into
/// per-shard slices: the cross-shard multi-op grouping
/// [`crate::ShardRouter`] performs per call, applied up front.
///
/// # Panics
///
/// Panics on knobs the planned driver does not support (`concurrency > 1`,
/// pacing, deadlines, time series, roundtrip recording, prewarm): those
/// describe runtime feedback loops that cannot be planned ahead, so they
/// stay with `run_workload`.
pub fn plan_workload(
    seed: u64,
    spec: ShardSpec,
    workload: &Workload,
    cfg: &RunConfig,
    routers: usize,
) -> WorkloadPlan {
    assert!(routers >= 1, "a plan needs at least one router stream");
    let cfg = cfg.env_scaled();
    assert!(
        cfg.concurrency == 1
            && cfg.pace_ns.is_none()
            && cfg.deadline_ns.is_none()
            && cfg.bucket_ns.is_none()
            && cfg.prewarm_keys.is_none()
            && !cfg.record_rtts,
        "the planned shard driver supports warmup/measure/batch/op_overhead only; \
         use run_workload for paced, deadlined, or rtt-recorded runs"
    );
    assert!(cfg.batch >= 1, "batch size must be at least 1");

    let mut slices: Vec<Vec<Vec<Slice>>> = vec![vec![Vec::new(); routers]; spec.shards()];
    let mut per_router_ops = Vec::with_capacity(routers);
    let mut version = 0u64;
    // `r` is a router *id* (rng label, `PlannedOp::router`), not just an
    // index into `slices` — iterator rewrites obscure that.
    #[allow(clippy::needless_range_loop)]
    for r in 0..routers {
        let share =
            |total: u64| total / routers as u64 + u64::from((r as u64) < total % routers as u64);
        let warm = share(cfg.warmup_ops);
        let meas = share(cfg.measure_ops);
        per_router_ops.push((warm + meas) as usize);
        let rng = SimRng::from_seed(seed, derive_label(PLAN_RNG_BASE, r as u64, routers as u64));
        let mut pos = 0usize;
        for (phase_ops, measured) in [(warm, false), (meas, true)] {
            let mut left = phase_ops;
            while left > 0 {
                let batch = left.min(cfg.batch as u64);
                left -= batch;
                // One router batch, split by owning shard in input order.
                let mut per_shard: Vec<Vec<PlannedOp>> = vec![Vec::new(); spec.shards()];
                for _ in 0..batch {
                    let (op, key) = workload.next_op(rng.rand_u64(), rng.rand_f64());
                    version += 1;
                    per_shard[spec.shard_of(key)].push(PlannedOp {
                        router: r,
                        pos,
                        op,
                        key,
                        version,
                    });
                    pos += 1;
                }
                for (s, ops) in per_shard.into_iter().enumerate() {
                    if !ops.is_empty() {
                        slices[s][r].push(Slice { measured, ops });
                    }
                }
            }
        }
    }
    WorkloadPlan {
        spec,
        routers,
        cfg,
        per_router_ops,
        slices,
    }
}

/// What to set up around a planned run, per shard.
#[derive(Debug, Clone, Default)]
pub struct ShardRunOptions {
    /// Bulk-load keys `0..n` with `workload.value_for(key, 0)` payloads,
    /// each into its owning shard, before the run.
    pub preload_keys: Option<u64>,
    /// Fault plans by shard index, applied to that shard's fabric before
    /// workers start. Pair with `StoreBuilder::op_deadline_ns` so workers
    /// stay live when a fault makes a quorum unreachable.
    pub faults: Vec<(usize, FaultPlan)>,
    /// Record every op into a per-shard [`KvHistory`]
    /// (linearizability-checkable; also the strongest bit-parity witness).
    pub record_history: bool,
    /// Keep every op's [`OpOutcome`] for input-order reassembly via
    /// [`ShardedRun::results`]. Off for benches (memory).
    pub collect_results: bool,
    /// Run each shard's membership watcher until this virtual time.
    pub watch_until_ns: Option<Nanos>,
    /// Scheduled elastic-resharding events (see `crate::reshard`). A shard
    /// with at least one event is wrapped in an [`ElasticShard`] family:
    /// its workers route through [`crate::ElasticClient`]s (stale epochs
    /// bounce and re-resolve), and each event runs as a simulation task at
    /// its virtual time — so migrations replay bit-identically in every
    /// [`ShardMode`], like everything else in a planned run. Requires
    /// `StoreBuilder::max_clients(routers + 1)`: the family reserves the
    /// top client id for its migration driver. A `Rebuild` event needs its
    /// dead node actually crashed (via [`ShardRunOptions::faults`]) and
    /// [`ShardRunOptions::watch_until_ns`] armed past the crash, or the
    /// membership verdict it waits for never arrives.
    pub reshards: Vec<ReshardEvent>,
    /// Arm each shard's background anti-entropy repair agent until this
    /// virtual time (requires [`StoreBuilder::repair`] on the builder;
    /// silently a no-op otherwise). On an elastic shard the whole family
    /// arms — every replica group, including destinations built mid-run —
    /// and repair of keys inside an active migration window defers to the
    /// double-write machinery. Like reshard events, armed repair runs as
    /// shard-private simulation tasks, so runs stay bit-identical across
    /// every [`ShardMode`].
    pub repair_until_ns: Option<Nanos>,
}

/// The `Send` result of one operation, reassembled across shards
/// (payloads are copied out of the shard-confined `Rc`s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome {
    /// A get that found a value.
    Value(Vec<u8>),
    /// A get that observed absence.
    Absent,
    /// A mutation that applied.
    Done,
    /// An operation that failed.
    Failed(KvError),
}

/// Everything that leaves one shard's simulation: plain `Send` data — the
/// `Sim`, its wakers, and every `Rc` stay confined to the thread that
/// built them.
pub struct ShardOutcome {
    /// Shard index.
    pub shard: usize,
    /// This shard's measured-op statistics.
    pub stats: RunStats,
    /// This shard's fabric traffic after the simulation fully drained.
    pub traffic: TrafficStats,
    /// The shard's recorded history (when
    /// [`ShardRunOptions::record_history`]).
    pub history: Option<KvHistory>,
    /// `(router, pos, outcome)` per op (when
    /// [`ShardRunOptions::collect_results`]), in shard completion order.
    pub results: Vec<(usize, usize, OpOutcome)>,
    /// The shard family's migration counters, when the shard ran with
    /// [`ShardRunOptions::reshards`] events (another bit-parity witness:
    /// epochs, seals, bounces, and copied keys must agree across modes).
    pub reshard: Option<ReshardStats>,
    /// The shard's anti-entropy counters, when the shard ran with
    /// [`ShardRunOptions::repair_until_ns`] and a repair-configured
    /// builder (rounds, deltas, and bytes are bit-parity witnesses too).
    pub repair: Option<RepairStats>,
}

/// A completed planned run: per-shard outcomes in shard order, plus the
/// deterministic merges. Identical whatever [`ShardMode`] produced it.
pub struct ShardedRun {
    per_shard: Vec<ShardOutcome>,
    per_router_ops: Vec<usize>,
}

impl ShardedRun {
    /// Per-shard outcomes, in shard order.
    pub fn per_shard(&self) -> &[ShardOutcome] {
        &self.per_shard
    }

    /// One shard's outcome.
    pub fn shard(&self, s: usize) -> &ShardOutcome {
        &self.per_shard[s]
    }

    /// Aggregate run statistics, merged in shard order: latency histograms
    /// concatenate shard 0, 1, ... (so percentiles are over the union),
    /// op counts sum, and the measurement window spans the earliest start
    /// to the latest end.
    pub fn merged_stats(&self) -> RunStats {
        let mut latency: HashMap<OpType, swarm_sim::Histogram> = HashMap::new();
        let mut out = RunStats {
            start_ns: Nanos::MAX,
            ..Default::default()
        };
        for o in &self.per_shard {
            for (&op, h) in &o.stats.latency {
                latency.entry(op).or_default().merge(h);
            }
            out.measured_ops += o.stats.measured_ops;
            out.failed_ops += o.stats.failed_ops;
            if o.stats.measured_ops > 0 {
                out.start_ns = out.start_ns.min(o.stats.start_ns);
                out.end_ns = out.end_ns.max(o.stats.end_ns);
            }
        }
        if out.measured_ops == 0 {
            out.start_ns = 0;
        }
        out.latency = latency;
        out
    }

    /// Aggregate fabric traffic across shards.
    pub fn total_traffic(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for o in &self.per_shard {
            total += o.traffic;
        }
        total
    }

    /// Per-shard fabric traffic, in shard order.
    pub fn per_shard_traffic(&self) -> Vec<TrafficStats> {
        self.per_shard.iter().map(|o| o.traffic).collect()
    }

    /// Per-shard recorded histories, in shard order (requires
    /// [`ShardRunOptions::record_history`]).
    pub fn histories(&self) -> Vec<&KvHistory> {
        self.per_shard
            .iter()
            .map(|o| o.history.as_ref().expect("run with record_history"))
            .collect()
    }

    /// Every op's outcome reassembled into input order:
    /// `results()[router][pos]`, exactly as a [`crate::ShardRouter`] batch
    /// returns in-order results. Requires
    /// [`ShardRunOptions::collect_results`].
    pub fn results(&self) -> Vec<Vec<OpOutcome>> {
        let mut out: Vec<Vec<Option<OpOutcome>>> =
            self.per_router_ops.iter().map(|&n| vec![None; n]).collect();
        for o in &self.per_shard {
            for (router, pos, outcome) in &o.results {
                out[*router][*pos] = Some(outcome.clone());
            }
        }
        out.into_iter()
            .map(|router| {
                router
                    .into_iter()
                    .map(|r| r.expect("run with collect_results: every op lands exactly once"))
                    .collect()
            })
            .collect()
    }
}

/// Executes a [`WorkloadPlan`] against `builder`'s sharded store under
/// `mode`, returning per-shard outcomes merged in shard order.
///
/// The outcome is bit-identical across every mode and thread count: the
/// whole point of the pre-planned driver. `builder` must be configured
/// with the same shard count the plan was cut for, and with `max_clients`
/// covering the plan's router count.
pub fn run_sharded_plan(
    builder: &StoreBuilder,
    seed: u64,
    plan: &WorkloadPlan,
    workload: &Workload,
    opts: &ShardRunOptions,
    mode: ShardMode,
) -> ShardedRun {
    assert_eq!(
        builder.num_shards(),
        plan.spec.shards(),
        "builder and plan disagree on the shard count"
    );
    let shards = plan.spec.shards();
    let per_shard = match mode {
        ShardMode::SingleSim => {
            let sim = Sim::new(seed);
            let clusters: Vec<StoreCluster> = (0..shards)
                .map(|s| builder.build_one_shard(&sim, s))
                .collect();
            let tasks: Vec<ShardTasks> = clusters
                .iter()
                .enumerate()
                .map(|(s, cluster)| setup_shard(&sim, cluster, builder, plan, workload, opts, s))
                .collect();
            sim.run();
            clusters
                .iter()
                .zip(tasks)
                .enumerate()
                .map(|(s, (cluster, tasks))| finish_shard(s, cluster, tasks))
                .collect()
        }
        ShardMode::Sequential => (0..shards)
            .map(|s| run_one_shard(builder, seed, plan, workload, opts, s))
            .collect(),
        ShardMode::Threads(n) => {
            let n = n.clamp(1, shards);
            if n <= 1 {
                (0..shards)
                    .map(|s| run_one_shard(builder, seed, plan, workload, opts, s))
                    .collect()
            } else {
                // Work stealing over shards, exactly the sweep driver's
                // shape: a shared claim counter, per-shard result slots,
                // results read back in shard order.
                let next = AtomicUsize::new(0);
                let slots: Vec<Mutex<Option<ShardOutcome>>> =
                    (0..shards).map(|_| Mutex::new(None)).collect();
                std::thread::scope(|scope| {
                    for _ in 0..n {
                        scope.spawn(|| loop {
                            let s = next.fetch_add(1, Ordering::Relaxed);
                            if s >= shards {
                                break;
                            }
                            let out = run_one_shard(builder, seed, plan, workload, opts, s);
                            *slots[s].lock().expect("shard slot poisoned") = Some(out);
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|m| {
                        m.into_inner()
                            .expect("shard slot poisoned")
                            .expect("every claimed shard stores an outcome")
                    })
                    .collect()
            }
        }
    };
    ShardedRun {
        per_shard,
        per_router_ops: plan.per_router_ops.clone(),
    }
}

/// Plans and runs in one call: the front door for benches and tests that
/// do not need to inspect or reuse the [`WorkloadPlan`].
pub fn run_sharded_workload(
    builder: &StoreBuilder,
    seed: u64,
    workload: &Workload,
    cfg: &RunConfig,
    routers: usize,
    opts: &ShardRunOptions,
    mode: ShardMode,
) -> ShardedRun {
    let plan = plan_workload(
        seed,
        ShardSpec::new(builder.num_shards()),
        workload,
        cfg,
        routers,
    );
    run_sharded_plan(builder, seed, &plan, workload, opts, mode)
}

/// Builds, preloads, faults, and runs shard `s` alone on its own seeded
/// `Sim`, on the calling thread.
fn run_one_shard(
    builder: &StoreBuilder,
    seed: u64,
    plan: &WorkloadPlan,
    workload: &Workload,
    opts: &ShardRunOptions,
    s: usize,
) -> ShardOutcome {
    let sim = Sim::new(seed);
    let cluster = builder.build_one_shard(&sim, s);
    let tasks = setup_shard(&sim, &cluster, builder, plan, workload, opts, s);
    sim.run();
    finish_shard(s, &cluster, tasks)
}

/// The shard-confined run state workers write into.
struct ShardTasks {
    rec: Option<HistoryRecorder>,
    stats: Rc<RefCell<RunStats>>,
    results: Rc<RefCell<Vec<(usize, usize, OpOutcome)>>>,
    active: Rc<Cell<usize>>,
    /// The elastic family wrapping this shard, when
    /// [`ShardRunOptions::reshards`] scheduled events on it.
    family: Option<Rc<ElasticShard>>,
}

/// Preloads, watches, faults, and spawns shard `s`'s workers — identically
/// whether `sim` is the shard's solo simulation or a shared one.
fn setup_shard(
    sim: &Sim,
    cluster: &StoreCluster,
    builder: &StoreBuilder,
    plan: &WorkloadPlan,
    workload: &Workload,
    opts: &ShardRunOptions,
    s: usize,
) -> ShardTasks {
    let rec = opts.record_history.then(|| HistoryRecorder::new(sim));
    let family = opts.reshards.iter().any(|e| e.shard == s).then(|| {
        assert!(
            builder.max_client_count() > plan.routers,
            "elastic resharding reserves the top client id for the migration \
             driver: configure StoreBuilder::max_clients(routers + 1)"
        );
        ElasticShard::new(sim, builder, cluster.clone(), builder.shard_label(s))
    });
    if let Some(n) = opts.preload_keys {
        // Ascending key order: each shard loads exactly the keys it owns,
        // in the same order in every mode.
        for key in 0..n {
            if plan.spec.shard_of(key) == s {
                let v = workload.value_for(key, 0);
                cluster.load_key(key, &v);
                if let Some(rec) = &rec {
                    rec.set_initial(key, &v);
                }
            }
        }
    }
    if let Some(deadline) = opts.watch_until_ns {
        if let Some(m) = cluster.membership() {
            m.watch_until(deadline);
        }
    }
    for (fault_shard, fault_plan) in &opts.faults {
        if *fault_shard == s {
            cluster.fabric().apply_fault_plan(fault_plan);
        }
    }
    if let Some(deadline) = opts.repair_until_ns {
        match &family {
            Some(f) => f.arm_repair(deadline),
            None => {
                if let Some(agent) = cluster.repair() {
                    agent.arm_until(deadline);
                }
            }
        }
    }

    let stats = Rc::new(RefCell::new(RunStats::default()));
    let results = Rc::new(RefCell::new(Vec::new()));
    let active = Rc::new(Cell::new(0usize));
    for r in 0..plan.routers {
        let slices = &plan.slices[s][r];
        if slices.is_empty() {
            continue;
        }
        active.set(active.get() + 1);
        let results = opts.collect_results.then(|| Rc::clone(&results));
        // Four client shapes, one worker: elastic shards route through the
        // family (bounce-aware), static shards talk to the cluster
        // directly; either may be wrapped in the history recorder.
        match (&family, &rec) {
            (Some(f), Some(rec)) => spawn_shard_worker(
                sim,
                rec.wrap(f.client(r)),
                slices.clone(),
                workload.clone(),
                plan.cfg.clone(),
                Rc::clone(&stats),
                results,
                Rc::clone(&active),
            ),
            (Some(f), None) => spawn_shard_worker(
                sim,
                f.client(r),
                slices.clone(),
                workload.clone(),
                plan.cfg.clone(),
                Rc::clone(&stats),
                results,
                Rc::clone(&active),
            ),
            (None, Some(rec)) => spawn_shard_worker(
                sim,
                rec.wrap(cluster.client(r)),
                slices.clone(),
                workload.clone(),
                plan.cfg.clone(),
                Rc::clone(&stats),
                results,
                Rc::clone(&active),
            ),
            (None, None) => spawn_shard_worker(
                sim,
                cluster.client(r),
                slices.clone(),
                workload.clone(),
                plan.cfg.clone(),
                Rc::clone(&stats),
                results,
                Rc::clone(&active),
            ),
        }
    }
    if let Some(f) = &family {
        for ev in opts.reshards.iter().filter(|e| e.shard == s) {
            f.run_event(ev);
        }
    }
    ShardTasks {
        rec,
        stats,
        results,
        active,
        family,
    }
}

/// Extracts the `Send` outcome once shard `s`'s simulation drained.
fn finish_shard(s: usize, cluster: &StoreCluster, tasks: ShardTasks) -> ShardOutcome {
    assert_eq!(
        tasks.active.get(),
        0,
        "shard {s}: simulation drained with workers still pending \
         (set StoreBuilder::op_deadline_ns when running fault plans)"
    );
    // An elastic shard's traffic spans every replica group it built, in
    // group order; a static shard's is its one fabric.
    let (traffic, reshard, repair) = match &tasks.family {
        Some(f) => (f.traffic(), Some(f.stats()), f.repair_stats()),
        None => (
            cluster.fabric().stats(),
            None,
            cluster.repair().map(|agent| agent.stats()),
        ),
    };
    ShardOutcome {
        shard: s,
        stats: Rc::try_unwrap(tasks.stats)
            .map(RefCell::into_inner)
            .unwrap_or_else(|_| panic!("shard {s}: stats still shared after drain")),
        traffic,
        history: tasks.rec.map(|r| r.take_history()),
        results: Rc::try_unwrap(tasks.results)
            .map(RefCell::into_inner)
            .unwrap_or_else(|_| panic!("shard {s}: results still shared after drain")),
        reshard,
        repair,
    }
}

type ResultSink = Rc<RefCell<Vec<(usize, usize, OpOutcome)>>>;

/// One shard-side worker: runs one router's slices on this shard, in
/// stream order, mirroring the runner's semantics — per-op client CPU
/// work, pipelined multi-ops for batched slices, measured-only stats.
#[allow(clippy::too_many_arguments)]
fn spawn_shard_worker<S: KvStore + 'static>(
    sim: &Sim,
    store: Rc<S>,
    slices: Vec<Slice>,
    workload: Workload,
    cfg: RunConfig,
    stats: Rc<RefCell<RunStats>>,
    results: Option<ResultSink>,
    active: Rc<Cell<usize>>,
) {
    let sim2 = sim.clone();
    sim.spawn(async move {
        for slice in &slices {
            // Client-side CPU work is paid per op element, batched or not
            // (the runner's accounting, §7.2).
            store
                .endpoint()
                .work(cfg.op_overhead_ns * slice.ops.len() as u64)
                .await;
            if cfg.batch > 1 {
                run_slice_batched(&sim2, &store, slice, &workload, &stats, results.as_ref()).await;
            } else {
                run_slice_sequential(&sim2, &store, slice, &workload, &stats, results.as_ref())
                    .await;
            }
        }
        active.set(active.get() - 1);
    });
}

/// Executes a slice one op at a time (the plan's batch size is 1, so each
/// slice holds a single op).
async fn run_slice_sequential<S: KvStore>(
    sim: &Sim,
    store: &Rc<S>,
    slice: &Slice,
    workload: &Workload,
    stats: &Rc<RefCell<RunStats>>,
    results: Option<&ResultSink>,
) {
    for op in &slice.ops {
        let t0 = sim.now();
        let (ok, outcome) = execute_one(store, op, workload).await;
        let t1 = sim.now();
        if slice.measured {
            record_measured(&mut stats.borrow_mut(), op.op, t0, t1, ok);
        }
        if let Some(results) = results {
            results.borrow_mut().push((op.router, op.pos, outcome));
        }
    }
}

async fn execute_one<S: KvStore>(
    store: &Rc<S>,
    op: &PlannedOp,
    workload: &Workload,
) -> (bool, OpOutcome) {
    match op.op {
        OpType::Get => match store.get(op.key).await {
            Ok(Some(v)) => (true, OpOutcome::Value((*v).clone())),
            // The runner counts an absent get as a failed op.
            Ok(None) => (false, OpOutcome::Absent),
            Err(e) => (false, OpOutcome::Failed(e)),
        },
        OpType::Update => mutated(
            store
                .update(op.key, workload.value_for(op.key, op.version))
                .await,
        ),
        OpType::Insert => mutated(
            store
                .insert(op.key, workload.value_for(op.key, op.version))
                .await,
        ),
        OpType::Delete => mutated(store.delete(op.key).await),
    }
}

fn mutated(r: Result<(), KvError>) -> (bool, OpOutcome) {
    match r {
        Ok(()) => (true, OpOutcome::Done),
        Err(e) => (false, OpOutcome::Failed(e)),
    }
}

/// Executes a slice as one pipelined multi-op round (the runner's batched
/// worker): gets/updates/inserts fan out concurrently, deletes follow
/// sequentially, and every element pays the whole slice's latency.
async fn run_slice_batched<S: KvStore>(
    sim: &Sim,
    store: &Rc<S>,
    slice: &Slice,
    workload: &Workload,
    stats: &Rc<RefCell<RunStats>>,
    results: Option<&ResultSink>,
) {
    let mut gets: Vec<&PlannedOp> = Vec::new();
    let mut updates: Vec<&PlannedOp> = Vec::new();
    let mut inserts: Vec<&PlannedOp> = Vec::new();
    let mut deletes: Vec<&PlannedOp> = Vec::new();
    for op in &slice.ops {
        match op.op {
            OpType::Get => gets.push(op),
            OpType::Update => updates.push(op),
            OpType::Insert => inserts.push(op),
            OpType::Delete => deletes.push(op),
        }
    }
    let get_keys: Vec<u64> = gets.iter().map(|o| o.key).collect();
    let value_ops = |ops: &[&PlannedOp]| -> Vec<(u64, Vec<u8>)> {
        ops.iter()
            .map(|o| (o.key, workload.value_for(o.key, o.version)))
            .collect()
    };
    let update_ops = value_ops(&updates);
    let insert_ops = value_ops(&inserts);

    let t0 = sim.now();
    let (got, (updated, inserted)) = join2(
        store.multi_get(&get_keys),
        join2(
            store.multi_update(&update_ops),
            store.multi_insert(&insert_ops),
        ),
    )
    .await;
    let mut deleted = Vec::with_capacity(deletes.len());
    for op in &deletes {
        deleted.push(store.delete(op.key).await);
    }
    let t1 = sim.now();

    let finish = |op: &PlannedOp, ok: bool, outcome: OpOutcome| {
        if slice.measured {
            record_measured(&mut stats.borrow_mut(), op.op, t0, t1, ok);
        }
        if let Some(results) = results {
            results.borrow_mut().push((op.router, op.pos, outcome));
        }
    };
    for (op, r) in gets.iter().zip(got) {
        let (ok, outcome) = match r {
            Ok(Some(v)) => (true, OpOutcome::Value((*v).clone())),
            Ok(None) => (false, OpOutcome::Absent),
            Err(e) => (false, OpOutcome::Failed(e)),
        };
        finish(op, ok, outcome);
    }
    for (op, r) in updates.iter().zip(updated) {
        let (ok, outcome) = mutated(r);
        finish(op, ok, outcome);
    }
    for (op, r) in inserts.iter().zip(inserted) {
        let (ok, outcome) = mutated(r);
        finish(op, ok, outcome);
    }
    for (op, r) in deletes.iter().zip(deleted) {
        let (ok, outcome) = mutated(r);
        finish(op, ok, outcome);
    }
}

fn record_measured(stats: &mut RunStats, op: OpType, t0: Nanos, t1: Nanos, ok: bool) {
    if stats.measured_ops == 0 {
        stats.start_ns = t0;
    }
    stats.measured_ops += 1;
    stats.end_ns = stats.end_ns.max(t1);
    if !ok {
        stats.failed_ops += 1;
    }
    stats.latency.entry(op).or_default().record(t1 - t0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Protocol;
    use swarm_workload::WorkloadSpec;

    #[test]
    fn shard_threads_knob_parses_falls_back_and_warns_once() {
        // Unset: fall back (to available cores) without a warning.
        assert_eq!(parse_shard_threads(None), None);
        // Valid values apply.
        assert_eq!(parse_shard_threads(Some("1")), Some(1));
        assert_eq!(parse_shard_threads(Some("16")), Some(16));
        // Garbage and out-of-domain values are rejected (warn-once is the
        // shared env_knob machinery, covered by its own tests; here we pin
        // that rejection never panics and repeats consistently).
        for bad in ["banana", "", "0", "-3", "2.5"] {
            assert_eq!(parse_shard_threads(Some(bad)), None, "{bad:?}");
            assert_eq!(parse_shard_threads(Some(bad)), None, "{bad:?} again");
        }
        // The env-reading path always lands on a usable count.
        assert!(shard_threads() >= 1);
    }

    #[test]
    fn plan_partitions_every_op_exactly_once() {
        let spec = ShardSpec::new(4);
        let wl = Workload::ycsb(WorkloadSpec::A, 256, 64);
        let cfg = RunConfig {
            warmup_ops: 37,
            measure_ops: 101,
            batch: 8,
            ..Default::default()
        };
        let plan = plan_workload(7, spec, &wl, &cfg, 3);
        assert_eq!(plan.ops_total(), 138);
        assert_eq!(plan.per_shard_op_counts().iter().sum::<u64>(), 138);
        assert_eq!(plan.routers(), 3);
        // Uneven splits: 37 = 13+12+12, 101 = 34+34+33.
        assert_eq!(plan.per_router_ops, vec![13 + 34, 12 + 34, 12 + 33]);
        // Every (router, pos) appears exactly once across all shards.
        let mut seen = std::collections::BTreeSet::new();
        for shard in &plan.slices {
            for router in shard {
                for slice in router {
                    assert!(!slice.ops.is_empty(), "no empty slices are stored");
                    assert!(slice.ops.len() <= 8, "a slice never exceeds the batch");
                    for op in &slice.ops {
                        assert!(seen.insert((op.router, op.pos)), "duplicate op");
                        assert_eq!(
                            spec.shard_of(op.key),
                            plan.slices
                                .iter()
                                .position(|sh| std::ptr::eq(sh, shard))
                                .unwrap()
                        );
                    }
                }
            }
        }
        assert_eq!(seen.len(), 138);
    }

    #[test]
    fn plan_batches_never_straddle_the_measurement_boundary() {
        let spec = ShardSpec::new(2);
        let wl = Workload::ycsb(WorkloadSpec::B, 128, 64);
        let cfg = RunConfig {
            warmup_ops: 10,
            measure_ops: 10,
            batch: 8,
            ..Default::default()
        };
        // One router: warm-up 10 chunks as 8+2, measured 10 as 8+2 — never
        // a mixed batch.
        let plan = plan_workload(3, spec, &wl, &cfg, 1);
        let mut versions = Vec::new();
        for shard in &plan.slices {
            for slice in &shard[0] {
                for op in &slice.ops {
                    versions.push((op.pos, op.version, slice.measured));
                }
            }
        }
        versions.sort_unstable();
        for (i, &(pos, version, measured)) in versions.iter().enumerate() {
            assert_eq!(pos, i);
            assert_eq!(version, i as u64 + 1, "versions are global and dense");
            assert_eq!(measured, pos >= 10, "phase boundary respected at op {pos}");
        }
    }

    #[test]
    fn plan_is_deterministic_and_seed_sensitive() {
        let spec = ShardSpec::new(3);
        let wl = Workload::ycsb(WorkloadSpec::B, 512, 64);
        let cfg = RunConfig {
            warmup_ops: 20,
            measure_ops: 60,
            ..Default::default()
        };
        let keys = |seed: u64| -> Vec<u64> {
            let plan = plan_workload(seed, spec, &wl, &cfg, 2);
            let mut ops: Vec<(usize, usize, u64)> = plan
                .slices
                .iter()
                .flatten()
                .flatten()
                .flat_map(|sl| sl.ops.iter().map(|o| (o.router, o.pos, o.key)))
                .collect();
            ops.sort_unstable();
            ops.into_iter().map(|(_, _, k)| k).collect()
        };
        assert_eq!(keys(5), keys(5), "same seed, same plan");
        assert_ne!(keys(5), keys(6), "the seed feeds the plan");
    }

    #[test]
    fn threads_one_matches_sequential() {
        let builder = StoreBuilder::new(Protocol::SafeGuess)
            .value_size(64)
            .max_clients(2)
            .shards(2);
        let wl = Workload::ycsb(WorkloadSpec::B, 64, 64);
        let cfg = RunConfig {
            warmup_ops: 10,
            measure_ops: 50,
            ..Default::default()
        };
        let opts = ShardRunOptions {
            preload_keys: Some(64),
            record_history: true,
            ..Default::default()
        };
        let run = |mode| run_sharded_workload(&builder, 9, &wl, &cfg, 2, &opts, mode);
        let seq = run(ShardMode::Sequential);
        let one = run(ShardMode::Threads(1));
        assert_eq!(seq.histories(), one.histories());
        assert_eq!(seq.per_shard_traffic(), one.per_shard_traffic());
        assert_eq!(
            seq.merged_stats().throughput_ops().to_bits(),
            one.merged_stats().throughput_ops().to_bits()
        );
    }
}
